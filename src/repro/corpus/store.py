"""The persistent corpus store: ingest once, query many times.

Every batch API used to walk an ad-hoc document list and recompute the
per-document artifacts (letter histogram, run-length encoding, dense
encodings) from scratch on each call — the prefilter wins of the kernel
layer were paid per *call* instead of amortised per *corpus*.  A
:class:`CorpusStore` inverts that: documents are **ingested once** into a
single sqlite file that persists

* the document text plus its SHA-256 **content hash** (duplicate ingests
  dedup to the existing id),
* the derived artifacts — letter histogram (JSON) and run-length encoding
  (a letter-per-run string plus a packed uint32 length array) — so
  hydrated documents never re-run :meth:`Document.runs` /
  :meth:`Document.letter_counts`,
* per-letter **posting lists** — sorted uint32 document-id arrays with
  parallel occurrence counts, stored as little-endian blobs and viewed as
  numpy arrays when numpy is installed (:mod:`repro.corpus.index`).

Queries then run *against the index*: the engine compiles its
:class:`~repro.va.prefilter.VAPrefilter` into posting-list intersections
and length range scans (:func:`repro.corpus.index.plan_candidates`),
applies the O(1)-per-document residual profile check straight off the
stored histograms, and hydrates only the surviving documents.  Survivor
:class:`~repro.core.document.Document` objects are LRU-cached on the open
store handle, so a warm re-query reuses their seeded artifact caches (and
per-alphabet encodings) outright.

Maintenance: :meth:`add` / :meth:`add_many` / :meth:`remove` /
:meth:`update` keep the posting lists incrementally consistent inside one
sqlite transaction per call; :meth:`rebuild` recomputes every artifact and
posting list from the raw texts (``verify=True`` first reports any
divergence between the stored artifacts and the recomputation — the
content-hash check doubles as corruption detection).

The store is pure stdlib (``sqlite3`` + ``array``); numpy only
accelerates the set operations.  One writer at a time per store file is
assumed (sqlite's own locking protects against worse).

Transient contention (``database is locked`` / ``busy`` from a concurrent
writer) is absorbed by a bounded retry-with-backoff on every sqlite call:
statements retry in place, mutating transactions retry whole (after a
:meth:`CorpusStore.refresh`, since the in-memory postings may have been
touched before the rollback).  Retries exhausted raise
:class:`~repro.core.errors.StoreBusy`; a corrupted database file raises
:class:`~repro.core.errors.StoreCorrupt` immediately — corruption is
never retried and never misread as contention.  The :attr:`retries`
counter feeds ``EngineStats.store_retries``.
"""

from __future__ import annotations

import json
import sqlite3
import time
from bisect import bisect_left
from collections import OrderedDict
from hashlib import sha256
from pathlib import Path
from typing import Iterable, Iterator

from ..core.document import Document
from ..core.errors import SpannerError, StoreBusy, StoreCorrupt
from ..testing import faults
from .index import (
    IndexPlan,
    id_array,
    pack_ids,
    plan_candidates,
    unpack_ids,
)

#: Bump on any incompatible change to the sqlite layout.
SCHEMA_VERSION = 1

#: Chunk size for ``WHERE doc_id IN (...)`` fetches (sqlite's default
#: variable limit is 999).
_IN_CHUNK = 500

#: Bounded retry policy for transient sqlite contention: up to this many
#: retries per call, sleeping ``_RETRY_BACKOFF * 2**attempt`` between them
#: (10 ms, 20 ms, 40 ms, 80 ms — ~150 ms worst case before StoreBusy).
_STORE_RETRIES = 4
_RETRY_BACKOFF = 0.01


def _classify_sqlite_error(exc: sqlite3.DatabaseError) -> str:
    """``"transient"`` (locked/busy — retryable), ``"corrupt"`` (the file
    itself is damaged — never retryable), or ``"other"`` (schema errors
    like ``no such table`` — the caller's problem, not the store's)."""
    message = str(exc).lower()
    if "locked" in message or "busy" in message:
        return "transient"
    if (
        "malformed" in message
        or "not a database" in message
        or "corrupt" in message
    ):
        return "corrupt"
    return "other"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS documents (
    doc_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    hash         TEXT NOT NULL UNIQUE,
    length       INTEGER NOT NULL,
    text         TEXT NOT NULL,
    runs_letters TEXT NOT NULL,
    runs_lengths BLOB NOT NULL,
    histogram    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS documents_length ON documents(length);
CREATE TABLE IF NOT EXISTS postings (
    letter TEXT PRIMARY KEY,
    n      INTEGER NOT NULL,
    ids    BLOB NOT NULL,
    counts BLOB NOT NULL
);
"""


class CorpusError(SpannerError):
    """A corpus-store operation failed (unknown id, duplicate content, …)."""


class _Posting:
    """One letter's in-memory posting list (parallel sorted arrays)."""

    __slots__ = ("ids", "counts", "dirty")

    def __init__(self, ids, counts, dirty: bool = False):
        self.ids = ids
        self.counts = counts
        self.dirty = dirty

    def add(self, doc_id: int, count: int) -> None:
        position = bisect_left(self.ids, doc_id)
        if position < len(self.ids) and self.ids[position] == doc_id:
            self.counts[position] = count
        else:
            self.ids.insert(position, doc_id)
            self.counts.insert(position, count)
        self.dirty = True

    def discard(self, doc_id: int) -> None:
        position = bisect_left(self.ids, doc_id)
        if position < len(self.ids) and self.ids[position] == doc_id:
            del self.ids[position]
            del self.counts[position]
            self.dirty = True


def content_hash(text: str) -> str:
    """The dedup key of a document: SHA-256 of its UTF-8 bytes."""
    return sha256(text.encode("utf-8")).hexdigest()


def _artifacts(text: str) -> tuple[tuple, dict, str, bytes, str]:
    """``(runs, histogram, runs_letters, runs_lengths_blob, histogram_json)``
    recomputed from scratch — the single source of truth for ingest,
    update, rebuild, and verify."""
    doc = Document(text)
    runs = doc.runs()
    histogram = dict(doc.letter_counts())
    letters = "".join(letter for letter, _start, _length in runs)
    lengths = pack_ids(id_array(length for _letter, _start, length in runs))
    blob = json.dumps(histogram, sort_keys=True, ensure_ascii=False)
    return runs, histogram, letters, lengths, blob


def _runs_from_stored(letters: str, lengths_blob: bytes) -> tuple:
    lengths = unpack_ids(lengths_blob)
    out = []
    position = 0
    for letter, length in zip(letters, lengths):
        out.append((letter, position, length))
        position += length
    return tuple(out)


class CorpusSelection:
    """A fixed-order subset of a store's documents.

    Produced by :meth:`CorpusStore.select`; accepted everywhere a
    :class:`CorpusStore` is (``evaluate_many``, ``is_nonempty_many``,
    ``enumerate_stream``).  Results align with ``doc_ids`` order.
    """

    __slots__ = ("store", "doc_ids")

    def __init__(self, store: "CorpusStore", doc_ids: Iterable[int]):
        self.store = store
        self.doc_ids = tuple(doc_ids)

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __repr__(self) -> str:
        return f"CorpusSelection({len(self.doc_ids)} of {self.store!r})"


class CorpusStore:
    """A persistent, indexed document corpus (see module docstring).

    Args:
        path: the sqlite file backing the store (created on first open,
            parent directories included).  A directory path stores
            ``corpus.sqlite`` inside it.
        document_cache_size: LRU bound on hydrated
            :class:`~repro.core.document.Document` objects kept on this
            handle (``0`` disables caching).
        read_only: open an existing store without write access (sqlite
            ``mode=ro``).  Mutating calls raise :class:`CorpusError`;
            combined with the writer's WAL journal, a read-only handle in
            another process sees every committed write — call
            :meth:`refresh` to drop this handle's caches and pick up the
            writer's progress.

    Writable stores run in sqlite WAL mode (set on open, persistent in
    the file), so concurrent readers are never blocked by the ingesting
    writer.  Use as a context manager or call :meth:`close`; every
    mutating call commits before returning, so a store is always
    reopenable at the last completed operation.
    """

    def __init__(
        self,
        path: "str | Path",
        document_cache_size: int = 1024,
        read_only: bool = False,
    ):
        path = Path(path)
        if path.is_dir() or not path.suffix:
            path = path / "corpus.sqlite"
        self.path = path
        self.read_only = read_only
        #: Transient sqlite errors absorbed by retry-with-backoff (feeds
        #: ``EngineStats.store_retries``).
        self.retries = 0
        if read_only:
            if not path.exists():
                raise CorpusError(
                    f"cannot open {path} read-only: the store does not exist"
                )
            self._conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(str(path))
            # WAL: readers (tail sessions, other processes) proceed while
            # the writer ingests; the mode persists in the database file.
            self._execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
        self._init_meta()
        self._postings: dict[str, _Posting] = {}
        self._letters: set[str] = {
            row[0]
            for row in self._execute("SELECT letter FROM postings")
        }
        self._doc_cache: OrderedDict[int, Document] = OrderedDict()
        self._doc_cache_size = document_cache_size
        #: Ingest calls answered by an existing identical document.
        self.dedup_hits = 0
        #: Documents hydrated from this handle (cache hits included — a
        #: hydration is a fetch that *skips* artifact recomputation).
        self.hydrations = 0

    def _execute(self, sql: str, params=()) -> sqlite3.Cursor:
        """``conn.execute`` with the store's robustness policy: transient
        lock/busy errors retry with bounded exponential backoff (counted
        in :attr:`retries`, raising :class:`StoreBusy` when exhausted),
        corruption raises :class:`StoreCorrupt` immediately, and anything
        else (schema errors, programming errors) propagates untouched."""
        attempt = 0
        while True:
            try:
                if faults.ACTIVE is not None:
                    faults.sqlite_error("store")
                return self._conn.execute(sql, params)
            except sqlite3.DatabaseError as exc:
                kind = _classify_sqlite_error(exc)
                if kind == "transient":
                    if attempt < _STORE_RETRIES:
                        self.retries += 1
                        time.sleep(_RETRY_BACKOFF * (2 ** attempt))
                        attempt += 1
                        continue
                    raise StoreBusy(
                        f"store {self.path} stayed locked after "
                        f"{attempt} retries: {exc}"
                    ) from exc
                if kind == "corrupt":
                    raise StoreCorrupt(
                        f"store {self.path} appears corrupt ({exc}); "
                        f"run `corpus rebuild --verify` to inspect and "
                        f"repair it"
                    ) from exc
                raise

    def _transact(self, work):
        """Run ``work()`` inside one committed transaction, retrying the
        *whole* transaction on transient contention.  ``work`` must be
        re-entrant (build its result from scratch on each call): a failed
        attempt rolls the database back and :meth:`refresh` drops any
        in-memory posting/document state the attempt touched before the
        next try.  ``StoreBusy`` raised by an inner statement propagates
        as-is — per-statement and per-transaction retries never stack."""
        attempt = 0
        while True:
            try:
                with self._conn:
                    return work()
            except sqlite3.DatabaseError as exc:
                kind = _classify_sqlite_error(exc)
                if kind == "transient":
                    if attempt < _STORE_RETRIES:
                        self.retries += 1
                        self.refresh()
                        time.sleep(_RETRY_BACKOFF * (2 ** attempt))
                        attempt += 1
                        continue
                    raise StoreBusy(
                        f"store {self.path} stayed locked after "
                        f"{attempt} transaction retries: {exc}"
                    ) from exc
                if kind == "corrupt":
                    raise StoreCorrupt(
                        f"store {self.path} appears corrupt ({exc}); "
                        f"run `corpus rebuild --verify` to inspect and "
                        f"repair it"
                    ) from exc
                raise

    def _init_meta(self) -> None:
        try:
            row = self._execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError as exc:
            # Only reachable read-only (the writable open creates the
            # schema first), and only for schema-level errors — ``no such
            # table: meta`` means the file is not an initialised store.
            # Corruption and persistent contention have already been
            # routed to StoreCorrupt/StoreBusy by ``_execute`` (neither
            # is an OperationalError), so they are never misreported as
            # "not a corpus store".
            raise CorpusError(
                f"store {self.path} is not a corpus store: {exc}"
            ) from None
        if row is None:
            if self.read_only:
                raise CorpusError(
                    f"store {self.path} was never initialised "
                    f"(no schema version row)"
                )
            with self._conn:
                self._execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
        elif int(row[0]) != SCHEMA_VERSION:
            raise CorpusError(
                f"store {self.path} has schema version {row[0]}, "
                f"this build reads {SCHEMA_VERSION}"
            )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._conn.close()
        self._postings.clear()
        self._doc_cache.clear()

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CorpusStore({str(self.path)!r}, {len(self)} docs)"

    def refresh(self) -> None:
        """Drop this handle's caches and reload the index state from the
        database — how a (typically read-only) handle picks up commits
        made by a writer in another process.  sqlite snapshot isolation
        means a handle only advances between transactions; refreshing
        also forgets hydrated documents and in-memory postings that may
        predate the writer's changes."""
        self._postings.clear()
        self._doc_cache.clear()
        self._letters = {
            row[0]
            for row in self._execute("SELECT letter FROM postings")
        }

    def _check_writable(self) -> None:
        if self.read_only:
            raise CorpusError(
                f"store {self.path} is open read-only; "
                f"open without read_only=True to modify it"
            )

    # -- ingest / maintenance ----------------------------------------------

    def add(self, text: "str | Document") -> int:
        """Ingest one document, returning its id.

        Content-hash dedup: ingesting text identical to a stored document
        returns the existing id (counted in :attr:`dedup_hits`) — the
        store never holds two copies of the same text.
        """
        return self.add_many([text])[0]

    def add_many(self, texts: Iterable["str | Document"]) -> list[int]:
        """Ingest a batch in one transaction; returns the ids in order."""
        self._check_writable()
        items = [
            text.text if isinstance(text, Document) else text
            for text in texts
        ]

        def work() -> list[int]:
            ids: list[int] = []
            touched: set[str] = set()
            for text in items:
                ids.append(self._add_one(text, touched))
            self._flush_postings(touched)
            return ids

        return self._transact(work)

    def _add_one(self, text: str, touched: set[str]) -> int:
        digest = content_hash(text)
        row = self._execute(
            "SELECT doc_id FROM documents WHERE hash = ?", (digest,)
        ).fetchone()
        if row is not None:
            self.dedup_hits += 1
            return row[0]
        _runs, histogram, letters, lengths, blob = _artifacts(text)
        cursor = self._execute(
            "INSERT INTO documents "
            "(hash, length, text, runs_letters, runs_lengths, histogram) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (digest, len(text), text, letters, lengths, blob),
        )
        doc_id = cursor.lastrowid
        for letter, count in histogram.items():
            self._posting_for_write(letter).add(doc_id, count)
            touched.add(letter)
        return doc_id

    def remove(self, doc_id: int) -> None:
        """Delete a document and scrub it from every posting list."""
        self._check_writable()

        def work() -> None:
            row = self._execute(
                "SELECT histogram FROM documents WHERE doc_id = ?", (doc_id,)
            ).fetchone()
            if row is None:
                raise CorpusError(f"no document with id {doc_id}")
            histogram = json.loads(row[0])
            touched = set()
            self._execute(
                "DELETE FROM documents WHERE doc_id = ?", (doc_id,)
            )
            for letter in histogram:
                self._posting_for_write(letter).discard(doc_id)
                touched.add(letter)
            self._flush_postings(touched)

        self._transact(work)
        self._doc_cache.pop(doc_id, None)

    def update(self, doc_id: int, text: "str | Document") -> None:
        """Replace a document's content in place (same id).

        Raises :class:`CorpusError` if the new content duplicates another
        stored document; updating to the current content is a no-op.
        """
        self._check_writable()
        if isinstance(text, Document):
            text = text.text
        row = self._execute(
            "SELECT hash FROM documents WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        if row is None:
            raise CorpusError(f"no document with id {doc_id}")
        digest = content_hash(text)
        if digest == row[0]:
            return
        _runs, histogram, letters, lengths, blob = _artifacts(text)

        def work() -> None:
            fresh = self._execute(
                "SELECT histogram FROM documents WHERE doc_id = ?", (doc_id,)
            ).fetchone()
            if fresh is None:
                raise CorpusError(f"no document with id {doc_id}")
            clash = self._execute(
                "SELECT doc_id FROM documents WHERE hash = ?", (digest,)
            ).fetchone()
            if clash is not None and clash[0] != doc_id:
                raise CorpusError(
                    f"updating document {doc_id} would duplicate document "
                    f"{clash[0]} (identical content)"
                )
            old_histogram = json.loads(fresh[0])
            touched = set()
            self._execute(
                "UPDATE documents SET hash = ?, length = ?, text = ?, "
                "runs_letters = ?, runs_lengths = ?, histogram = ? "
                "WHERE doc_id = ?",
                (digest, len(text), text, letters, lengths, blob, doc_id),
            )
            for letter in old_histogram.keys() - histogram.keys():
                self._posting_for_write(letter).discard(doc_id)
                touched.add(letter)
            for letter, count in histogram.items():
                if old_histogram.get(letter) != count:
                    self._posting_for_write(letter).add(doc_id, count)
                    touched.add(letter)
            self._flush_postings(touched)

        self._transact(work)
        self._doc_cache.pop(doc_id, None)

    def append(self, doc_id: int, text: "str | Document") -> Document:
        """Grow a stored document by ``text`` (same id), incrementally.

        The tailing counterpart of :meth:`update`: the new artifacts come
        from :meth:`Document.append` — the run-length encoding and
        histogram *extend* in O(len(text)) instead of re-walking the
        document — and only the letters whose counts changed touch their
        posting lists (an append never removes a document from a posting,
        so there is nothing to scrub).  Returns the appended
        :class:`~repro.core.document.Document`, which also replaces the
        cached hydration so a tail session keeps evaluating the same
        warm object.

        Raises :class:`CorpusError` if the grown content would duplicate
        another stored document; an empty ``text`` is a no-op.
        """
        self._check_writable()
        if isinstance(text, Document):
            text = text.text
        doc = self.document(doc_id)
        if not text:
            return doc
        new_doc = doc.append(text)
        digest = content_hash(new_doc.text)
        old_histogram = doc.letter_counts()
        histogram = dict(new_doc.letter_counts())
        runs = new_doc.runs()
        letters = "".join(letter for letter, _start, _length in runs)
        lengths = pack_ids(
            id_array(length for _letter, _start, length in runs)
        )
        blob = json.dumps(histogram, sort_keys=True, ensure_ascii=False)

        def work() -> None:
            clash = self._execute(
                "SELECT doc_id FROM documents WHERE hash = ?", (digest,)
            ).fetchone()
            if clash is not None and clash[0] != doc_id:
                raise CorpusError(
                    f"appending to document {doc_id} would duplicate "
                    f"document {clash[0]} (identical content)"
                )
            touched = set()
            self._execute(
                "UPDATE documents SET hash = ?, length = ?, text = ?, "
                "runs_letters = ?, runs_lengths = ?, histogram = ? "
                "WHERE doc_id = ?",
                (
                    digest,
                    len(new_doc),
                    new_doc.text,
                    letters,
                    lengths,
                    blob,
                    doc_id,
                ),
            )
            for letter, count in histogram.items():
                if old_histogram.get(letter) != count:
                    self._posting_for_write(letter).add(doc_id, count)
                    touched.add(letter)
            self._flush_postings(touched)

        self._transact(work)
        if self._doc_cache_size > 0:
            self._doc_cache[doc_id] = new_doc
            self._doc_cache.move_to_end(doc_id)
        return new_doc

    def rebuild(self, verify: bool = False) -> dict:
        """Recompute every artifact and posting list from the raw texts.

        The maintenance path of last resort (and the migration path after
        artifact-format changes): artifacts are rederived from ``text``,
        posting lists are rebuilt from scratch, and the whole swap commits
        atomically.  With ``verify=True`` the stored rows are first
        checked against the recomputation (:meth:`verify`) and any
        divergence is reported in the returned summary — the rebuild then
        repairs it.
        """
        self._check_writable()
        issues = self.verify() if verify else []

        def work() -> int:
            postings: dict[str, _Posting] = {}
            documents = 0
            rows = self._execute(
                "SELECT doc_id, text FROM documents ORDER BY doc_id"
            ).fetchall()
            for doc_id, text in rows:
                documents += 1
                digest = content_hash(text)
                _runs, histogram, letters, lengths, blob = _artifacts(text)
                self._execute(
                    "UPDATE documents SET hash = ?, length = ?, "
                    "runs_letters = ?, runs_lengths = ?, histogram = ? "
                    "WHERE doc_id = ?",
                    (digest, len(text), letters, lengths, blob, doc_id),
                )
                for letter, count in histogram.items():
                    posting = postings.get(letter)
                    if posting is None:
                        posting = postings[letter] = _Posting(
                            id_array(), id_array(), dirty=True
                        )
                    # doc_ids arrive in ascending order: plain appends.
                    posting.ids.append(doc_id)
                    posting.counts.append(count)
            self._execute("DELETE FROM postings")
            self._postings = postings
            self._letters = set(postings)
            self._flush_postings(set(postings))
            return documents

        documents = self._transact(work)
        self._doc_cache.clear()
        return {
            "documents": documents,
            "letters": len(self._letters),
            "verified": verify,
            "issues": issues,
        }

    def verify(self) -> list[str]:
        """Cross-check stored rows against recomputation (read only).

        Returns a list of human-readable issue descriptions: content-hash
        mismatches, stale artifacts, and posting lists that diverge from
        the document histograms.  An empty list means the store is
        internally consistent.
        """
        issues: list[str] = []
        expected: dict[str, dict[int, int]] = {}
        rows = self._execute(
            "SELECT doc_id, hash, length, text, runs_letters, runs_lengths, "
            "histogram FROM documents ORDER BY doc_id"
        ).fetchall()
        for doc_id, digest, length, text, letters, lengths, blob in rows:
            _runs, histogram, fresh_letters, fresh_lengths, fresh_blob = (
                _artifacts(text)
            )
            if digest != content_hash(text):
                issues.append(f"doc {doc_id}: stored hash does not match text")
            if length != len(text):
                issues.append(f"doc {doc_id}: stored length {length} != {len(text)}")
            if letters != fresh_letters or bytes(lengths) != fresh_lengths:
                issues.append(f"doc {doc_id}: stale run-length encoding")
            if blob != fresh_blob:
                issues.append(f"doc {doc_id}: stale histogram")
            for letter, count in histogram.items():
                expected.setdefault(letter, {})[doc_id] = count
        stored: dict[str, dict[int, int]] = {}
        for letter, ids_blob, counts_blob in self._execute(
            "SELECT letter, ids, counts FROM postings"
        ):
            ids = unpack_ids(ids_blob)
            counts = unpack_ids(counts_blob)
            stored[letter] = dict(zip(ids, counts))
            if list(ids) != sorted(ids):
                issues.append(f"posting {letter!r}: ids not sorted")
        for letter in expected.keys() | stored.keys():
            if expected.get(letter, {}) != stored.get(letter, {}):
                issues.append(
                    f"posting {letter!r}: diverges from document histograms"
                )
        return issues

    # -- posting-list plumbing ----------------------------------------------

    def _posting_for_write(self, letter: str) -> _Posting:
        posting = self._load_posting(letter)
        if posting is None:
            posting = self._postings[letter] = _Posting(
                id_array(), id_array(), dirty=True
            )
            self._letters.add(letter)
        return posting

    def _load_posting(self, letter: str) -> "_Posting | None":
        posting = self._postings.get(letter)
        if posting is None and letter in self._letters:
            row = self._execute(
                "SELECT ids, counts FROM postings WHERE letter = ?", (letter,)
            ).fetchone()
            if row is not None:
                posting = self._postings[letter] = _Posting(
                    unpack_ids(row[0]), unpack_ids(row[1])
                )
        return posting

    def _flush_postings(self, letters: Iterable[str]) -> None:
        """Persist dirty postings (caller holds the transaction)."""
        for letter in letters:
            posting = self._postings.get(letter)
            if posting is None or not posting.dirty:
                continue
            if not posting.ids:
                self._execute(
                    "DELETE FROM postings WHERE letter = ?", (letter,)
                )
                del self._postings[letter]
                self._letters.discard(letter)
                continue
            self._execute(
                "INSERT INTO postings (letter, n, ids, counts) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(letter) DO UPDATE SET n = excluded.n, "
                "ids = excluded.ids, counts = excluded.counts",
                (
                    letter,
                    len(posting.ids),
                    pack_ids(posting.ids),
                    pack_ids(posting.counts),
                ),
            )
            posting.dirty = False

    # -- index views used by the planner ------------------------------------

    def letters(self) -> frozenset[str]:
        """Every letter occurring in at least one stored document."""
        return frozenset(self._letters)

    def posting(self, letter: str) -> "tuple | None":
        """``(ids, counts)`` sorted parallel arrays, or ``None`` when no
        stored document contains ``letter``."""
        posting = self._load_posting(letter)
        if posting is None:
            return None
        return posting.ids, posting.counts

    def all_ids(self):
        """Every document id, sorted ascending."""
        return id_array(
            row[0]
            for row in self._execute(
                "SELECT doc_id FROM documents ORDER BY doc_id"
            )
        )

    def ids_in_length_window(self, minimum: int, maximum: "int | None"):
        """Document ids with length in ``[minimum, maximum]`` (sorted) —
        a range scan of the indexed ``length`` column."""
        if maximum is None:
            rows = self._execute(
                "SELECT doc_id FROM documents WHERE length >= ? "
                "ORDER BY doc_id",
                (minimum,),
            )
        else:
            rows = self._execute(
                "SELECT doc_id FROM documents WHERE length BETWEEN ? AND ? "
                "ORDER BY doc_id",
                (minimum, maximum),
            )
        return id_array(row[0] for row in rows)

    # -- query side ----------------------------------------------------------

    def candidates(self, prefilter, within: "Iterable[int] | None" = None) -> IndexPlan:
        """The index plan for ``prefilter``: posting-list intersections,
        range scans, and the sorted candidate ids they produce — a
        superset of every document with a nonempty result."""
        return plan_candidates(self, prefilter, within)

    def survivors(
        self, prefilter, within: "Iterable[int] | None" = None
    ) -> tuple[IndexPlan, list[int]]:
        """Index candidates narrowed by the residual profile check.

        Runs :meth:`candidates`, then
        :meth:`~repro.va.prefilter.VAPrefilter.admits_profile` over the
        stored ``(length, histogram)`` rows — no document text is touched
        — returning exactly the ids the list-walk prefilter would keep.
        """
        plan = self.candidates(prefilter, within)
        kept = [
            doc_id
            for doc_id, length, histogram in self._profiles(plan.doc_ids)
            if prefilter.admits_profile(length, histogram)
        ]
        return plan, kept

    def _profiles(self, doc_ids) -> Iterator[tuple[int, int, dict]]:
        """``(doc_id, length, histogram)`` for each id, in input order."""
        for chunk_start in range(0, len(doc_ids), _IN_CHUNK):
            chunk = list(doc_ids[chunk_start : chunk_start + _IN_CHUNK])
            marks = ",".join("?" * len(chunk))
            rows = {
                row[0]: row
                for row in self._execute(
                    f"SELECT doc_id, length, histogram FROM documents "
                    f"WHERE doc_id IN ({marks})",
                    chunk,
                )
            }
            for doc_id in chunk:
                row = rows.get(doc_id)
                if row is not None:
                    yield row[0], row[1], json.loads(row[2])

    # -- document access ------------------------------------------------------

    def document(self, doc_id: int) -> Document:
        """The hydrated document: text plus pre-seeded ``runs()`` /
        ``letter_counts()`` caches, LRU-cached per open handle so warm
        re-queries reuse one object (and its per-alphabet encodings)."""
        cached = self._doc_cache.get(doc_id)
        if cached is not None:
            self._doc_cache.move_to_end(doc_id)
            self.hydrations += 1
            return cached
        row = self._execute(
            "SELECT text, runs_letters, runs_lengths, histogram "
            "FROM documents WHERE doc_id = ?",
            (doc_id,),
        ).fetchone()
        if row is None:
            raise CorpusError(f"no document with id {doc_id}")
        text, letters, lengths, histogram = row
        doc = Document.from_cached(
            text,
            runs=_runs_from_stored(letters, lengths),
            letter_counts=json.loads(histogram),
        )
        self.hydrations += 1
        if self._doc_cache_size > 0:
            self._doc_cache[doc_id] = doc
            while len(self._doc_cache) > self._doc_cache_size:
                self._doc_cache.popitem(last=False)
        return doc

    def text(self, doc_id: int) -> str:
        row = self._execute(
            "SELECT text FROM documents WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        if row is None:
            raise CorpusError(f"no document with id {doc_id}")
        return row[0]

    def contains_text(self, text: "str | Document") -> "int | None":
        """The id of the stored document with this exact content, if any."""
        if isinstance(text, Document):
            text = text.text
        row = self._execute(
            "SELECT doc_id FROM documents WHERE hash = ?",
            (content_hash(text),),
        ).fetchone()
        return row[0] if row is not None else None

    def doc_ids(self) -> list[int]:
        """All document ids, ascending — the store's canonical order."""
        return list(self.all_ids())

    def select(self, doc_ids: Iterable[int]) -> CorpusSelection:
        """A fixed subset/ordering of this store for the batch APIs."""
        return CorpusSelection(self, doc_ids)

    def __len__(self) -> int:
        return self._execute("SELECT COUNT(*) FROM documents").fetchone()[0]

    def __iter__(self) -> Iterator[int]:
        return iter(self.doc_ids())

    def __contains__(self, doc_id: object) -> bool:
        if not isinstance(doc_id, int):
            return False
        row = self._execute(
            "SELECT 1 FROM documents WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        return row is not None

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """A summary for ``corpus stats``: sizes, letters, dedup counters."""
        documents, total_letters, min_len, max_len = self._execute(
            "SELECT COUNT(*), COALESCE(SUM(length), 0), MIN(length), "
            "MAX(length) FROM documents"
        ).fetchone()
        top = self._execute(
            "SELECT letter, n FROM postings ORDER BY n DESC, letter LIMIT 5"
        ).fetchall()
        return {
            "path": str(self.path),
            "schema_version": SCHEMA_VERSION,
            "documents": documents,
            "total_letters": total_letters,
            "min_length": min_len,
            "max_length": max_len,
            "distinct_letters": len(self._letters),
            "largest_postings": [
                {"letter": letter, "documents": n} for letter, n in top
            ],
            "dedup_hits": self.dedup_hits,
            "hydrations": self.hydrations,
            "store_bytes": self.path.stat().st_size if self.path.exists() else 0,
        }
