"""Index-side query planning: posting lists → candidate document ids.

A :class:`~repro.corpus.store.CorpusStore` keeps, per letter, a *posting
list* — the sorted array of ids of every document containing that letter,
with a parallel array of per-document occurrence counts.  This module
compiles the necessary document conditions a
:class:`~repro.va.prefilter.VAPrefilter` derives from a compiled automaton
(alphabet closure, length window, must-occur letter bounds) into sorted-set
operations over those arrays:

* **must-occur bounds** — each required letter contributes its posting
  list, filtered down to documents with at least the required count; the
  lists intersect smallest-first, so the candidate set never grows beyond
  the rarest required letter's posting list (sublinear in the corpus when
  any required letter is rare);
* **length window** — with no required letter to seed from, a range scan
  of the store's indexed ``length`` column seeds the candidates instead;
* **alphabet closure** — a full-scan seed subtracts the posting list of
  every stored letter outside the query alphabet (documents containing a
  foreign letter provably cannot match).  Posting- and length-seeded plans
  skip the subtraction: the store's residual
  :meth:`~repro.va.prefilter.VAPrefilter.admits_profile` scan over the
  (already small) candidate set finishes the job more cheaply.

Every operation only ever *removes* documents that fail a necessary
condition, so the resulting candidate set is a **superset** of the
documents with a nonempty result — the index never drops a match (pinned
by a hypothesis property in ``tests/corpus/test_store.py``).  Candidates
may still be empty-resulted; the residual profile check plus the ordinary
evaluation of survivors make the final answers byte-identical to the
list-walk path.

Id arrays are plain :class:`array.array` unsigned 32-bit arrays (the
persisted posting-blob format), with transparent numpy fast paths for the
set operations when numpy is installed — the store works unchanged, just
slower, without the ``[fast]`` extra.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..va.prefilter import VAPrefilter
    from .store import CorpusStore

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as NUMPY
except ImportError:  # pragma: no cover
    NUMPY = None

#: The array typecode of id/count arrays — unsigned, 4 bytes on every
#: CPython platform in practice (guarded below for exotic ABIs).
ID_TYPECODE = "I" if array("I").itemsize == 4 else "L"
assert array(ID_TYPECODE).itemsize == 4, "no 4-byte unsigned array type"

_LITTLE_ENDIAN = array("H", b"\x01\x00")[0] == 1


def id_array(values: Iterable[int] = ()) -> array:
    """A new id array (sorted ids are the caller's contract)."""
    return array(ID_TYPECODE, values)


def pack_ids(ids: array) -> bytes:
    """``ids`` as little-endian uint32 bytes (the posting blob format)."""
    if _LITTLE_ENDIAN:
        return ids.tobytes()
    swapped = array(ID_TYPECODE, ids)
    swapped.byteswap()
    return swapped.tobytes()


def unpack_ids(blob: bytes) -> array:
    """The inverse of :func:`pack_ids`."""
    ids = array(ID_TYPECODE)
    ids.frombytes(blob)
    if not _LITTLE_ENDIAN:
        ids.byteswap()
    return ids


def _from_numpy(values) -> array:
    """A numpy uint32 vector as an id array (native order on both sides)."""
    out = id_array()
    out.frombytes(values.astype(NUMPY.uint32, copy=False).tobytes())
    return out


def intersect_sorted(a: array, b: array) -> array:
    """The intersection of two sorted id arrays (sorted)."""
    if not a or not b:
        return id_array()
    if NUMPY is not None:
        left = NUMPY.frombuffer(a, dtype=NUMPY.uint32)
        right = NUMPY.frombuffer(b, dtype=NUMPY.uint32)
        return _from_numpy(NUMPY.intersect1d(left, right, assume_unique=True))
    if len(a) > len(b):
        a, b = b, a
    out = id_array()
    append = out.append
    position = 0
    n = len(b)
    for value in a:
        position = bisect_left(b, value, position)
        if position == n:
            break
        if b[position] == value:
            append(value)
    return out


def subtract_sorted(a: array, b: array) -> array:
    """``a`` minus ``b`` for sorted id arrays (sorted)."""
    if not a or not b:
        return a
    if NUMPY is not None:
        left = NUMPY.frombuffer(a, dtype=NUMPY.uint32)
        right = NUMPY.frombuffer(b, dtype=NUMPY.uint32)
        return _from_numpy(left[~NUMPY.isin(left, right, assume_unique=True)])
    out = id_array()
    append = out.append
    position = 0
    n = len(b)
    for value in a:
        position = bisect_left(b, value, position)
        if position == n or b[position] != value:
            append(value)
    return out


def filter_min_count(ids: array, counts: array, bound: int) -> array:
    """The ids whose parallel count is at least ``bound`` (sorted)."""
    if bound <= 1:
        return ids
    if NUMPY is not None:
        id_view = NUMPY.frombuffer(ids, dtype=NUMPY.uint32)
        count_view = NUMPY.frombuffer(counts, dtype=NUMPY.uint32)
        return _from_numpy(id_view[count_view >= bound])
    return id_array(
        doc_id for doc_id, count in zip(ids, counts) if count >= bound
    )


class IndexOp:
    """One executed index operation, for plans/explain output."""

    __slots__ = ("kind", "detail", "out_size")

    def __init__(self, kind: str, detail: str, out_size: int):
        self.kind = kind
        self.detail = detail
        self.out_size = out_size

    def __repr__(self) -> str:
        return f"IndexOp({self.kind}: {self.detail} → {self.out_size})"


class IndexPlan:
    """The executed index plan: the operations and the candidate ids.

    Attributes:
        doc_ids: the sorted candidate document ids — a superset of every
            document with a nonempty result.
        ops: the :class:`IndexOp` sequence that produced them.
        total: documents in scope before any index operation.
    """

    __slots__ = ("doc_ids", "ops", "total")

    def __init__(self, doc_ids: array, ops: list[IndexOp], total: int):
        self.doc_ids = doc_ids
        self.ops = ops
        self.total = total

    def describe(self) -> str:
        """One line per index operation, for ``corpus query --explain``."""
        lines = [f"index plan over {self.total} document(s):"]
        for op in self.ops:
            lines.append(f"  {op.kind:<13} {op.detail:<28} → {op.out_size}")
        lines.append(
            f"  candidates    {len(self.doc_ids)} of {self.total} "
            f"({_percent(len(self.doc_ids), self.total)})"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"IndexPlan({len(self.doc_ids)}/{self.total} candidates)"


def _percent(part: int, whole: int) -> str:
    if not whole:
        return "0%"
    return f"{100.0 * part / whole:.1f}%"


def plan_candidates(
    store: "CorpusStore",
    prefilter: "VAPrefilter",
    within: "Iterable[int] | None" = None,
) -> IndexPlan:
    """Compile ``prefilter`` into index operations and execute them.

    ``within`` restricts the plan to a subset of document ids (a
    :class:`~repro.corpus.store.CorpusSelection`); the final candidate set
    intersects it.
    """
    total = len(store)
    ops: list[IndexOp] = []

    def empty_plan() -> IndexPlan:
        return IndexPlan(id_array(), ops, total)

    if prefilter.empty:
        ops.append(IndexOp("empty-query", "language is empty", 0))
        return empty_plan()

    # Must-occur letters seed the candidates, rarest posting first.
    postings = []
    for letter, bound in prefilter.required:
        posting = store.posting(letter)
        if posting is None:
            ops.append(IndexOp("posting-miss", f"no document has {letter!r}", 0))
            return empty_plan()
        postings.append((len(posting[0]), letter, bound, posting))
    postings.sort(key=lambda entry: entry[0])

    candidates: "array | None" = None
    for _, letter, bound, (ids, counts) in postings:
        hits = filter_min_count(ids, counts, bound)
        detail = f"{letter!r} ≥ {bound}" if bound > 1 else f"{letter!r}"
        if candidates is None:
            candidates = hits
            ops.append(IndexOp("posting-seed", detail, len(candidates)))
        else:
            candidates = intersect_sorted(candidates, hits)
            ops.append(IndexOp("posting-join", detail, len(candidates)))
        if not candidates:
            return empty_plan()

    if candidates is None and (
        prefilter.min_length > 0 or prefilter.max_length is not None
    ):
        candidates = store.ids_in_length_window(
            prefilter.min_length, prefilter.max_length
        )
        window = (
            f"[{prefilter.min_length}, {prefilter.max_length}]"
            if prefilter.max_length is not None
            else f"≥ {prefilter.min_length}"
        )
        ops.append(IndexOp("length-scan", f"length {window}", len(candidates)))

    if candidates is None:
        # No positive condition to seed from: enforce alphabet closure by
        # subtracting every foreign letter's posting list from a full scan.
        candidates = store.all_ids()
        ops.append(IndexOp("full-scan", "no seeding condition", len(candidates)))
        closure = prefilter.alphabet.ids
        for letter in sorted(store.letters()):
            if letter in closure:
                continue
            posting = store.posting(letter)
            if posting is None:  # pragma: no cover - letters() ⊆ postings
                continue
            candidates = subtract_sorted(candidates, posting[0])
            ops.append(
                IndexOp("subtract", f"documents with foreign {letter!r}",
                        len(candidates))
            )
            if not candidates:
                return empty_plan()

    if within is not None:
        scope = id_array(sorted(set(within)))
        candidates = intersect_sorted(candidates, scope)
        ops.append(
            IndexOp("restrict", f"selection of {len(scope)}", len(candidates))
        )

    return IndexPlan(candidates, ops, total)
