"""The persistent corpus layer: ingest once, query the index.

Layering: ``core`` → ``regex``/``va`` → **corpus** → ``engine``.  The
corpus layer turns ad-hoc document lists into a standing, indexed corpus:

* :class:`CorpusStore` (:mod:`repro.corpus.store`) — a single sqlite file
  persisting document texts (content-hash deduped), their derived
  artifacts (letter histogram, run-length encoding), and per-letter
  posting lists, reloadable across processes;
* :mod:`repro.corpus.index` — the query planner compiling a
  :class:`~repro.va.prefilter.VAPrefilter` into posting-list
  intersections, length range scans, and foreign-letter subtractions that
  yield candidate document ids in sublinear time;
* the engine's batch APIs (:meth:`repro.engine.Engine.evaluate_many`,
  :meth:`~repro.engine.Engine.is_nonempty_many`,
  :meth:`~repro.engine.Engine.enumerate_stream`) accept a store or a
  :class:`CorpusSelection` and evaluate only the index survivors,
  hydrating cached artifacts instead of recomputing them.
"""

from .index import IndexOp, IndexPlan, plan_candidates
from .store import CorpusError, CorpusSelection, CorpusStore, content_hash

__all__ = [
    "CorpusError",
    "CorpusSelection",
    "CorpusStore",
    "IndexOp",
    "IndexPlan",
    "content_hash",
    "plan_candidates",
]
