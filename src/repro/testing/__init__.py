"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
behind the robustness suite (and the ``REPRO_FAULTS=ci`` CI leg): sqlite
error injection, shard-crash injection, clock skew, and slow-step hooks,
all seeded and bounded so every failure path is exercisable from a plain
pytest run.
"""

from .faults import (
    FaultPlan,
    activate,
    active_plan,
    deactivate,
    injected,
    install_from_env,
    plan_from_env,
)

__all__ = [
    "FaultPlan",
    "activate",
    "active_plan",
    "deactivate",
    "injected",
    "install_from_env",
    "plan_from_env",
]
