"""Deterministic, seedable fault injection for the robustness suite.

Production code never fails on demand, so the failure paths added by the
execution-guard work (store retry-with-backoff, shard reaping, tail
restarts, deadline handling) would otherwise ship untested.  This module
plants cheap *fault sites* at the few places failures really originate:

* ``sqlite_error(site)`` — raise ``sqlite3.OperationalError("database is
  locked")`` before a store call, exercising the bounded retry policy;
* ``shard_crash(site)`` — hard-kill a worker process (``os._exit``),
  exercising the ``BrokenProcessPool`` reaping in
  :mod:`repro.engine.parallel`;
* ``clock_skew`` — a constant added to the guard's monotonic clock, so
  deadline arithmetic is testable without sleeping;
* ``slow_step(site)`` — a sleep injected at guard checkpoints, making
  "evaluation is slower than the deadline" reproducible.

Zero cost when off: every site guards on ``faults.ACTIVE is None`` (one
global load and an identity test).  Deterministic when on: each site draws
from its own ``random.Random(f"{seed}:{site}")`` stream, so a fixed call
sequence fires the same faults on every run, and ``max_faults_per_site``
bounds the blast radius (rate ``1.0`` with a cap of ``2`` means "exactly
the first two calls fail" — the shape the retry tests pin).

``REPRO_FAULTS=ci`` selects the low-rate CI profile
(:data:`CI_PROFILE`): injection rates small enough that every fault is
absorbed by a retry path, so the whole suite must stay green *while*
failures are happening.  Worker processes re-read the environment
(:func:`install_from_env`), so the plan survives spawn-based pools too.
"""

from __future__ import annotations

import os
import random
import sqlite3
import time
from dataclasses import dataclass, field


@dataclass
class FaultPlan:
    """One experiment's fault configuration (see module docstring).

    Rates are per-call probabilities in ``[0, 1]``; ``1.0`` fires on
    every call (until ``max_faults_per_site``, when set).  ``clock_skew``
    (seconds) shifts :func:`clock` forward; ``slow_step_seconds`` sleeps
    at every guard checkpoint that consults :func:`slow_step`.
    """

    seed: int = 0
    sqlite_error_rate: float = 0.0
    shard_crash_rate: float = 0.0
    clock_skew: float = 0.0
    slow_step_seconds: float = 0.0
    max_faults_per_site: "int | None" = None
    _rngs: dict = field(default_factory=dict, repr=False)
    _fired: dict = field(default_factory=dict, repr=False)

    def should_fire(self, site: str, rate: float) -> bool:
        """Deterministic per-site draw, honouring the per-site cap."""
        if rate <= 0.0:
            return False
        cap = self.max_faults_per_site
        if cap is not None and self._fired.get(site, 0) >= cap:
            return False
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
        if rng.random() >= rate:
            return False
        self._fired[site] = self._fired.get(site, 0) + 1
        return True

    def fired(self, site: str) -> int:
        """How many times ``site`` has fired under this plan."""
        return self._fired.get(site, 0)


#: The low-rate deterministic profile of the ``REPRO_FAULTS=ci`` leg:
#: every injected fault must be absorbed by a retry/restart path, so the
#: full suite stays green while failures are happening underneath it.
CI_PROFILE = dict(
    seed=20190610,  # PODS 2019
    sqlite_error_rate=0.02,
    shard_crash_rate=0.05,
    max_faults_per_site=2,
)

#: The active plan, or ``None`` (the production state).  Sites test this
#: with one global load, so disabled injection costs nothing measurable.
ACTIVE: "FaultPlan | None" = None


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide active plan."""
    global ACTIVE
    ACTIVE = plan
    return plan


def deactivate() -> None:
    """Return to the production state (no injection)."""
    global ACTIVE
    ACTIVE = None


def active_plan() -> "FaultPlan | None":
    return ACTIVE


class injected:
    """``with injected(FaultPlan(...)):`` — scoped activation for tests."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._previous: "FaultPlan | None" = None

    def __enter__(self) -> FaultPlan:
        global ACTIVE
        self._previous = ACTIVE
        ACTIVE = self.plan
        return self.plan

    def __exit__(self, *exc) -> None:
        global ACTIVE
        ACTIVE = self._previous


def plan_from_env(value: "str | None" = None) -> "FaultPlan | None":
    """The plan named by ``REPRO_FAULTS`` (or ``value``), if any.

    ``ci`` selects :data:`CI_PROFILE`; ``off``/empty/unset means no plan.
    Anything else is read as an integer seed for the CI rates (handy for
    local fuzzing: ``REPRO_FAULTS=7 pytest``).
    """
    if value is None:
        value = os.environ.get("REPRO_FAULTS", "")
    value = value.strip()
    if not value or value.lower() == "off":
        return None
    if value.lower() == "ci":
        return FaultPlan(**CI_PROFILE)
    try:
        seed = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_FAULTS={value!r} is not 'ci', 'off', or an integer seed"
        ) from None
    return FaultPlan(**{**CI_PROFILE, "seed": seed})


def install_from_env() -> "FaultPlan | None":
    """Activate the environment's plan if none is active yet — how worker
    processes (which may not inherit the parent's in-memory plan under
    spawn) pick up the ``REPRO_FAULTS`` profile."""
    global ACTIVE
    if ACTIVE is None:
        plan = plan_from_env()
        if plan is not None:
            ACTIVE = plan
    return ACTIVE


# -- the fault sites ----------------------------------------------------------


def sqlite_error(site: str) -> None:
    """Raise a transient-looking sqlite error at a store call site."""
    plan = ACTIVE
    if plan is not None and plan.should_fire(site, plan.sqlite_error_rate):
        raise sqlite3.OperationalError("database is locked (injected)")


def shard_crash(site: str) -> None:
    """Hard-kill the current process at a worker call site — the shape of
    an OOM-killed or segfaulted shard (no exception crosses the pipe, the
    parent sees ``BrokenProcessPool``)."""
    plan = ACTIVE
    if plan is not None and plan.should_fire(site, plan.shard_crash_rate):
        os._exit(17)


def clock() -> float:
    """The guard's monotonic clock, shifted by the plan's skew (if any) —
    lets deadline tests trip instantly without sleeping."""
    plan = ACTIVE
    if plan is not None and plan.clock_skew:
        return time.monotonic() + plan.clock_skew
    return time.monotonic()


def slow_step(site: str) -> None:
    """Sleep at a guard checkpoint (makes slow evaluation reproducible)."""
    plan = ACTIVE
    if plan is not None and plan.slow_step_seconds:
        time.sleep(plan.slow_step_seconds)
