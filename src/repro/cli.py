"""Command-line interface: extract spans from documents with regex
formulas.

Usage::

    python -m repro.cli extract 'x{[a-z]+}@y{[a-z.]+}' --text 'ab@cd.e'
    python -m repro.cli extract "$(cat formula.rgx)" --file corpus.txt --json
    python -m repro.cli batch 'x{[ab]+}' --file docs.txt --stats
    python -m repro.cli classify 'x{a}(y{b}|ε)'
    python -m repro.cli explain 'x{(a|b)+}' --union 'x{a+}' --project x
    python -m repro.cli dot 'x{a*}b' > automaton.dot

Subcommands:

* ``extract``  — evaluate a formula on a document (table or JSON output);
* ``batch``    — evaluate a formula on many documents (one per line)
  through the execution engine, sharing all compiled state;
* ``tail``     — follow a growing file (``tail -f`` style) and stream
  *new* matches as appends complete them, through the incremental
  :class:`~repro.engine.tail.TailSession` runtime (each poll costs
  O(appended bytes), not O(file)); ``--interval`` sets the poll period,
  ``--from-end`` suppresses matches already present at startup,
  ``--max-polls`` bounds the run (handy in scripts), and truncation
  (logrotate) restarts the session cleanly;
* ``corpus``   — the persistent corpus store: ``corpus ingest`` loads
  documents (one per line) into a content-hash-deduped sqlite store with
  cached artifacts and posting lists, ``corpus query`` evaluates a formula
  against the store through the index (``--explain`` prints the posting
  ops), ``corpus stats`` reports sizes, and ``corpus rebuild [--verify]``
  recomputes every artifact from the raw texts;
* ``explain``  — build an RA query from formulas (``--union``/``--join``/
  ``--difference`` fold further formulas onto the first; ``--project``
  wraps the result) and print the compiled plan: the physical tree, the
  optimized logical plan, and which rewrite rules fired;
* ``classify`` — report the formula's syntactic classes (§2.2/§3.2/§4.2);
* ``dot``      — compile to a vset-automaton and emit Graphviz DOT.

``extract`` and ``batch`` run through :class:`repro.engine.Engine`;
``--backend`` picks the enumeration backend (``indexed`` by default; the
numpy-backed ``vectorized`` backend needs the ``[fast]`` extra and exits
with an install hint when numpy is missing), ``--limit K`` stops after K
mappings per document (short-circuiting graph construction on the lazy
indexed backend), ``--no-optimize`` disables the logical-plan optimizer, ``--no-prefilter``
disables the VA-derived document prefilter (by default provably
non-matching documents are rejected in O(1) from their letter histogram),
``batch --workers N`` shards the surviving corpus across N worker
processes, and ``--stats`` prints the engine's cache/compile/enumerate
statistics to stderr (including ``prefilter rejects``, the run-compressed
kernel's ``kernel run hits``, and the vectorized backend's ``frontier
misses``).
"""

from __future__ import annotations

import argparse
import json
import sys

from .algebra.planner import RAQuery
from .algebra.ra_tree import Difference, Instantiation, Join, Leaf, Project, UnionNode
from .core.document import Document
from .core.errors import SpannerError
from .core.relation import SpanRelation
from .engine import BACKENDS, DEFAULT_BACKEND, Engine
from .io.dot import va_to_dot
from .io.serialize import dumps_relation
from .regex.parser import parse
from .regex.properties import classify
from .va.compile_regex import regex_to_va
from .va.operations import trim


def _read_document(args: argparse.Namespace) -> Document:
    if args.text is not None:
        return Document(args.text)
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            return Document(handle.read())
    return Document(sys.stdin.read())


def _compile(args: argparse.Namespace):
    return trim(regex_to_va(parse(args.formula, alphabet=args.alphabet)))


def _print_stats(engine: Engine) -> None:
    print("── engine statistics ──", file=sys.stderr)
    print(engine.stats.summary(), file=sys.stderr)


def _make_guard(args: argparse.Namespace):
    """The :class:`~repro.engine.ExecutionGuard` requested by
    ``--deadline``/``--budget``, or ``None`` when neither is set."""
    if args.deadline is None and args.budget is None:
        return None
    from .engine import ExecutionGuard

    return ExecutionGuard(
        deadline=args.deadline,
        budget=args.budget,
        on_budget="partial" if args.on_budget == "partial" else "raise",
    )


def _note_truncation(guard) -> None:
    """In ``--on-budget partial`` mode, tell stderr what was cut short."""
    if guard is not None and guard.truncated is not None:
        print(
            f"note: result truncated ({guard.truncated}); "
            f"shown mappings are a consistent prefix",
            file=sys.stderr,
        )


def _cmd_extract(args: argparse.Namespace) -> int:
    document = _read_document(args)
    engine = Engine(
        backend=args.backend,
        optimize=not args.no_optimize,
        prefilter=not args.no_prefilter,
        enumeration_block_size=args.enum_block,
    )
    guard = _make_guard(args)
    relation = SpanRelation(
        engine.enumerate(_compile(args), document, limit=args.limit, guard=guard)
    )
    if guard is not None and guard.truncated is not None:
        relation = SpanRelation(relation, truncated=True)
    _note_truncation(guard)
    if args.json:
        print(dumps_relation(relation, indent=2))
    else:
        print(relation.to_table(document if args.show_content else None))
        print(f"\n{len(relation)} mapping(s)")
    if args.stats:
        _print_stats(engine)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    engine = Engine(
        backend=args.backend,
        document_cache_size=args.cache_documents,
        optimize=not args.no_optimize,
        prefilter=not args.no_prefilter,
        enumeration_block_size=args.enum_block,
    )
    va = _compile(args)
    guard = _make_guard(args)
    relations = engine.evaluate_many(
        va, lines, limit=args.limit, workers=args.workers, guard=guard
    )
    _note_truncation(guard)
    if args.json:
        for relation in relations:
            print(dumps_relation(relation))
    else:
        total = 0
        for index, (line, relation) in enumerate(zip(lines, relations)):
            total += len(relation)
            preview = line if len(line) <= 32 else line[:29] + "..."
            print(f"doc {index:4d}  {len(relation):6d} mapping(s)  {preview}")
        print(f"\n{len(lines)} document(s), {total} mapping(s)")
    if args.stats:
        _print_stats(engine)
    return 0


def _read_corpus_lines(args: argparse.Namespace) -> list[str]:
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            return handle.read().splitlines()
    return sys.stdin.read().splitlines()


def _open_store(args: argparse.Namespace):
    from .corpus import CorpusStore

    return CorpusStore(args.store)


def _cmd_corpus_ingest(args: argparse.Namespace) -> int:
    lines = _read_corpus_lines(args)
    with _open_store(args) as store:
        before = len(store)
        store.add_many(lines)
        added = len(store) - before
        print(
            f"{len(lines)} line(s) → {added} new document(s), "
            f"{store.dedup_hits} deduplicated"
        )
        print(f"store: {store.path} ({len(store)} document(s))")
    return 0


def _cmd_corpus_stats(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"store             {stats['path']}")
    print(f"documents         {stats['documents']}")
    print(f"total letters     {stats['total_letters']}")
    if stats["documents"]:
        print(
            f"length range      [{stats['min_length']}, {stats['max_length']}]"
        )
    print(f"distinct letters  {stats['distinct_letters']}")
    for entry in stats["largest_postings"]:
        print(
            f"posting           {entry['letter']!r} in "
            f"{entry['documents']} document(s)"
        )
    print(f"store bytes       {stats['store_bytes']}")
    return 0


def _cmd_corpus_query(args: argparse.Namespace) -> int:
    engine = Engine(
        backend=args.backend,
        optimize=not args.no_optimize,
        prefilter=not args.no_prefilter,
        enumeration_block_size=args.enum_block,
    )
    va = _compile(args)
    with _open_store(args) as store:
        if args.explain:
            prefilter = engine.prepare(va).prefilter()
            if prefilter is None:
                print("index plan: none (prefilter disabled or unavailable)")
            else:
                print(store.candidates(prefilter).describe())
            print()
        doc_ids = store.doc_ids()
        guard = _make_guard(args)
        relations = engine.evaluate_many(
            va, store, limit=args.limit, workers=args.workers, guard=guard
        )
        _note_truncation(guard)
        total = 0
        matching = 0
        for doc_id, relation in zip(doc_ids, relations):
            if not len(relation):
                continue
            matching += 1
            total += len(relation)
            if args.json:
                print(
                    json.dumps(
                        {
                            "doc_id": doc_id,
                            "relation": json.loads(dumps_relation(relation)),
                        },
                        sort_keys=True,
                    )
                )
            else:
                text = store.text(doc_id)
                preview = text if len(text) <= 32 else text[:29] + "..."
                print(f"doc {doc_id:4d}  {len(relation):6d} mapping(s)  {preview}")
        if not args.json:
            print(
                f"\n{len(doc_ids)} document(s), {matching} matching, "
                f"{total} mapping(s)"
            )
    if args.stats:
        _print_stats(engine)
    return 0


def _cmd_corpus_rebuild(args: argparse.Namespace) -> int:
    with _open_store(args) as store:
        report = store.rebuild(verify=args.verify)
    for issue in report["issues"]:
        print(f"issue: {issue}", file=sys.stderr)
    verified = " (verified)" if report["verified"] else ""
    print(
        f"rebuilt {report['documents']} document(s), "
        f"{report['letters']} posting list(s), "
        f"{len(report['issues'])} issue(s) repaired{verified}"
    )
    return 0


#: Bound on consecutive session restarts caused by undecodable bytes
#: before ``tail`` gives up — a persistently non-UTF-8 file should be a
#: clear error, not an infinite restart loop.
_TAIL_DECODE_RESTARTS = 8


def _cmd_tail(args: argparse.Namespace) -> int:
    """Follow a growing file, streaming new mappings with bounded delay.

    The incremental runtime end to end: one
    :class:`~repro.engine.tail.TailSession` accumulates the file's bytes
    and re-evaluates only over the appended region, so each poll costs
    O(appended) — tailing a large log never re-walks it.  Partial UTF-8
    sequences at the read boundary are held back by an incremental
    decoder.

    Degradation modes (the file is reopened on every poll, so none of
    them need the original handle to survive):

    * **Truncation / rotation to a shorter file** — the session resets
      and re-reads the new content from position 0;
    * **Replacement** (new inode at the same path, even same-length) —
      detected via ``fstat`` and treated as a truncation;
    * **Deletion** — polls keep counting while the path is missing; the
      session resumes if the file reappears, and if ``--max-polls``
      expires first the command exits 2 with a clear message (no
      traceback);
    * **Undecodable bytes** — the session restarts from position 0, at
      most ``_TAIL_DECODE_RESTARTS`` consecutive times before exiting 2.
    """
    import codecs
    import os
    import time as _time

    engine = Engine(
        backend=args.backend,
        optimize=not args.no_optimize,
        prefilter=not args.no_prefilter,
        enumeration_block_size=args.enum_block,
    )
    va = _compile(args)

    def emit(mappings) -> None:
        for mapping in mappings:
            if args.json:
                print(
                    json.dumps(
                        {str(var): [span.begin, span.end] for var, span in mapping.items()},
                        sort_keys=True,
                    ),
                    flush=True,
                )
            else:
                print(mapping, flush=True)

    session = engine.tail(va)
    decoder = codecs.getincrementaldecoder("utf-8")()
    offset = 0
    polls = 0
    missing_polls = 0
    decode_restarts = 0
    inode: "int | None" = None
    seeded = not args.from_end

    def restart() -> None:
        nonlocal offset, decoder
        offset = 0
        session.reset()
        decoder = codecs.getincrementaldecoder("utf-8")()

    try:
        while args.max_polls is None or polls < args.max_polls:
            try:
                handle = open(args.file, "rb")
            except FileNotFoundError:
                missing_polls += 1
                polls += 1
                if args.max_polls is not None and polls >= args.max_polls:
                    raise SpannerError(
                        f"tail: {args.file} is missing (deleted or rotated "
                        f"away) and --max-polls expired after "
                        f"{missing_polls} poll(s) without it"
                    ) from None
                _time.sleep(args.interval)
                continue
            with handle:
                stat = os.fstat(handle.fileno())
                if inode is not None and stat.st_ino != inode:
                    # Replaced at the same path: the accumulated document
                    # describes the old file, so restart on the new one.
                    restart()
                inode = stat.st_ino
                missing_polls = 0
                size = handle.seek(0, 2)
                if size < offset:
                    # Truncated (logrotate copytruncate): restart over
                    # the new, shorter content.
                    restart()
                handle.seek(offset)
                chunk = handle.read()
            offset += len(chunk)
            try:
                text = decoder.decode(chunk)
            except UnicodeDecodeError as error:
                decode_restarts += 1
                if decode_restarts >= _TAIL_DECODE_RESTARTS:
                    raise SpannerError(
                        f"tail: {args.file} is not valid UTF-8 ({error}); "
                        f"gave up after {decode_restarts} session restarts"
                    ) from None
                restart()
                polls += 1
                if args.max_polls is None or polls < args.max_polls:
                    _time.sleep(args.interval)
                continue
            decode_restarts = 0
            if not seeded:
                # Seed silently: existing content is evaluated so its
                # matches are marked seen, but nothing is printed for it.
                seeded = True
                session.reevaluate(text)
            elif text or session.reevaluations == 0:
                emit(session.reevaluate(text))
            polls += 1
            if args.max_polls is None or polls < args.max_polls:
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if args.stats:
        _print_stats(engine)
    return 0


def _build_ra_query(args: argparse.Namespace) -> RAQuery:
    """Fold the ``--union``/``--join``/``--difference`` formulas onto the
    positional one (in that group order), then wrap ``--project``."""
    spanners = {"f0": parse(args.formula, alphabet=args.alphabet)}
    tree = Leaf("f0")

    def fold(formulas, combine):
        nonlocal tree
        for text in formulas or ():
            name = f"f{len(spanners)}"
            spanners[name] = parse(text, alphabet=args.alphabet)
            tree = combine(tree, Leaf(name))

    fold(args.union, UnionNode)
    fold(args.join, Join)
    fold(args.difference, Difference)
    if args.project is not None:
        keep = frozenset(v.strip() for v in args.project.split(",") if v.strip())
        tree = Project(tree, keep)
    engine = Engine(optimize=not args.no_optimize)
    return RAQuery(tree, Instantiation(spanners=spanners), engine=engine)


def _cmd_explain(args: argparse.Namespace) -> int:
    query = _build_ra_query(args)
    print(f"query: {query.tree}")
    print(query.explain())
    if args.stats:
        _print_stats(query.engine)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    formula = parse(args.formula, alphabet=args.alphabet)
    print(f"formula:    {formula.to_text()}")
    print(f"variables:  {', '.join(sorted(formula.variables)) or '(none)'}")
    print(f"size:       {formula.size()} nodes")
    for name, value in classify(formula).items():
        print(f"{name + ':':24s}{'yes' if value else 'no'}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    formula = parse(args.formula, alphabet=args.alphabet)
    print(va_to_dot(trim(regex_to_va(formula))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Document-spanner extraction (PODS 2019 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("formula", help="regex formula, e.g. 'x{[a-z]+}@y{[a-z.]+}'")
        p.add_argument("--alphabet", help="explicit alphabet enabling '.'", default=None)

    def add_engine(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default=DEFAULT_BACKEND,
            help="enumeration backend (default: %(default)s)",
        )
        p.add_argument(
            "--stats", action="store_true", help="print engine statistics to stderr"
        )
        p.add_argument(
            "--limit",
            type=int,
            default=None,
            metavar="K",
            help="stop after K mappings per document (short-circuits the "
            "lazy backend's graph construction)",
        )
        p.add_argument(
            "--no-optimize",
            action="store_true",
            help="disable the logical-plan optimizer (compile the query "
            "exactly as written)",
        )
        p.add_argument(
            "--no-prefilter",
            action="store_true",
            help="disable the VA-derived document prefilter (run the full "
            "Boolean pass on every document)",
        )
        p.add_argument(
            "--enum-block",
            type=int,
            default=None,
            metavar="N",
            help="batched-enumeration block budget for the vectorized "
            "backend: fall back to the scalar walk past N distinct "
            "(letter, live mask) layer contexts; 0 disables batching "
            "(default: the backend's built-in budget)",
        )

    def add_guard(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock deadline for the whole evaluation; on expiry "
            "the command fails (or truncates, with --on-budget partial)",
        )
        p.add_argument(
            "--budget",
            default=None,
            metavar="SPEC",
            help="resource budget spec, e.g. "
            "'mappings=10k,states=1m,edge-rows=500k,cache-bytes=64m' "
            "(k/m/g suffixes; any subset of the four ceilings)",
        )
        p.add_argument(
            "--on-budget",
            choices=("error", "partial"),
            default="error",
            help="on a tripped deadline/budget: 'error' exits 2, "
            "'partial' prints the consistent prefix computed so far and "
            "notes the truncation on stderr (default: %(default)s)",
        )

    extract = sub.add_parser("extract", help="evaluate a formula on a document")
    add_common(extract)
    source = extract.add_mutually_exclusive_group()
    source.add_argument("--text", help="document given inline")
    source.add_argument("--file", help="document read from a file")
    extract.add_argument("--json", action="store_true", help="JSON output")
    extract.add_argument(
        "--show-content", action="store_true", help="show span contents in the table"
    )
    add_engine(extract)
    add_guard(extract)
    extract.set_defaults(func=_cmd_extract)

    batch = sub.add_parser(
        "batch", help="evaluate a formula on many documents (one per line)"
    )
    add_common(batch)
    batch.add_argument("--file", help="documents file, one per line (default: stdin)")
    batch.add_argument("--json", action="store_true", help="JSON-lines output")
    batch.add_argument(
        "--cache-documents",
        type=int,
        default=64,
        metavar="N",
        help="LRU size for repeated documents (default: %(default)s)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the batch across N worker processes (default: in-process)",
    )
    add_engine(batch)
    add_guard(batch)
    batch.set_defaults(func=_cmd_batch)

    tail = sub.add_parser(
        "tail",
        help="follow a growing file, streaming new matches incrementally",
    )
    add_common(tail)
    tail.add_argument(
        "--file", required=True, help="the file to follow (a growing log)"
    )
    tail.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval (default: %(default)s)",
    )
    tail.add_argument(
        "--max-polls",
        type=int,
        default=None,
        metavar="N",
        help="stop after N polls (default: follow until interrupted)",
    )
    tail.add_argument(
        "--from-end",
        action="store_true",
        help="seed on the existing content silently and report only "
        "matches completed by later appends",
    )
    tail.add_argument(
        "--json", action="store_true", help="JSON-lines output (one mapping per line)"
    )
    add_engine(tail)
    tail.set_defaults(func=_cmd_tail)

    corpus = sub.add_parser(
        "corpus", help="persistent corpus store: ingest once, query the index"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            required=True,
            metavar="PATH",
            help="store location (a sqlite file, or a directory that will "
            "hold corpus.sqlite)",
        )

    ingest = corpus_sub.add_parser(
        "ingest",
        help="load documents (one per line) into the store, deduplicating "
        "by content hash",
    )
    add_store(ingest)
    ingest.add_argument(
        "--file", help="documents file, one per line (default: stdin)"
    )
    ingest.set_defaults(func=_cmd_corpus_ingest)

    corpus_stats = corpus_sub.add_parser(
        "stats", help="report store sizes, letters, and posting lists"
    )
    add_store(corpus_stats)
    corpus_stats.add_argument("--json", action="store_true", help="JSON output")
    corpus_stats.set_defaults(func=_cmd_corpus_stats)

    corpus_query = corpus_sub.add_parser(
        "query",
        help="evaluate a formula against the store through the posting-list "
        "index",
    )
    add_common(corpus_query)
    add_store(corpus_query)
    corpus_query.add_argument(
        "--json", action="store_true", help="JSON-lines output (matching docs)"
    )
    corpus_query.add_argument(
        "--explain",
        action="store_true",
        help="print the index plan (posting ops and candidate counts) first",
    )
    corpus_query.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard surviving documents across N worker processes",
    )
    add_engine(corpus_query)
    add_guard(corpus_query)
    corpus_query.set_defaults(func=_cmd_corpus_query)

    corpus_rebuild = corpus_sub.add_parser(
        "rebuild",
        help="recompute artifacts and posting lists from the raw texts",
    )
    add_store(corpus_rebuild)
    corpus_rebuild.add_argument(
        "--verify",
        action="store_true",
        help="first cross-check stored rows against the recomputation and "
        "report divergences",
    )
    corpus_rebuild.set_defaults(func=_cmd_corpus_rebuild)

    explain = sub.add_parser(
        "explain", help="print the compiled (and optimized) plan of an RA query"
    )
    add_common(explain)
    explain.add_argument(
        "--union",
        action="append",
        metavar="FORMULA",
        help="union a further formula onto the query (repeatable)",
    )
    explain.add_argument(
        "--join",
        action="append",
        metavar="FORMULA",
        help="join a further formula onto the query (repeatable)",
    )
    explain.add_argument(
        "--difference",
        action="append",
        metavar="FORMULA",
        help="subtract a further formula from the query (repeatable)",
    )
    explain.add_argument(
        "--project",
        metavar="VARS",
        default=None,
        help="project the result onto a comma-separated variable list",
    )
    explain.add_argument(
        "--no-optimize",
        action="store_true",
        help="show the unoptimized plan instead",
    )
    explain.add_argument(
        "--stats", action="store_true", help="print engine statistics to stderr"
    )
    explain.set_defaults(func=_cmd_explain)

    classify_cmd = sub.add_parser("classify", help="report the formula's classes")
    add_common(classify_cmd)
    classify_cmd.set_defaults(func=_cmd_classify)

    dot = sub.add_parser("dot", help="emit the compiled automaton as Graphviz DOT")
    add_common(dot)
    dot.set_defaults(func=_cmd_dot)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (SpannerError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
