"""Command-line interface: extract spans from documents with regex
formulas.

Usage::

    python -m repro.cli extract 'x{[a-z]+}@y{[a-z.]+}' --text 'ab@cd.e'
    python -m repro.cli extract "$(cat formula.rgx)" --file corpus.txt --json
    python -m repro.cli classify 'x{a}(y{b}|ε)'
    python -m repro.cli dot 'x{a*}b' > automaton.dot

Subcommands:

* ``extract``  — evaluate a formula on a document (table or JSON output);
* ``classify`` — report the formula's syntactic classes (§2.2/§3.2/§4.2);
* ``dot``      — compile to a vset-automaton and emit Graphviz DOT.
"""

from __future__ import annotations

import argparse
import sys

from .core.document import Document
from .core.errors import SpannerError
from .io.dot import va_to_dot
from .io.serialize import dumps_relation
from .regex.parser import parse
from .regex.properties import classify
from .va.compile_regex import regex_to_va
from .va.evaluation import VASpanner
from .va.operations import trim


def _read_document(args: argparse.Namespace) -> Document:
    if args.text is not None:
        return Document(args.text)
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            return Document(handle.read())
    return Document(sys.stdin.read())


def _cmd_extract(args: argparse.Namespace) -> int:
    formula = parse(args.formula, alphabet=args.alphabet)
    document = _read_document(args)
    spanner = VASpanner(trim(regex_to_va(formula)))
    relation = spanner.evaluate(document)
    if args.json:
        print(dumps_relation(relation, indent=2))
    else:
        print(relation.to_table(document if args.show_content else None))
        print(f"\n{len(relation)} mapping(s)")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    formula = parse(args.formula, alphabet=args.alphabet)
    print(f"formula:    {formula.to_text()}")
    print(f"variables:  {', '.join(sorted(formula.variables)) or '(none)'}")
    print(f"size:       {formula.size()} nodes")
    for name, value in classify(formula).items():
        print(f"{name + ':':24s}{'yes' if value else 'no'}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    formula = parse(args.formula, alphabet=args.alphabet)
    print(va_to_dot(trim(regex_to_va(formula))))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Document-spanner extraction (PODS 2019 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("formula", help="regex formula, e.g. 'x{[a-z]+}@y{[a-z.]+}'")
        p.add_argument("--alphabet", help="explicit alphabet enabling '.'", default=None)

    extract = sub.add_parser("extract", help="evaluate a formula on a document")
    add_common(extract)
    source = extract.add_mutually_exclusive_group()
    source.add_argument("--text", help="document given inline")
    source.add_argument("--file", help="document read from a file")
    extract.add_argument("--json", action="store_true", help="JSON output")
    extract.add_argument(
        "--show-content", action="store_true", help="show span contents in the table"
    )
    extract.set_defaults(func=_cmd_extract)

    classify_cmd = sub.add_parser("classify", help="report the formula's classes")
    add_common(classify_cmd)
    classify_cmd.set_defaults(func=_cmd_classify)

    dot = sub.add_parser("dot", help="emit the compiled automaton as Graphviz DOT")
    add_common(dot)
    dot.set_defaults(func=_cmd_dot)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpannerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
