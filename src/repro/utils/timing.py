"""Enumeration-delay instrumentation (the yardsticks of §2.5).

The paper's efficiency notion for evaluation is the *delay* between
consecutive outputs of an enumeration algorithm.  :class:`DelayRecorder`
wraps any iterator and records the wall-clock gap before each item — the
first gap includes all preprocessing, matching the standard definition
(preprocessing counts toward the first delay unless stated otherwise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class DelayStats:
    """Summary of one recorded enumeration."""

    count: int = 0
    first_delay: float = 0.0
    max_delay: float = 0.0
    total_time: float = 0.0
    delays: list[float] = field(default_factory=list)

    @property
    def mean_delay(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    @property
    def max_inter_delay(self) -> float:
        """Largest delay *between* results (excluding the first, which
        carries the preprocessing)."""
        return max(self.delays[1:], default=0.0)

    def __str__(self) -> str:
        return (
            f"{self.count} results in {self.total_time * 1e3:.2f} ms "
            f"(first {self.first_delay * 1e3:.3f} ms, "
            f"max-inter {self.max_inter_delay * 1e3:.3f} ms, "
            f"mean {self.mean_delay * 1e3:.3f} ms)"
        )


class DelayRecorder(Iterator[T]):
    """Wrap an iterator, timing the gap before every item.

    Usage::

        recorder = DelayRecorder(enumerate_mappings(va, doc))
        results = list(recorder)
        print(recorder.stats.max_inter_delay)
    """

    def __init__(self, source: Iterable[T], keep_delays: bool = True):
        self._source = iter(source)
        self._keep = keep_delays
        self._last = time.perf_counter()
        self.stats = DelayStats()

    def __iter__(self) -> "DelayRecorder[T]":
        return self

    def __next__(self) -> T:
        item = next(self._source)  # StopIteration propagates
        now = time.perf_counter()
        delay = now - self._last
        self._last = now
        stats = self.stats
        if stats.count == 0:
            stats.first_delay = delay
        stats.max_delay = max(stats.max_delay, delay)
        stats.total_time += delay
        if self._keep:
            stats.delays.append(delay)
        stats.count += 1
        return item


def record_enumeration(source: Iterable[T], limit: int | None = None) -> DelayStats:
    """Drain (up to ``limit`` items of) an iterator and return its delay
    statistics."""
    recorder: DelayRecorder[T] = DelayRecorder(source)
    for index, _ in enumerate(recorder):
        if limit is not None and index + 1 >= limit:
            break
    return recorder.stats


def time_call(func, *args, repeat: int = 1, **kwargs) -> tuple[float, object]:
    """Best-of-``repeat`` wall-clock timing of ``func(*args, **kwargs)``;
    returns (seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result
