"""Measurement, presentation, and bit-twiddling utilities."""

from .bits import apply_masks, iter_bits
from .render import fit_power_law, format_table, growth_factors
from .timing import DelayRecorder, DelayStats, record_enumeration, time_call

__all__ = [
    "DelayRecorder",
    "DelayStats",
    "apply_masks",
    "fit_power_law",
    "format_table",
    "growth_factors",
    "iter_bits",
    "record_enumeration",
    "time_call",
]
