"""Measurement and presentation utilities."""

from .render import fit_power_law, format_table, growth_factors
from .timing import DelayRecorder, DelayStats, record_enumeration, time_call

__all__ = [
    "DelayRecorder",
    "DelayStats",
    "fit_power_law",
    "format_table",
    "growth_factors",
    "record_enumeration",
    "time_call",
]
