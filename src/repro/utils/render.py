"""Plain-text tables and series for the benchmark reports.

The benches print their measurements in a uniform layout so EXPERIMENTS.md
can quote them directly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """An aligned fixed-width table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def growth_factors(values: Sequence[float]) -> list[float]:
    """Consecutive ratios — the quick exponential-vs-polynomial gauge the
    benches report alongside raw numbers."""
    out: list[float] = []
    for previous, current in zip(values, values[1:]):
        out.append(current / previous if previous else float("inf"))
    return out


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The least-squares exponent of ``y ≈ c·x^e`` in log-log space; a
    sanity gauge for "polynomial of low degree" claims."""
    import math

    pairs = [(math.log(x), math.log(y)) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        return float("nan")
    n = len(pairs)
    sx = sum(x for x, _ in pairs)
    sy = sum(y for _, y in pairs)
    sxx = sum(x * x for x, _ in pairs)
    sxy = sum(x * y for x, y in pairs)
    denominator = n * sxx - sx * sx
    if denominator == 0:
        return float("nan")
    return (n * sxy - sx * sy) / denominator
