"""Bitset primitives shared by the indexed evaluation substrate.

State *sets* throughout :mod:`repro.va.indexed` and
:mod:`repro.va.kernel` are plain Python integers used as bitsets.  The two
helpers here are the only loops those modules run over individual states:
the ``mask & -mask`` lowest-set-bit walk (which visits exactly the set
bits, never the zeros between them) and its fused union form used to push
a whole state set through a per-state mask table in one sweep.
"""

from __future__ import annotations

from typing import Iterator, Sequence


def iter_bits(mask: int) -> Iterator[int]:
    """The indices of the set bits of ``mask``, ascending.

    Uses the ``mask & -mask`` lowest-set-bit walk: each iteration isolates
    and clears the lowest set bit, so the cost is proportional to the
    *population count*, not the bit length.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def apply_masks(rows: Sequence[int], mask: int) -> int:
    """The union of ``rows[b]`` over the set bits ``b`` of ``mask``.

    This is one application of a state-mask transformer: ``rows`` maps each
    source state to the bitset of states it can reach, and the result is
    the image of the whole state set ``mask``.  The hot loop of the
    forward/backward passes and of the run-compressed kernel.
    """
    out = 0
    while mask:
        low = mask & -mask
        out |= rows[low.bit_length() - 1]
        mask ^= low
    return out
