"""RA trees and instantiations (paper §5, Figure 2).

An *RA tree* is an operator tree whose leaves are placeholders for atomic
schemaless spanners; an *instantiation* assigns a concrete spanner
representation (regex formula, VA, or black-box :class:`Spanner`) to every
placeholder and a variable set to every projection.  The *extraction
complexity* of §5 fixes the tree and takes the instantiation plus the
document as input — which is exactly the API of
:func:`repro.algebra.planner.evaluate_ra`.

Example — the tree of Figure 2::

    tree = Project(
        Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("nr")),
        projection="keep",
    )
    inst = Instantiation(
        spanners={"sm": alpha_sm, "sp": alpha_sp, "nr": alpha_nr},
        projections={"keep": {"xstdnt"}},
    )
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, Mapping as TMapping, Union as TUnion

from ..core.errors import ArityError
from ..core.mapping import Variable
from ..core.spanner import Spanner
from ..regex.ast import RegexFormula
from ..va.automaton import VA

#: Anything an instantiation may bind to a placeholder.
AtomicSpanner = TUnion[RegexFormula, VA, Spanner]


class RANode(abc.ABC):
    """A node of an RA tree."""

    @abc.abstractmethod
    def children(self) -> tuple["RANode", ...]:
        """The ordered children (out-degree = operator arity)."""

    def walk(self) -> Iterator["RANode"]:
        """All nodes, pre-order."""
        stack: list[RANode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def placeholders(self) -> tuple[str, ...]:
        """The leaf names, left to right."""
        return tuple(node.name for node in self.walk() if isinstance(node, Leaf))

    def projection_slots(self) -> tuple[str, ...]:
        """The named projection slots requiring an instantiated variable
        set."""
        return tuple(
            node.projection
            for node in self.walk()
            if isinstance(node, Project) and isinstance(node.projection, str)
        )


@dataclass(frozen=True)
class Leaf(RANode):
    """A placeholder for an atomic spanner, identified by name."""

    name: str

    def children(self) -> tuple[RANode, ...]:
        return ()

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Project(RANode):
    """``π`` — projection.  ``projection`` is either an explicit frozenset
    of variables or a slot name resolved by the instantiation (the paper's
    "assigns a set of variables to every projection")."""

    child: RANode
    projection: frozenset[Variable] | str

    def __init__(self, child: RANode, projection):
        object.__setattr__(self, "child", child)
        if isinstance(projection, str):
            object.__setattr__(self, "projection", projection)
        else:
            object.__setattr__(self, "projection", frozenset(projection))

    def children(self) -> tuple[RANode, ...]:
        return (self.child,)

    def __str__(self) -> str:
        label = self.projection if isinstance(self.projection, str) else sorted(self.projection)
        return f"π[{label}]({self.child})"


@dataclass(frozen=True)
class UnionNode(RANode):
    """``∪`` — union."""

    left: RANode
    right: RANode

    def children(self) -> tuple[RANode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∪ {self.right})"


@dataclass(frozen=True)
class Join(RANode):
    """``⋈`` — natural join."""

    left: RANode
    right: RANode

    def children(self) -> tuple[RANode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ⋈ {self.right})"


@dataclass(frozen=True)
class Difference(RANode):
    """``\\`` — SPARQL-style difference."""

    left: RANode
    right: RANode

    def children(self) -> tuple[RANode, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} \\ {self.right})"


@dataclass
class Instantiation:
    """An assignment of atomic spanners to placeholders and variable sets
    to named projection slots (the paper's ``I``)."""

    spanners: dict[str, AtomicSpanner] = field(default_factory=dict)
    projections: dict[str, frozenset[Variable]] = field(default_factory=dict)

    def spanner(self, name: str) -> AtomicSpanner:
        try:
            return self.spanners[name]
        except KeyError:
            raise ArityError(f"no spanner instantiates placeholder {name!r}") from None

    def projection(self, slot: str) -> frozenset[Variable]:
        try:
            return frozenset(self.projections[slot])
        except KeyError:
            raise ArityError(f"no variable set instantiates projection {slot!r}") from None

    def validate(self, tree: RANode) -> None:
        """Check the instantiation covers exactly the tree's needs."""
        needed = set(tree.placeholders())
        missing = needed - self.spanners.keys()
        if missing:
            raise ArityError(f"placeholders without spanners: {sorted(missing)}")
        slots = set(tree.projection_slots())
        missing_slots = slots - self.projections.keys()
        if missing_slots:
            raise ArityError(f"projection slots without variables: {sorted(missing_slots)}")
