"""Ad-hoc (document-dependent) difference compilation (Lemma 4.2 / Thm 4.3).

Static compilation of ``A1 \\ A2`` into a VA is impossible without an
exponential blow-up — already for Boolean spanners it subsumes NFA
complementation [17].  The paper's way out is an *ad-hoc* automaton built
for the specific input document:

1. project the subtrahend onto the common variables ``V`` (only they can
   affect compatibility) and materialise ``R2 = ⟦π_V A2⟧(d)``;
2. materialise ``R1V = ⟦π_V A1⟧(d)`` and keep ``Good`` — the V-mappings
   incompatible with **every** member of R2 (for fixed ``|V| ≤ k`` both
   relations have polynomially many mappings, ≤ (1+|spans(d)|)^k);
3. split ``A1`` by the subset ``Y ⊆ V`` of common variables its runs use
   (semi-functionalisation, Lemma 3.6) and join each component with the
   straight-line automata of the ``Good`` mappings with domain exactly
   ``Y``.

Step 3's per-used-set pairing subsumes the paper's dummy "marker variable"
device (Appendix B.1): the markers exist to force the join to match
mappings with equal V-domains, which pairing components with equal-domain
paths achieves directly.  Note also that ``Good`` is defined through the
true SPARQL compatibility relation — Appendix B.1's literal set complement
of the marked extensions of R2 misclassifies subtrahend mappings whose
domain differs from the minuend's (e.g. the empty mapping in R2 must empty
the whole difference); see DESIGN.md and the regression test
``test_empty_mapping_in_subtrahend_empties_difference``.
"""

from __future__ import annotations

from ..core.document import Document, as_document
from ..core.errors import NotSequentialError, SpannerError
from ..core.mapping import Mapping
from ..core.relation import SpanRelation
from ..va.automaton import VA
from ..va.evaluation import evaluate_va, is_nonempty
from ..va.operations import empty_va, project_va, relation_va, trim, union_all
from ..va.properties import is_sequential
from .join import factorized_product, used_set_components


def adhoc_difference(
    first: VA,
    second: VA,
    document: Document | str,
    max_shared: int | None = None,
) -> VA:
    """A sequential VA ``Ad`` with ``⟦Ad⟧(d) = ⟦A1 \\ A2⟧(d)`` for the
    given document ``d`` (Lemma 4.2).

    Polynomial time for any fixed bound on ``|Vars(A1) ∩ Vars(A2)|``; the
    exponent grows with that bound (and must, by Theorem 4.4's
    W[1]-hardness).

    Args:
        first: the minuend ``A1`` (sequential).
        second: the subtrahend ``A2`` (sequential).
        document: the document the result is valid for.
        max_shared: optional guard on ``|Vars(A1) ∩ Vars(A2)|``; raises
            :class:`SpannerError` when exceeded (used by the planner to
            enforce Theorem 5.2's precondition).

    Returns:
        An ad-hoc sequential VA — valid **only** for ``document``.
    """
    if not is_sequential(first) or not is_sequential(second):
        raise NotSequentialError("adhoc_difference requires sequential operands")
    doc = as_document(document)
    shared = first.variables & second.variables
    if max_shared is not None and len(shared) > max_shared:
        raise SpannerError(
            f"difference shares {len(shared)} variables, exceeding the bound "
            f"{max_shared} required for tractability (Theorem 4.3)"
        )
    first = trim(first)
    second = trim(second)

    # The subtrahend matters only through its projection onto the common
    # variables: compatibility constrains dom(µ1) ∩ dom(µ2) ⊆ V, and
    # restricting µ2 to V preserves exactly the compatible pairs.
    projected_second = trim(project_va(second, shared))
    if not is_nonempty(projected_second, doc):
        return first  # nothing to subtract
    if len(doc) == 0:
        # On the empty document every span is [1,1>, so any two mappings
        # are compatible; a nonempty subtrahend empties the difference.
        return empty_va()
    subtrahend_relation = evaluate_va(projected_second, doc)
    if Mapping() in subtrahend_relation:
        # The empty mapping is compatible with everything.
        return empty_va()

    # Minuend mappings survive based only on their V-restriction.
    projected_first = trim(project_va(first, shared))
    minuend_relation = evaluate_va(projected_first, doc)
    good = survivors(minuend_relation, subtrahend_relation)
    if not good:
        return empty_va()

    # Pair each used-set component of A1 with the straight-line automata
    # of the good mappings with exactly that domain.
    components = used_set_components(first, shared)
    by_domain: dict[frozenset, list[Mapping]] = {}
    for mapping in good:
        by_domain.setdefault(mapping.domain, []).append(mapping)
    pieces: list[VA] = []
    for used, component in components.items():
        mappings = by_domain.get(used)
        if not mappings:
            continue
        checker = relation_va(mappings, doc)
        product = factorized_product(component, checker, used)
        if product.accepting:
            pieces.append(product)
    if not pieces:
        return empty_va()
    if len(pieces) == 1:
        return pieces[0]
    return union_all(pieces).relabelled()


def survivors(minuend: SpanRelation, subtrahend: SpanRelation) -> SpanRelation:
    """The mappings of ``minuend`` compatible with no mapping of
    ``subtrahend`` (the semantic difference, exposed for reuse)."""
    return minuend.difference(subtrahend)
