"""The extraction-complexity evaluator (Theorem 5.2, Corollary 5.3).

Evaluates an instantiated RA tree on a document with polynomial delay,
provided every join and difference node shares at most ``max_shared``
variables between its subtrees (Theorem 5.2's precondition — checked, not
assumed).

The module is structured around the paper's two compilation modes:

* **static** (document independent): positive operators and joins compile
  once per query (``union_va``, ``project_va``, ``fpt_join``) — see
  :func:`compile_static_atom`, :func:`apply_project`, :func:`apply_union`
  and :func:`apply_join`;
* **ad hoc** (per document): differences compile for the document at hand
  (:func:`~repro.algebra.difference.adhoc_difference`) — Section 4 shows
  no static compilation can work — and black-box leaves (tractable,
  degree-bounded :class:`Spanner` objects) are materialised per document
  and folded in as straight-line automata (Corollary 5.3); see
  :func:`materialise_blackbox` and :func:`apply_difference`.

:func:`compile_ra` runs both modes bottom-up for a single document.  The
:mod:`repro.engine` subsystem reuses the same helpers but caches the
static prefix across documents (:class:`~repro.engine.plan.CompiledPlan`);
:class:`RAQuery` delegates its evaluation there, so repeated evaluations
of one query share all document-independent work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..core.document import Document, as_document
from ..core.errors import SpannerError
from ..core.mapping import Mapping, Variable
from ..core.relation import SpanRelation
from ..core.spanner import Spanner
from ..regex.ast import RegexFormula
from ..va.automaton import VA
from ..va.compile_regex import regex_to_va
from ..va.evaluation import enumerate_mappings
from ..va.normalization import normalize
from ..va.operations import project_va, relation_va, union_va
from .difference import adhoc_difference
from .join import fpt_join
from .sync_difference import synchronized_difference
from .ra_tree import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    Project,
    RANode,
    UnionNode,
)

if TYPE_CHECKING:  # pragma: no cover - layering: engine imports algebra
    from ..engine.core import Engine

#: Default cap on black-box spanner degree (Corollary 5.3 asks for *some*
#: constant; 4 covers all shipped black boxes with room to spare).
DEFAULT_DEGREE_BOUND = 4


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs of the RA-tree evaluator.

    Attributes:
        max_shared: Theorem 5.2's bound ``k`` on common variables across
            every join/difference node; ``None`` disables the check (the
            evaluation stays correct but forfeits the delay guarantee).
        degree_bound: Corollary 5.3's bound on black-box degrees.
    """

    max_shared: int | None = None
    degree_bound: int = DEFAULT_DEGREE_BOUND


# -- compilation primitives (shared with repro.engine.plan) -----------------


def compile_static_atom(atom) -> VA | None:
    """The document-independent VA of an atomic spanner, or ``None`` when
    the atom is a black box that must be materialised per document."""
    if isinstance(atom, RegexFormula):
        return normalize(regex_to_va(atom))
    if isinstance(atom, VA):
        return normalize(atom)
    if isinstance(atom, Spanner):
        return None
    raise TypeError(f"cannot instantiate a placeholder with {type(atom).__name__}")


def materialise_blackbox(atom: Spanner, doc: Document, config: PlannerConfig) -> VA:
    """Fold a degree-bounded black box into a straight-line automaton for
    one document (Corollary 5.3)."""
    degree = atom.degree()
    if degree > config.degree_bound:
        raise SpannerError(
            f"black-box spanner {atom!r} has degree {degree} > bound "
            f"{config.degree_bound}; Corollary 5.3 requires degree-bounded "
            "black boxes (raise PlannerConfig.degree_bound if intentional)"
        )
    return relation_va(atom.evaluate(doc), doc)


def resolve_projection(node: Project, inst: Instantiation) -> frozenset[Variable]:
    """The concrete variable set of a projection node."""
    if isinstance(node.projection, str):
        return inst.projection(node.projection)
    return node.projection


def apply_project(child: VA, keep: frozenset[Variable]) -> VA:
    """``π_keep`` over a compiled child (normalized post-pass)."""
    return normalize(project_va(child, keep))


def apply_union(left: VA, right: VA) -> VA:
    """``∪`` over compiled children (normalized post-pass: the fresh
    ε-initial is inlined and dead structure dropped before anything is
    built on top)."""
    return normalize(union_va(left, right))


def apply_join(left: VA, right: VA, config: PlannerConfig) -> VA:
    """``⋈`` over compiled children (static FPT compilation, Lemma 3.2;
    normalized post-pass)."""
    check_shared(left, right, config, "join")
    return normalize(fpt_join(left, right))


def apply_difference(
    left: VA, right: VA, doc: Document, config: PlannerConfig
) -> VA:
    """``\\`` over compiled children — always ad hoc (Lemma 4.2)."""
    check_shared(left, right, config, "difference")
    return normalize(adhoc_difference(left, right, doc))


def apply_sync_difference(left: VA, right: VA, doc: Document) -> VA:
    """``\\`` through the synchronized compilation (Theorem 4.8).

    Used by plans whose optimizer proved the subtrahend synchronized for
    the common variables; tractable for *unboundedly many* shared
    variables, so no ``max_shared`` check applies here.
    """
    return normalize(synchronized_difference(left, right, doc))


def check_shared(left: VA, right: VA, config: PlannerConfig, what: str) -> None:
    """Enforce Theorem 5.2's shared-variable bound at a binary node."""
    if config.max_shared is None:
        return
    shared = left.variables & right.variables
    if len(shared) > config.max_shared:
        raise SpannerError(
            f"{what} node shares {len(shared)} variables {sorted(shared)}, "
            f"exceeding the configured bound {config.max_shared} (Theorem 5.2)"
        )


# -- one-shot compilation (no cross-document caching) -----------------------


def compile_ra(
    tree: RANode,
    instantiation: Instantiation,
    document: Document | str,
    config: PlannerConfig | None = None,
) -> VA:
    """Compile an instantiated RA tree into one ad-hoc sequential VA for
    ``document``."""
    config = config or PlannerConfig()
    doc = as_document(document)
    instantiation.validate(tree)
    return _compile(tree, instantiation, doc, config)


def _compile(
    node: RANode, inst: Instantiation, doc: Document, config: PlannerConfig
) -> VA:
    if isinstance(node, Leaf):
        atom = inst.spanner(node.name)
        static = compile_static_atom(atom)
        return static if static is not None else materialise_blackbox(atom, doc, config)
    if isinstance(node, Project):
        return apply_project(
            _compile(node.child, inst, doc, config), resolve_projection(node, inst)
        )
    if isinstance(node, UnionNode):
        return apply_union(
            _compile(node.left, inst, doc, config),
            _compile(node.right, inst, doc, config),
        )
    if isinstance(node, Join):
        return apply_join(
            _compile(node.left, inst, doc, config),
            _compile(node.right, inst, doc, config),
            config,
        )
    if isinstance(node, Difference):
        return apply_difference(
            _compile(node.left, inst, doc, config),
            _compile(node.right, inst, doc, config),
            doc,
            config,
        )
    raise TypeError(f"unknown RA node type {type(node).__name__}")


def enumerate_ra(
    tree: RANode,
    instantiation: Instantiation,
    document: Document | str,
    config: PlannerConfig | None = None,
) -> Iterator[Mapping]:
    """Enumerate ``⟦I[τ]⟧(d)`` with polynomial delay (Theorem 5.2)."""
    doc = as_document(document)
    compiled = compile_ra(tree, instantiation, doc, config)
    return enumerate_mappings(compiled, doc)


def evaluate_ra(
    tree: RANode,
    instantiation: Instantiation,
    document: Document | str,
    config: PlannerConfig | None = None,
) -> SpanRelation:
    """Materialise ``⟦I[τ]⟧(d)``."""
    return SpanRelation(enumerate_ra(tree, instantiation, document, config))


class RAQuery:
    """A fixed RA tree bundled with an instantiation — the unit whose
    *extraction complexity* §5 studies.

    Evaluation delegates to a (lazily created, per-query)
    :class:`repro.engine.core.Engine`, so the static prefix of the tree is
    compiled once and shared across every document this query touches.
    Pass ``engine=`` to share one engine (and its caches/statistics)
    between queries.

    Usage::

        query = RAQuery(tree, instantiation, PlannerConfig(max_shared=2))
        for mapping in query.enumerate(document):
            ...
        relations = query.evaluate_many(["doc one", "doc two"])
    """

    def __init__(
        self,
        tree: RANode,
        instantiation: Instantiation,
        config: PlannerConfig | None = None,
        engine: "Engine | None" = None,
    ):
        instantiation.validate(tree)
        self.tree = tree
        self.instantiation = instantiation
        self.config = config or PlannerConfig()
        self._engine = engine

    @property
    def engine(self) -> "Engine":
        """The engine evaluating this query (created on first use)."""
        if self._engine is None:
            from ..engine.core import Engine

            self._engine = Engine()
        return self._engine

    def compile(self, document: Document | str) -> VA:
        """The ad-hoc VA for one document (static prefix served from the
        engine's plan cache)."""
        return self.engine.compile(self, document)

    def explain(self) -> str:
        """The compiled plan, pretty-printed — physical tree, optimized
        logical plan, and the optimizer's rule-fire summary."""
        return self.engine.explain(self)

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        return self.engine.enumerate(self, document)

    def evaluate(self, document: Document | str) -> SpanRelation:
        return self.engine.evaluate(self, document)

    def first(self, document: Document | str) -> "Mapping | None":
        """The first mapping in canonical order, or ``None`` if empty."""
        return self.engine.first(self, document)

    def is_nonempty(self, document: Document | str) -> bool:
        """Decide ``⟦q⟧(d) ≠ ∅`` via the engine's Boolean bitmask pass."""
        return self.engine.is_nonempty(self, document)

    def evaluate_many(
        self, documents, limit: int | None = None, workers: int | None = None
    ) -> list[SpanRelation]:
        """Evaluate a batch of documents, sharing all static compilation.

        ``workers=N`` shards the batch across processes; ``limit`` caps the
        mappings materialised per document."""
        return self.engine.evaluate_many(self, documents, limit=limit, workers=workers)

    def enumerate_stream(
        self, documents, limit: int | None = None
    ) -> Iterator[tuple[int, Mapping]]:
        """Stream ``(document_index, mapping)`` pairs over many documents."""
        return self.engine.enumerate_stream(self, documents, limit=limit)

    def __repr__(self) -> str:
        return f"RAQuery({self.tree})"
