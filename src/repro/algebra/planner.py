"""The extraction-complexity evaluator (Theorem 5.2, Corollary 5.3).

Evaluates an instantiated RA tree on a document with polynomial delay,
provided every join and difference node shares at most ``max_shared``
variables between its subtrees (Theorem 5.2's precondition — checked, not
assumed).

Strategy (the paper's two compilation modes):

* positive operators and joins compile *statically* (document-independent
  VAs: ``union_va``, ``project_va``, ``fpt_join``);
* differences compile *ad hoc* for the document at hand
  (:func:`~repro.algebra.difference.adhoc_difference`) — Section 4 shows
  no static compilation can work;
* black-box leaves (tractable, degree-bounded :class:`Spanner` objects)
  are materialised per document and folded in as straight-line automata
  (Corollary 5.3) — the ad-hoc mode is what makes this possible.

The result of the bottom-up compilation is a single sequential VA for the
document, enumerated by the Theorem-2.5 evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.document import Document, as_document
from ..core.errors import SpannerError
from ..core.mapping import Mapping, Variable
from ..core.relation import SpanRelation
from ..core.spanner import Spanner
from ..regex.ast import RegexFormula
from ..va.automaton import VA
from ..va.compile_regex import regex_to_va
from ..va.evaluation import enumerate_mappings
from ..va.operations import project_va, relation_va, trim, union_va
from .difference import adhoc_difference
from .join import fpt_join
from .ra_tree import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    Project,
    RANode,
    UnionNode,
)

#: Default cap on black-box spanner degree (Corollary 5.3 asks for *some*
#: constant; 4 covers all shipped black boxes with room to spare).
DEFAULT_DEGREE_BOUND = 4


@dataclass
class PlannerConfig:
    """Knobs of the RA-tree evaluator.

    Attributes:
        max_shared: Theorem 5.2's bound ``k`` on common variables across
            every join/difference node; ``None`` disables the check (the
            evaluation stays correct but forfeits the delay guarantee).
        degree_bound: Corollary 5.3's bound on black-box degrees.
    """

    max_shared: int | None = None
    degree_bound: int = DEFAULT_DEGREE_BOUND


def compile_ra(
    tree: RANode,
    instantiation: Instantiation,
    document: Document | str,
    config: PlannerConfig | None = None,
) -> VA:
    """Compile an instantiated RA tree into one ad-hoc sequential VA for
    ``document``."""
    config = config or PlannerConfig()
    doc = as_document(document)
    instantiation.validate(tree)
    return _compile(tree, instantiation, doc, config)


def _compile(
    node: RANode, inst: Instantiation, doc: Document, config: PlannerConfig
) -> VA:
    if isinstance(node, Leaf):
        return _compile_leaf(inst.spanner(node.name), doc, config)
    if isinstance(node, Project):
        child = _compile(node.child, inst, doc, config)
        keep = (
            inst.projection(node.projection)
            if isinstance(node.projection, str)
            else node.projection
        )
        return trim(project_va(child, keep))
    if isinstance(node, UnionNode):
        return union_va(
            _compile(node.left, inst, doc, config),
            _compile(node.right, inst, doc, config),
        )
    if isinstance(node, Join):
        left = _compile(node.left, inst, doc, config)
        right = _compile(node.right, inst, doc, config)
        _check_shared(left, right, config, "join")
        return fpt_join(left, right)
    if isinstance(node, Difference):
        left = _compile(node.left, inst, doc, config)
        right = _compile(node.right, inst, doc, config)
        _check_shared(left, right, config, "difference")
        return adhoc_difference(left, right, doc)
    raise TypeError(f"unknown RA node type {type(node).__name__}")


def _compile_leaf(atom, doc: Document, config: PlannerConfig) -> VA:
    if isinstance(atom, RegexFormula):
        return trim(regex_to_va(atom))
    if isinstance(atom, VA):
        return trim(atom)
    if isinstance(atom, Spanner):
        degree = atom.degree()
        if degree > config.degree_bound:
            raise SpannerError(
                f"black-box spanner {atom!r} has degree {degree} > bound "
                f"{config.degree_bound}; Corollary 5.3 requires degree-bounded "
                "black boxes (raise PlannerConfig.degree_bound if intentional)"
            )
        return relation_va(atom.evaluate(doc), doc)
    raise TypeError(f"cannot instantiate a placeholder with {type(atom).__name__}")


def _check_shared(left: VA, right: VA, config: PlannerConfig, what: str) -> None:
    if config.max_shared is None:
        return
    shared = left.variables & right.variables
    if len(shared) > config.max_shared:
        raise SpannerError(
            f"{what} node shares {len(shared)} variables {sorted(shared)}, "
            f"exceeding the configured bound {config.max_shared} (Theorem 5.2)"
        )


def enumerate_ra(
    tree: RANode,
    instantiation: Instantiation,
    document: Document | str,
    config: PlannerConfig | None = None,
) -> Iterator[Mapping]:
    """Enumerate ``⟦I[τ]⟧(d)`` with polynomial delay (Theorem 5.2)."""
    doc = as_document(document)
    compiled = compile_ra(tree, instantiation, doc, config)
    return enumerate_mappings(compiled, doc)


def evaluate_ra(
    tree: RANode,
    instantiation: Instantiation,
    document: Document | str,
    config: PlannerConfig | None = None,
) -> SpanRelation:
    """Materialise ``⟦I[τ]⟧(d)``."""
    return SpanRelation(enumerate_ra(tree, instantiation, document, config))


class RAQuery:
    """A fixed RA tree bundled with an instantiation — the unit whose
    *extraction complexity* §5 studies.

    Usage::

        query = RAQuery(tree, instantiation, PlannerConfig(max_shared=2))
        for mapping in query.enumerate(document):
            ...
    """

    def __init__(
        self,
        tree: RANode,
        instantiation: Instantiation,
        config: PlannerConfig | None = None,
    ):
        instantiation.validate(tree)
        self.tree = tree
        self.instantiation = instantiation
        self.config = config or PlannerConfig()

    def compile(self, document: Document | str) -> VA:
        """The ad-hoc VA for one document."""
        return compile_ra(self.tree, self.instantiation, document, self.config)

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        return enumerate_ra(self.tree, self.instantiation, document, self.config)

    def evaluate(self, document: Document | str) -> SpanRelation:
        return evaluate_ra(self.tree, self.instantiation, document, self.config)

    def __repr__(self) -> str:
        return f"RAQuery({self.tree})"
