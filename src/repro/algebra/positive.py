"""Static compilation of the positive operators other than join.

Union and projection of sequential VAs compile in linear time into
sequential VAs ([13, 20]); these are thin, documented wrappers around the
structural operations of :mod:`repro.va.operations`, giving the algebra
layer a uniform vocabulary: ``compile_union``, ``compile_projection``,
``fpt_join`` (in :mod:`repro.algebra.join`), and the ad-hoc differences.
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import NotSequentialError
from ..core.mapping import Variable
from ..va.automaton import VA
from ..va.operations import project_va, trim, union_va
from ..va.properties import is_sequential


def compile_union(first: VA, second: VA, check: bool = False) -> VA:
    """A sequential VA equivalent to ``A1 ∪ A2`` (linear time)."""
    if check and not (is_sequential(first) and is_sequential(second)):
        raise NotSequentialError("compile_union requires sequential operands")
    return union_va(first, second)


def compile_projection(va: VA, variables: Iterable[Variable], check: bool = False) -> VA:
    """A sequential VA equivalent to ``π_Y(A)`` (linear time)."""
    if check and not is_sequential(va):
        raise NotSequentialError("compile_projection requires a sequential operand")
    return trim(project_va(va, variables))
