"""Black-box schemaless spanners (Corollary 5.3, Example 5.4).

The extraction-complexity framework lets any *tractable* (polynomial-time
per document) and *degree-bounded* (|dom(µ)| ≤ constant) spanner appear as
a leaf of an RA tree: the planner materialises its (then polynomial-size)
relation and folds it in as an ad-hoc automaton.

This module provides the black boxes the paper names or implies:

* :class:`StringEqualitySpanner` — the classic spanner **not** expressible
  in RA over regular spanners [8, 13]: pairs of spans with equal content;
* :class:`DictionarySpanner` — dictionary lookup (a SystemT primitive);
* :class:`TokenizerSpanner` — maximal non-delimiter tokens (tokenizer
  primitive);
* :class:`SentimentSpanner` — the toy "PosRec"-style tagger of Example
  5.4: pairs a context span with a same-line span containing a lexicon
  word.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.document import Document, as_document
from ..core.mapping import Mapping, Variable
from ..core.spanner import Spanner
from ..core.spans import Span


class StringEqualitySpanner(Spanner):
    """All pairs of spans with equal substrings: ``{x ↦ s1, y ↦ s2 :
    d[s1] = d[s2]}``.

    Degree 2; evaluation is polynomial (quadratically many spans, grouped
    by content).  Optionally restricted to non-empty spans, since the
    empty string trivially equates all positions.
    """

    def __init__(self, first: Variable = "x", second: Variable = "y", include_empty: bool = False):
        self.first = first
        self.second = second
        self.include_empty = include_empty

    def variables(self) -> frozenset[Variable]:
        return frozenset((self.first, self.second))

    def degree(self) -> int:
        return 2

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        by_content: dict[str, list[Span]] = {}
        for span in doc.spans():
            if span.is_empty and not self.include_empty:
                continue
            by_content.setdefault(doc.substring(span), []).append(span)
        for spans in by_content.values():
            for s1 in spans:
                for s2 in spans:
                    yield Mapping({self.first: s1, self.second: s2})

    def __repr__(self) -> str:
        return f"StringEqualitySpanner({self.first}, {self.second})"


class DictionarySpanner(Spanner):
    """Spans whose content is a dictionary word (degree 1)."""

    def __init__(self, var: Variable, words: Iterable[str]):
        self.var = var
        self.words = frozenset(words)
        self._max_len = max((len(w) for w in self.words), default=0)

    def variables(self) -> frozenset[Variable]:
        return frozenset((self.var,))

    def degree(self) -> int:
        return 1

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        text = doc.text
        for i in range(len(text)):
            for length in range(1, min(self._max_len, len(text) - i) + 1):
                if text[i : i + length] in self.words:
                    yield Mapping({self.var: Span(i + 1, i + 1 + length)})

    def __repr__(self) -> str:
        return f"DictionarySpanner({self.var}, {len(self.words)} words)"


class TokenizerSpanner(Spanner):
    """Maximal runs of non-delimiter characters (degree 1) — the
    tokenizer primitive of SystemT-style systems (§1)."""

    def __init__(self, var: Variable = "token", delimiters: str = " \t\n"):
        self.var = var
        self.delimiters = frozenset(delimiters)

    def variables(self) -> frozenset[Variable]:
        return frozenset((self.var,))

    def degree(self) -> int:
        return 1

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        text = doc.text
        start: int | None = None
        for index, char in enumerate(text):
            if char in self.delimiters:
                if start is not None:
                    yield Mapping({self.var: Span(start + 1, index + 1)})
                    start = None
            elif start is None:
                start = index
        if start is not None:
            yield Mapping({self.var: Span(start + 1, len(text) + 1)})

    def __repr__(self) -> str:
        return f"TokenizerSpanner({self.var})"


class SentimentSpanner(Spanner):
    """The Example-5.4 style black box: for every line containing a
    lexicon word, pair the line-leading context span (``subject_var``,
    e.g. the student name: the first token of the line) with the span of
    the lexicon word (``evidence_var``).

    Degree 2 and linear-time — the stand-in for an opaque ML sentiment
    module ("PosRec").
    """

    def __init__(
        self,
        subject_var: Variable = "xstdnt",
        evidence_var: Variable = "xposrec",
        lexicon: Iterable[str] = ("good", "great", "excellent", "outstanding"),
        newline: str = "\n",
    ):
        self.subject_var = subject_var
        self.evidence_var = evidence_var
        self.lexicon = frozenset(lexicon)
        self.newline = newline

    def variables(self) -> frozenset[Variable]:
        return frozenset((self.subject_var, self.evidence_var))

    def degree(self) -> int:
        return 2

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        text = doc.text
        line_start = 0
        for line in text.split(self.newline):
            subject = self._first_token_span(line, line_start)
            if subject is not None:
                for word in self.lexicon:
                    offset = 0
                    while True:
                        hit = line.find(word, offset)
                        if hit < 0:
                            break
                        evidence = Span(line_start + hit + 1, line_start + hit + 1 + len(word))
                        yield Mapping({self.subject_var: subject, self.evidence_var: evidence})
                        offset = hit + 1
            line_start += len(line) + 1

    @staticmethod
    def _first_token_span(line: str, line_start: int) -> Span | None:
        stripped = line.lstrip(" ")
        if not stripped:
            return None
        begin = line_start + (len(line) - len(stripped))
        end = begin + len(stripped.split(" ", 1)[0])
        return Span(begin + 1, end + 1)

    def __repr__(self) -> str:
        return f"SentimentSpanner({self.subject_var}, {self.evidence_var})"


def is_degree_bounded(spanner: Spanner, bound: int) -> bool:
    """Whether the spanner declares a degree within ``bound``
    (Corollary 5.3's precondition)."""
    return spanner.degree() <= bound
