"""The relational algebra over schemaless spanners: semantic operators,
static/ad-hoc compilations, RA trees, the extraction-complexity planner,
and black-box spanners."""

from .blackbox import (
    DictionarySpanner,
    SentimentSpanner,
    StringEqualitySpanner,
    TokenizerSpanner,
    is_degree_bounded,
)
from .difference import adhoc_difference, survivors
from .join import (
    dfunc_join,
    factorized_product,
    fpt_join,
    used_set_components,
)
from .operators import (
    DifferenceSpanner,
    JoinSpanner,
    ProjectionSpanner,
    UnionSpanner,
    semantic_difference,
    semantic_join,
    semantic_projection,
    semantic_union,
)
from .positive import compile_projection, compile_union
from .planner import (
    DEFAULT_DEGREE_BOUND,
    PlannerConfig,
    RAQuery,
    compile_ra,
    enumerate_ra,
    evaluate_ra,
)
from .ra_tree import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    Project,
    RANode,
    UnionNode,
)
from .sync_difference import (
    SyncDifferenceStats,
    synchronized_difference,
)

__all__ = [
    "DEFAULT_DEGREE_BOUND",
    "Difference",
    "DifferenceSpanner",
    "DictionarySpanner",
    "Instantiation",
    "Join",
    "JoinSpanner",
    "Leaf",
    "PlannerConfig",
    "Project",
    "ProjectionSpanner",
    "RANode",
    "RAQuery",
    "SentimentSpanner",
    "StringEqualitySpanner",
    "SyncDifferenceStats",
    "TokenizerSpanner",
    "UnionNode",
    "UnionSpanner",
    "adhoc_difference",
    "compile_projection",
    "compile_ra",
    "compile_union",
    "dfunc_join",
    "enumerate_ra",
    "evaluate_ra",
    "factorized_product",
    "fpt_join",
    "is_degree_bounded",
    "semantic_difference",
    "semantic_join",
    "semantic_projection",
    "semantic_union",
    "survivors",
    "synchronized_difference",
    "used_set_components",
]
