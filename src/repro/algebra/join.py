"""Static join compilations (Lemma 3.2 / Theorem 3.3; Prop. 3.12).

Three layers:

* :func:`factorized_product` — the core product construction (the paper's
  Lemma 3.8 via [13, Lemma 3.10]).  It synchronises the two operands on the
  per-position *operation sets* over a given variable set, which makes it
  robust to operands that perform the shared operations in different
  micro-orders inside one position.  **Contract**: for every synchronised
  variable, either both operands use it on all their accepting runs, or
  neither ever does — the used-set decompositions below establish exactly
  this before calling.

* :func:`fpt_join` — Lemma 3.2: the join of two *sequential* VAs, FPT in
  the number ``k`` of common variables.  Each operand is
  semi-functionalised for the common variables X (Lemma 3.6) and split
  into ≤ 2^k components by the exact subset of X its accepting runs use;
  compatible component pairs are producted with synchronisation on the
  variables used by both.  (The split is how we handle the schemaless
  subtlety that a mapping *using* a shared variable joins with one that
  does not.)

* :func:`dfunc_join` — Proposition 3.12: the join of two disjunctive
  functional VAs in polynomial time, by pairwise products of the
  functional components (no semi-functionalisation needed).
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..core.errors import NotSequentialError
from ..core.mapping import Variable
from .. import va as _va
from ..va.automaton import VA, Label, State, VarOp
from ..va.configurations import accepting_used_sets
from ..va.matchgraph import FactorizedVA, OpSet
from ..va.operations import trim, union_all, empty_va
from ..va.properties import is_sequential
from ..va.semi_functional import make_semi_functional


def _canonical_op_order(ops: OpSet) -> list[VarOp]:
    """A replay order for one position's operations: closes of variables
    opened earlier first, then the open/close pairs of empty spans, then
    fresh opens — every open precedes its close."""
    closes_only: list[VarOp] = []
    opens_only: list[VarOp] = []
    pairs: list[Variable] = []
    opened = {op.var for op in ops if op.is_open}
    closed = {op.var for op in ops if not op.is_open}
    for var in sorted(opened & closed):
        pairs.append(var)
    for op in sorted(ops, key=str):
        if op.var in opened and op.var in closed:
            continue
        if op.is_open:
            opens_only.append(op)
        else:
            closes_only.append(op)
    ordered = list(closes_only)
    for var in pairs:
        ordered.append(VarOp(var, True))
        ordered.append(VarOp(var, False))
    ordered.extend(opens_only)
    return ordered


class _ProductBuilder:
    """Accumulates the states/transitions of a product automaton,
    expanding operation sets into canonical chains of fresh states."""

    def __init__(self) -> None:
        self.transitions: list[tuple[State, Label, State]] = []
        self._fresh = itertools.count()

    def chain(self, source: State, ops: OpSet, final_label: Label, target: State) -> None:
        """Add ``source --ops…--> (final_label) --> target``."""
        current = source
        for op in _canonical_op_order(ops):
            nxt = ("chain", next(self._fresh))
            self.transitions.append((current, op, nxt))
            current = nxt
        self.transitions.append((current, final_label, target))


def factorized_product(
    first: VA, second: VA, sync_variables: Iterable[Variable]
) -> VA:
    """The synchronised product of two VAs (Lemma 3.8 / [13, Lemma 3.10]).

    Both automata run in parallel over the same document; at every position
    their operation sets must agree on ``Γ_sync``.  The output's accepting
    runs produce ``µ1 ∪ µ2`` for accepting runs with identical placement of
    the synchronised variables.

    See the module docstring for the usage contract; :func:`fpt_join` and
    :func:`dfunc_join` are the safe entry points.
    """
    sync = frozenset(sync_variables)
    fva1, fva2 = FactorizedVA(first), FactorizedVA(second)
    va1, va2 = fva1.va, fva2.va
    if not va1.accepting or not va2.accepting:
        return empty_va()

    def sync_part(ops: OpSet) -> OpSet:
        return frozenset(op for op in ops if op.var in sync)

    builder = _ProductBuilder()
    accept_state: State = ("acc",)
    accepting_used = False
    initial: State = ("s", va1.initial, va2.initial)
    seen: set[State] = {initial}
    stack: list[State] = [initial]
    while stack:
        state = stack.pop()
        _, p1, p2 = state
        # Letter transitions: both sides read the same letter with
        # agreeing synchronised operations.
        macro1 = fva1.macro_transitions(p1)
        macro2 = fva2.macro_transitions(p2)
        for letter in macro1.keys() & macro2.keys():
            for ops1, r1 in macro1[letter]:
                key1 = sync_part(ops1)
                for ops2, r2 in macro2[letter]:
                    if sync_part(ops2) != key1:
                        continue
                    target: State = ("s", r1, r2)
                    builder.chain(state, ops1 | ops2, letter, target)
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
        # Acceptance: both sides finish with agreeing synchronised ops.
        finals1 = fva1.accepting_opsets(p1)
        finals2 = fva2.accepting_opsets(p2)
        for ops1 in finals1:
            key1 = sync_part(ops1)
            for ops2 in finals2:
                if sync_part(ops2) != key1:
                    continue
                builder.chain(state, ops1 | ops2, None, accept_state)
                accepting_used = True
    if not accepting_used:
        return empty_va()
    product = VA(initial, (accept_state,), builder.transitions)
    return trim(product).relabelled()


def used_set_components(va: VA, shared: frozenset[Variable]) -> dict[frozenset[Variable], VA]:
    """Split a sequential VA into ≤ 2^|shared| sub-automata, one per subset
    ``Y ⊆ shared`` of shared variables its accepting runs use.

    The returned components are trimmed, equivalent to the input in union,
    and each is "functional relative to Y": every accepting run operates on
    exactly ``Y`` among the shared variables.
    """
    prepared = make_semi_functional(trim(va), shared)
    if not prepared.accepting:
        return {}
    used_sets = accepting_used_sets(prepared, shared)
    groups: dict[frozenset[Variable], list[State]] = {}
    for state, used in used_sets.items():
        groups.setdefault(used, []).append(state)
    return {
        used: trim(prepared.with_accepting(states))
        for used, states in groups.items()
    }


def fpt_join(first: VA, second: VA) -> VA:
    """Lemma 3.2: a sequential VA equivalent to ``A1 ⋈ A2``.

    Runtime and output size are polynomial in the operand sizes and
    exponential only in ``k = |Vars(A1) ∩ Vars(A2)|`` (at most ``4^k``
    component products).

    Raises:
        NotSequentialError: if either operand is not sequential (the join
            of arbitrary sequential *regex formulas* is NP-hard, Theorem
            3.1 — the hardness lives in the unbounded shared-variable
            case, which this compilation excludes by fiat of its cost).
    """
    if not is_sequential(first) or not is_sequential(second):
        raise NotSequentialError("fpt_join requires sequential operands")
    shared = first.variables & second.variables
    if not shared:
        # No synchronisation constraints at all: single plain product.
        return factorized_product(first, second, frozenset())
    parts1 = used_set_components(first, shared)
    parts2 = used_set_components(second, shared)
    products: list[VA] = []
    for used1, comp1 in parts1.items():
        for used2, comp2 in parts2.items():
            product = factorized_product(comp1, comp2, used1 & used2)
            if product.accepting:
                products.append(product)
    if not products:
        return empty_va()
    if len(products) == 1:
        return products[0]
    return union_all(products).relabelled()


def _functional_disjuncts(va: VA) -> list[VA]:
    """The functional components of a disjunctive functional VA.

    Accepts any sequential VA and splits by used-set; for a genuinely
    disjunctive-functional input this recovers (a normal form of) its
    functional components.
    """
    return list(used_set_components(va, va.variables).values())


def dfunc_join(first: VA, second: VA) -> VA:
    """Proposition 3.12: join of two disjunctive functional VAs as a
    disjunctive functional VA, in polynomial time in the total number of
    functional components.

    Every pair of functional components is producted with synchronisation
    on the pair's common variables — the schema-based join of [13, Lemma
    3.10], where compatibility needs no used-set reasoning because
    functional components use all their variables on every run.
    """
    parts1 = _functional_disjuncts(first)
    parts2 = _functional_disjuncts(second)
    products: list[VA] = []
    for comp1 in parts1:
        for comp2 in parts2:
            sync = comp1.variables & comp2.variables
            product = factorized_product(comp1, comp2, sync)
            if product.accepting:
                products.append(product)
    if not products:
        return empty_va()
    if len(products) == 1:
        return products[0]
    return union_all(products).relabelled()
