"""The logical query IR sitting between RA trees and physical plans.

An RA tree (:mod:`repro.algebra.ra_tree`) is the user-facing syntax: binary
operators, named placeholders, projection slots.  The *logical plan* built
by :func:`from_ra` resolves the instantiation into the tree and re-expresses
it in a form the optimizer (:mod:`repro.engine.optimizer`) can rewrite:

* leaves become :class:`StaticAtom` (a compiled, normalized VA — regex
  formulas and raw VAs) or :class:`BlackboxAtom` (an opaque
  :class:`~repro.core.spanner.Spanner` materialised per document);
* union and join are **n-ary** (:class:`LUnion` / :class:`LJoin`), so
  flattening and reassociation are plain child-list edits;
* projection carries its resolved variable set (:class:`LProject`);
* difference stays binary (:class:`LDifference`), with
  :class:`LSyncDifference` marking differences the optimizer has proven
  eligible for the synchronized-difference compilation (Theorem 4.8)
  instead of the bounded-common-variable ad-hoc route (Lemma 4.2).

Every node has a structural **fingerprint** — a SHA-256 digest over the
node kind, its parameters, and its children's fingerprints, with automata
canonicalised up to state renaming (:meth:`repro.va.automaton.VA.fingerprint`).
Equal fingerprints mean equal plans, which is what plan-level
common-subexpression elimination and the engine's fingerprint-keyed plan
cache rely on.  Fingerprints of black-box atoms incorporate the object
identity, so they are stable only within one process — exactly the
lifetime of the caches that use them.

The per-node ``estimated_states`` drives the optimizer's reassociation
order: it is the exact state count for static atoms and a structural
estimate above them (sums for unions, capped products for joins — the
product construction is what actually blows up).
"""

from __future__ import annotations

import abc
from hashlib import sha256
from typing import Iterator

from ..core.mapping import Variable
from ..core.spanner import Spanner
from ..va.automaton import VA
from .ra_tree import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    Project,
    RANode,
    UnionNode,
)

#: Cap on state estimates — joins multiply, and we only ever *compare*
#: estimates, so saturating keeps the arithmetic cheap and total.
ESTIMATE_CAP = 10**12

#: Assumed size of a materialised black-box leaf (document dependent, so
#: any constant is a guess; black boxes sort after small static atoms and
#: before big product results, which is the behaviour that matters).
BLACKBOX_ESTIMATE = 64


def _digest(*parts: str) -> str:
    return sha256("|".join(parts).encode("utf-8", "backslashreplace")).hexdigest()


class LogicalNode(abc.ABC):
    """A node of the logical plan."""

    #: Short stable tag naming the node type (used in fingerprints and
    #: pretty-printing).
    kind: str = "?"

    __slots__ = ("_fingerprint",)

    def __init__(self) -> None:
        self._fingerprint: str | None = None

    @abc.abstractmethod
    def children(self) -> tuple["LogicalNode", ...]:
        """The ordered children."""

    @abc.abstractmethod
    def _params(self) -> str:
        """The node's own parameters, canonically serialised."""

    @property
    @abc.abstractmethod
    def variables(self) -> frozenset[Variable]:
        """``Vars`` of the sub-plan: every variable an output mapping may
        use."""

    @property
    @abc.abstractmethod
    def estimated_states(self) -> int:
        """A structural estimate of the compiled automaton's state count."""

    @property
    def fingerprint(self) -> str:
        """The structural digest (see module docstring); cached."""
        if self._fingerprint is None:
            self._fingerprint = _digest(
                self.kind,
                self._params(),
                *(child.fingerprint for child in self.children()),
            )
        return self._fingerprint

    def walk(self) -> Iterator["LogicalNode"]:
        """All nodes, pre-order (shared subtrees yielded once per use)."""
        stack: list[LogicalNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def pretty(self) -> str:
        """A multi-line rendering of the logical plan."""
        lines: list[str] = []

        def render(node: LogicalNode, depth: int) -> None:
            lines.append("  " * depth + node.describe())
            for child in node.children():
                render(child, depth + 1)

        render(self, 0)
        return "\n".join(lines)

    def describe(self) -> str:
        """One line: kind, parameters, estimate."""
        params = self._params()
        inner = f"[{params}] " if params else ""
        return f"{self.kind} {inner}(≈{self.estimated_states} states)"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


class StaticAtom(LogicalNode):
    """A document-independent leaf: a compiled (normalized) VA."""

    kind = "atom"
    __slots__ = ("va", "origin")

    def __init__(self, va: VA, origin: str | None = None):
        super().__init__()
        self.va = va
        #: Optional provenance label (the RA placeholder name, or the rule
        #: that folded this atom) — display only.
        self.origin = origin

    def children(self) -> tuple[LogicalNode, ...]:
        return ()

    def _params(self) -> str:
        return self.va.fingerprint()

    @property
    def variables(self) -> frozenset[Variable]:
        return self.va.variables

    @property
    def estimated_states(self) -> int:
        return self.va.n_states

    @property
    def is_empty(self) -> bool:
        """Whether this atom is the empty spanner (statically known)."""
        return not self.va.accepting

    def describe(self) -> str:
        name = f" «{self.origin}»" if self.origin else ""
        return (
            f"{self.kind}{name} VA(states={self.va.n_states}, "
            f"transitions={self.va.n_transitions})"
        )


class BlackboxAtom(LogicalNode):
    """An opaque :class:`Spanner` leaf, materialised per document
    (Corollary 5.3)."""

    kind = "blackbox"
    __slots__ = ("atom", "origin")

    def __init__(self, atom: Spanner, origin: str | None = None):
        super().__init__()
        self.atom = atom
        self.origin = origin

    def children(self) -> tuple[LogicalNode, ...]:
        return ()

    def _params(self) -> str:
        return str(id(self.atom))  # in-process identity; see module docstring

    @property
    def variables(self) -> frozenset[Variable]:
        return self.atom.variables()

    @property
    def estimated_states(self) -> int:
        return BLACKBOX_ESTIMATE

    def describe(self) -> str:
        name = f" «{self.origin}»" if self.origin else ""
        return f"{self.kind}{name} {self.atom!r}"


class LProject(LogicalNode):
    """``π_keep`` with a resolved variable set."""

    kind = "π"
    __slots__ = ("child", "keep")

    def __init__(self, child: LogicalNode, keep: frozenset[Variable]):
        super().__init__()
        self.child = child
        self.keep = frozenset(keep)

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def _params(self) -> str:
        return ",".join(sorted(repr(v) for v in self.keep))

    @property
    def variables(self) -> frozenset[Variable]:
        return self.child.variables & self.keep

    @property
    def estimated_states(self) -> int:
        return self.child.estimated_states


class _NaryNode(LogicalNode):
    """Shared shape of the n-ary operators."""

    __slots__ = ("operands",)

    def __init__(self, operands):
        super().__init__()
        self.operands = tuple(operands)

    def children(self) -> tuple[LogicalNode, ...]:
        return self.operands

    def _params(self) -> str:
        return str(len(self.operands))

    @property
    def variables(self) -> frozenset[Variable]:
        out: frozenset[Variable] = frozenset()
        for child in self.operands:
            out |= child.variables
        return out


class LUnion(_NaryNode):
    """N-ary ``∪`` (flattened; order is canonicalised by the optimizer)."""

    kind = "∪"
    __slots__ = ()

    @property
    def estimated_states(self) -> int:
        return min(
            ESTIMATE_CAP, 1 + sum(child.estimated_states for child in self.operands)
        )


class LJoin(_NaryNode):
    """N-ary natural ``⋈`` (flattened; associative and commutative under
    the schemaless semantics, §2.4)."""

    kind = "⋈"
    __slots__ = ()

    @property
    def estimated_states(self) -> int:
        product = 1
        for child in self.operands:
            product = min(ESTIMATE_CAP, product * max(1, child.estimated_states))
        return product

    def shared_variables(self) -> frozenset[Variable]:
        """Variables appearing in at least two operands — the only ones
        join compatibility can constrain."""
        seen: set[Variable] = set()
        shared: set[Variable] = set()
        for child in self.operands:
            child_vars = child.variables
            shared |= child_vars & seen
            seen |= child_vars
        return frozenset(shared)


class LDifference(LogicalNode):
    """``\\`` — compiled ad hoc per document (Lemma 4.2)."""

    kind = "∖"
    __slots__ = ("left", "right")

    def __init__(self, left: LogicalNode, right: LogicalNode):
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def _params(self) -> str:
        return ""

    @property
    def variables(self) -> frozenset[Variable]:
        return self.left.variables  # difference outputs minuend mappings

    @property
    def estimated_states(self) -> int:
        return min(ESTIMATE_CAP, 2 * self.left.estimated_states)


class LSyncDifference(LDifference):
    """A difference the optimizer proved eligible for the synchronized
    compilation (Theorem 4.8): the static subtrahend is synchronized for
    the common variables, so the per-document build is polynomial without
    any bound on how many variables the operands share."""

    kind = "∖ˢ"
    __slots__ = ()


def from_ra(
    tree: RANode, instantiation: Instantiation, config=None
) -> LogicalNode:
    """Resolve an instantiated RA tree into a logical plan.

    Static leaves compile (and normalize) here — the logical plan owns its
    automata; ``config`` is accepted for signature symmetry with the
    physical planner and is unused (degree bounds apply at materialisation
    time).
    """
    from .planner import compile_static_atom, resolve_projection

    def build(node: RANode) -> LogicalNode:
        if isinstance(node, Leaf):
            atom = instantiation.spanner(node.name)
            static = compile_static_atom(atom)
            if static is None:
                return BlackboxAtom(atom, origin=node.name)
            return StaticAtom(static, origin=node.name)
        if isinstance(node, Project):
            return LProject(build(node.child), resolve_projection(node, instantiation))
        if isinstance(node, UnionNode):
            return LUnion((build(node.left), build(node.right)))
        if isinstance(node, Join):
            return LJoin((build(node.left), build(node.right)))
        if isinstance(node, Difference):
            return LDifference(build(node.left), build(node.right))
        raise TypeError(f"unknown RA node type {type(node).__name__}")

    return build(tree)
