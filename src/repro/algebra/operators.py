"""Semantic (materialising) spanner combinators — the baseline algebra.

These combinators implement §2.4's operators by materialising their
operands' relations and combining them set-theoretically.  They are:

* the **ground truth** every compiled construction is tested against;
* the **naive baseline** of the benchmarks (they pay the full output size
  of both operands, which the hardness reductions drive exponential);
* the fallback for operands with no better representation (black boxes).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.document import Document, as_document
from ..core.mapping import Mapping, Variable
from ..core.relation import SpanRelation
from ..core.spanner import Spanner


class UnionSpanner(Spanner):
    """``P1 ∪ P2`` by materialisation."""

    def __init__(self, first: Spanner, second: Spanner):
        self.first = first
        self.second = second

    def variables(self) -> frozenset[Variable]:
        return self.first.variables() | self.second.variables()

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        seen: set[Mapping] = set()
        for source in (self.first, self.second):
            for mapping in source.enumerate(doc):
                if mapping not in seen:
                    seen.add(mapping)
                    yield mapping

    def __repr__(self) -> str:
        return f"({self.first!r} ∪ {self.second!r})"


class ProjectionSpanner(Spanner):
    """``π_Y P`` by materialisation."""

    def __init__(self, source: Spanner, keep: Iterable[Variable]):
        self.source = source
        self.keep = frozenset(keep)

    def variables(self) -> frozenset[Variable]:
        return self.source.variables() & self.keep

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        seen: set[Mapping] = set()
        for mapping in self.source.enumerate(as_document(document)):
            projected = mapping.restrict(self.keep)
            if projected not in seen:
                seen.add(projected)
                yield projected

    def __repr__(self) -> str:
        return f"π_{sorted(self.keep)}({self.source!r})"


class JoinSpanner(Spanner):
    """``P1 ⋈ P2`` by full materialisation of both operands.

    This is the baseline whose worst case Theorem 3.1 pins at NP-hard:
    with unboundedly many shared variables there can be exponentially many
    candidate pairs and no output-efficient shortcut (unless P = NP).
    """

    def __init__(self, first: Spanner, second: Spanner):
        self.first = first
        self.second = second

    def variables(self) -> frozenset[Variable]:
        return self.first.variables() | self.second.variables()

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        left = list(self.first.enumerate(doc))
        seen: set[Mapping] = set()
        for right_mapping in self.second.enumerate(doc):
            for left_mapping in left:
                if left_mapping.is_compatible(right_mapping):
                    joined = left_mapping.union(right_mapping)
                    if joined not in seen:
                        seen.add(joined)
                        yield joined

    def __repr__(self) -> str:
        return f"({self.first!r} ⋈ {self.second!r})"


class DifferenceSpanner(Spanner):
    """``P1 \\ P2`` by full materialisation of both operands (baseline
    pinned NP-hard in general by Theorem 4.1)."""

    def __init__(self, first: Spanner, second: Spanner):
        self.first = first
        self.second = second

    def variables(self) -> frozenset[Variable]:
        return self.first.variables()

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        right = list(self.second.enumerate(doc))
        for mapping in self.first.enumerate(doc):
            if not any(mapping.is_compatible(other) for other in right):
                yield mapping

    def __repr__(self) -> str:
        return f"({self.first!r} \\ {self.second!r})"


def semantic_union(first: SpanRelation, second: SpanRelation) -> SpanRelation:
    """Relation-level union (re-exported for symmetry)."""
    return first.union(second)


def semantic_join(first: SpanRelation, second: SpanRelation) -> SpanRelation:
    """Relation-level natural join."""
    return first.join(second)


def semantic_difference(first: SpanRelation, second: SpanRelation) -> SpanRelation:
    """Relation-level SPARQL difference."""
    return first.difference(second)


def semantic_projection(relation: SpanRelation, keep: Iterable[Variable]) -> SpanRelation:
    """Relation-level projection."""
    return relation.project(keep)
