"""Difference against a synchronized subtrahend (Theorem 4.8 / Cor. 4.9).

Bounding the number of common variables (Lemma 4.2) is one route to a
tractable difference; this module implements the other: ``A1 \\ A2`` with
**unboundedly many** common variables X, provided ``A1`` is semi-functional
for X and ``A2`` is synchronized for X.

Construction (following Appendix B.5, see DESIGN.md for the deviation):

1. Project ``A2`` onto X and trim.  Synchronizedness makes every variable
   either used on all accepting runs or on none; never-used variables are
   dropped from X (they cannot constrain compatibility), after which the
   subtrahend is *functional* over the effective common set.
2. Build the match graphs of both operands on the document.  Decompose
   ``A1`` by the exact subset ``Y`` of common variables its runs use.
3. For each component, sweep the document once, tracking per layer the
   pairs ``(q1, T)`` where ``q1`` is an A1-state and ``T`` the **set** of
   A2 match-graph states reachable under operation sets that agree with
   A1's on ``Γ_Y`` (operations on skipped variables are unconstrained —
   a compatible subtrahend mapping may place them anywhere).
4. Accept exactly when no consistent A2 acceptance exists — then, and only
   then, the A1 mapping survives the difference.

Tracking the *set* ``T`` is the universally-correct form of the paper's
deterministic match structure ``D2``: for a synchronized subtrahend the
sets stay polynomially small (they are the paper's D2 states), which
:func:`sync_difference_stats` verifies empirically (E8 ablation).  The
construction is *correct* for any sequential functional-over-X subtrahend;
only the polynomial bound needs synchronizedness, so ``require_synchronized
= False`` lets experiments probe the unsynchronized regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.document import Document, as_document
from ..core.errors import NotSequentialError, NotSynchronizedError
from ..core.mapping import Variable
from ..va.automaton import VA, State
from ..va.matchgraph import FactorizedVA, MatchGraph, OpSet
from ..va.matchstruct import never_used_variables
from ..va.operations import empty_va, project_va, trim, union_all
from ..va.properties import is_functional, is_sequential, is_synchronized_for
from .join import _ProductBuilder, used_set_components


@dataclass
class SyncDifferenceStats:
    """Instrumentation of one synchronized-difference compilation."""

    effective_common: frozenset[Variable] = frozenset()
    components: int = 0
    max_tracked_set: int = 0  # width of the D2-like subset tracking
    product_nodes: int = 0

    def observe_set(self, size: int) -> None:
        self.max_tracked_set = max(self.max_tracked_set, size)


def synchronized_difference(
    first: VA,
    second: VA,
    document: Document | str,
    require_synchronized: bool = True,
    stats: SyncDifferenceStats | None = None,
) -> VA:
    """An ad-hoc sequential VA ``Ad`` with ``⟦Ad⟧(d) = ⟦A1 \\ A2⟧(d)``
    (Theorem 4.8).

    Args:
        first: the minuend ``A1`` (sequential; semi-functionalised for the
            common variables internally if needed).
        second: the subtrahend ``A2``; must be synchronized for the common
            variables unless ``require_synchronized=False``.
        document: the document the result is valid for.
        require_synchronized: when True (default), raise
            :class:`NotSynchronizedError` if ``A2`` is not synchronized
            for the effective common variables — without that property the
            polynomial size bound is forfeit (the construction stays
            correct).
        stats: optional accumulator for the E8 ablation measurements.
    """
    if not is_sequential(first) or not is_sequential(second):
        raise NotSequentialError("synchronized_difference requires sequential operands")
    doc = as_document(document)
    first = trim(first)
    second = trim(second)
    common = first.variables & second.variables

    projected = trim(project_va(second, common))
    if not projected.accepting:
        return first  # the subtrahend is the empty spanner
    # Drop variables the subtrahend never extracts: they never constrain
    # compatibility.  For a synchronized subtrahend every variable is
    # all-or-nothing, so afterwards the projection is functional.
    unused = never_used_variables(projected, common)
    effective = common - unused
    subtrahend = trim(project_va(projected, effective))
    if effective and require_synchronized and not is_synchronized_for(subtrahend, effective):
        raise NotSynchronizedError(
            "the subtrahend is not synchronized for the common variables "
            f"{sorted(effective)}; Theorem 4.8 does not apply "
            "(pass require_synchronized=False to build anyway, or use "
            "adhoc_difference for the bounded-common-variable route)"
        )
    if effective and not is_functional(subtrahend):
        raise NotSynchronizedError(
            "after dropping never-used variables the subtrahend must be "
            "functional over the common variables; it is not — the input "
            "violates Theorem 4.8's preconditions"
        )
    if stats is not None:
        stats.effective_common = frozenset(effective)

    graph2 = MatchGraph(FactorizedVA(subtrahend), doc)
    if graph2.is_empty:
        return first  # the subtrahend extracts nothing from this document
    if not effective:
        # Boolean subtrahend that accepts d: its empty mapping is
        # compatible with everything.
        return empty_va()

    components = used_set_components(first, effective)
    if stats is not None:
        stats.components = len(components)
    pieces: list[VA] = []
    for used, component in components.items():
        piece = _component_difference(component, used, graph2, doc, stats)
        if piece is not None:
            pieces.append(piece)
    if not pieces:
        return empty_va()
    if len(pieces) == 1:
        return pieces[0]
    return union_all(pieces).relabelled()


def _component_difference(
    component: VA,
    used: frozenset[Variable],
    graph2: MatchGraph,
    doc: Document,
    stats: SyncDifferenceStats | None,
) -> VA | None:
    """The ad-hoc automaton for one used-set component of the minuend."""
    graph1 = MatchGraph(FactorizedVA(component), doc)
    if graph1.is_empty:
        return None
    n = len(doc)

    def constrained(ops: OpSet) -> OpSet:
        return frozenset(op for op in ops if op.var in used)

    builder = _ProductBuilder()
    accept: State = ("acc",)
    accepting_used = False
    initial_tracked: frozenset[State] = frozenset((graph2.factorized.va.initial,))
    initial: State = (0, graph1.factorized.va.initial, initial_tracked)
    seen: set[State] = {initial}
    stack: list[State] = [initial]
    while stack:
        node = stack.pop()
        layer, q1, tracked = node
        if stats is not None:
            stats.observe_set(len(tracked))
            stats.product_nodes += 1
        if layer == n:
            for ops1 in graph1.final_opsets.get(q1, frozenset()):
                key = constrained(ops1)
                blocked = any(
                    constrained(ops2) == key
                    for q2 in tracked
                    for ops2 in graph2.final_opsets.get(q2, frozenset())
                )
                if not blocked:
                    builder.chain(node, ops1, None, accept)
                    accepting_used = True
            continue
        options2 = graph2.successor_options(layer, tracked) if tracked else {}
        for ops1, targets1 in graph1.edges[layer].get(q1, {}).items():
            key = constrained(ops1)
            next_tracked = frozenset(
                t
                for ops2, targets2 in options2.items()
                if constrained(ops2) == key
                for t in targets2
            )
            letter = doc.letter(layer + 1)
            for r1 in targets1:
                target: State = (layer + 1, r1, next_tracked)
                builder.chain(node, ops1, letter, target)
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
    if not accepting_used:
        return None
    return trim(VA(initial, (accept,), builder.transitions))
