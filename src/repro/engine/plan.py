"""Compiled query plans: the static prefix / ad-hoc suffix split.

The paper separates RA-tree compilation into a *static* part that is
document independent — regex/VA leaves, projections, unions, and FPT joins
(Sections 3 and 5) — and an *ad-hoc* part that must be rebuilt per
document — differences (Section 4 proves static compilation blows up) and
black-box leaves (Corollary 5.3 materialises them on the document).

:func:`build_plan` fuses every maximal static subtree bottom-up into a
single pre-compiled :class:`StaticNode`, leaving only the ad-hoc suffix as
live plan nodes.  Evaluating the plan on a document then recompiles *only*
the suffix; a query with no difference and no black box collapses to one
:class:`StaticNode` and is compiled exactly once, ever.

The compilation primitives themselves live in
:mod:`repro.algebra.planner` — this module only decides *when* each one
runs.
"""

from __future__ import annotations

import abc
from typing import Iterator

from ..algebra.planner import (
    PlannerConfig,
    apply_difference,
    apply_join,
    apply_project,
    apply_union,
    compile_static_atom,
    materialise_blackbox,
    resolve_projection,
)
from ..algebra.ra_tree import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    Project,
    RANode,
    UnionNode,
)
from ..core.document import Document
from ..core.mapping import Variable
from ..core.spanner import Spanner
from ..va.automaton import VA
from .stats import EngineStats


class PlanNode(abc.ABC):
    """A node of a compiled plan.  Static nodes carry their VA; ad-hoc
    nodes compile per document on demand."""

    is_static: bool = False

    @abc.abstractmethod
    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        """The node's VA for one document."""

    def walk(self) -> Iterator["PlanNode"]:
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def children(self) -> tuple["PlanNode", ...]:
        return ()


class StaticNode(PlanNode):
    """A maximal document-independent subtree, compiled once at plan-build
    time."""

    is_static = True
    __slots__ = ("va",)

    def __init__(self, va: VA):
        self.va = va

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.static_reuses += 1
        return self.va

    def __repr__(self) -> str:
        return f"StaticNode({self.va!r})"


class BlackboxNode(PlanNode):
    """A black-box leaf, materialised per document (Corollary 5.3)."""

    __slots__ = ("atom", "config")

    def __init__(self, atom: Spanner, config: PlannerConfig):
        self.atom = atom
        self.config = config

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return materialise_blackbox(self.atom, doc, self.config)

    def __repr__(self) -> str:
        return f"BlackboxNode({self.atom!r})"


class ProjectNode(PlanNode):
    """Projection over an ad-hoc child."""

    __slots__ = ("child", "keep")

    def __init__(self, child: PlanNode, keep: frozenset[Variable]):
        self.child = child
        self.keep = keep

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_project(self.child.compile_for(doc, stats), self.keep)


class UnionPlanNode(PlanNode):
    """Union with at least one ad-hoc side."""

    __slots__ = ("left", "right")

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_union(
            self.left.compile_for(doc, stats), self.right.compile_for(doc, stats)
        )


class JoinPlanNode(PlanNode):
    """FPT join with at least one ad-hoc side."""

    __slots__ = ("left", "right", "config")

    def __init__(self, left: PlanNode, right: PlanNode, config: PlannerConfig):
        self.left = left
        self.right = right
        self.config = config

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_join(
            self.left.compile_for(doc, stats),
            self.right.compile_for(doc, stats),
            self.config,
        )


class DifferencePlanNode(PlanNode):
    """Difference — always ad hoc (Section 4)."""

    __slots__ = ("left", "right", "config")

    def __init__(self, left: PlanNode, right: PlanNode, config: PlannerConfig):
        self.left = left
        self.right = right
        self.config = config

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_difference(
            self.left.compile_for(doc, stats),
            self.right.compile_for(doc, stats),
            doc,
            self.config,
        )


class CompiledPlan:
    """The compiled form of one instantiated RA tree.

    Attributes:
        root: the plan's root node.
        config: the planner configuration baked into the plan.
        n_static: plan nodes compiled once at build time (each may cover a
            whole fused subtree of the original RA tree).
        n_adhoc: plan nodes recompiled for every document.
    """

    __slots__ = ("root", "tree", "instantiation", "config", "n_static", "n_adhoc")

    def __init__(
        self,
        root: PlanNode,
        tree: RANode,
        instantiation: Instantiation,
        config: PlannerConfig,
    ):
        self.root = root
        self.tree = tree
        self.instantiation = instantiation
        self.config = config
        nodes = list(root.walk())
        self.n_static = sum(1 for node in nodes if node.is_static)
        self.n_adhoc = len(nodes) - self.n_static

    @property
    def is_fully_static(self) -> bool:
        """Whether one VA serves every document (no ad-hoc suffix)."""
        return self.root.is_static

    def va_for(self, doc: Document, stats: EngineStats) -> VA:
        """The (possibly ad-hoc) VA evaluating the query on ``doc``."""
        return self.root.compile_for(doc, stats)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(static={self.n_static}, adhoc={self.n_adhoc}, "
            f"fully_static={self.is_fully_static})"
        )


def build_plan(
    tree: RANode, instantiation: Instantiation, config: PlannerConfig | None = None
) -> CompiledPlan:
    """Compile the static prefix of an instantiated RA tree and return the
    plan evaluating the rest per document."""
    config = config or PlannerConfig()
    instantiation.validate(tree)
    root = _build(tree, instantiation, config)
    return CompiledPlan(root, tree, instantiation, config)


def _build(node: RANode, inst: Instantiation, config: PlannerConfig) -> PlanNode:
    if isinstance(node, Leaf):
        atom = inst.spanner(node.name)
        static = compile_static_atom(atom)
        if static is None:
            return BlackboxNode(atom, config)
        return StaticNode(static)
    if isinstance(node, Project):
        child = _build(node.child, inst, config)
        keep = resolve_projection(node, inst)
        if child.is_static:
            return StaticNode(apply_project(child.va, keep))
        return ProjectNode(child, keep)
    if isinstance(node, UnionNode):
        left = _build(node.left, inst, config)
        right = _build(node.right, inst, config)
        if left.is_static and right.is_static:
            return StaticNode(apply_union(left.va, right.va))
        return UnionPlanNode(left, right)
    if isinstance(node, Join):
        left = _build(node.left, inst, config)
        right = _build(node.right, inst, config)
        if left.is_static and right.is_static:
            return StaticNode(apply_join(left.va, right.va, config))
        return JoinPlanNode(left, right, config)
    if isinstance(node, Difference):
        return DifferencePlanNode(
            _build(node.left, inst, config),
            _build(node.right, inst, config),
            config,
        )
    raise TypeError(f"unknown RA node type {type(node).__name__}")
