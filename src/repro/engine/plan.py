"""Compiled query plans: logical IR → optimizer → physical plan.

The paper separates RA-tree compilation into a *static* part that is
document independent — regex/VA leaves, projections, unions, and FPT joins
(Sections 3 and 5) — and an *ad-hoc* part that must be rebuilt per
document — differences (Section 4 proves static compilation blows up) and
black-box leaves (Corollary 5.3 materialises them on the document).

:func:`build_plan` runs the full pipeline:

1. resolve the instantiated RA tree into the logical IR
   (:func:`repro.algebra.logical.from_ra`);
2. optimize it with the rewrite-rule engine
   (:func:`repro.engine.optimizer.optimize`) — skipped with
   ``optimize=False``;
3. **lower** the logical plan, fusing every maximal static subtree
   bottom-up into a single pre-compiled :class:`StaticNode` and leaving
   only the ad-hoc suffix as live plan nodes.  Lowering memoizes physical
   nodes by logical fingerprint, so duplicate subtrees share one compiled
   node (plan-level CSE); an engine-supplied ``static_cache`` extends the
   sharing across queries.

Evaluating the plan on a document then recompiles *only* the ad-hoc
suffix; a query with no difference and no black box collapses to one
:class:`StaticNode` and is compiled exactly once, ever.

The compilation primitives themselves live in
:mod:`repro.algebra.planner` — this module only decides *when* each one
runs.
"""

from __future__ import annotations

import abc
from dataclasses import replace
from typing import Iterator, MutableMapping

from ..algebra.logical import (
    BlackboxAtom,
    LDifference,
    LJoin,
    LProject,
    LSyncDifference,
    LUnion,
    LogicalNode,
    StaticAtom,
    from_ra,
)
from ..algebra.planner import (
    PlannerConfig,
    apply_difference,
    apply_join,
    apply_project,
    apply_sync_difference,
    apply_union,
    materialise_blackbox,
)
from ..algebra.ra_tree import Instantiation, RANode
from ..core.document import Document
from ..core.errors import SpannerError
from ..core.mapping import Variable
from ..core.spanner import Spanner
from ..va.automaton import VA
from .optimizer import OptimizerReport, optimize
from .stats import EngineStats


class PlanNode(abc.ABC):
    """A node of a compiled plan.  Static nodes carry their VA; ad-hoc
    nodes compile per document on demand."""

    is_static: bool = False

    @abc.abstractmethod
    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        """The node's VA for one document."""

    def walk(self) -> Iterator["PlanNode"]:
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self) -> str:
        """One line for :meth:`CompiledPlan.explain`."""
        return type(self).__name__


class StaticNode(PlanNode):
    """A maximal document-independent subtree, compiled once at plan-build
    time."""

    is_static = True
    __slots__ = ("va",)

    def __init__(self, va: VA):
        self.va = va

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.static_reuses += 1
        return self.va

    def describe(self) -> str:
        return f"static {self.va!r}"

    def __repr__(self) -> str:
        return f"StaticNode({self.va!r})"


class BlackboxNode(PlanNode):
    """A black-box leaf, materialised per document (Corollary 5.3)."""

    __slots__ = ("atom", "config")

    def __init__(self, atom: Spanner, config: PlannerConfig):
        self.atom = atom
        self.config = config

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return materialise_blackbox(self.atom, doc, self.config)

    def describe(self) -> str:
        return f"blackbox {self.atom!r} [per document]"

    def __repr__(self) -> str:
        return f"BlackboxNode({self.atom!r})"


class ProjectNode(PlanNode):
    """Projection over an ad-hoc child."""

    __slots__ = ("child", "keep")

    def __init__(self, child: PlanNode, keep: frozenset[Variable]):
        self.child = child
        self.keep = keep

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_project(self.child.compile_for(doc, stats), self.keep)

    def describe(self) -> str:
        keep = ",".join(sorted(map(str, self.keep)))
        return f"π[{keep}] [ad hoc]"


class UnionPlanNode(PlanNode):
    """Union with at least one ad-hoc side."""

    __slots__ = ("left", "right")

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_union(
            self.left.compile_for(doc, stats), self.right.compile_for(doc, stats)
        )

    def describe(self) -> str:
        return "∪ [ad hoc]"


class JoinPlanNode(PlanNode):
    """FPT join with at least one ad-hoc side."""

    __slots__ = ("left", "right", "config")

    def __init__(self, left: PlanNode, right: PlanNode, config: PlannerConfig):
        self.left = left
        self.right = right
        self.config = config

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_join(
            self.left.compile_for(doc, stats),
            self.right.compile_for(doc, stats),
            self.config,
        )

    def describe(self) -> str:
        return "⋈ [ad hoc]"


class DifferencePlanNode(PlanNode):
    """Difference — always ad hoc (Section 4)."""

    __slots__ = ("left", "right", "config")

    def __init__(self, left: PlanNode, right: PlanNode, config: PlannerConfig):
        self.left = left
        self.right = right
        self.config = config

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_difference(
            self.left.compile_for(doc, stats),
            self.right.compile_for(doc, stats),
            doc,
            self.config,
        )

    def describe(self) -> str:
        return "∖ [ad hoc]"


class SyncDifferencePlanNode(DifferencePlanNode):
    """Difference lowered by the optimizer to the synchronized compilation
    (Theorem 4.8): the subtrahend was statically proven synchronized for
    the common variables, so the per-document build is polynomial without
    Theorem 5.2's ``max_shared`` bound — which is therefore deliberately
    *not* enforced on this path."""

    __slots__ = ()

    def compile_for(self, doc: Document, stats: EngineStats) -> VA:
        stats.adhoc_compiles += 1
        return apply_sync_difference(
            self.left.compile_for(doc, stats),
            self.right.compile_for(doc, stats),
            doc,
        )

    def describe(self) -> str:
        return "∖ synchronized (Thm 4.8) [ad hoc]"


class CompiledPlan:
    """The compiled form of one instantiated RA tree.

    Attributes:
        root: the plan's root node.
        logical: the (optimized) logical plan the physical one was lowered
            from, or ``None`` for bare-VA plans.
        report: the :class:`OptimizerReport`, or ``None`` when the
            optimizer was disabled.
        config: the planner configuration baked into the plan.
        n_static: distinct plan nodes compiled once at build time (each may
            cover a whole fused subtree of the original RA tree).
        n_adhoc: distinct plan nodes recompiled for every document.
    """

    __slots__ = (
        "root",
        "tree",
        "instantiation",
        "config",
        "logical",
        "report",
        "n_static",
        "n_adhoc",
    )

    def __init__(
        self,
        root: PlanNode,
        tree: "RANode | None",
        instantiation: "Instantiation | None",
        config: PlannerConfig,
        logical: "LogicalNode | None" = None,
        report: "OptimizerReport | None" = None,
    ):
        self.root = root
        self.tree = tree
        self.instantiation = instantiation
        self.config = config
        self.logical = logical
        self.report = report
        # CSE can make the plan a DAG; count each shared node once.
        nodes = {id(node): node for node in root.walk()}
        self.n_static = sum(1 for node in nodes.values() if node.is_static)
        self.n_adhoc = len(nodes) - self.n_static

    @property
    def is_fully_static(self) -> bool:
        """Whether one VA serves every document (no ad-hoc suffix)."""
        return self.root.is_static

    def va_for(self, doc: Document, stats: EngineStats) -> VA:
        """The (possibly ad-hoc) VA evaluating the query on ``doc``."""
        return self.root.compile_for(doc, stats)

    def static_states(self) -> int:
        """Total states across the distinct pre-compiled static nodes —
        the size the optimizer tries to shrink."""
        nodes = {id(node): node for node in self.root.walk()}
        return sum(
            node.va.n_states for node in nodes.values() if isinstance(node, StaticNode)
        )

    def explain(self) -> str:
        """A multi-line rendering of the plan: the physical tree (shared
        CSE nodes marked), the optimized logical plan, and the optimizer's
        rule-fire summary."""
        uses: dict[int, int] = {}
        for node in self.root.walk():
            uses[id(node)] = uses.get(id(node), 0) + 1
        lines = [repr(self)]
        lines.append("physical:")

        def render(node: PlanNode, depth: int) -> None:
            shared = f" [shared ×{uses[id(node)]}]" if uses[id(node)] > 1 else ""
            lines.append("  " * (depth + 1) + node.describe() + shared)
            for child in node.children():
                render(child, depth + 1)

        render(self.root, 0)
        root = self.root
        if isinstance(root, StaticNode):
            from ..va.properties import is_sequential

            if is_sequential(root.va):
                lines.append(f"prefilter: {root.va.prefilter().describe()}")
            else:
                lines.append("prefilter: n/a (non-sequential automaton)")
        else:
            lines.append("prefilter: n/a (ad-hoc plan suffix)")
        if self.logical is not None:
            label = "logical (optimized):" if self.report is not None else "logical:"
            lines.append(label)
            for line in self.logical.pretty().splitlines():
                lines.append("  " + line)
        if self.report is not None:
            lines.append(f"optimizer: {self.report.summary()}")
        else:
            lines.append("optimizer: disabled")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(static={self.n_static}, adhoc={self.n_adhoc}, "
            f"fully_static={self.is_fully_static})"
        )


def check_join_bounds(node: LogicalNode, config: PlannerConfig) -> None:
    """Enforce Theorem 5.2's shared-variable bound on the query's joins
    *as written*.

    The optimizer flattens and reorders join folds, so the lowering's
    pairwise check would otherwise be evaluated against a different
    association than the user wrote — and a valid query could start
    failing (or an invalid one passing) depending on what the rules did.
    Checking here, on the pre-rewrite logical tree, keeps the bound's
    behaviour independent of the optimizer.  Differences keep their check
    at compile time (matching the per-document materialisation of
    black-box operands) — except the synchronized path, which needs no
    bound (Theorem 4.8).
    """
    if config.max_shared is None:
        return
    for current in node.walk():
        if not isinstance(current, LJoin):
            continue
        operands = current.operands
        for i in range(len(operands)):
            for j in range(i + 1, len(operands)):
                shared = operands[i].variables & operands[j].variables
                if len(shared) > config.max_shared:
                    raise SpannerError(
                        f"join node shares {len(shared)} variables "
                        f"{sorted(shared)}, exceeding the configured bound "
                        f"{config.max_shared} (Theorem 5.2)"
                    )


def resolve_logical(
    tree: RANode,
    instantiation: Instantiation,
    config: PlannerConfig,
    optimize_plan: bool,
    stats: "EngineStats | None" = None,
) -> "tuple[LogicalNode, OptimizerReport | None]":
    """The front half of plan compilation, shared by :func:`build_plan`
    and the engine: validate, resolve the logical IR, enforce the join
    bound on the as-written shape, run the rewrite rules, and fold the
    per-rule counters into ``stats``."""
    instantiation.validate(tree)
    logical = from_ra(tree, instantiation, config)
    report: OptimizerReport | None = None
    if optimize_plan:
        check_join_bounds(logical, config)
        logical, report = optimize(logical)
        if stats is not None:
            stats.rules_fired += report.total_fired
            for name, count in report.fired.items():
                stats.rule_fires[name] = stats.rule_fires.get(name, 0) + count
    return logical, report


def build_plan(
    tree: RANode,
    instantiation: Instantiation,
    config: PlannerConfig | None = None,
    *,
    optimize_plan: bool = True,
    stats: "EngineStats | None" = None,
    static_cache: "MutableMapping[object, StaticNode] | None" = None,
) -> CompiledPlan:
    """Compile an instantiated RA tree: logical IR → optimizer → lowering.

    Args:
        optimize_plan: run the rewrite-rule optimizer (default); ``False``
            lowers the raw logical tree — the escape hatch the engine's
            ``optimize=False`` exposes.
        stats: optional :class:`EngineStats` receiving rule-fire and CSE
            counters.
        static_cache: optional fingerprint-keyed cache of
            :class:`StaticNode` shared across plans (supplied by the
            engine).
    """
    config = config or PlannerConfig()
    logical, report = resolve_logical(tree, instantiation, config, optimize_plan, stats)
    return plan_from_logical(
        logical,
        tree,
        instantiation,
        config,
        report=report,
        stats=stats,
        static_cache=static_cache,
        join_bound_checked=optimize_plan,
    )


def plan_from_logical(
    logical: LogicalNode,
    tree: "RANode | None",
    instantiation: "Instantiation | None",
    config: PlannerConfig,
    report: "OptimizerReport | None" = None,
    stats: "EngineStats | None" = None,
    static_cache: "MutableMapping[object, StaticNode] | None" = None,
    join_bound_checked: bool = False,
) -> CompiledPlan:
    """Lower an already-built (and possibly optimized) logical plan.

    ``join_bound_checked=True`` records that :func:`check_join_bounds`
    already ran on the pre-rewrite tree, so lowering skips the pairwise
    join check (whose pairs the optimizer may have reassociated).
    """
    root = lower_logical(
        logical,
        config,
        stats=stats,
        static_cache=static_cache,
        join_bound_checked=join_bound_checked,
    )
    return CompiledPlan(root, tree, instantiation, config, logical, report)


def lower_logical(
    node: LogicalNode,
    config: PlannerConfig,
    *,
    stats: "EngineStats | None" = None,
    static_cache: "MutableMapping[object, StaticNode] | None" = None,
    join_bound_checked: bool = False,
    _memo: "dict[str, PlanNode] | None" = None,
) -> PlanNode:
    """Lower a logical plan to physical nodes with static fusion and CSE.

    Duplicate logical subtrees (by fingerprint) lower to the *same*
    physical node, so their static prefixes compile once and their
    prepared forms (``VA.indexed()``) are shared.  ``static_cache``
    extends the same sharing across plans: any fully static subtree is
    looked up by fingerprint (plus the join bound its compilation is
    subject to, so a lax-config plan can never satisfy a strict-config
    query from cache) before being compiled.
    """
    memo: dict[str, PlanNode] = {} if _memo is None else _memo
    # When the bound was already enforced on the as-written tree, the
    # (possibly reassociated) join folds must not re-check different pairs.
    join_config = (
        replace(config, max_shared=None) if join_bound_checked else config
    )

    def intern_static(fingerprint: str, build) -> StaticNode:
        key = (fingerprint, join_config.max_shared)
        if static_cache is not None:
            cached = static_cache.get(key)
            if cached is not None:
                if stats is not None:
                    stats.cse_hits += 1
                return cached
        built = StaticNode(build())
        if static_cache is not None:
            static_cache[key] = built
        return built

    def fold_static(nodes: list[StaticNode], combine) -> StaticNode:
        va = nodes[0].va
        for other in nodes[1:]:
            va = combine(va, other.va)
        return StaticNode(va)

    def lower(node: LogicalNode) -> PlanNode:
        hit = memo.get(node.fingerprint)
        if hit is not None:
            if stats is not None:
                stats.cse_hits += 1
            return hit
        out = _lower(node)
        memo[node.fingerprint] = out
        return out

    def _lower(node: LogicalNode) -> PlanNode:
        if isinstance(node, StaticAtom):
            return intern_static(node.fingerprint, lambda: node.va)
        if isinstance(node, BlackboxAtom):
            return BlackboxNode(node.atom, config)
        if isinstance(node, LProject):
            child = lower(node.child)
            if child.is_static:
                return intern_static(
                    node.fingerprint, lambda: apply_project(child.va, node.keep)
                )
            return ProjectNode(child, node.keep)
        if isinstance(node, (LUnion, LJoin)):
            lowered = [lower(child) for child in node.operands]
            statics = [n for n in lowered if n.is_static]
            adhoc = [n for n in lowered if not n.is_static]
            if isinstance(node, LUnion):
                combine = apply_union
                binary = UnionPlanNode
            else:
                combine = lambda a, b: apply_join(a, b, join_config)  # noqa: E731
                binary = lambda left, right: JoinPlanNode(left, right, join_config)  # noqa: E731
            if statics and not adhoc:
                return intern_static(
                    node.fingerprint, lambda: fold_static(statics, combine).va
                )
            pieces: list[PlanNode] = (
                [fold_static(statics, combine)] if statics else []
            ) + adhoc
            result = pieces[0]
            for piece in pieces[1:]:
                result = binary(result, piece)
            return result
        if isinstance(node, LSyncDifference):
            return SyncDifferencePlanNode(lower(node.left), lower(node.right), config)
        if isinstance(node, LDifference):
            return DifferencePlanNode(lower(node.left), lower(node.right), config)
        raise TypeError(f"cannot lower {type(node).__name__}")

    return lower(node)
