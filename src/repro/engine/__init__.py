"""The staged execution engine: plan caching, pluggable backends, batch
evaluation.

Layering: ``core`` → ``regex``/``va`` → ``algebra`` → **engine**.  The
engine sits on top of the algebra and owns everything that amortises work
across documents:

* :class:`Engine` / :class:`ExecutionContext` — the compiled-plan cache
  and the batch/streaming entry points;
* :mod:`repro.engine.plan` — the static-prefix / ad-hoc-suffix split of
  every RA query (the paper's Sections 3–5 compilation modes);
* :mod:`repro.engine.backends` — interchangeable enumeration backends
  (``matchgraph``, ``indexed``);
* :class:`EngineStats` — cache, compile-time and graph-size statistics.
"""

from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    EnumerationBackend,
    IndexedBackend,
    MatchGraphBackend,
    PreparedRun,
    PreparedVA,
    get_backend,
)
from .core import Engine, ExecutionContext
from .plan import CompiledPlan, PlanNode, StaticNode, build_plan
from .stats import EngineStats

__all__ = [
    "BACKENDS",
    "CompiledPlan",
    "DEFAULT_BACKEND",
    "Engine",
    "EngineStats",
    "EnumerationBackend",
    "ExecutionContext",
    "IndexedBackend",
    "MatchGraphBackend",
    "PlanNode",
    "PreparedRun",
    "PreparedVA",
    "StaticNode",
    "build_plan",
    "get_backend",
]
