"""The staged execution engine: plan caching, pluggable backends, batch
evaluation.

Layering: ``core`` → ``regex``/``va`` → ``algebra`` → **engine**.  The
engine sits on top of the algebra and owns everything that amortises work
across documents:

* :class:`Engine` / :class:`ExecutionContext` — the compiled-plan cache
  (keyed both structurally and by logical-plan fingerprint) and the
  batch/streaming entry points;
* :mod:`repro.engine.optimizer` — the rewrite-rule optimizer reshaping
  logical plans (:mod:`repro.algebra.logical`) toward the paper's cheap
  fragments before compilation;
* :mod:`repro.engine.plan` — lowering to the static-prefix /
  ad-hoc-suffix split of every RA query (the paper's Sections 3–5
  compilation modes), with plan-level CSE;
* :mod:`repro.engine.backends` — interchangeable enumeration backends
  (``matchgraph``, ``indexed``, ``indexed-plain``, and the numpy-backed
  ``vectorized``);
* :mod:`repro.engine.guards` — execution guards: wall-clock deadlines,
  cooperative cancellation (:class:`CancelToken`), and resource budgets
  (:class:`Budget`) enforced cooperatively along every evaluation path;
* :class:`EngineStats` — cache, optimizer, compile-time and graph-size
  statistics.
"""

from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    EnumerationBackend,
    IndexedBackend,
    MatchGraphBackend,
    PlainIndexedBackend,
    PreparedRun,
    PreparedVA,
    VectorizedBackend,
    available_backends,
    get_backend,
)
from .core import Engine, ExecutionContext
from .guards import Budget, CancelToken, ExecutionGuard
from .optimizer import (
    DEFAULT_RULES,
    OptimizerReport,
    RewriteRule,
    optimize,
)
from .plan import (
    CompiledPlan,
    PlanNode,
    StaticNode,
    SyncDifferencePlanNode,
    build_plan,
    lower_logical,
    plan_from_logical,
)
from .stats import EngineStats
from .tail import TailSession

__all__ = [
    "BACKENDS",
    "Budget",
    "CancelToken",
    "CompiledPlan",
    "DEFAULT_BACKEND",
    "DEFAULT_RULES",
    "Engine",
    "EngineStats",
    "EnumerationBackend",
    "ExecutionContext",
    "ExecutionGuard",
    "IndexedBackend",
    "MatchGraphBackend",
    "OptimizerReport",
    "PlanNode",
    "PlainIndexedBackend",
    "PreparedRun",
    "PreparedVA",
    "RewriteRule",
    "StaticNode",
    "SyncDifferencePlanNode",
    "TailSession",
    "VectorizedBackend",
    "available_backends",
    "build_plan",
    "get_backend",
    "lower_logical",
    "optimize",
    "plan_from_logical",
]
