"""Incremental evaluation over growing documents (the log-tailing runtime).

The match graph is layered by position, so appending ``k`` letters to a
document only *extends* the frontier — nothing in the first ``n`` layers
changes.  A :class:`TailSession` exploits that end to end: it holds one
(query, document) pair, accumulates appends through
:meth:`~repro.core.document.Document.append` (O(k) artifact extension),
and re-evaluates by resuming the backend's Boolean forward pass from the
previous run's checkpointed frontier
(:meth:`~repro.va.indexed.IndexedMatchGraph.extended`) instead of
rebuilding from position 0.  Appends that merge into the document's tail
run advance through the kernel's memoized transformer powers, so a long
quiet stretch costs O(log extra), not even O(k).

:meth:`TailSession.reevaluate` returns only the *new* mappings — those
not produced by any earlier re-evaluation.  New mappings are computed as
a set difference against everything already emitted, not by a span
predicate: an append can complete a match whose every capture operation
lies in the old region (``x{a}bb`` on ``"ab" + "b"`` captures ``a`` at
position 1), so "spans ending in the appended region" is not a sound
filter, but mappings are hashable and the emitted set is exact.

Cost model (when incremental reuse wins — see the README's streaming
section):

* **Quiet documents** (the monitoring regime: most appends complete no
  match) cost one checkpoint resume over the overhang plus an emptiness
  test — O(appended), independent of the document length.
* **Prefilter-rejected states** are cheaper still: while the accumulated
  document cannot possibly match (a must-occur letter absent), the
  session answers from the O(1) histogram check without touching the
  backend at all, and extends from the last checkpoint once the
  prefilter admits.
* **Matching re-evaluations** pay enumeration over the whole document —
  that is output cost, shared with a full rebuild; the incremental saving
  is the graph construction.
* **Tiny documents** or backends without extension support
  (``matchgraph``) fall back to a full rebuild — always correct, just
  not faster; :class:`~repro.engine.stats.EngineStats` attributes reused
  vs. recomputed layers either way.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..core.document import Document, as_document
from ..core.mapping import Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backends import PreparedRun, PreparedVA
    from .core import ExecutionContext


class TailSession:
    """An incremental evaluation handle for one query on one growing
    document.

    Build via :meth:`Engine.tail(query) <repro.engine.core.Engine.tail>`.
    Feed text with :meth:`append` (cheap, no evaluation), then call
    :meth:`reevaluate` to get the mappings that are new since the last
    call; ``reevaluate(text)`` combines both.  The session shares its
    engine's compiled plan, prepared automaton, statistics, and kernel
    caches.

    Attributes:
        document: the accumulated :class:`~repro.core.document.Document`.
        reevaluations: completed :meth:`reevaluate` calls.
        total_matches: mappings emitted across the session's lifetime.
    """

    __slots__ = (
        "_context",
        "document",
        "_prepared",
        "_run",
        "_run_n",
        "_seen",
        "reevaluations",
        "total_matches",
    )

    def __init__(self, context: "ExecutionContext", document: Document | str = ""):
        self._context = context
        self.document = as_document(document)
        self._prepared: "PreparedVA | None" = None
        self._run: "PreparedRun | None" = None
        self._run_n = 0
        self._seen: set[Mapping] = set()
        self.reevaluations = 0
        self.total_matches = 0

    def __len__(self) -> int:
        return len(self.document)

    def append(self, text: str) -> None:
        """Grow the document by ``text`` without evaluating — the cached
        artifacts (runs, histogram, encodings) extend in O(len(text))."""
        if text:
            self.document = self.document.append(text)

    def reset(self, document: "Document | str" = "") -> None:
        """Restart the session on ``document``, discarding the checkpoint
        and the emitted-mapping memory.

        The recovery path for sources that went *backwards* — a tailed
        file that was truncated, rotated, or replaced.  Append-only
        resumption is unsound there (the old frontier describes letters
        that no longer exist), so the next :meth:`reevaluate` rebuilds
        from position 0 and re-emits every mapping of the new content.
        Session lifetime counters (:attr:`reevaluations`,
        :attr:`total_matches`) survive; the compiled plan and kernel
        caches are shared with the engine and stay warm.
        """
        self.document = as_document(document)
        self._prepared = None
        self._run = None
        self._run_n = 0
        self._seen = set()

    def reevaluate(self, text: str = "") -> list[Mapping]:
        """Append ``text`` (optional) and return the mappings that are new
        since the previous call, in canonical enumeration order.

        The union of every call's results equals a fresh full evaluation
        of the accumulated document — the hypothesis suite pins that
        equivalence across all backends.
        """
        self.append(text)
        doc = self.document
        stats = self._context.stats
        stats.tail_reevaluations += 1
        self.reevaluations += 1
        prefilter = self._context.prefilter()
        if prefilter is not None and not prefilter.admits(doc):
            # Proven empty from the histogram alone: no graph, no letter
            # work.  The prior run's checkpoint stays valid — extension
            # spans multi-append gaps — so the next admitted re-evaluation
            # still resumes instead of rebuilding.
            stats.prefilter_rejects += 1
            return []
        prepared = self._context.prepared_for(doc)
        n = len(doc)
        start = time.perf_counter()
        if (
            self._run is not None
            and prepared is self._prepared
            and prepared.supports_extension()
        ):
            run = prepared.run_extended(self._run, doc)
            stats.tail_reused_layers += self._run_n
            stats.tail_recomputed_layers += n - self._run_n
        else:
            run = prepared.run(doc)
            stats.tail_recomputed_layers += n
        stats.compile_seconds += time.perf_counter() - start
        self._prepared = prepared
        self._run = run
        self._run_n = n
        if run.is_empty:
            # The checkpoint resume still advanced the kernel — attribute
            # it now, not to whichever evaluation happens to sample next.
            self._context._sync_gauges(prepared)
            return []
        seen = self._seen
        start = time.perf_counter()
        fresh = [m for m in run.enumerate() if m not in seen]
        stats.enumerate_seconds += time.perf_counter() - start
        self._context._sync_gauges(prepared)
        seen.update(fresh)
        stats.mappings += len(fresh)
        self.total_matches += len(fresh)
        return fresh

    def __repr__(self) -> str:
        return (
            f"TailSession(letters={len(self.document)}, "
            f"reevaluations={self.reevaluations}, "
            f"matches={self.total_matches})"
        )
