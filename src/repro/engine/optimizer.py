"""The rule-based logical-plan optimizer.

The paper's complexity map is uneven: projections and unions are free
(§3.1), joins are FPT in the product of the operands (Lemma 3.2),
differences are exponential unless restricted (§4).  The optimizer reshapes
a logical plan (:mod:`repro.algebra.logical`) toward the cheap fragments
*before* any automaton product is built:

========================  ====================================================
rule                      effect
========================  ====================================================
``prune-empty``           drop statically-empty operands: ``∅ ∪ A → A``,
                          ``∅ ⋈ A → ∅``, ``A ∖ ∅ → A``, ``π(∅) → ∅``,
                          ``∅ ∖ A → ∅``
``flatten-union``         ``(A ∪ B) ∪ C → ∪(A, B, C)`` (n-ary splice)
``flatten-join``          the same for ``⋈`` (associative & commutative
                          under the schemaless semantics, §2.4)
``dedup-union``           ``A ∪ A → A`` by structural fingerprint (*not*
                          applied to joins — schemaless ``⋈`` is not
                          idempotent: differing-domain mappings combine)
``project-project``       ``π_Y(π_Z(A)) → π_{Y∩Z}(A)``
``project-identity``      ``π_Y(A) → A`` when ``Vars(A) ⊆ Y``
``push-project-union``    ``π_Y(∪ Aᵢ) → ∪ π_Y(Aᵢ)``
``push-project-join``     ``π_Y(⋈ Aᵢ) → π_Y(⋈ π_{(Y∪S)∩Vars(Aᵢ)}(Aᵢ))``
                          where ``S`` is the set of variables shared by ≥2
                          operands — compatibility only constrains ``S``,
                          so keeping ``Y ∪ S`` in each operand preserves
                          the join exactly while shrinking every product
``fold-static-project``   materialise ``π`` over a static atom (normalized)
``order-operands``        sort n-ary operand lists by estimated state
                          count — the lowering left-folds in list order, so
                          products grow from the smallest operands, and the
                          canonical order makes commutative variants share
                          one fingerprint (plan-cache / CSE hits)
``sync-difference``       lower ``A ∖ B`` to the synchronized-difference
                          compilation (Theorem 4.8) when ``B`` is static
                          and synchronized for the common variables —
                          tractable **without** Theorem 5.2's bound on the
                          number of shared variables, so the planner's
                          ``max_shared`` check is deliberately skipped on
                          this path
========================  ====================================================

:func:`optimize` drives the rules to a fixpoint (bottom-up, memoized by
structural fingerprint — identical subtrees are rewritten once and come
back as the *same* object, which is what plan-level CSE keys on) and
returns an :class:`OptimizerReport` with per-rule fired counters that the
engine folds into :class:`~repro.engine.stats.EngineStats`.

All rules are semantics-preserving on every document; the hypothesis suite
(`tests/properties/test_optimizer_equivalence.py`) checks optimized plans
against both the unoptimized plans and the naive run-semantics evaluator
on both enumeration backends.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..algebra.logical import (
    BlackboxAtom,
    LDifference,
    LJoin,
    LProject,
    LSyncDifference,
    LUnion,
    LogicalNode,
    StaticAtom,
)
from ..algebra.planner import apply_project
from ..va.matchstruct import never_used_variables
from ..va.operations import project_va, trim
from ..va.properties import is_functional, is_sequential, is_synchronized_for

#: Safety valve on per-node rule application (rules are designed to be
#: terminating; the cap turns a regression into a missed rewrite instead of
#: a hang).
MAX_LOCAL_REWRITES = 32

#: Safety valve on whole-tree passes.
MAX_PASSES = 8


@dataclass
class OptimizerReport:
    """What one :func:`optimize` run did."""

    fired: dict[str, int] = field(default_factory=dict)
    passes: int = 0
    estimate_before: int = 0
    estimate_after: int = 0

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def record(self, rule_name: str) -> None:
        self.fired[rule_name] = self.fired.get(rule_name, 0) + 1

    def summary(self) -> str:
        if not self.fired:
            return "no rewrites"
        parts = ", ".join(
            f"{name} ×{count}" for name, count in sorted(self.fired.items())
        )
        return f"{self.total_fired} rewrite(s): {parts}"


class RewriteRule(abc.ABC):
    """One local, semantics-preserving plan rewrite."""

    #: Stable identifier used in reports and :class:`EngineStats`.
    name: str = "?"

    @abc.abstractmethod
    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        """The rewritten node, or ``None`` when the rule does not apply.

        Must return a *different* plan (by fingerprint) or ``None`` —
        the driver treats a same-fingerprint result as "did not fire".
        """

    def __repr__(self) -> str:
        return f"<rule {self.name}>"


def _is_empty_atom(node: LogicalNode) -> bool:
    return isinstance(node, StaticAtom) and node.is_empty


class PruneEmpty(RewriteRule):
    """Empty/identity pruning around statically-empty operands."""

    name = "prune-empty"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if isinstance(node, LUnion):
            alive = [c for c in node.operands if not _is_empty_atom(c)]
            if len(alive) == len(node.operands):
                return None
            if not alive:
                return node.operands[0]  # everything is empty
            if len(alive) == 1:
                return alive[0]
            return LUnion(alive)
        if isinstance(node, LJoin):
            for child in node.operands:
                if _is_empty_atom(child):
                    return child  # ∅ ⋈ … = ∅
            return None
        if isinstance(node, LProject):
            if _is_empty_atom(node.child):
                return node.child
            return None
        if isinstance(node, LDifference):  # includes LSyncDifference
            if _is_empty_atom(node.left):
                return node.left
            if _is_empty_atom(node.right):
                return node.left  # A ∖ ∅ = A
            return None
        return None


class FlattenNary(RewriteRule):
    """Splice same-type n-ary children into their parent (and unwrap
    single-operand nodes); both ``∪`` and ``⋈`` are associative, the
    latter under the schemaless semantics of §2.4."""

    def __init__(self, node_type: type, name: str):
        self.node_type = node_type
        self.name = name

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if type(node) is not self.node_type:
            return None
        if len(node.operands) == 1:
            return node.operands[0]
        if not any(type(c) is self.node_type for c in node.operands):
            return None
        spliced: list[LogicalNode] = []
        for child in node.operands:
            if type(child) is self.node_type:
                spliced.extend(child.operands)
            else:
                spliced.append(child)
        return self.node_type(spliced)


class DedupUnion(RewriteRule):
    """``A ∪ A → A`` (set semantics; sound because equal fingerprints mean
    structurally identical automata)."""

    name = "dedup-union"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if not isinstance(node, LUnion):
            return None
        seen: set[str] = set()
        unique: list[LogicalNode] = []
        for child in node.operands:
            if child.fingerprint not in seen:
                seen.add(child.fingerprint)
                unique.append(child)
        if len(unique) == len(node.operands):
            return None
        if len(unique) == 1:
            return unique[0]
        return LUnion(unique)


class ProjectProject(RewriteRule):
    name = "project-project"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if isinstance(node, LProject) and isinstance(node.child, LProject):
            return LProject(node.child.child, node.keep & node.child.keep)
        return None


class ProjectIdentity(RewriteRule):
    name = "project-identity"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if isinstance(node, LProject) and node.child.variables <= node.keep:
            return node.child
        return None


class PushProjectThroughUnion(RewriteRule):
    name = "push-project-union"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if not (isinstance(node, LProject) and isinstance(node.child, LUnion)):
            return None
        return LUnion([LProject(c, node.keep) for c in node.child.operands])


class PushProjectThroughJoin(RewriteRule):
    """``π_Y(⋈ Aᵢ)``: project each operand down to ``(Y ∪ S) ∩ Vars(Aᵢ)``.

    ``S`` (variables in ≥2 operands) is everything join compatibility can
    see — mapping overlaps satisfy ``dom(μᵢ) ∩ dom(μⱼ) ⊆ S`` — so keeping
    all of ``S`` preserves exactly the compatible pairs, and restricting
    the combined result to ``Y`` commutes with restricting the inputs to
    ``Y ∪ S`` first.  Fires only when some operand actually shrinks.
    """

    name = "push-project-join"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if not (isinstance(node, LProject) and isinstance(node.child, LJoin)):
            return None
        join = node.child
        retain = node.keep | join.shared_variables()
        if all(c.variables <= retain for c in join.operands):
            return None
        pushed = [
            LProject(c, retain & c.variables) if not c.variables <= retain else c
            for c in join.operands
        ]
        return LProject(LJoin(pushed), node.keep)


class FoldStaticProject(RewriteRule):
    """Materialise a projection over a static atom (the result is
    normalized by :func:`~repro.algebra.planner.apply_project`, so folding
    early also shrinks the atom for everything built above)."""

    name = "fold-static-project"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if not (isinstance(node, LProject) and isinstance(node.child, StaticAtom)):
            return None
        if node.child.variables <= node.keep:
            return node.child
        return StaticAtom(
            apply_project(node.child.va, node.keep), origin=node.child.origin
        )


class OrderOperands(RewriteRule):
    """Canonicalise n-ary operand order: smallest estimated state count
    first (ties broken by fingerprint).  The lowering left-folds in list
    order, so join products grow from the small operands; the canonical
    order also makes commutative variants fingerprint-equal."""

    name = "order-operands"

    @staticmethod
    def _key(node: LogicalNode) -> tuple[int, str]:
        return (node.estimated_states, node.fingerprint)

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if not isinstance(node, (LUnion, LJoin)) or len(node.operands) < 2:
            return None
        ordered = sorted(node.operands, key=self._key)
        if list(node.operands) == ordered:
            return None
        return LUnion(ordered) if isinstance(node, LUnion) else LJoin(ordered)


class LowerSyncDifference(RewriteRule):
    """Mark a difference as eligible for the Theorem-4.8 compilation.

    Eligibility mirrors :func:`repro.algebra.sync_difference.synchronized_difference`'s
    preconditions, checked statically on the subtrahend: project it onto
    the common variables, drop the never-used ones, and require the result
    to be synchronized and functional for the effective common set.  The
    check is sound for per-document minuends too: at evaluation time the
    runtime common set can only shrink, and synchronizedness is preserved
    under projection to subsets.
    """

    name = "sync-difference"

    def apply(self, node: LogicalNode) -> "LogicalNode | None":
        if not isinstance(node, LDifference) or isinstance(node, LSyncDifference):
            return None
        right = node.right
        if not isinstance(right, StaticAtom) or right.is_empty:
            return None
        if not is_sequential(right.va):
            return None
        common = node.left.variables & right.variables
        projected = trim(project_va(right.va, common))
        if not projected.accepting:
            return None
        effective = common - never_used_variables(projected, frozenset(common))
        if effective:
            subtrahend = trim(project_va(projected, effective))
            if not is_synchronized_for(subtrahend, effective):
                return None
            if not is_functional(subtrahend):
                return None
        return LSyncDifference(node.left, right)


#: The default rule set, in application order (first applicable rule fires,
#: then the node is re-examined until no rule applies).
DEFAULT_RULES: tuple[RewriteRule, ...] = (
    PruneEmpty(),
    FlattenNary(LUnion, "flatten-union"),
    FlattenNary(LJoin, "flatten-join"),
    DedupUnion(),
    ProjectProject(),
    ProjectIdentity(),
    PushProjectThroughUnion(),
    PushProjectThroughJoin(),
    FoldStaticProject(),
    OrderOperands(),
    LowerSyncDifference(),
)


def _with_children(
    node: LogicalNode, children: tuple[LogicalNode, ...]
) -> LogicalNode:
    """A copy of ``node`` over new children (atoms are returned as-is)."""
    if isinstance(node, LProject):
        return LProject(children[0], node.keep)
    if isinstance(node, LUnion):
        return LUnion(children)
    if isinstance(node, LJoin):
        return LJoin(children)
    if isinstance(node, LSyncDifference):
        return LSyncDifference(children[0], children[1])
    if isinstance(node, LDifference):
        return LDifference(children[0], children[1])
    return node


def optimize(
    root: LogicalNode,
    rules: "tuple[RewriteRule, ...] | None" = None,
    max_passes: int = MAX_PASSES,
) -> tuple[LogicalNode, OptimizerReport]:
    """Rewrite a logical plan to a fixpoint of the rule set.

    Returns the optimized plan and the :class:`OptimizerReport`.  The
    returned plan is a DAG: structurally identical subtrees are the same
    object (the lowering's CSE relies on this).
    """
    active = DEFAULT_RULES if rules is None else rules
    report = OptimizerReport(estimate_before=root.estimated_states)
    current = root
    for _ in range(max_passes):
        memo: dict[str, LogicalNode] = {}
        before = current.fingerprint
        current = _rewrite(current, active, memo, report)
        report.passes += 1
        if current.fingerprint == before:
            break
    report.estimate_after = current.estimated_states
    return current, report


def _rewrite(
    node: LogicalNode,
    rules: tuple[RewriteRule, ...],
    memo: dict[str, LogicalNode],
    report: OptimizerReport,
) -> LogicalNode:
    """Bottom-up rewrite with per-fingerprint memoization (= logical CSE)."""
    done = memo.get(node.fingerprint)
    if done is not None:
        return done
    original_fingerprint = node.fingerprint
    children = node.children()
    rewritten = tuple(_rewrite(child, rules, memo, report) for child in children)
    current = node
    if any(a is not b for a, b in zip(rewritten, children)):
        current = _with_children(node, rewritten)
    for _ in range(MAX_LOCAL_REWRITES):
        fired = False
        for rule in rules:
            out = rule.apply(current)
            if out is None or out.fingerprint == current.fingerprint:
                continue
            report.record(rule.name)
            out_children = out.children()
            out_rewritten = tuple(
                _rewrite(child, rules, memo, report) for child in out_children
            )
            if any(a is not b for a, b in zip(out_rewritten, out_children)):
                out = _with_children(out, out_rewritten)
            current = out
            fired = True
            break
        if not fired:
            break
    memo[original_fingerprint] = current
    memo[current.fingerprint] = current
    return current
