"""Per-engine run statistics.

One :class:`EngineStats` instance lives on each
:class:`~repro.engine.core.Engine` and is updated by every evaluation that
flows through it: plan-cache behaviour, static-vs-ad-hoc compilation
counts, compile/enumerate wall time, and match-graph size.  ``snapshot()``
copies the counters so callers can diff before/after a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace


@dataclass
class EngineStats:
    """Counters for one engine instance (cumulative across queries).

    Attributes:
        documents: documents evaluated.
        mappings: mappings yielded to callers.
        plan_hits / plan_misses: compiled-plan cache behaviour — a miss
            builds the plan and compiles its static prefix.
        static_reuses: static plan nodes served from the plan's cache
            instead of being recompiled for a document.
        adhoc_compiles: ad-hoc plan nodes (differences, black boxes)
            compiled for a specific document.
        document_hits / document_misses: per-document prepared-VA cache
            (fully-static plans hit on every document after the first;
            ad-hoc plans hit only when the engine's document cache is
            enabled and the same text recurs).
        nonempty_checks: emptiness decisions served by the Boolean bitmask
            pass (no enumeration edges built).
        prefilter_rejects: documents rejected by the VA-derived prefilter
            (:mod:`repro.va.prefilter`) before any graph was built or the
            document was even encoded — including documents pruned by the
            corpus index without ever being fetched from the store.
        index_hits: batch/stream calls answered through a
            :class:`~repro.corpus.CorpusStore` index plan (posting-list
            intersections and range scans) instead of a corpus walk.
        index_candidates: candidate documents produced by those index
            plans — everything else was pruned without touching a row.
        hydrations: documents fetched from a corpus store with their
            cached artifacts (run-length encoding, letter histogram)
            pre-seeded — each hydration skips a ``Document.runs()`` /
            ``letter_counts()`` recomputation.
        kernel_run_hits: letter runs advanced by the run-compressed
            transition kernel (fixpoint absorption or power doubling)
            instead of per-letter stepping.
        frontier_cache_misses: frontier transitions the vectorized
            backend actually computed through its numpy plane tables —
            every other position was served by the interned frontier-node
            cache (``0`` on backends without a frontier cache).
        edge_rows_batched: layer contexts whose enumeration edge rows the
            vectorized backend materialised through a batched plane
            gather — every other layer shared a previously built context
            (``0`` on backends without batched enumeration).
        tail_reevaluations: incremental ``TailSession.reevaluate()`` calls
            (including ones short-circuited by the prefilter).
        tail_reused_layers: document layers served from a checkpointed
            prior run during tail re-evaluations — work the full rebuild
            would have repeated.
        tail_recomputed_layers: document layers actually computed during
            tail re-evaluations (the appended overhang on an extension;
            the whole document on a rebuild or a non-extending backend).
        parallel_shards: worker shards dispatched by
            ``evaluate_many(workers=N)``; shard counters are merged back
            into the parent engine, so times are summed CPU time across
            processes, not wall time.
        rules_fired: total optimizer rewrites applied across plan builds.
        rule_fires: per-rule fired counts (rule name → count).
        cse_hits: physical plan nodes served by common-subexpression
            elimination — duplicate logical subtrees sharing one compiled
            node, within a plan and (for static subtrees) across plans.
        fingerprint_hits: plan-cache hits served by the structural
            fingerprint of the optimized logical plan (structurally equal
            queries built from distinct atom objects).
        guard_checks: :class:`~repro.engine.guards.ExecutionGuard`
            checkpoints evaluated (full ``check()`` calls — strided
            ``tick()`` calls that skipped the clock are not counted).
        deadline_hits: evaluations stopped by a guard deadline.
        budget_hits: evaluations stopped by a guard resource budget.
        shard_retries: parallel shards lost to a crashed worker process
            and recomputed serially in the parent.
        store_retries: corpus-store sqlite calls that hit a transient
            locked/busy error and succeeded on a bounded-backoff retry.
        parallel_fallbacks: reasons ``evaluate_many(workers=N)`` fell back
            to sequential evaluation (category → count): ``custom_backend``
            (a hand-built backend instance the workers cannot recreate),
            ``query_shape`` (black-box atoms the shards cannot rebuild),
            or ``pickle: …`` (the payload probe failed to serialise).
        compile_seconds: wall time spent compiling and preparing automata.
        enumerate_seconds: wall time spent inside enumeration.
        states_explored: total live match-graph states across all runs.
    """

    documents: int = 0
    mappings: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    static_reuses: int = 0
    adhoc_compiles: int = 0
    document_hits: int = 0
    document_misses: int = 0
    nonempty_checks: int = 0
    prefilter_rejects: int = 0
    index_hits: int = 0
    index_candidates: int = 0
    hydrations: int = 0
    kernel_run_hits: int = 0
    frontier_cache_misses: int = 0
    edge_rows_batched: int = 0
    tail_reevaluations: int = 0
    tail_reused_layers: int = 0
    tail_recomputed_layers: int = 0
    parallel_shards: int = 0
    rules_fired: int = 0
    rule_fires: dict = field(default_factory=dict)
    cse_hits: int = 0
    fingerprint_hits: int = 0
    guard_checks: int = 0
    deadline_hits: int = 0
    budget_hits: int = 0
    shard_retries: int = 0
    store_retries: int = 0
    parallel_fallbacks: dict = field(default_factory=dict)
    compile_seconds: float = 0.0
    enumerate_seconds: float = 0.0
    states_explored: int = 0

    def snapshot(self) -> "EngineStats":
        """An independent copy of the current counters."""
        copy = replace(self)
        copy.rule_fires = dict(self.rule_fires)
        copy.parallel_fallbacks = dict(self.parallel_fallbacks)
        return copy

    def merge(self, other: "EngineStats") -> None:
        """Add another stats object's counters into this one (used to fold
        per-shard worker statistics back into the parent engine)."""
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if isinstance(mine, dict):
                merged = dict(mine)
                for key, value in theirs.items():
                    merged[key] = merged.get(key, 0) + value
                setattr(self, f.name, merged)
            else:
                setattr(self, f.name, mine + theirs)

    def delta(self, since: "EngineStats") -> "EngineStats":
        """The counter differences ``self - since``."""
        values = {}
        for f in fields(self):
            mine, base = getattr(self, f.name), getattr(since, f.name)
            if isinstance(mine, dict):
                diff = {
                    key: mine.get(key, 0) - base.get(key, 0)
                    for key in mine.keys() | base.keys()
                }
                values[f.name] = {key: v for key, v in diff.items() if v}
            else:
                values[f.name] = mine - base
        return EngineStats(**values)

    def as_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = dict(value) if isinstance(value, dict) else value
        return out

    def summary(self) -> str:
        """A compact human-readable one-per-line report."""
        lines = [
            f"documents          {self.documents}",
            f"mappings           {self.mappings}",
            f"plan cache         {self.plan_hits} hit / {self.plan_misses} miss",
            f"prepared documents {self.document_hits} hit / {self.document_misses} miss",
            f"static reuses      {self.static_reuses}",
            f"ad-hoc compiles    {self.adhoc_compiles}",
            f"nonempty checks    {self.nonempty_checks}",
            f"prefilter rejects  {self.prefilter_rejects}",
            f"index hits         {self.index_hits}"
            f" ({self.index_candidates} candidates)",
            f"hydrations         {self.hydrations}",
            f"kernel run hits    {self.kernel_run_hits}",
            f"frontier misses    {self.frontier_cache_misses}",
            f"edge rows batched  {self.edge_rows_batched}",
            f"tail reevaluations {self.tail_reevaluations}"
            f" ({self.tail_reused_layers} layers reused /"
            f" {self.tail_recomputed_layers} recomputed)",
            f"parallel shards    {self.parallel_shards}",
            f"optimizer rewrites {self.rules_fired}{self._rule_breakdown()}",
            f"plan CSE hits      {self.cse_hits}",
            f"fingerprint hits   {self.fingerprint_hits}",
            f"guard checks       {self.guard_checks}"
            f" ({self.deadline_hits} deadline /"
            f" {self.budget_hits} budget trips)",
            f"shard retries      {self.shard_retries}"
            f"{self._fallback_breakdown()}",
            f"store retries      {self.store_retries}",
            f"compile time       {self.compile_seconds * 1e3:.2f} ms",
            f"enumerate time     {self.enumerate_seconds * 1e3:.2f} ms",
            f"states explored    {self.states_explored}",
        ]
        return "\n".join(lines)

    def _fallback_breakdown(self) -> str:
        if not self.parallel_fallbacks:
            return ""
        parts = ", ".join(
            f"{name} ×{count}"
            for name, count in sorted(self.parallel_fallbacks.items())
        )
        return f" (serial fallbacks: {parts})"

    def _rule_breakdown(self) -> str:
        if not self.rule_fires:
            return ""
        parts = ", ".join(
            f"{name} ×{count}" for name, count in sorted(self.rule_fires.items())
        )
        return f" ({parts})"
