"""Pluggable enumeration backends.

A backend turns a sequential VA into a document-independent *prepared*
form once (:meth:`EnumerationBackend.prepare`), then builds a per-document
*run* (:meth:`PreparedVA.run`) exposing the Theorem-2.5 enumeration plus
the match-graph size gauges the engine's statistics report.

Shipped backends:

* ``matchgraph`` — the original path: states stay arbitrary hashable
  objects, the prepared form is a
  :class:`~repro.va.matchgraph.FactorizedVA` and runs are
  :class:`~repro.va.matchgraph.MatchGraph` DFS walks.
* ``indexed`` — states relabelled to dense integers with precomputed
  per-letter/per-opset transition tables and bitmask state sets
  (:mod:`repro.va.indexed`); same semantics, faster hot loop.  Forward and
  backward passes are *run-compressed* through the
  :class:`~repro.va.kernel.TransitionKernel` (maximal letter runs advance
  in O(log run) memoized mask applications).
* ``indexed-plain`` — the same substrate with the kernel disabled (the
  per-letter escape hatch, kept for comparison benches and as a guard
  against kernel regressions).
* ``vectorized`` — the numpy uint64 state-plane substrate
  (:mod:`repro.va.vectorized`): interned frontier nodes over a
  precomputed successor-plane table, plane-matrix power doubling on
  runs, and whole-document plane arrays for the backward pass.  Needs
  numpy (the ``[fast]`` extra); requesting it without numpy raises a
  clean :class:`~repro.core.errors.BackendUnavailableError`.

All backends are interchangeable: ``tests/engine`` checks each against the
naive run-semantics enumerator on random automata and documents, in both
content and enumeration order.  :func:`available_backends` lists the ones
that can actually run in this environment (everything except
``vectorized`` is always available).
"""

from __future__ import annotations

import abc
from typing import Iterator

from ..core.document import Document, as_document
from ..core.errors import NotSequentialError, SpannerError
from ..core.mapping import Mapping
from ..va.automaton import VA
from ..va.evaluation import enumerate_matchgraph
from ..va.indexed import IndexedMatchGraph, IndexedVA, indexed_nonempty
from ..va.matchgraph import FactorizedVA, MatchGraph, boolean_nonempty
from ..va.properties import is_sequential
from ..va.vectorized import (
    VectorizedMatchGraph,
    numpy_available,
    require_numpy,
    vectorized_nonempty,
)


class PreparedRun(abc.ABC):
    """A per-document match graph ready to enumerate."""

    @property
    @abc.abstractmethod
    def is_empty(self) -> bool:
        """Whether the result is empty (no live source state)."""

    @abc.abstractmethod
    def states_alive(self) -> int:
        """Total live states across the graph's layers (size gauge)."""

    @abc.abstractmethod
    def enumerate(self) -> Iterator[Mapping]:
        """Enumerate the mappings with polynomial delay (Theorem 2.5)."""

    def first(self) -> "Mapping | None":
        """The first mapping in canonical order, or ``None`` if empty.

        Backends with a dedicated greedy walk override this; the fallback
        takes the enumeration's head.
        """
        return next(self.enumerate(), None)


class PreparedVA(abc.ABC):
    """The document-independent prepared form of one sequential VA."""

    va: VA

    @abc.abstractmethod
    def run(self, document: Document | str, guard=None) -> PreparedRun:
        """Build the per-document run (graph construction).  ``guard`` is
        an optional :class:`~repro.engine.guards.ExecutionGuard` the run
        checks cooperatively (at run boundaries during construction, per
        DFS frame during enumeration)."""

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        return self.run(document).enumerate()

    def is_nonempty(self, document: Document | str, guard=None) -> bool:
        """Decide ``⟦A⟧(d) ≠ ∅``.

        Backends override this with a Boolean forward pass that never
        builds enumeration edges; the fallback asks the enumerator for one
        mapping.
        """
        if guard is not None:
            guard.check()
        for _ in self.run(document, guard=guard).enumerate():
            return True
        return False

    def supports_extension(self) -> bool:
        """Whether :meth:`run_extended` resumes from a prior run's
        checkpoint instead of rebuilding.  Backends whose match graph
        snapshots the forward frontier (``indexed``, ``indexed-plain``,
        ``vectorized``) override this; the tail session consults it to
        attribute reused vs. recomputed layers honestly."""
        return False

    def run_extended(
        self, prior: PreparedRun, document: Document | str, guard=None
    ) -> PreparedRun:
        """The run of ``document``, an append-extension of ``prior``'s
        document, reusing ``prior``'s layers where the backend can.

        The default is a full rebuild — always correct, never faster.
        Extending backends override it with the O(appended) checkpoint
        resume.
        """
        return self.run(document, guard=guard)

    def kernel_hits(self) -> int:
        """Cumulative run-compressed kernel advances behind this prepared
        form (``0`` for backends without a kernel).  The engine samples it
        around each evaluation to attribute ``kernel_run_hits``."""
        return 0

    def frontier_misses(self) -> int:
        """Cumulative frontier-transition cache misses behind this
        prepared form (``0`` for backends without a frontier cache).  The
        engine samples it around each evaluation to attribute
        ``frontier_cache_misses``."""
        return 0

    def edge_rows_batched(self) -> int:
        """Cumulative batched edge-row contexts materialised behind this
        prepared form (``0`` for backends without batched enumeration).
        The engine samples it around each evaluation to attribute
        ``edge_rows_batched``."""
        return 0


class EnumerationBackend(abc.ABC):
    """A strategy for preparing and enumerating sequential VAs."""

    name: str

    #: Block budget for backends with a batched enumeration path: the
    #: maximum number of distinct ``(letter, live mask)`` layer contexts a
    #: document may have before enumeration falls back to the scalar
    #: walk; ``0`` disables batching, ``None`` keeps the backend default
    #: (:data:`repro.va.vectorized.DEFAULT_ENUM_BLOCK_SIZE`).  Set by the
    #: engine's ``enumeration_block_size`` knob / ``--enum-block``.
    enumeration_block_size: "int | None" = None

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current environment
        (``vectorized`` needs numpy; everything else always can)."""
        return True

    @abc.abstractmethod
    def prepare(self, va: VA) -> PreparedVA:
        """Compile the document-independent form (checks sequentiality)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _require_sequential(va: VA) -> None:
    if not is_sequential(va):
        raise NotSequentialError(
            "enumeration backends require a sequential VA"
        )


# -- matchgraph: the original Theorem-2.5 path ------------------------------


class _MatchGraphRun(PreparedRun):
    __slots__ = ("graph",)

    def __init__(self, graph: MatchGraph):
        self.graph = graph

    @property
    def is_empty(self) -> bool:
        return self.graph.is_empty

    def states_alive(self) -> int:
        return self.graph.states_alive()

    def enumerate(self) -> Iterator[Mapping]:
        return enumerate_matchgraph(self.graph)


class PreparedMatchGraphVA(PreparedVA):
    """Prepared form of the ``matchgraph`` backend: a shared
    :class:`FactorizedVA` whose closure caches grow across documents."""

    __slots__ = ("va", "factorized")

    def __init__(self, va: VA):
        _require_sequential(va)
        self.factorized = FactorizedVA(va)
        self.va = self.factorized.va

    def run(self, document: Document | str, guard=None) -> _MatchGraphRun:
        # The matchgraph substrate predates the guard plumbing: the guard
        # brackets construction (the engine ticks per emitted mapping), so
        # deadlines still bound the whole evaluation.
        if guard is not None:
            guard.check()
        graph = MatchGraph(self.factorized, document)
        if guard is not None:
            guard.check()
        return _MatchGraphRun(graph)

    def is_nonempty(self, document: Document | str, guard=None) -> bool:
        if guard is not None:
            guard.check()
        return boolean_nonempty(self.factorized, document)


class MatchGraphBackend(EnumerationBackend):
    """The original evaluator: frozenset profiles over hashable states."""

    name = "matchgraph"

    def prepare(self, va: VA) -> PreparedMatchGraphVA:
        return PreparedMatchGraphVA(va)


# -- indexed: dense-int states, precomputed tables, bitmask profiles --------


class PreparedIndexedVA(PreparedVA):
    """Prepared form of the ``indexed`` backends: an :class:`IndexedVA`
    (cached on the automaton via :meth:`VA.indexed`), run-compressed
    through the shared kernel unless ``compressed=False``."""

    __slots__ = ("va", "indexed", "compressed")

    def __init__(self, va: VA, compressed: bool = True):
        _require_sequential(va)
        self.indexed = va.indexed()
        self.va = self.indexed.va
        self.compressed = compressed

    def run(self, document: Document | str, guard=None) -> IndexedMatchGraph:
        return IndexedMatchGraph(
            self.indexed,
            as_document(document),
            compressed=self.compressed,
            guard=guard,
        )

    def is_nonempty(self, document: Document | str, guard=None) -> bool:
        return indexed_nonempty(
            self.indexed, document, compressed=self.compressed, guard=guard
        )

    def supports_extension(self) -> bool:
        return True

    def run_extended(
        self, prior: PreparedRun, document: Document | str, guard=None
    ) -> IndexedMatchGraph:
        if not isinstance(prior, IndexedMatchGraph):
            return self.run(document, guard=guard)
        return prior.extended(as_document(document), guard=guard)

    def kernel_hits(self) -> int:
        return self.indexed.kernel().run_hits if self.compressed else 0


class IndexedBackend(EnumerationBackend):
    """Dense-indexed evaluator (see :mod:`repro.va.indexed`), with the
    run-compressed transition kernel on the hot paths."""

    name = "indexed"
    compressed = True

    def prepare(self, va: VA) -> PreparedIndexedVA:
        return PreparedIndexedVA(va, compressed=self.compressed)


class PlainIndexedBackend(IndexedBackend):
    """The ``indexed`` substrate with the run-compressed kernel disabled —
    the per-letter escape hatch and comparison baseline."""

    name = "indexed-plain"
    compressed = False


# -- vectorized: numpy uint64 state planes + interned frontier nodes --------


class PreparedVectorizedVA(PreparedVA):
    """Prepared form of the ``vectorized`` backend: a
    :class:`~repro.va.vectorized.VectorizedVA` (cached on the automaton
    via :meth:`VA.vectorized`) sharing one frontier-node kernel across
    every document."""

    __slots__ = ("va", "vectorized", "block_size")

    def __init__(self, va: VA, block_size: "int | None" = None):
        _require_sequential(va)
        self.vectorized = va.vectorized()
        self.va = self.vectorized.va
        self.block_size = block_size

    def run(self, document: Document | str, guard=None) -> VectorizedMatchGraph:
        return VectorizedMatchGraph(
            self.vectorized,
            as_document(document),
            block_size=self.block_size,
            guard=guard,
        )

    def is_nonempty(self, document: Document | str, guard=None) -> bool:
        return vectorized_nonempty(self.vectorized, document, guard=guard)

    def supports_extension(self) -> bool:
        return True

    def run_extended(
        self, prior: PreparedRun, document: Document | str, guard=None
    ) -> VectorizedMatchGraph:
        if not isinstance(prior, VectorizedMatchGraph):
            return self.run(document, guard=guard)
        return prior.extended(as_document(document), guard=guard)

    def kernel_hits(self) -> int:
        return self.vectorized.kernel().run_hits

    def frontier_misses(self) -> int:
        return self.vectorized.kernel().step_misses

    def edge_rows_batched(self) -> int:
        return self.vectorized.kernel().edge_rows_batched


class VectorizedBackend(EnumerationBackend):
    """The numpy state-plane evaluator (see :mod:`repro.va.vectorized`).

    Constructing the backend without numpy raises
    :class:`~repro.core.errors.BackendUnavailableError` — requesting
    ``--backend vectorized`` fails fast with the install hint instead of
    dying mid-evaluation.
    """

    name = "vectorized"

    def __init__(self):
        require_numpy()

    @classmethod
    def is_available(cls) -> bool:
        return numpy_available()

    def prepare(self, va: VA) -> PreparedVectorizedVA:
        return PreparedVectorizedVA(va, block_size=self.enumeration_block_size)


# IndexedMatchGraph (and its vectorized subclass) already expose the full
# run interface.
PreparedRun.register(IndexedMatchGraph)


# -- registry ---------------------------------------------------------------

BACKENDS: dict[str, type[EnumerationBackend]] = {
    MatchGraphBackend.name: MatchGraphBackend,
    IndexedBackend.name: IndexedBackend,
    PlainIndexedBackend.name: PlainIndexedBackend,
    VectorizedBackend.name: VectorizedBackend,
}

DEFAULT_BACKEND = IndexedBackend.name


def available_backends() -> "list[str]":
    """The registered backend names that can run in this environment
    (sorted) — everything except ``vectorized`` unconditionally, plus
    ``vectorized`` when numpy is importable."""
    return sorted(
        name for name, cls in BACKENDS.items() if cls.is_available()
    )


def get_backend(backend: "str | EnumerationBackend | None") -> EnumerationBackend:
    """Resolve a backend name (or pass an instance through).

    Unknown names raise :class:`SpannerError`; a known backend whose
    dependencies are missing raises
    :class:`~repro.core.errors.BackendUnavailableError` (with the install
    hint) from its constructor.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, EnumerationBackend):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise SpannerError(
            f"unknown enumeration backend {backend!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from None
    return cls()
