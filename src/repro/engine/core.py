"""The staged execution engine.

An :class:`Engine` owns:

* a **plan cache** — every query (an :class:`~repro.algebra.planner.RAQuery`,
  a ``(tree, instantiation)`` pair, or a bare sequential VA) is compiled
  once into a :class:`~repro.engine.plan.CompiledPlan` whose static prefix
  is shared across all documents;
* a pluggable **enumeration backend** (``matchgraph`` or ``indexed``, see
  :mod:`repro.engine.backends`) preparing each compiled VA for fast
  repeated evaluation;
* **batch/streaming APIs** — :meth:`Engine.evaluate_many`,
  :meth:`Engine.is_nonempty_many` and :meth:`Engine.enumerate_stream`
  amortise all document-independent work over a document stream, and
  accept a persistent :class:`~repro.corpus.CorpusStore` to answer from
  its posting-list index instead of walking the corpus;
* per-run **statistics** (:class:`~repro.engine.stats.EngineStats`).

The per-query prepared state lives in an :class:`ExecutionContext`; the
engine hands the same context back for the same query, which is what makes
repeated and batched evaluation cheap.

Usage::

    engine = Engine(backend="indexed")
    relations = engine.evaluate_many(query, ["doc one", "doc two", "doc one"])
    print(engine.stats.summary())
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Iterable, Iterator

from ..algebra.planner import PlannerConfig, RAQuery
from ..algebra.ra_tree import Instantiation, RANode
from ..core.document import Document, as_document
from ..core.errors import ExecutionInterrupted, SpannerError
from ..core.mapping import Mapping
from ..core.relation import SpanRelation
from ..corpus.store import CorpusSelection, CorpusStore
from ..va.automaton import VA
from ..va.prefilter import VAPrefilter
from ..va.properties import is_sequential
from .backends import BACKENDS, EnumerationBackend, PreparedVA, get_backend
from .guards import Budget, CancelToken, ExecutionGuard
from .plan import CompiledPlan, StaticNode, plan_from_logical, resolve_logical
from .stats import EngineStats


def _as_corpus_selection(documents) -> "CorpusSelection | None":
    """Coerce a store (all documents, id order) or a selection; ``None``
    for ordinary document iterables."""
    if isinstance(documents, CorpusStore):
        return CorpusSelection(documents, documents.doc_ids())
    if isinstance(documents, CorpusSelection):
        return documents
    return None


class ExecutionContext:
    """Prepared per-query state: the compiled plan, the prepared static
    form (for fully static plans), the VA-derived document prefilter, and
    an optional per-document cache of prepared ad-hoc automata."""

    __slots__ = (
        "plan",
        "backend",
        "stats",
        "_static_prepared",
        "_doc_cache",
        "_doc_cache_size",
        "_prefilter_enabled",
        "_prefilter",
    )

    def __init__(
        self,
        plan: CompiledPlan,
        backend: EnumerationBackend,
        stats: EngineStats,
        document_cache_size: int = 0,
        prefilter: bool = True,
    ):
        self.plan = plan
        self.backend = backend
        self.stats = stats
        self._static_prepared: PreparedVA | None = None
        self._doc_cache: OrderedDict[str, PreparedVA] = OrderedDict()
        self._doc_cache_size = document_cache_size
        self._prefilter_enabled = prefilter
        self._prefilter: "VAPrefilter | bool | None" = None

    def prefilter(self) -> "VAPrefilter | None":
        """The document prefilter of this query, or ``None`` when
        unavailable (disabled on the engine, an ad-hoc plan suffix, or a
        non-sequential automaton).

        Only fully static plans prefilter: their single compiled VA is the
        whole query, so the VA's necessary conditions are necessary for
        the query.  Computed once and cached on the automaton."""
        cached = self._prefilter
        if cached is None:
            if not self._prefilter_enabled or not self.plan.is_fully_static:
                cached = False
            else:
                va = self.plan.root.va
                cached = va.prefilter() if is_sequential(va) else False
            self._prefilter = cached
        return cached or None

    def prepared_for(self, doc: Document) -> PreparedVA:
        """The prepared automaton evaluating the query on ``doc``."""
        stats = self.stats
        if self.plan.is_fully_static:
            if self._static_prepared is None:
                stats.document_misses += 1
                start = time.perf_counter()
                self._static_prepared = self.backend.prepare(self.plan.root.va)
                stats.compile_seconds += time.perf_counter() - start
                self._mark_gauges(self._static_prepared)
                stats.static_reuses += 1
            else:
                stats.document_hits += 1
            return self._static_prepared
        key = doc.text
        cached = self._doc_cache.get(key)
        if cached is not None:
            self._doc_cache.move_to_end(key)
            stats.document_hits += 1
            return cached
        stats.document_misses += 1
        start = time.perf_counter()
        prepared = self.backend.prepare(self.plan.va_for(doc, stats))
        stats.compile_seconds += time.perf_counter() - start
        self._mark_gauges(prepared)
        if self._doc_cache_size > 0:
            self._doc_cache[key] = prepared
            while len(self._doc_cache) > self._doc_cache_size:
                self._doc_cache.popitem(last=False)
        return prepared

    @staticmethod
    def _mark_gauges(prepared: PreparedVA) -> None:
        """Watermark the prepared form's cumulative kernel counters.

        The kernel behind a prepared form is shared (cached on the
        automaton), so its counters are *cumulative across everything
        that ever touched it* — attributing them to :attr:`stats` by
        sampling a base around each evaluation double-counts as soon as
        two evaluations overlap (interleaved enumeration generators, or a
        tail session re-entering between samples).  Instead each prepared
        form carries a single watermark; :meth:`_sync_gauges` attributes
        exactly the growth since the last sync, once."""
        prepared._gauge_mark = (
            prepared.kernel_hits(),
            prepared.frontier_misses(),
            prepared.edge_rows_batched(),
        )

    def _sync_gauges(self, prepared: PreparedVA) -> None:
        """Attribute the prepared form's counter growth since the last
        watermark to :attr:`stats` (exactly once), and advance the mark."""
        kernel_hits = prepared.kernel_hits()
        frontier_misses = prepared.frontier_misses()
        edge_rows = prepared.edge_rows_batched()
        mark = getattr(prepared, "_gauge_mark", None)
        if mark is not None:
            stats = self.stats
            stats.kernel_run_hits += kernel_hits - mark[0]
            stats.frontier_cache_misses += frontier_misses - mark[1]
            stats.edge_rows_batched += edge_rows - mark[2]
        prepared._gauge_mark = (kernel_hits, frontier_misses, edge_rows)

    def compile(self, doc: Document) -> VA:
        """The (possibly ad-hoc) VA for one document, bypassing the
        backend."""
        return self.plan.va_for(doc, self.stats)

    def _absorb_trip(self, exc: ExecutionInterrupted, guard) -> bool:
        """Handle one guard trip: attribute the guard's counters, then
        either absorb it (partial mode — records the truncation reason and
        returns ``True``) or decorate it with a stats snapshot for the
        caller and return ``False`` (re-raise)."""
        guard.drain_into(self.stats)
        if guard.degrade:
            guard.truncated = exc.reason
            return True
        if exc.stats is None:
            exc.stats = self.stats.snapshot()
        return False

    def enumerate(
        self,
        document: Document | str,
        limit: int | None = None,
        guard: "ExecutionGuard | None" = None,
    ) -> Iterator[Mapping]:
        """Enumerate the query on one document, recording statistics.

        ``limit`` stops after that many mappings; with the lazy (indexed)
        backend a small limit short-circuits graph construction too, so the
        first answers arrive after one Boolean pass rather than the full
        edge build.

        A ``guard`` bounds the evaluation: construction and the DFS check
        it cooperatively, and each emitted mapping is charged against the
        ``mappings`` budget.  On a trip, ``on_budget="raise"`` propagates
        the structured exception (with a stats snapshot attached);
        ``on_budget="partial"`` ends the iteration early with
        ``guard.truncated`` recording the reason.
        """
        if limit is not None and limit <= 0:
            return
        doc = as_document(document)
        stats = self.stats
        prefilter = self.prefilter()
        if prefilter is not None and not prefilter.admits(doc):
            # Proven empty from the document's cached histogram alone: no
            # graph, no encoding, no per-letter work.
            stats.documents += 1
            stats.prefilter_rejects += 1
            return
        prepared = self.prepared_for(doc)
        stats.documents += 1
        start = time.perf_counter()
        try:
            run = prepared.run(doc, guard=guard)
        except ExecutionInterrupted as exc:
            stats.compile_seconds += time.perf_counter() - start
            self._sync_gauges(prepared)
            if self._absorb_trip(exc, guard):
                return
            raise
        stats.compile_seconds += time.perf_counter() - start
        emitted = 0
        start = time.perf_counter()
        iterator = run.enumerate()
        try:
            while True:
                try:
                    mapping = next(iterator)
                    if guard is not None:
                        # Budget first, then the strided deadline tick —
                        # backends whose runs never consult the guard
                        # (matchgraph) still observe deadlines at
                        # per-mapping granularity this way.
                        guard.charge_mappings(1)
                        guard.tick()
                except StopIteration:
                    stats.enumerate_seconds += time.perf_counter() - start
                    break
                except ExecutionInterrupted as exc:
                    stats.enumerate_seconds += time.perf_counter() - start
                    if self._absorb_trip(exc, guard):
                        break
                    raise
                stats.enumerate_seconds += time.perf_counter() - start
                stats.mappings += 1
                emitted += 1
                yield mapping
                if limit is not None and emitted >= limit:
                    break
                start = time.perf_counter()
        finally:
            # Recorded on the way out (even on early abandonment) so the
            # lazy backend does not pay the gauge before the first yield.
            try:
                stats.states_explored += run.states_alive()
            except ExecutionInterrupted:
                # A tripped guard re-trips on the gauge's lazy backward
                # pass; the gauge is best-effort on the way out.
                pass
            self._sync_gauges(prepared)
            if guard is not None:
                guard.drain_into(stats)

    def first(
        self,
        document: Document | str,
        guard: "ExecutionGuard | None" = None,
    ) -> Mapping | None:
        """The first mapping in canonical order, or ``None`` if empty.

        Delegates to the run's dedicated :meth:`PreparedRun.first` walk —
        on the indexed and vectorized backends one Boolean pass plus a
        single greedy root-to-sink descent, never a full edge build.  A
        deliberate fast path: it skips the ``states_explored`` gauge (the
        lazy runs never materialise their backward layers here).
        """
        doc = as_document(document)
        stats = self.stats
        prefilter = self.prefilter()
        if prefilter is not None and not prefilter.admits(doc):
            stats.documents += 1
            stats.prefilter_rejects += 1
            return None
        prepared = self.prepared_for(doc)
        stats.documents += 1
        start = time.perf_counter()
        try:
            run = prepared.run(doc, guard=guard)
            stats.compile_seconds += time.perf_counter() - start
            start = time.perf_counter()
            mapping = run.first()
            stats.enumerate_seconds += time.perf_counter() - start
        except ExecutionInterrupted as exc:
            # Decision calls have no partial prefix to degrade to, so a
            # trip always raises — partial mode only softens enumeration.
            self._sync_gauges(prepared)
            guard.drain_into(stats)
            if exc.stats is None:
                exc.stats = stats.snapshot()
            raise
        if mapping is not None:
            stats.mappings += 1
        self._sync_gauges(prepared)
        if guard is not None:
            guard.drain_into(stats)
        return mapping

    def is_nonempty(
        self,
        document: Document | str,
        guard: "ExecutionGuard | None" = None,
    ) -> bool:
        """Decide emptiness with the backend's Boolean pass — no
        enumeration edges are built.  The prefilter answers outright for
        documents it can reject, skipping even the Boolean pass.  A guard
        trip always raises here (a Boolean answer has no usable prefix)."""
        doc = as_document(document)
        stats = self.stats
        prefilter = self.prefilter()
        if prefilter is not None and not prefilter.admits(doc):
            stats.nonempty_checks += 1
            stats.prefilter_rejects += 1
            return False
        prepared = self.prepared_for(doc)
        stats.nonempty_checks += 1
        start = time.perf_counter()
        try:
            result = prepared.is_nonempty(doc, guard=guard)
        except ExecutionInterrupted as exc:
            stats.enumerate_seconds += time.perf_counter() - start
            self._sync_gauges(prepared)
            guard.drain_into(stats)
            if exc.stats is None:
                exc.stats = stats.snapshot()
            raise
        stats.enumerate_seconds += time.perf_counter() - start
        self._sync_gauges(prepared)
        if guard is not None:
            guard.drain_into(stats)
        return result


class Engine:
    """The staged execution engine (see module docstring).

    Args:
        backend: an :class:`EnumerationBackend` name or instance
            (default ``indexed``).
        plan_cache_size: maximum number of distinct queries whose plans
            stay cached (LRU).
        document_cache_size: per-query LRU of prepared ad-hoc automata,
            keyed by document text — serves repeated documents without
            recompiling the ad-hoc suffix.  ``0`` disables it.
        optimize: run the rewrite-rule optimizer
            (:mod:`repro.engine.optimizer`) on every compiled plan
            (default).  ``False`` is the escape hatch: plans lower the
            raw logical tree exactly as written.
        prefilter: derive a document prefilter from every fully static
            plan (:mod:`repro.va.prefilter`) and reject provably
            non-matching documents in O(1), before any graph is built
            (default).  ``False`` is the escape hatch: every document
            runs the full Boolean pass.
        enumeration_block_size: block budget for backends with a batched
            enumeration path (``vectorized``): the maximum number of
            distinct ``(letter, live mask)`` layer contexts a document
            may have before enumeration falls back to the scalar walk.
            ``0`` disables batching entirely (the equivalence escape
            hatch); ``None`` keeps the backend default
            (:data:`repro.va.vectorized.DEFAULT_ENUM_BLOCK_SIZE`).  The
            context cache is the memory cost — each context holds one
            edge-row set.  Ignored by backends without batching.
    """

    def __init__(
        self,
        backend: "str | EnumerationBackend | None" = None,
        plan_cache_size: int = 128,
        document_cache_size: int = 0,
        optimize: bool = True,
        prefilter: bool = True,
        enumeration_block_size: "int | None" = None,
    ):
        self.backend = get_backend(backend)
        self.stats = EngineStats()
        self.optimize = optimize
        self.prefilter = prefilter
        self.enumeration_block_size = enumeration_block_size
        if enumeration_block_size is not None:
            self.backend.enumeration_block_size = enumeration_block_size
        self._plan_cache_size = plan_cache_size
        self._document_cache_size = document_cache_size
        self._contexts: OrderedDict[object, ExecutionContext] = OrderedDict()
        # Fingerprint-keyed StaticNodes shared across every plan this
        # engine builds (plan-level CSE, cross-query flavour).
        self._static_cache: OrderedDict[object, StaticNode] = OrderedDict()
        self._static_cache_size = max(4 * plan_cache_size, 64)

    # -- query resolution ---------------------------------------------------

    def prepare(
        self,
        query: "RAQuery | RANode | VA",
        instantiation: Instantiation | None = None,
        config: PlannerConfig | None = None,
    ) -> ExecutionContext:
        """The (cached) execution context for a query.

        Accepts an :class:`RAQuery`, a bare sequential :class:`VA`, or an
        RA tree plus its instantiation.  A plan-cache miss resolves the
        logical plan, optimizes it (unless the engine was built with
        ``optimize=False``), and compiles the static prefix; every later
        call is a hit.  Plans are cached under both a cheap structural key
        and the optimized logical plan's fingerprint, so structurally
        equal queries share one plan even when their atoms are distinct
        objects.
        """
        if isinstance(query, RAQuery):
            tree, instantiation, config = query.tree, query.instantiation, query.config
        elif isinstance(query, VA):
            return self._context_for_va(query)
        elif isinstance(query, RANode):
            if instantiation is None:
                raise SpannerError("an RA tree query needs an instantiation")
            tree = query
        else:
            raise TypeError(f"cannot evaluate a {type(query).__name__}")
        config = config or PlannerConfig()
        key = self._plan_key(tree, instantiation, config)
        context = self._contexts.get(key) if key is not None else None
        if context is not None:
            self._contexts.move_to_end(key)
            self.stats.plan_hits += 1
            return context
        start = time.perf_counter()
        logical, report = resolve_logical(
            tree, instantiation, config, self.optimize, self.stats
        )
        fp_key = ("fp", logical.fingerprint, config, self.optimize)
        context = self._contexts.get(fp_key)
        if context is not None:
            self._contexts.move_to_end(fp_key)
            self.stats.compile_seconds += time.perf_counter() - start
            self.stats.plan_hits += 1
            self.stats.fingerprint_hits += 1
            if key is not None:
                self._store(key, context)  # alias the cheap key for next time
            return context
        self.stats.plan_misses += 1
        plan = plan_from_logical(
            logical,
            tree,
            instantiation,
            config,
            report=report,
            stats=self.stats,
            static_cache=self._static_cache,
            join_bound_checked=self.optimize,
        )
        self._trim_static_cache()
        self.stats.compile_seconds += time.perf_counter() - start
        context = ExecutionContext(
            plan, self.backend, self.stats, self._document_cache_size,
            prefilter=self.prefilter,
        )
        self._store(fp_key, context)
        if key is not None:
            self._store(key, context)
        return context

    def _context_for_va(self, va: VA) -> ExecutionContext:
        key = ("va", va.fingerprint())
        context = self._contexts.get(key)
        if context is not None:
            self._contexts.move_to_end(key)
            self.stats.plan_hits += 1
            return context
        self.stats.plan_misses += 1
        plan = CompiledPlan(StaticNode(va), None, None, PlannerConfig())
        context = ExecutionContext(
            plan, self.backend, self.stats, self._document_cache_size,
            prefilter=self.prefilter,
        )
        self._store(key, context)
        return context

    def _store(self, key: object, context: ExecutionContext) -> None:
        self._contexts[key] = context
        # Plans are stored under several keys (structural key, fingerprint
        # key, aliases), so capacity counts distinct *plans*, not keys —
        # eviction pops the oldest keys until the plan count fits.
        while (
            len({id(c) for c in self._contexts.values()}) > self._plan_cache_size
        ):
            self._contexts.popitem(last=False)

    def _trim_static_cache(self) -> None:
        while len(self._static_cache) > self._static_cache_size:
            self._static_cache.popitem(last=False)

    @staticmethod
    def _plan_key(
        tree: RANode, instantiation: Instantiation, config: PlannerConfig
    ) -> "object | None":
        """The cheap structural cache key, or ``None`` when the query is
        not cheaply cacheable.

        Atom *objects* are embedded in the key (not their ids): the cache
        entry then keeps them alive, so a recycled ``id()`` can never
        alias a later query to a stale plan.  Regex formulas hash
        structurally; VAs and black boxes by identity.  An exotic
        unhashable atom opts the query out of this cache — the
        fingerprint-keyed path still serves it.
        """
        atoms = tuple(
            sorted(instantiation.spanners.items(), key=lambda item: item[0])
        )
        slots = tuple(
            sorted(
                (slot, frozenset(variables))
                for slot, variables in instantiation.projections.items()
            )
        )
        key = (tree, atoms, slots, config)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    # -- guards --------------------------------------------------------------

    @staticmethod
    def _make_guard(
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        on_budget: str = "raise",
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> "ExecutionGuard | None":
        """The guard of one engine call: an explicit ``guard`` passes
        through verbatim (shared-across-calls semantics), the shorthand
        knobs build a fresh one, and all-``None`` means unguarded."""
        if guard is not None:
            return guard
        if deadline is None and budget is None and cancel is None:
            return None
        return ExecutionGuard(
            deadline=deadline, budget=budget, cancel=cancel, on_budget=on_budget
        )

    # -- single-document API ------------------------------------------------

    def compile(self, query, document: Document | str) -> VA:
        """The (possibly ad-hoc) VA for one document, with the static
        prefix served from the plan cache."""
        return self.prepare(query).compile(as_document(document))

    def explain(
        self,
        query,
        instantiation: Instantiation | None = None,
        config: PlannerConfig | None = None,
    ) -> str:
        """The compiled plan of a query, pretty-printed
        (:meth:`CompiledPlan.explain`): physical tree with CSE sharing
        marks, optimized logical plan, and the optimizer's rule-fire
        summary."""
        return self.prepare(query, instantiation, config).plan.explain()

    def enumerate(
        self,
        query,
        document: Document | str,
        limit: int | None = None,
        *,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        on_budget: str = "raise",
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> Iterator[Mapping]:
        """Enumerate a query on one document (polynomial delay).

        ``limit`` caps the number of mappings; small limits short-circuit
        graph construction on the lazy (indexed) backend.  ``deadline`` /
        ``budget`` / ``cancel`` bound the evaluation through an
        :class:`ExecutionGuard` (or pass a prebuilt ``guard`` to share one
        across calls); ``on_budget="partial"`` ends the iteration at the
        trip instead of raising.
        """
        g = self._make_guard(deadline, budget, on_budget, cancel, guard)
        return self.prepare(query).enumerate(document, limit=limit, guard=g)

    def evaluate(
        self,
        query,
        document: Document | str,
        *,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        on_budget: str = "raise",
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> SpanRelation:
        """Materialise a query on one document.

        Under a guard, a trip with ``on_budget="raise"`` propagates the
        structured :class:`~repro.core.errors.ExecutionInterrupted` with
        the prefix materialised so far attached as ``exc.partial`` (a
        truncated :class:`SpanRelation`); with ``on_budget="partial"`` the
        prefix is returned directly, flagged ``truncated``.
        """
        g = self._make_guard(deadline, budget, on_budget, cancel, guard)
        context = self.prepare(query)
        if g is None:
            return SpanRelation(context.enumerate(document))
        collected: list[Mapping] = []
        try:
            for mapping in context.enumerate(document, guard=g):
                collected.append(mapping)
        except ExecutionInterrupted as exc:
            exc.partial = SpanRelation(collected, truncated=True)
            raise
        return SpanRelation(collected, truncated=g.truncated is not None)

    def first(
        self,
        query,
        document: Document | str,
        *,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        on_budget: str = "raise",
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> Mapping | None:
        """The first mapping in canonical order, or ``None`` if empty —
        Theorem 2.5's first delay: one linear preprocessing pass plus a
        single root-to-sink walk.  Guard trips always raise here."""
        g = self._make_guard(deadline, budget, on_budget, cancel, guard)
        return self.prepare(query).first(document, guard=g)

    def is_nonempty(
        self,
        query,
        document: Document | str,
        *,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        on_budget: str = "raise",
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> bool:
        """Decide ``⟦q⟧(d) ≠ ∅`` via the backend's Boolean bitmask pass —
        no enumeration edges are built.  Guard trips always raise here."""
        g = self._make_guard(deadline, budget, on_budget, cancel, guard)
        return self.prepare(query).is_nonempty(document, guard=g)

    def tail(self, query, document: Document | str = "") -> "TailSession":
        """An incremental evaluation session for a growing document
        (:class:`~repro.engine.tail.TailSession`).

        The session shares this engine's compiled plan and prepared
        automaton for ``query``; each ``reevaluate(appended_text)``
        resumes the forward pass from the previous run's checkpoint (on
        backends that support extension) and returns only the mappings
        that are new since the last call."""
        from .tail import TailSession

        return TailSession(self.prepare(query), document)

    # -- batch / streaming API ----------------------------------------------

    def evaluate_many(
        self,
        query,
        documents: "Iterable[Document | str] | CorpusStore | CorpusSelection",
        limit: int | None = None,
        workers: int | None = None,
        *,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        on_budget: str = "raise",
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> list[SpanRelation]:
        """Materialise a query over a batch of documents, compiling the
        static prefix exactly once.

        The whole corpus shares one compiled plan and (for fully static
        queries) one interned alphabet, so each document is wrapped and
        encoded at most once.  The VA-derived prefilter runs up front over
        the corpus: provably non-matching documents get their empty
        relations immediately and are never evaluated — and never shipped
        to workers — so on sparse corpora the per-document cost collapses
        to the O(1) histogram check.

        ``documents`` may also be a :class:`~repro.corpus.CorpusStore` (or
        a :meth:`~repro.corpus.CorpusStore.select` selection of one): the
        prefilter conditions then compile into *index operations* —
        posting-list intersections and length range scans — so
        non-matching documents are pruned in sublinear time without even
        fetching their rows, and the survivors hydrate with their cached
        run-length encodings and histograms instead of recomputing them
        (:attr:`EngineStats.index_hits` / ``index_candidates`` /
        ``hydrations``).  Results align with the store's ascending doc-id
        order (or the selection's order).

        Args:
            limit: per-document cap on materialised mappings.
            workers: shard the *surviving* documents across this many
                worker processes (round-robin); per-shard statistics are
                merged back into :attr:`stats`.  Falls back to in-process
                evaluation when the query cannot be shipped to workers
                (e.g. black-box spanners that do not pickle) or the batch
                is tiny; fallback reasons are recorded in
                ``stats.parallel_fallbacks``.
            deadline / budget / cancel / guard: one
                :class:`ExecutionGuard` shared across the *whole batch*
                (budgets are cumulative over all documents; the deadline
                is propagated to worker shards).  With
                ``on_budget="raise"`` a trip carries the relations
                completed so far as ``exc.partial``; with
                ``on_budget="partial"`` the tripped document keeps its
                prefix and every later document returns an empty relation,
                all flagged ``truncated``.
        """
        g = self._make_guard(deadline, budget, on_budget, cancel, guard)
        selection = _as_corpus_selection(documents)
        if selection is not None:
            return self._evaluate_corpus(query, selection, limit, workers, g)
        docs = [as_document(doc) for doc in documents]
        # Compile in the parent only when the corpus-level prefilter may
        # need the plan; a prefilter-off parallel batch leaves compilation
        # entirely to the workers.
        context: "ExecutionContext | None" = None
        prefilter = None
        if self.prefilter:
            context = self.prepare(query)
            prefilter = context.prefilter()
        if prefilter is None:
            kept = range(len(docs))
            survivors = docs
        else:
            kept = [i for i, doc in enumerate(docs) if prefilter.admits(doc)]
            survivors = [docs[i] for i in kept]
            rejected = len(docs) - len(survivors)
            self.stats.documents += rejected
            self.stats.prefilter_rejects += rejected
        relations: "list[SpanRelation] | None" = None
        if workers is not None and workers > 1 and len(survivors) > 1:
            relations = self._evaluate_parallel(
                query, survivors, limit, workers, g
            )
        if relations is None:
            if context is None:
                context = self.prepare(query)
            relations = self._materialise_batch(context, survivors, limit, g)
        if len(survivors) == len(docs):
            return relations
        empty = SpanRelation(())
        out = [empty] * len(docs)
        for index, relation in zip(kept, relations):
            out[index] = relation
        return out

    def _materialise_batch(
        self,
        context: ExecutionContext,
        docs: "list[Document]",
        limit: int | None,
        guard: "ExecutionGuard | None",
    ) -> list[SpanRelation]:
        """Materialise one relation per document in-process, sharing one
        guard across the batch.  Raise-mode trips carry the relations
        completed so far as ``exc.partial``; partial mode flags the
        tripped document's prefix (and every later document's empty
        relation) as truncated — a tripped guard keeps re-tripping, so
        the rest of the batch short-circuits at construction."""
        if guard is None:
            return [
                SpanRelation(context.enumerate(doc, limit=limit))
                for doc in docs
            ]
        relations: list[SpanRelation] = []
        try:
            for doc in docs:
                mappings = list(context.enumerate(doc, limit=limit, guard=guard))
                relations.append(
                    SpanRelation(mappings, truncated=guard.truncated is not None)
                )
        except ExecutionInterrupted as exc:
            exc.partial = relations
            raise
        return relations

    def _note_fallback(self, category: str) -> None:
        """Record why a parallel batch fell back to sequential."""
        fallbacks = self.stats.parallel_fallbacks
        fallbacks[category] = fallbacks.get(category, 0) + 1

    def _evaluate_parallel(
        self,
        query,
        docs: list[Document],
        limit: int | None,
        workers: int,
        guard: "ExecutionGuard | None" = None,
    ) -> "list[SpanRelation] | None":
        """The process-pool path; ``None`` means fall back to sequential
        (with the reason recorded in ``stats.parallel_fallbacks``).

        Guard propagation: shards receive the *remaining* deadline and the
        budget spec, run in partial mode, and report their trip reason
        back; the parent then re-raises (raise mode, with the merged
        relations as the partial result) or marks the batch truncated
        (partial mode).  Budgets apply per shard — the parent cannot
        meter workers mid-flight — so a batch-wide ceiling is the spec
        times the shard count in the worst case.  Cancel tokens do not
        cross process boundaries; lost (crashed) shards are recomputed
        serially in the parent and counted in ``stats.shard_retries``."""
        from .guards import exception_for
        from .parallel import evaluate_sharded, parallel_payload, probe_parallelise

        backend_name = self.backend.name
        if type(self.backend) is not BACKENDS.get(backend_name):
            # Custom backend instance: workers cannot rebuild it by name.
            self._note_fallback("custom_backend")
            return None
        try:
            payload = parallel_payload(query)
        except TypeError:
            self._note_fallback("query_shape")
            return None
        probe_failure = probe_parallelise(payload, backend_name)
        if probe_failure is not None:
            self._note_fallback(probe_failure)
            return None
        relations, shard_stats, tripped, retries = evaluate_sharded(
            payload, backend_name, docs, limit, workers,
            document_cache_size=self._document_cache_size,
            optimize=self.optimize,
            prefilter=self.prefilter,
            enumeration_block_size=self.enumeration_block_size,
            deadline=guard.remaining() if guard is not None else None,
            budget=guard.budget if guard is not None else None,
        )
        for stats in shard_stats:
            self.stats.merge(stats)
        self.stats.parallel_shards += len(shard_stats)
        self.stats.shard_retries += retries
        reasons = [reason for reason in tripped if reason]
        if guard is not None and reasons:
            reason = reasons[0]
            if guard.tripped is None:
                guard.tripped = reason
            if reason == "deadline":
                guard.deadline_hits += 1
            elif reason.startswith("budget"):
                guard.budget_hits += 1
            guard.drain_into(self.stats)
            if guard.degrade:
                guard.truncated = reason
            else:
                exc = exception_for(reason)(
                    f"evaluation interrupted in a worker shard ({reason})",
                    reason=reason,
                    partial=relations,
                    stats=self.stats.snapshot(),
                )
                raise exc
        return relations

    # -- corpus-store (index-driven) paths ----------------------------------

    def _corpus_survivors(
        self, context: ExecutionContext, selection: CorpusSelection
    ) -> "tuple[list[int], set[int] | None]":
        """The selection's ids plus the set surviving the index plan.

        A ``None`` survivor set means the index could not prune (prefilter
        disabled, ad-hoc plan, non-sequential automaton): every id must be
        hydrated and evaluated.  Pruned documents are charged to the
        ``prefilter_rejects`` counter — they were rejected by exactly the
        prefilter's conditions, just from the index instead of a walk.
        """
        ids = list(selection.doc_ids)
        prefilter = context.prefilter()
        if prefilter is None:
            return ids, None
        stats = self.stats
        plan, kept = selection.store.survivors(prefilter, within=ids)
        stats.index_hits += 1
        stats.index_candidates += len(plan.doc_ids)
        kept_set = set(kept)
        rejected = sum(1 for doc_id in ids if doc_id not in kept_set)
        stats.documents += rejected
        stats.prefilter_rejects += rejected
        return ids, kept_set

    def _hydrate(self, store: CorpusStore, doc_id: int) -> Document:
        self.stats.hydrations += 1
        return store.document(doc_id)

    def _evaluate_corpus(
        self,
        query,
        selection: CorpusSelection,
        limit: int | None,
        workers: int | None,
        guard: "ExecutionGuard | None" = None,
    ) -> list[SpanRelation]:
        """The index-driven form of :meth:`evaluate_many`."""
        context = self.prepare(query)
        store = selection.store
        retries_base = store.retries
        try:
            ids, survivor_set = self._corpus_survivors(context, selection)
            surviving_ids = [
                doc_id
                for doc_id in dict.fromkeys(ids)  # hydrate duplicates once
                if survivor_set is None or doc_id in survivor_set
            ]
            survivors = [
                self._hydrate(store, doc_id) for doc_id in surviving_ids
            ]
        finally:
            self.stats.store_retries += store.retries - retries_base
        relations: "list[SpanRelation] | None" = None
        if workers is not None and workers > 1 and len(survivors) > 1:
            relations = self._evaluate_parallel(
                query, survivors, limit, workers, guard
            )
        if relations is None:
            relations = self._materialise_batch(context, survivors, limit, guard)
        by_id = dict(zip(surviving_ids, relations))
        empty = SpanRelation(())
        return [by_id.get(doc_id, empty) for doc_id in ids]

    # -- batch emptiness ------------------------------------------------------

    def is_nonempty_many(
        self,
        query,
        documents: "Iterable[Document | str] | CorpusStore | CorpusSelection",
        *,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> list[bool]:
        """Decide ``⟦q⟧(d) ≠ ∅`` for a whole batch, sharing one compiled
        plan — the batch form of :meth:`is_nonempty`.

        Plain iterables walk the batch with the per-document prefilter;
        a :class:`~repro.corpus.CorpusStore` (or selection) answers
        through the index plan first, running the Boolean pass only on
        the candidate documents that survive it.  A shared guard bounds
        the whole batch; trips always raise (Boolean answers have no
        usable prefix to degrade to).
        """
        g = self._make_guard(deadline, budget, "raise", cancel, guard)
        context = self.prepare(query)
        selection = _as_corpus_selection(documents)
        if selection is None:
            return [
                context.is_nonempty(as_document(doc), guard=g)
                for doc in documents
            ]
        store = selection.store
        retries_base = store.retries
        try:
            ids, survivor_set = self._corpus_survivors(context, selection)
            if survivor_set is not None:
                # Index-pruned documents count as (answered) emptiness
                # checks.
                rejected = sum(
                    1 for doc_id in ids if doc_id not in survivor_set
                )
                self.stats.nonempty_checks += rejected
                self.stats.documents -= rejected  # charged above
            answers: dict[int, bool] = {}
            out = []
            for doc_id in ids:
                if survivor_set is not None and doc_id not in survivor_set:
                    out.append(False)
                    continue
                answer = answers.get(doc_id)
                if answer is None:
                    answer = answers[doc_id] = context.is_nonempty(
                        self._hydrate(store, doc_id), guard=g
                    )
                out.append(answer)
        finally:
            self.stats.store_retries += store.retries - retries_base
        return out

    def enumerate_stream(
        self,
        query,
        documents: "Iterable[Document | str] | CorpusStore | CorpusSelection",
        limit: int | None = None,
        *,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        on_budget: str = "raise",
        cancel: "CancelToken | None" = None,
        guard: "ExecutionGuard | None" = None,
    ) -> Iterator[tuple[int, Mapping]]:
        """Stream ``(document_index, mapping)`` pairs over a document
        stream, lazily — suitable for unbounded streams.  ``limit`` caps
        the mappings taken per document.

        The stream shares one compiled plan and interned alphabet; each
        incoming document is wrapped once and checked against the
        VA-derived prefilter first, so non-matching documents cost one
        O(1) histogram probe and contribute nothing to the stream.

        Over a :class:`~repro.corpus.CorpusStore` (or selection) the pairs
        are ``(doc_id, mapping)`` and the index plan prunes non-candidates
        up front, so pruned documents are never fetched at all.

        Guard parameters mirror :meth:`evaluate`; the guard spans the
        whole stream (budgets are cumulative across documents)."""
        g = self._make_guard(
            deadline=deadline, budget=budget, on_budget=on_budget,
            cancel=cancel, guard=guard,
        )
        context = self.prepare(query)
        selection = _as_corpus_selection(documents)
        if selection is not None:
            store = selection.store
            retries_base = store.retries
            try:
                ids, survivor_set = self._corpus_survivors(context, selection)
                for doc_id in ids:
                    if survivor_set is not None and doc_id not in survivor_set:
                        continue
                    doc = self._hydrate(store, doc_id)
                    for mapping in context.enumerate(doc, limit=limit, guard=g):
                        yield doc_id, mapping
                    if g is not None and g.truncated is not None:
                        return
            finally:
                self.stats.store_retries += store.retries - retries_base
            return
        for index, doc in enumerate(documents):
            for mapping in context.enumerate(as_document(doc), limit=limit, guard=g):
                yield index, mapping
            if g is not None and g.truncated is not None:
                return

    def __repr__(self) -> str:
        return (
            f"Engine(backend={self.backend.name!r}, "
            f"plans={len(self._contexts)})"
        )
