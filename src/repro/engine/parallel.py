"""Process-pool document sharding for :meth:`Engine.evaluate_many`.

``Engine.evaluate_many(query, docs, workers=N)`` splits the document batch
round-robin into ``N`` shards, evaluates each shard in its own worker
process (each worker builds a private :class:`Engine` with the same backend
and compiles the query once — the per-shard analogue of the parent's plan
cache), and reassembles results in input order.  Each worker returns its
:class:`~repro.engine.stats.EngineStats`, which the parent merges so batch
counters stay meaningful; the merged times are summed CPU seconds across
processes, not wall time.

The corpus-store path (``evaluate_many`` over a
:class:`~repro.corpus.CorpusStore`) threads through here too: the parent
runs the index plan and hydrates the surviving documents, and only those
survivors are sharded — workers receive raw texts and re-derive their
evaluation-local artifacts, so index pruning is never paid per shard.

Work ships to workers by pickling, so the parallel path requires a
picklable query.  :func:`parallel_payload` reduces the supported query
shapes to plain data (an :class:`RAQuery` is sent as its
``(tree, instantiation, config)`` triple — never its engine) and
:func:`probe_parallelise` probes pickling up front; callers fall back to
the sequential path when the probe fails (e.g. black-box spanners closing
over lambdas), so ``workers=N`` is always safe to pass.

Robustness: shards inherit the caller's remaining deadline and budget
spec and run their guard in partial mode, reporting the trip reason back
instead of raising across the process boundary.  A crashed worker breaks
the whole pool (``BrokenProcessPool``); the shards whose results were
lost are recomputed serially in the parent — with fault injection's
crash site disabled so an injected crash cannot loop — and the retry
count is reported so the caller can surface it in ``EngineStats``.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Sequence

from ..core.document import Document
from ..core.relation import SpanRelation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stats import EngineStats


def parallel_payload(query: object) -> object:
    """A picklable, engine-free description of ``query``.

    Raises ``TypeError`` for unsupported query shapes (callers fall back to
    sequential evaluation).
    """
    from ..algebra.planner import RAQuery
    from ..va.automaton import VA

    if isinstance(query, VA):
        return ("va", query)
    if isinstance(query, RAQuery):
        return ("ra", query.tree, query.instantiation, query.config)
    raise TypeError(
        f"cannot shard a {type(query).__name__} across processes"
    )


def probe_parallelise(payload: object, backend_name: str) -> "str | None":
    """Probe whether the payload survives pickling (workers get a copy).

    Returns ``None`` when sharding is viable, otherwise a short reason
    string for the fallback ledger.  Only serialisation failures are
    caught — ``PicklingError`` plus the ``TypeError``/``AttributeError``
    that ``pickle`` raises for closures and local classes; anything else
    (a broken ``__reduce__``, say) is a real bug and propagates.
    """
    try:
        pickle.dumps((payload, backend_name))
        return None
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        return f"pickle: {type(exc).__name__}"


def can_parallelise(payload: object, backend_name: str) -> bool:
    """Whether the payload survives pickling (workers receive a copy)."""
    return probe_parallelise(payload, backend_name) is None


def _rebuild_query(payload):
    if payload[0] == "va":
        return payload[1]
    from ..algebra.planner import RAQuery

    _, tree, instantiation, config = payload
    return RAQuery(tree, instantiation, config)


def _run_shard(
    payload,
    backend_name: str,
    texts: list[str],
    limit: int | None,
    document_cache_size: int,
    optimize: bool,
    prefilter: bool,
    enumeration_block_size: "int | None" = None,
    deadline: "float | None" = None,
    budget=None,
    crashable: bool = True,
) -> "tuple[list[SpanRelation], EngineStats, str | None]":
    """Worker entry point: evaluate one shard with a private engine.

    Runs the shard guard in partial mode so a trip never crosses the
    process boundary as an exception — the trip *reason* travels back in
    the result tuple and the parent decides whether to raise.  Serial
    retries of lost shards run in the parent with ``crashable=False`` so
    the fault harness's crash site cannot re-fire.
    """
    from ..testing import faults
    from .core import Engine
    from .guards import ExecutionGuard

    faults.install_from_env()
    if crashable:
        faults.shard_crash("parallel.shard")
    engine = Engine(
        backend=backend_name,
        document_cache_size=document_cache_size,
        optimize=optimize,
        prefilter=prefilter,
        enumeration_block_size=enumeration_block_size,
    )
    query = _rebuild_query(payload)
    guard = None
    if deadline is not None or budget is not None:
        guard = ExecutionGuard(
            deadline=deadline, budget=budget, on_budget="partial"
        )
    relations = engine.evaluate_many(query, texts, limit=limit, guard=guard)
    tripped = guard.tripped if guard is not None else None
    return relations, engine.stats, tripped


def evaluate_sharded(
    payload,
    backend_name: str,
    documents: Sequence[Document],
    limit: int | None,
    workers: int,
    document_cache_size: int = 0,
    optimize: bool = True,
    prefilter: bool = True,
    enumeration_block_size: "int | None" = None,
    deadline: "float | None" = None,
    budget=None,
) -> "tuple[list[SpanRelation], list[EngineStats], list[str | None], int]":
    """Evaluate ``documents`` across ``workers`` processes.

    Returns ``(relations, shard_stats, tripped_reasons, retries)``: the
    relations in input order, the per-shard statistics, each shard's
    guard-trip reason (``None`` when it ran to completion), and how many
    shards had to be recomputed serially after a worker crash.  Documents
    are sharded round-robin (``documents[i::n]``), which balances load
    when document cost correlates with position in the batch.  The caller
    has already prefiltered the corpus (only surviving documents are
    shipped); ``prefilter`` just keeps worker engines configured like the
    parent.

    A crashed worker poisons the whole pool, so every shard whose future
    raises ``BrokenProcessPool`` is rerun in-parent (``crashable=False``)
    rather than resubmitted — one serial pass, no crash loop.
    """
    n_shards = max(1, min(workers, len(documents)))
    shards = [
        [doc.text for doc in documents[offset::n_shards]]
        for offset in range(n_shards)
    ]
    results: "list[tuple[list[SpanRelation], EngineStats, str | None] | None]"
    results = [None] * n_shards
    with ProcessPoolExecutor(max_workers=n_shards) as pool:
        futures = []
        try:
            for texts in shards:
                futures.append(pool.submit(
                    _run_shard, payload, backend_name, texts, limit,
                    document_cache_size, optimize, prefilter,
                    enumeration_block_size, deadline, budget,
                ))
        except BrokenProcessPool:
            pass  # shards never submitted join the serial reap below
        for offset, future in enumerate(futures):
            try:
                results[offset] = future.result()
            except BrokenProcessPool:
                pass
    lost = [offset for offset, result in enumerate(results) if result is None]
    for offset in lost:
        results[offset] = _run_shard(
            payload, backend_name, shards[offset], limit,
            document_cache_size, optimize, prefilter,
            enumeration_block_size, deadline, budget, crashable=False,
        )
    relations: list[SpanRelation | None] = [None] * len(documents)
    for offset, shard_result in enumerate(results):
        shard_relations = shard_result[0]  # type: ignore[index]
        for position, relation in enumerate(shard_relations):
            relations[offset + position * n_shards] = relation
    return (
        relations,  # type: ignore[return-value]
        [result[1] for result in results],  # type: ignore[index]
        [result[2] for result in results],  # type: ignore[index]
        len(lost),
    )
