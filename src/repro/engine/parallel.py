"""Process-pool document sharding for :meth:`Engine.evaluate_many`.

``Engine.evaluate_many(query, docs, workers=N)`` splits the document batch
round-robin into ``N`` shards, evaluates each shard in its own worker
process (each worker builds a private :class:`Engine` with the same backend
and compiles the query once — the per-shard analogue of the parent's plan
cache), and reassembles results in input order.  Each worker returns its
:class:`~repro.engine.stats.EngineStats`, which the parent merges so batch
counters stay meaningful; the merged times are summed CPU seconds across
processes, not wall time.

The corpus-store path (``evaluate_many`` over a
:class:`~repro.corpus.CorpusStore`) threads through here too: the parent
runs the index plan and hydrates the surviving documents, and only those
survivors are sharded — workers receive raw texts and re-derive their
evaluation-local artifacts, so index pruning is never paid per shard.

Work ships to workers by pickling, so the parallel path requires a
picklable query.  :func:`parallel_payload` reduces the supported query
shapes to plain data (an :class:`RAQuery` is sent as its
``(tree, instantiation, config)`` triple — never its engine) and
:func:`can_parallelise` probes pickling up front; callers fall back to the
sequential path when the probe fails (e.g. black-box spanners closing over
lambdas), so ``workers=N`` is always safe to pass.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from ..core.document import Document
from ..core.relation import SpanRelation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stats import EngineStats


def parallel_payload(query: object) -> object:
    """A picklable, engine-free description of ``query``.

    Raises ``TypeError`` for unsupported query shapes (callers fall back to
    sequential evaluation).
    """
    from ..algebra.planner import RAQuery
    from ..va.automaton import VA

    if isinstance(query, VA):
        return ("va", query)
    if isinstance(query, RAQuery):
        return ("ra", query.tree, query.instantiation, query.config)
    raise TypeError(
        f"cannot shard a {type(query).__name__} across processes"
    )


def can_parallelise(payload: object, backend_name: str) -> bool:
    """Whether the payload survives pickling (workers receive a copy)."""
    try:
        pickle.dumps((payload, backend_name))
        return True
    except Exception:
        return False


def _rebuild_query(payload):
    if payload[0] == "va":
        return payload[1]
    from ..algebra.planner import RAQuery

    _, tree, instantiation, config = payload
    return RAQuery(tree, instantiation, config)


def _run_shard(
    payload,
    backend_name: str,
    texts: list[str],
    limit: int | None,
    document_cache_size: int,
    optimize: bool,
    prefilter: bool,
    enumeration_block_size: "int | None" = None,
) -> "tuple[list[SpanRelation], EngineStats]":
    """Worker entry point: evaluate one shard with a private engine."""
    from .core import Engine

    engine = Engine(
        backend=backend_name,
        document_cache_size=document_cache_size,
        optimize=optimize,
        prefilter=prefilter,
        enumeration_block_size=enumeration_block_size,
    )
    query = _rebuild_query(payload)
    relations = engine.evaluate_many(query, texts, limit=limit)
    return relations, engine.stats


def evaluate_sharded(
    payload,
    backend_name: str,
    documents: Sequence[Document],
    limit: int | None,
    workers: int,
    document_cache_size: int = 0,
    optimize: bool = True,
    prefilter: bool = True,
    enumeration_block_size: "int | None" = None,
) -> "tuple[list[SpanRelation], list[EngineStats]]":
    """Evaluate ``documents`` across ``workers`` processes.

    Returns the relations in input order plus the per-shard statistics.
    Documents are sharded round-robin (``documents[i::n]``), which balances
    load when document cost correlates with position in the batch.  The
    caller has already prefiltered the corpus (only surviving documents
    are shipped); ``prefilter`` just keeps worker engines configured like
    the parent.
    """
    n_shards = max(1, min(workers, len(documents)))
    shards = [
        [doc.text for doc in documents[offset::n_shards]]
        for offset in range(n_shards)
    ]
    with ProcessPoolExecutor(max_workers=n_shards) as pool:
        futures = [
            pool.submit(
                _run_shard, payload, backend_name, texts, limit,
                document_cache_size, optimize, prefilter,
                enumeration_block_size,
            )
            for texts in shards
        ]
        results = [future.result() for future in futures]
    relations: list[SpanRelation | None] = [None] * len(documents)
    for offset, (shard_relations, _) in enumerate(results):
        for position, relation in enumerate(shard_relations):
            relations[offset + position * n_shards] = relation
    return relations, [stats for _, stats in results]  # type: ignore[return-value]
