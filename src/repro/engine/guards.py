"""Execution guards: deadlines, cooperative cancellation, resource budgets.

Every evaluation entry point of the engine accepts an
:class:`ExecutionGuard` (or the ``deadline=`` / ``budget=`` shorthands
that build one).  The guard is consulted *cooperatively* by the layers
underneath — match-graph construction checks it at **run boundaries** (so
guard overhead is O(runs), not O(positions)), the enumeration DFS ticks
it per stack frame through a strided counter (one clock read every
:data:`ExecutionGuard.TICK_STRIDE` frames), and the engine charges each
emitted mapping against the budget — and trips by raising the structured
:class:`~repro.core.errors.DeadlineExceeded` /
:class:`~repro.core.errors.BudgetExceeded` /
:class:`~repro.core.errors.ExecutionCancelled` taxonomy.

Two degradation modes (``on_budget``):

* ``"raise"`` (default) — the trip propagates to the caller; the engine
  attaches the partial prefix materialised so far plus an
  :class:`~repro.engine.stats.EngineStats` snapshot to the exception.
* ``"partial"`` — the engine absorbs the trip and returns the prefix
  enumerated so far; :attr:`ExecutionGuard.truncated` (and, for
  materialised results, ``SpanRelation.truncated``) records the reason.

The *unguarded* hot path pays only ``guard is None`` tests: no clock
reads, no counter arithmetic — the ≤ 5 % overhead bar of the committed
kernel benches.  Guards are engine-agnostic (no engine import) and safe
to share across a document batch: budgets are cumulative over the
guard's lifetime, which is exactly the "at most N mappings for this whole
request" semantics a query service needs.

Budgets can be written as a spec string (the CLI's ``--budget``)::

    mappings=10000,states=2m,edge-rows=500k,cache-bytes=64m

Cancellation is a shared :class:`CancelToken`: hand the same token to a
guard per request and flip it from any thread — every guarded loop exits
at its next checkpoint with :class:`ExecutionCancelled`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    ExecutionCancelled,
    ExecutionInterrupted,
    SpannerError,
)
from ..testing import faults


def exception_for(reason: str) -> "type[ExecutionInterrupted]":
    """The taxonomy class of a trip reason string — how the parent of a
    worker shard re-raises a trip that happened across the process
    boundary (only the reason travels back, not the exception)."""
    if reason == "deadline":
        return DeadlineExceeded
    if reason == "cancelled":
        return ExecutionCancelled
    if reason.startswith("budget"):
        return BudgetExceeded
    return ExecutionInterrupted


class CancelToken:
    """A shared, thread-safe cooperative cancellation flag.

    ``cancel()`` is a single attribute write (atomic under the GIL);
    guarded loops observe it at their next checkpoint.  One token may be
    shared by any number of guards — cancelling aborts them all.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if not self._cancelled:
            self.reason = reason
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self._cancelled else "armed"
        return f"CancelToken({state})"


_SUFFIXES = {"k": 1_000, "m": 1_000_000, "g": 1_000_000_000}


def _parse_amount(text: str) -> int:
    text = text.strip().lower().replace("_", "")
    scale = 1
    if text and text[-1] in _SUFFIXES:
        scale = _SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise SpannerError(f"budget amount {text!r} is not an integer") from None
    return value * scale


@dataclass(frozen=True)
class Budget:
    """Resource ceilings for one guard (``None`` = unlimited).

    Attributes:
        mappings: maximum mappings emitted to the caller.
        states: maximum live match-graph states materialised (summed over
            every graph whose backward pass runs under the guard).
        edge_rows: maximum enumeration edge rows / batched layer contexts
            materialised.
        cache_bytes: ceiling on the (estimated) bytes held by the
            vectorized kernel's frontier/batch caches — a gauge, not a
            cumulative charge.
    """

    mappings: "int | None" = None
    states: "int | None" = None
    edge_rows: "int | None" = None
    cache_bytes: "int | None" = None

    _FIELDS = {
        "mappings": "mappings",
        "states": "states",
        "edge-rows": "edge_rows",
        "edge_rows": "edge_rows",
        "cache-bytes": "cache_bytes",
        "cache_bytes": "cache_bytes",
    }

    @classmethod
    def parse(cls, spec: str) -> "Budget":
        """Parse a ``key=value,key=value`` spec (``k``/``m``/``g``
        suffixes allowed), e.g. ``"mappings=10k,cache-bytes=64m"``."""
        values: dict[str, int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, amount = part.partition("=")
            field_name = cls._FIELDS.get(key.strip().lower())
            if not sep or field_name is None:
                raise SpannerError(
                    f"bad budget entry {part!r}; expected "
                    f"key=value with key in {sorted(set(cls._FIELDS))}"
                )
            values[field_name] = _parse_amount(amount)
        if not values:
            raise SpannerError(f"budget spec {spec!r} sets no limits")
        return cls(**values)

    @classmethod
    def coerce(cls, value: "Budget | dict | str | None") -> "Budget | None":
        """Accept a :class:`Budget`, a kwargs dict, a spec string, or
        ``None`` (the engine entry points funnel through this)."""
        if value is None or isinstance(value, Budget):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            return cls(**value)
        raise SpannerError(f"cannot read a budget from {type(value).__name__}")


class ExecutionGuard:
    """One evaluation's deadline, cancellation token, and budgets.

    Args:
        deadline: wall-clock seconds from guard *creation*; arm the guard
            right before the work it bounds.
        budget: a :class:`Budget` (or spec string / dict).
        cancel: a shared :class:`CancelToken`.
        on_budget: ``"raise"`` (trips propagate, carrying the partial
            prefix) or ``"partial"`` (the engine absorbs the trip and
            returns the prefix with a truncation flag).
        clock: monotonic-clock override (tests, fault-injected skew); the
            default consults :func:`repro.testing.faults.clock`, which is
            ``time.monotonic`` unless a fault plan skews it.

    The charge/tick methods are deliberately tiny: ``tick()`` touches the
    clock once every :data:`TICK_STRIDE` calls, ``check()`` always reads
    it, and the ``charge_*`` family is integer arithmetic plus one
    comparison.  Callers on unguarded paths never call any of them — they
    test ``guard is not None`` once.
    """

    #: Frames between real clock reads in :meth:`tick` — per-frame DFS
    #: loops stay integer-only between strides.
    TICK_STRIDE = 64

    __slots__ = (
        "deadline",
        "budget",
        "cancel",
        "on_budget",
        "_clock",
        "_deadline_at",
        "tripped",
        "truncated",
        "checks",
        "deadline_hits",
        "budget_hits",
        "spent_mappings",
        "spent_states",
        "spent_edge_rows",
        "_tick_count",
        "_drained",
    )

    def __init__(
        self,
        deadline: "float | None" = None,
        budget: "Budget | dict | str | None" = None,
        cancel: "CancelToken | None" = None,
        on_budget: str = "raise",
        clock: "Callable[[], float] | None" = None,
    ):
        if on_budget not in ("raise", "partial"):
            raise SpannerError(
                f"on_budget must be 'raise' or 'partial', not {on_budget!r}"
            )
        self.deadline = deadline
        self.budget = Budget.coerce(budget)
        self.cancel = cancel
        self.on_budget = on_budget
        self._clock = clock if clock is not None else faults.clock
        self._deadline_at = (
            None if deadline is None else self._clock() + deadline
        )
        #: The reason of the first trip (``None`` while healthy).
        self.tripped: "str | None" = None
        #: Set by the engine when a trip was absorbed in partial mode.
        self.truncated: "str | None" = None
        self.checks = 0
        self.deadline_hits = 0
        self.budget_hits = 0
        self.spent_mappings = 0
        self.spent_states = 0
        self.spent_edge_rows = 0
        self._tick_count = 0
        self._drained = (0, 0, 0)

    # -- properties ---------------------------------------------------------

    @property
    def degrade(self) -> bool:
        """Whether trips should be absorbed into a truncated prefix."""
        return self.on_budget == "partial"

    def remaining(self) -> "float | None":
        """Seconds left on the deadline (``None`` = no deadline; clamped
        at ``0.0``) — what the parallel path forwards to shards."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self._clock())

    # -- checkpoints --------------------------------------------------------

    def check(self) -> None:
        """The full checkpoint: cancellation, then the deadline.  Run
        this at run boundaries and call entries — anywhere O(1) clock
        reads are affordable."""
        self.checks += 1
        if faults.ACTIVE is not None:
            faults.slow_step("guard.check")
        cancel = self.cancel
        if cancel is not None and cancel.cancelled:
            self._trip(
                ExecutionCancelled,
                "cancelled",
                f"evaluation cancelled ({cancel.reason})",
            )
        at = self._deadline_at
        if at is not None and self._clock() > at:
            self.deadline_hits += 1
            self._trip(
                DeadlineExceeded,
                "deadline",
                f"evaluation exceeded its {self.deadline:g}s deadline",
                counted=True,
            )

    def tick(self) -> None:
        """The strided checkpoint for per-frame loops: integer-only for
        :data:`TICK_STRIDE` - 1 calls out of every :data:`TICK_STRIDE`."""
        self._tick_count += 1
        if self._tick_count >= self.TICK_STRIDE:
            self._tick_count = 0
            self.check()

    # -- budget charges -----------------------------------------------------

    def charge_mappings(self, count: int = 1) -> None:
        """Charge emitted mappings (cumulative over the guard's life)."""
        self.spent_mappings += count
        budget = self.budget
        if (
            budget is not None
            and budget.mappings is not None
            and self.spent_mappings > budget.mappings
        ):
            self._budget_trip("mappings", budget.mappings)

    def charge_states(self, count: int) -> None:
        """Charge materialised live match-graph states."""
        self.spent_states += count
        budget = self.budget
        if (
            budget is not None
            and budget.states is not None
            and self.spent_states > budget.states
        ):
            self._budget_trip("states", budget.states)

    def charge_edge_rows(self, count: int = 1) -> None:
        """Charge materialised enumeration edge rows / layer contexts."""
        self.spent_edge_rows += count
        budget = self.budget
        if (
            budget is not None
            and budget.edge_rows is not None
            and self.spent_edge_rows > budget.edge_rows
        ):
            self._budget_trip("edge-rows", budget.edge_rows)

    def gauge_cache_bytes(self, total: int) -> None:
        """Check the (estimated) kernel cache footprint against the
        ``cache_bytes`` ceiling — a gauge of current size, not a
        cumulative charge."""
        budget = self.budget
        if (
            budget is not None
            and budget.cache_bytes is not None
            and total > budget.cache_bytes
        ):
            self._budget_trip("cache-bytes", budget.cache_bytes)

    # -- tripping -----------------------------------------------------------

    def _budget_trip(self, which: str, ceiling: int) -> None:
        self.budget_hits += 1
        self._trip(
            BudgetExceeded,
            f"budget:{which}",
            f"evaluation exceeded its {which} budget ({ceiling})",
            counted=True,
        )

    def _trip(
        self, exc_cls, reason: str, message: str, counted: bool = False
    ) -> None:
        if self.tripped is None:
            self.tripped = reason
        raise exc_cls(message, reason=reason)

    # -- stats attribution --------------------------------------------------

    def drain_into(self, stats) -> None:
        """Attribute this guard's counter growth since the last drain to
        an :class:`~repro.engine.stats.EngineStats` (exactly once — the
        same guard may span many engine calls)."""
        checks, deadline_hits, budget_hits = self._drained
        stats.guard_checks += self.checks - checks
        stats.deadline_hits += self.deadline_hits - deadline_hits
        stats.budget_hits += self.budget_hits - budget_hits
        self._drained = (self.checks, self.deadline_hits, self.budget_hits)

    def __repr__(self) -> str:
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}s")
        if self.budget is not None:
            parts.append(f"budget={self.budget}")
        if self.cancel is not None:
            parts.append(f"cancel={self.cancel!r}")
        if self.tripped:
            parts.append(f"tripped={self.tripped!r}")
        return f"ExecutionGuard({', '.join(parts) or 'unbounded'})"
