"""Graphviz DOT export for vset-automata and match graphs.

For inspecting the constructions: semi-functional splits, product
automata, and ad-hoc compilations are far easier to debug as pictures.
The output is plain DOT text — render with ``dot -Tsvg``.
"""

from __future__ import annotations

from ..va.automaton import VA, Label, VarOp
from ..va.matchgraph import MatchGraph


def _label_text(label: Label) -> str:
    if label is None:
        return "ε"
    if isinstance(label, VarOp):
        return str(label)
    if label == " ":
        return "␣"
    return str(label)


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def va_to_dot(va: VA, name: str = "spanner") -> str:
    """Render an automaton as a DOT digraph.

    Accepting states are doublecircled; variable operations are dashed
    edges (they consume no input); the initial state gets an entry arrow.
    """
    canonical = va.relabelled()
    lines = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        '  __start [shape=point, label=""];',
    ]
    for state in sorted(canonical.states, key=repr):
        shape = "doublecircle" if canonical.is_accepting(state) else "circle"
        lines.append(f"  {state} [shape={shape}];")
    lines.append(f"  __start -> {canonical.initial};")
    for src, label, dst in canonical.transitions:
        style = ", style=dashed" if isinstance(label, VarOp) or label is None else ""
        lines.append(f"  {src} -> {dst} [label={_quote(_label_text(label))}{style}];")
    lines.append("}")
    return "\n".join(lines)


def match_graph_to_dot(graph: MatchGraph, name: str = "matchgraph") -> str:
    """Render a layered match graph: one rank per document position."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    node_names: dict[tuple[int, object], str] = {}

    def node(layer: int, state: object) -> str:
        key = (layer, state)
        if key not in node_names:
            node_names[key] = f"n{len(node_names)}"
            final = graph.final_opsets.get(state) if layer == len(graph.layers) - 1 else None
            shape = "doublecircle" if final else "circle"
            lines.append(
                f"  {node_names[key]} [shape={shape}, label={_quote(f'{layer}:{state}')}];"
            )
        return node_names[key]

    for layer_index, level in enumerate(graph.edges):
        letter = graph.document.letter(layer_index + 1)
        for src, grouped in level.items():
            for ops, targets in grouped.items():
                ops_text = "{" + ",".join(sorted(map(str, ops))) + "}"
                for dst in targets:
                    lines.append(
                        f"  {node(layer_index, src)} -> {node(layer_index + 1, dst)}"
                        f" [label={_quote(f'{ops_text}·{letter}')}];"
                    )
    lines.append("}")
    return "\n".join(lines)
