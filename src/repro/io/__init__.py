"""Interchange: JSON (de)serialisation and Graphviz DOT export."""

from .dot import match_graph_to_dot, va_to_dot
from .serialize import (
    dumps_relation,
    dumps_va,
    loads_relation,
    loads_va,
    relation_from_dict,
    relation_to_dict,
    va_from_dict,
    va_to_dict,
)

__all__ = [
    "dumps_relation",
    "dumps_va",
    "loads_relation",
    "loads_va",
    "match_graph_to_dot",
    "relation_from_dict",
    "relation_to_dict",
    "va_from_dict",
    "va_to_dict",
    "va_to_dot",
]
