"""JSON serialisation of vset-automata and span relations.

Vset-automata are exchange artifacts in practice (the paper's §1 points at
machine-learned automata with tens of thousands of states); this module
provides a stable JSON wire format plus round-trip loaders.

Format (version 1)::

    {"format": "repro-va", "version": 1,
     "initial": 0, "accepting": [2],
     "transitions": [[0, {"open": "x"}, 1], [1, {"letter": "a"}, 1],
                     [1, {"close": "x"}, 2], [0, {"eps": true}, 2]]}

States are canonicalised to integers on save.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.errors import SpannerError
from ..core.mapping import Mapping
from ..core.relation import SpanRelation
from ..core.spans import Span
from ..va.automaton import VA, Label, VarOp

_FORMAT = "repro-va"
_RELATION_FORMAT = "repro-relation"
_VERSION = 1


def _label_to_json(label: Label) -> dict[str, Any]:
    if label is None:
        return {"eps": True}
    if isinstance(label, VarOp):
        return {"open": label.var} if label.is_open else {"close": label.var}
    return {"letter": label}


def _label_from_json(obj: dict[str, Any]) -> Label:
    if "eps" in obj:
        return None
    if "open" in obj:
        return VarOp(obj["open"], True)
    if "close" in obj:
        return VarOp(obj["close"], False)
    if "letter" in obj:
        return obj["letter"]
    raise SpannerError(f"unrecognised transition label {obj!r}")


def va_to_dict(va: VA) -> dict[str, Any]:
    """A JSON-ready dict for the automaton (states canonicalised)."""
    canonical = va.relabelled()
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "initial": canonical.initial,
        "accepting": sorted(canonical.accepting),
        "states": canonical.n_states,
        "transitions": [
            [src, _label_to_json(label), dst]
            for src, label, dst in canonical.transitions
        ],
    }


def va_from_dict(obj: dict[str, Any]) -> VA:
    """Inverse of :func:`va_to_dict` (validates the header)."""
    if obj.get("format") != _FORMAT:
        raise SpannerError(f"not a {_FORMAT} document: format={obj.get('format')!r}")
    if obj.get("version") != _VERSION:
        raise SpannerError(f"unsupported version {obj.get('version')!r}")
    transitions = [
        (src, _label_from_json(label), dst)
        for src, label, dst in obj.get("transitions", [])
    ]
    return VA(
        obj["initial"],
        obj.get("accepting", []),
        transitions,
        range(obj.get("states", 0)),
    )


def dumps_va(va: VA, indent: int | None = None) -> str:
    """Serialise a VA to a JSON string."""
    return json.dumps(va_to_dict(va), indent=indent, sort_keys=True)


def loads_va(text: str) -> VA:
    """Parse a VA from its JSON string."""
    return va_from_dict(json.loads(text))


def relation_to_dict(relation: SpanRelation) -> dict[str, Any]:
    """A JSON-ready dict for a materialised relation."""
    return {
        "format": _RELATION_FORMAT,
        "version": _VERSION,
        "mappings": [
            {var: [span.begin, span.end] for var, span in mapping.items()}
            for mapping in relation
        ],
    }


def relation_from_dict(obj: dict[str, Any]) -> SpanRelation:
    """Inverse of :func:`relation_to_dict`."""
    if obj.get("format") != _RELATION_FORMAT:
        raise SpannerError(
            f"not a {_RELATION_FORMAT} document: format={obj.get('format')!r}"
        )
    return SpanRelation(
        Mapping({var: Span(*pair) for var, pair in entry.items()})
        for entry in obj.get("mappings", [])
    )


def dumps_relation(relation: SpanRelation, indent: int | None = None) -> str:
    return json.dumps(relation_to_dict(relation), indent=indent, sort_keys=True)


def loads_relation(text: str) -> SpanRelation:
    return relation_from_dict(json.loads(text))
