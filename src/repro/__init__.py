"""repro — Relational Algebra over Document Spanners.

A complete, executable reproduction of *"Complexity Bounds for Relational
Algebra over Document Spanners"* (Peterfreund, Freydenberger, Kimelfeld,
Kröll; PODS 2019):

* schemaless document spanners: documents, spans, mappings, relations;
* regex formulas with capture variables — parser, combinators, reference
  semantics, and the functional / sequential / disjunctive-functional /
  synchronized classification;
* vset-automata — compilation from regex formulas, configuration analysis,
  semi-functionalisation (Lemma 3.6), and polynomial-delay enumeration
  (Theorem 2.5);
* the algebra — FPT join compilation (Lemma 3.2), disjunctive-functional
  join (Prop. 3.12), ad-hoc document-dependent difference (Lemma 4.2) and
  synchronized difference (Theorem 4.8), RA trees with the
  extraction-complexity evaluator (Theorem 5.2) and black-box spanners
  (Corollary 5.3);
* the hardness reductions (Theorems 3.1, 4.1, 4.4; Prop. 4.10) as
  executable workload generators.

Quickstart::

    from repro import compile_spanner

    students = compile_spanner("(xfirst{[A-Z][a-z]*} )?xlast{[A-Z][a-z]*}: x{[0-9]+}")
    for mapping in students.enumerate("Ada Lovelace: 1815"):
        print(mapping)
"""

from __future__ import annotations

from .core import (
    Document,
    Mapping,
    Span,
    SpanRelation,
    Spanner,
    SpannerError,
    as_document,
    span,
)
from .regex import parse
from .regex.ast import RegexFormula
from .va import VA, VASpanner, regex_to_va, trim
from .algebra import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    UnionNode,
    adhoc_difference,
    fpt_join,
    synchronized_difference,
)
from .corpus import CorpusError, CorpusSelection, CorpusStore
from .engine import Engine, EngineStats

__version__ = "1.0.0"


def compile_spanner(source: "str | RegexFormula | VA", alphabet=None) -> VASpanner:
    """Compile a regex formula (text or AST) or a VA into an executable
    spanner with polynomial-delay enumeration.

    Args:
        source: the textual regex-formula syntax, a parsed
            :class:`~repro.regex.ast.RegexFormula`, or a sequential
            :class:`~repro.va.automaton.VA`.
        alphabet: optional explicit alphabet enabling ``.`` in the textual
            syntax.

    Returns:
        A :class:`~repro.va.evaluation.VASpanner`.

    Raises:
        NotSequentialError: if the input is not sequential — the
            polynomial-delay guarantee (Theorem 2.5) needs sequentiality.
    """
    if isinstance(source, str):
        source = parse(source, alphabet=alphabet)
    if isinstance(source, RegexFormula):
        source = regex_to_va(source)
    return VASpanner(trim(source))


__all__ = [
    "CorpusError",
    "CorpusSelection",
    "CorpusStore",
    "Difference",
    "Document",
    "Engine",
    "EngineStats",
    "Instantiation",
    "Join",
    "Leaf",
    "Mapping",
    "PlannerConfig",
    "Project",
    "RAQuery",
    "RegexFormula",
    "Span",
    "SpanRelation",
    "Spanner",
    "SpannerError",
    "UnionNode",
    "VA",
    "VASpanner",
    "adhoc_difference",
    "as_document",
    "compile_spanner",
    "fpt_join",
    "parse",
    "regex_to_va",
    "span",
    "synchronized_difference",
    "trim",
    "__version__",
]
