"""Syntactic classification of regex formulas (paper §2.2, §3.2, §4.2).

Implements the polynomial-time tests for the classes

* **functional** (funcRGX): every parse tree uses every variable exactly
  once — these denote *schema-based* spanners;
* **sequential** (seqRGX): every parse tree uses every variable at most
  once — these denote schemaless spanners with polynomial-delay evaluation;
* **disjunctive functional** (dfuncRGX, §3.2): a finite disjunction of
  functional formulas — funcRGX ⊊ dfuncRGX ⊊ seqRGX syntactically, while
  ⟦dfuncRGX⟧ = ⟦seqRGX⟧ semantically (Prop. 3.9);
* **synchronized for X** (§4.2): no variable of X occurs under any
  disjunction;
* **disjunction-free** (§4.2, Prop. 4.10): no ∨ at all.

All checks are iterative single passes over the AST.
"""

from __future__ import annotations

from typing import Iterable

from ..core.mapping import Variable
from .ast import (
    Capture,
    CharSet,
    Concat,
    Empty,
    Epsilon,
    Literal,
    RegexFormula,
    Star,
    Union,
)


def functional_variables(formula: RegexFormula) -> frozenset[Variable] | None:
    """The set ``V`` such that ``formula`` is functional for ``V``, or
    ``None`` if the formula is not functional for any set.

    When the result is not ``None`` it always equals ``formula.variables``,
    and the formula is *functional* in the sense of Fagin et al.: every
    parse tree contains exactly one occurrence of each variable.

    ``∅`` is treated as functional for ∅ (it has no parse trees, so the
    condition holds vacuously); this matches the convention that ∅ is a
    member of funcRGX as a Boolean formula.
    """
    return _functional_variables(formula)


def _functional_variables(formula: RegexFormula) -> frozenset[Variable] | None:
    # Iterative post-order: results[id(node)] = frozenset | None.
    results: dict[int, frozenset[Variable] | None] = {}
    # Stack of (node, expanded?) frames.
    stack: list[tuple[RegexFormula, bool]] = [(formula, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in results:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children():
                stack.append((child, False))
            continue
        results[id(node)] = _functional_step(node, results)
    return results[id(formula)]


def _functional_step(
    node: RegexFormula, results: dict[int, frozenset[Variable] | None]
) -> frozenset[Variable] | None:
    if isinstance(node, (Empty, Epsilon, Literal, CharSet)):
        return frozenset()
    if isinstance(node, Union):
        child_sets = [results[id(c)] for c in node.parts]
        if any(s is None for s in child_sets):
            return None
        first = child_sets[0]
        if any(s != first for s in child_sets[1:]):
            return None
        return first
    if isinstance(node, Concat):
        union: set[Variable] = set()
        total = 0
        for child in node.parts:
            child_set = results[id(child)]
            if child_set is None:
                return None
            union |= child_set
            total += len(child_set)
        if total != len(union):  # some variable occurs in two factors
            return None
        return frozenset(union)
    if isinstance(node, Star):
        body_set = results[id(node.body)]
        if body_set is None or body_set:
            return None
        return frozenset()
    if isinstance(node, Capture):
        body_set = results[id(node.body)]
        if body_set is None or node.var in body_set:
            return None
        return body_set | {node.var}
    raise TypeError(f"unknown node type {type(node).__name__}")


def is_functional(formula: RegexFormula) -> bool:
    """Membership in funcRGX."""
    return functional_variables(formula) is not None


def is_sequential(formula: RegexFormula) -> bool:
    """Membership in seqRGX (paper §2.2):

    * concatenation factors have pairwise-disjoint variable sets,
    * star bodies mention no variables,
    * ``x{α}`` has ``x ∉ Vars(α)``.
    """
    for node in formula.walk():
        if isinstance(node, Concat):
            total = sum(len(c.variables) for c in node.parts)
            if total != len(node.variables):
                return False
        elif isinstance(node, Star):
            if node.body.variables:
                return False
        elif isinstance(node, Capture):
            if node.var in node.body.variables:
                return False
    return True


def disjuncts(formula: RegexFormula) -> tuple[RegexFormula, ...]:
    """The top-level disjuncts: the parts of a top-level ∨, else the formula
    itself."""
    if isinstance(formula, Union):
        return formula.parts
    return (formula,)


def is_disjunctive_functional(formula: RegexFormula) -> bool:
    """Membership in dfuncRGX (§3.2): a finite disjunction of functional
    regex formulas (a single functional formula counts, as a one-disjunct
    disjunction)."""
    return all(is_functional(d) for d in disjuncts(formula))


def is_synchronized_for(formula: RegexFormula, variables: Iterable[Variable]) -> bool:
    """Whether the formula is synchronized for ``X`` (§4.2): for every
    subexpression ``γ1 ∨ γ2``, no variable of ``X`` appears in any γi."""
    target = frozenset(variables)
    if not target:
        return True
    for node in formula.walk():
        if isinstance(node, Union) and node.variables & target:
            return False
    return True


def is_synchronized(formula: RegexFormula) -> bool:
    """Synchronized for *all* of its own variables."""
    return is_synchronized_for(formula, formula.variables)


def is_disjunction_free(formula: RegexFormula, strict: bool = True) -> bool:
    """Whether the formula contains no ∨ subexpression (Prop. 4.10).

    With ``strict=True`` (default) a :class:`CharSet` of more than one
    letter counts as a disjunction, since it abbreviates one.
    """
    for node in formula.walk():
        if isinstance(node, Union):
            return False
        if strict and isinstance(node, CharSet) and len(node.symbols) > 1:
            return False
    return True


def classify(formula: RegexFormula) -> dict[str, bool]:
    """All class memberships at once — handy for tests and reports."""
    return {
        "functional": is_functional(formula),
        "sequential": is_sequential(formula),
        "disjunctive_functional": is_disjunctive_functional(formula),
        "synchronized": is_synchronized(formula),
        "disjunction_free": is_disjunction_free(formula),
    }
