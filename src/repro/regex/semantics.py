"""Reference (direct) semantics of regex formulas (paper §2.2).

Implements the evaluation grammar ``[α](d)`` literally, producing the set of
(span, mapping) pairs, and ``⟦α⟧(d) = {µ | ([1,|d|+1>, µ) ∈ [α](d)}``.

This evaluator exists as the **ground truth**: it is deliberately simple
(bottom-up dynamic programming over subformulas, including the general
fixpoint for ``α*`` with the domain-disjointness side condition), with no
concern for output-polynomial efficiency.  The production path compiles the
formula to a vset-automaton (:mod:`repro.va.compile_regex`) and enumerates
with polynomial delay; the test suite cross-checks the two on randomized
inputs.
"""

from __future__ import annotations

from typing import Iterator

from ..core.document import Document, as_document
from ..core.mapping import EMPTY_MAPPING, Mapping, Variable
from ..core.relation import SpanRelation
from ..core.spanner import Spanner
from ..core.spans import Span
from .ast import (
    Capture,
    CharSet,
    Concat,
    Empty,
    Epsilon,
    Literal,
    RegexFormula,
    Star,
    Union,
)

#: One intermediate evaluation result: a matched span plus the mapping
#: accumulated inside it.
Match = tuple[Span, Mapping]


def matches(formula: RegexFormula, document: Document | str) -> frozenset[Match]:
    """Compute ``[formula](d)``: all (span, mapping) matches anywhere in the
    document."""
    doc = as_document(document)
    results: dict[int, frozenset[Match]] = {}
    stack: list[tuple[RegexFormula, bool]] = [(formula, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in results:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children():
                stack.append((child, False))
            continue
        results[id(node)] = _eval_node(node, doc, results)
    return results[id(formula)]


def _eval_node(
    node: RegexFormula, doc: Document, results: dict[int, frozenset[Match]]
) -> frozenset[Match]:
    n = len(doc)
    if isinstance(node, Empty):
        return frozenset()
    if isinstance(node, Epsilon):
        return frozenset((Span(i, i), EMPTY_MAPPING) for i in range(1, n + 2))
    if isinstance(node, Literal):
        return frozenset(
            (Span(i, i + 1), EMPTY_MAPPING)
            for i in range(1, n + 1)
            if doc.letter(i) == node.symbol
        )
    if isinstance(node, CharSet):
        return frozenset(
            (Span(i, i + 1), EMPTY_MAPPING)
            for i in range(1, n + 1)
            if doc.letter(i) in node.symbols
        )
    if isinstance(node, Union):
        out: set[Match] = set()
        for child in node.parts:
            out |= results[id(child)]
        return frozenset(out)
    if isinstance(node, Concat):
        current = results[id(node.parts[0])]
        for child in node.parts[1:]:
            current = _concat(current, results[id(child)])
        return current
    if isinstance(node, Star):
        return _star(results[id(node.body)], n)
    if isinstance(node, Capture):
        return _capture(node.var, results[id(node.body)])
    raise TypeError(f"unknown node type {type(node).__name__}")


def _concat(left: frozenset[Match], right: frozenset[Match]) -> frozenset[Match]:
    """``[α1 · α2]``: adjoin matches whose spans meet, with disjoint
    mapping domains (overlapping domains are dropped, per the grammar)."""
    by_begin: dict[int, list[Match]] = {}
    for sp, mu in right:
        by_begin.setdefault(sp.begin, []).append((sp, mu))
    out: set[Match] = set()
    for sp1, mu1 in left:
        for sp2, mu2 in by_begin.get(sp1.end, ()):
            if mu1.domain & mu2.domain:
                continue
            out.add((Span(sp1.begin, sp2.end), mu1.union(mu2)))
    return frozenset(out)


def _star(base: frozenset[Match], doc_length: int) -> frozenset[Match]:
    """``[α*]``: least fixpoint of appending base matches to ε-matches.

    Terminates because every extension either strictly grows the span or
    strictly grows the mapping domain (an empty-span, empty-mapping
    extension changes nothing, so it cannot generate new elements forever).
    """
    out: set[Match] = {
        (Span(i, i), EMPTY_MAPPING) for i in range(1, doc_length + 2)
    }
    by_begin: dict[int, list[Match]] = {}
    for sp, mu in base:
        by_begin.setdefault(sp.begin, []).append((sp, mu))
    frontier = list(out)
    while frontier:
        sp1, mu1 = frontier.pop()
        for sp2, mu2 in by_begin.get(sp1.end, ()):
            if mu1.domain & mu2.domain:
                continue
            candidate = (Span(sp1.begin, sp2.end), mu1.union(mu2))
            if candidate not in out:
                out.add(candidate)
                frontier.append(candidate)
    return frozenset(out)


def _capture(var: Variable, base: frozenset[Match]) -> frozenset[Match]:
    """``[x{α}]``: record the matched span into ``x`` (skipping matches
    that already bound ``x``)."""
    out: set[Match] = set()
    for sp, mu in base:
        if var in mu.domain:
            continue
        out.add((sp, mu.union(Mapping({var: sp}))))
    return frozenset(out)


def evaluate(formula: RegexFormula, document: Document | str) -> SpanRelation:
    """``⟦formula⟧(d)``: mappings of matches covering the whole document."""
    doc = as_document(document)
    full = doc.full_span()
    return SpanRelation(mu for sp, mu in matches(formula, doc) if sp == full)


class ReferenceRegexSpanner(Spanner):
    """A regex formula evaluated by the reference semantics.

    Exponentially slower than the VA-compiled path on large inputs —
    intended for testing and for tiny formulas only.
    """

    def __init__(self, formula: RegexFormula):
        self.formula = formula

    def variables(self) -> frozenset[Variable]:
        return self.formula.variables

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        return iter(evaluate(self.formula, document))

    def __repr__(self) -> str:
        return f"ReferenceRegexSpanner({self.formula.to_text()!r})"
