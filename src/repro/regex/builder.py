"""Combinator API for building regex formulas programmatically.

These helpers are the preferred way to build formulas in library code and
tests: they normalise trivial cases (empty/singleton unions, string
literals) so the resulting ASTs are small and canonical.

Example — ``αname`` from the paper's Example 2.2::

    from repro.regex.builder import capture, char_range, concat, lit, union

    delta = concat(char_range("A", "Z"), star(char_range("a", "z")))
    alpha_name = union(
        concat(capture("xfirst", delta), lit(" "), capture("xlast", delta)),
        capture("xlast", delta),
    )
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import RegexSyntaxError
from ..core.mapping import Variable
from .ast import (
    EMPTY,
    EPSILON,
    Capture,
    CharSet,
    Concat,
    Empty,
    Epsilon,
    Literal,
    RegexFormula,
    Star,
    Union,
)


def empty() -> RegexFormula:
    """``∅`` — the formula matching nothing."""
    return EMPTY


def eps() -> RegexFormula:
    """``ε`` — the formula matching the empty string."""
    return EPSILON


def lit(text: str) -> RegexFormula:
    """A literal string: ``lit("abc")`` is ``a·b·c``; ``lit("")`` is ε."""
    if not text:
        return EPSILON
    if len(text) == 1:
        return Literal(text)
    return Concat([Literal(c) for c in text])


def sym(char: str) -> RegexFormula:
    """A single-letter literal (strict: exactly one character)."""
    return Literal(char)


def chars(symbols: Iterable[str]) -> RegexFormula:
    """A character set: disjunction of single letters."""
    syms = frozenset(symbols)
    if not syms:
        return EMPTY
    if len(syms) == 1:
        return Literal(next(iter(syms)))
    return CharSet(syms)


def char_range(first: str, last: str) -> RegexFormula:
    """All characters between ``first`` and ``last`` inclusive, e.g.
    ``char_range("a", "z")``."""
    if len(first) != 1 or len(last) != 1 or ord(first) > ord(last):
        raise RegexSyntaxError(f"bad character range {first!r}-{last!r}")
    return chars(chr(c) for c in range(ord(first), ord(last) + 1))


def union(*parts: RegexFormula) -> RegexFormula:
    """``α1 ∨ … ∨ αn``; drops ∅ operands, collapses to ∅/single operand."""
    useful = [p for p in parts if not isinstance(p, Empty)]
    if not useful:
        return EMPTY
    if len(useful) == 1:
        return useful[0]
    return Union(useful)


def concat(*parts: RegexFormula) -> RegexFormula:
    """``α1 · … · αn``; ∅ annihilates, ε operands are dropped."""
    if any(isinstance(p, Empty) for p in parts):
        return EMPTY
    useful = [p for p in parts if not isinstance(p, Epsilon)]
    if not useful:
        return EPSILON
    if len(useful) == 1:
        return useful[0]
    return Concat(useful)


def star(body: RegexFormula) -> RegexFormula:
    """``α*``; ``∅* = ε* = ε``, and ``(α*)* = α*``."""
    if isinstance(body, (Empty, Epsilon)):
        return EPSILON
    if isinstance(body, Star):
        return body
    return Star(body)


def plus(body: RegexFormula) -> RegexFormula:
    """``α+`` as the standard abbreviation ``α · α*``."""
    return concat(body, star(body))


def opt(body: RegexFormula) -> RegexFormula:
    """``α?`` as the abbreviation ``α ∨ ε``."""
    if isinstance(body, Epsilon):
        return body
    return union(body, EPSILON)


def capture(var: Variable, body: RegexFormula) -> RegexFormula:
    """``x{α}``."""
    return Capture(var, body)


def any_of(alphabet: Iterable[str]) -> RegexFormula:
    """``Σ`` for an explicit alphabet — one arbitrary letter."""
    return chars(alphabet)


def sigma_star(alphabet: Iterable[str]) -> RegexFormula:
    """``Σ*`` for an explicit alphabet."""
    return star(any_of(alphabet))
