"""Parser for the textual regex-formula syntax.

Grammar (standard precedence: union < concatenation < postfix < atom)::

    formula  := branch ("|" branch)*
    branch   := postfix+                      (empty branch = ε)
    postfix  := atom ("*" | "+" | "?")*
    atom     := "(" formula ")"
              | NAME "{" formula "}"          (capture)
              | "[" set-items "]"             (character set)
              | "ε" | "\\e"                   (epsilon)
              | "∅" | "\\0"                   (empty language)
              | "."                           (any letter; needs alphabet=)
              | CHAR                          (single literal)

Notes:

* ``∨`` is accepted as a synonym for ``|`` and ``·`` is accepted (and
  ignored) as an explicit concatenation dot, matching the paper's notation.
* A capture is a maximal identifier (``[A-Za-z_][A-Za-z0-9_.]*``)
  immediately followed by ``{``.  To match a literal brace, escape it:
  ``\\{``.
* Escapes: ``\\|  \\*  \\+  \\?  \\(  \\)  \\[  \\]  \\{  \\}  \\.  \\\\``
  plus ``\\n`` (newline), ``\\t`` (tab), ``\\s`` (space), ``\\e``, ``\\0``.
* ``.`` matches any letter of the alphabet passed as ``alphabet=``;
  without one, ``.`` is rejected (the library never guesses an alphabet).
* ``+`` and ``?`` are expanded to ``α·α*`` and ``α ∨ ε``.

The parser produces exactly the AST of :mod:`repro.regex.ast`; it performs
**no** semantic checks — use :mod:`repro.regex.properties` to classify the
result as functional / sequential / etc.
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import RegexSyntaxError
from .ast import RegexFormula
from . import builder

_ESCAPE_MAP = {
    "n": "\n",
    "t": "\t",
    "s": " ",
}

_POSTFIX = {"*", "+", "?"}


class _Parser:
    """Single-pass recursive-descent parser over the raw text."""

    def __init__(self, text: str, alphabet: frozenset[str] | None):
        self._text = text
        self._pos = 0
        self._alphabet = alphabet

    # -- character-level helpers ---------------------------------------------

    def _peek(self) -> str | None:
        if self._pos < len(self._text):
            return self._text[self._pos]
        return None

    def _advance(self) -> str:
        char = self._text[self._pos]
        self._pos += 1
        return char

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, position=self._pos)

    def _read_escape(self) -> str | RegexFormula:
        """Consume the char after a backslash; returns either a literal
        character or a constant formula (for \\e and \\0)."""
        if self._pos >= len(self._text):
            raise self._error("dangling backslash")
        char = self._advance()
        if char == "e":
            return builder.eps()
        if char == "0":
            return builder.empty()
        return _ESCAPE_MAP.get(char, char)

    # -- grammar productions ---------------------------------------------------

    def parse(self) -> RegexFormula:
        formula = self._formula()
        if self._pos != len(self._text):
            raise self._error(f"unexpected {self._peek()!r}")
        return formula

    def _formula(self) -> RegexFormula:
        branches = [self._branch()]
        while self._peek() in ("|", "∨"):
            self._advance()
            branches.append(self._branch())
        if len(branches) == 1:
            return branches[0]
        # builder.union drops ∅ branches; a formula like "a|∅" is just "a".
        return builder.union(*branches)

    def _branch(self) -> RegexFormula:
        parts: list[RegexFormula] = []
        while True:
            char = self._peek()
            if char is None or char in ("|", "∨", ")", "}"):
                break
            if char == "·":  # explicit concatenation dot: ignore
                self._advance()
                continue
            parts.append(self._postfix())
        if not parts:
            return builder.eps()
        return builder.concat(*parts)

    def _postfix(self) -> RegexFormula:
        atom = self._atom()
        while self._peek() in _POSTFIX:
            op = self._advance()
            if op == "*":
                atom = builder.star(atom)
            elif op == "+":
                atom = builder.plus(atom)
            else:
                atom = builder.opt(atom)
        return atom

    def _atom(self) -> RegexFormula:
        char = self._peek()
        if char is None:
            raise self._error("expected an atom, found end of input")
        if char == "(":
            self._advance()
            inner = self._formula()
            if self._peek() != ")":
                raise self._error("unbalanced '('")
            self._advance()
            return inner
        if char == "[":
            return self._char_set()
        if char == "ε":
            self._advance()
            return builder.eps()
        if char == "∅":
            self._advance()
            return builder.empty()
        if char == ".":
            self._advance()
            if self._alphabet is None:
                raise self._error("'.' requires parse(..., alphabet=...)")
            return builder.chars(self._alphabet)
        if char == "\\":
            self._advance()
            result = self._read_escape()
            if isinstance(result, RegexFormula):
                return result
            return builder.sym(result)
        if char in ("*", "+", "?", "|", ")", "]", "}"):
            raise self._error(f"unexpected {char!r}")
        capture = self._try_capture()
        if capture is not None:
            return capture
        return builder.sym(self._advance())

    def _try_capture(self) -> RegexFormula | None:
        """Recognise ``NAME{...}`` starting at the current position.

        The variable name is the *maximal* identifier ending right before
        an unescaped ``{``; if the identifier is not followed by ``{`` we
        back off and treat the current character as a literal.
        """
        start = self._pos
        char = self._text[start]
        if not (char.isalpha() or char == "_"):
            return None
        end = start
        while end < len(self._text) and (
            self._text[end].isalnum() or self._text[end] in "_."
        ):
            end += 1
        if end >= len(self._text) or self._text[end] != "{":
            return None
        name = self._text[start:end]
        self._pos = end + 1  # consume NAME and '{'
        body = self._formula()
        if self._peek() != "}":
            raise self._error(f"unbalanced '{{' in capture {name}")
        self._advance()
        return builder.capture(name, body)

    def _char_set(self) -> RegexFormula:
        self._advance()  # '['
        symbols: set[str] = []
        symbols = set()
        pending: str | None = None
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unbalanced '['")
            if char == "]":
                self._advance()
                break
            if char == "\\":
                self._advance()
                result = self._read_escape()
                if isinstance(result, RegexFormula):
                    raise self._error("\\e and \\0 are not allowed inside [...]")
                literal = result
            else:
                literal = self._advance()
            if pending is not None:
                # a '-' was seen: complete the range pending-literal
                if ord(pending) > ord(literal):
                    raise self._error(f"bad range {pending!r}-{literal!r}")
                symbols.update(chr(c) for c in range(ord(pending), ord(literal) + 1))
                pending = None
                continue
            if self._peek() == "-" and self._pos + 1 < len(self._text) and self._text[self._pos + 1] != "]":
                self._advance()  # '-'
                pending = literal
                continue
            symbols.add(literal)
        if pending is not None:
            symbols.update({pending, "-"})
        if not symbols:
            raise self._error("empty character set []; use ∅ for the empty language")
        return builder.chars(symbols)


def parse(text: str, alphabet: Iterable[str] | None = None) -> RegexFormula:
    """Parse textual syntax into a :class:`~repro.regex.ast.RegexFormula`.

    Args:
        text: the formula, e.g. ``"x{[a-z]+}@y{[a-z]+}"``.
        alphabet: optional explicit alphabet enabling the ``.`` wildcard.

    Raises:
        RegexSyntaxError: on any syntax error, with the offending position.
    """
    alpha = frozenset(alphabet) if alphabet is not None else None
    return _Parser(text, alpha).parse()
