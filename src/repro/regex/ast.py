"""Regex-formula AST (paper §2.2).

The grammar of regex formulas::

    α := ∅ | ε | σ | (α ∨ α) | (α · α) | α* | x{α}

We represent formulas as immutable trees.  Two pragmatic deviations from the
literal grammar, both pure syntactic sugar that the rest of the library
treats as such:

* :class:`Union` and :class:`Concat` are *n-ary* (flattened).  This keeps
  tree depth proportional to nesting, not to the number of operands, so
  RegExLib-scale formulas (hundreds of symbols, §1) do not hit Python's
  recursion limit.
* :class:`CharSet` abbreviates a disjunction of single letters
  (``[a-z0-9]``).  It mentions no variables, so it never interacts with the
  functional/sequential classification.

Every node is hashable, comparable by value, and renders back to parseable
text via :meth:`RegexFormula.to_text`.
"""

from __future__ import annotations

import abc
from typing import Iterator

from ..core.errors import RegexSyntaxError
from ..core.mapping import Variable

#: Characters needing a backslash escape in the textual syntax.
_ESCAPED = set("\\|*+?(){}[].∨ε∅·")


def _escape_char(char: str) -> str:
    if char in _ESCAPED:
        return "\\" + char
    if char == "\n":
        return "\\n"
    if char == "\t":
        return "\\t"
    return char


class RegexFormula(abc.ABC):
    """Base class of all regex-formula nodes."""

    __slots__ = ("_vars", "_hash")

    #: Binding strength for parenthesisation when rendering.
    _PRECEDENCE = 0

    @abc.abstractmethod
    def children(self) -> tuple["RegexFormula", ...]:
        """Direct sub-formulas."""

    @abc.abstractmethod
    def _key(self) -> tuple:
        """Structural identity key (class tag + payload + children)."""

    @abc.abstractmethod
    def _render(self) -> str:
        """Render to text, without outer parentheses."""

    # -- identity -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RegexFormula):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()!r})"

    # -- pickling -----------------------------------------------------------
    # The subclasses block ordinary attribute assignment (immutability), so
    # the default slots-state restore would raise; rebuild state through
    # object.__setattr__ instead.  Formulas must pickle so queries can ship
    # to the engine's worker processes (Engine.evaluate_many(workers=N)).

    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot == "_hash":
                    # str hashes are salted per process (PYTHONHASHSEED);
                    # shipping the cached value to a worker would disagree
                    # with hashes computed there.  Recompute on first use.
                    continue
                try:
                    state[slot] = getattr(self, slot)
                except AttributeError:
                    pass  # lazily computed caches may be unset
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- derived structure ----------------------------------------------------

    @property
    def variables(self) -> frozenset[Variable]:
        """``Vars(α)``: all capture variables mentioned in the formula."""
        try:
            return self._vars
        except AttributeError:
            out: frozenset[Variable] = frozenset().union(
                *(child.variables for child in self.children())
            ) if self.children() else frozenset()
            object.__setattr__(self, "_vars", out)
            return out

    def walk(self) -> Iterator["RegexFormula"]:
        """Yield every node of the tree, pre-order, iteratively."""
        stack: list[RegexFormula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Number of AST nodes (a proxy for formula length)."""
        return sum(1 for _ in self.walk())

    def to_text(self) -> str:
        """Render to the textual syntax accepted by
        :func:`repro.regex.parser.parse`."""
        return self._render()

    def _render_child(self, child: "RegexFormula") -> str:
        text = child._render()
        if child._PRECEDENCE < self._PRECEDENCE:
            return f"({text})"
        return text


class Empty(RegexFormula):
    """``∅`` — matches nothing at all."""

    __slots__ = ()
    _PRECEDENCE = 4

    def children(self) -> tuple[RegexFormula, ...]:
        return ()

    def _key(self) -> tuple:
        return ("Empty",)

    def _render(self) -> str:
        return "∅"


class Epsilon(RegexFormula):
    """``ε`` — matches the empty string at every position."""

    __slots__ = ()
    _PRECEDENCE = 4

    def children(self) -> tuple[RegexFormula, ...]:
        return ()

    def _key(self) -> tuple:
        return ("Epsilon",)

    def _render(self) -> str:
        return "ε"


class Literal(RegexFormula):
    """A single alphabet symbol ``σ``."""

    __slots__ = ("symbol",)
    _PRECEDENCE = 4

    def __init__(self, symbol: str):
        if len(symbol) != 1:
            raise RegexSyntaxError(
                f"Literal holds exactly one symbol, got {symbol!r}; "
                "use repro.regex.builder.lit for strings"
            )
        object.__setattr__(self, "symbol", symbol)

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("RegexFormula nodes are immutable")

    def children(self) -> tuple[RegexFormula, ...]:
        return ()

    def _key(self) -> tuple:
        return ("Literal", self.symbol)

    def _render(self) -> str:
        return _escape_char(self.symbol)


class CharSet(RegexFormula):
    """Sugar for a disjunction of single letters, e.g. ``[a-z]``.

    Semantically identical to ``Union(Literal(c) for c in symbols)`` and
    expanded as such where the distinction matters (strict
    disjunction-freeness checks treat a multi-letter CharSet as a
    disjunction).
    """

    __slots__ = ("symbols",)
    _PRECEDENCE = 4

    def __init__(self, symbols):
        syms = frozenset(symbols)
        if not syms:
            raise RegexSyntaxError("CharSet needs at least one symbol; use Empty for ∅")
        if any(len(s) != 1 for s in syms):
            raise RegexSyntaxError("CharSet symbols must be single characters")
        object.__setattr__(self, "symbols", syms)

    def __setattr__(self, name, value):
        raise AttributeError("RegexFormula nodes are immutable")

    def children(self) -> tuple[RegexFormula, ...]:
        return ()

    def _key(self) -> tuple:
        return ("CharSet", self.symbols)

    def _render(self) -> str:
        # Compress runs into ranges for readability: [a-z0-9].
        ordered = sorted(self.symbols)
        parts: list[str] = []
        i = 0
        while i < len(ordered):
            j = i
            while j + 1 < len(ordered) and ord(ordered[j + 1]) == ord(ordered[j]) + 1:
                j += 1
            if j - i >= 2:
                parts.append(f"{_escape_char(ordered[i])}-{_escape_char(ordered[j])}")
            else:
                parts.extend(_escape_char(c) for c in ordered[i : j + 1])
            i = j + 1
        return "[" + "".join(parts) + "]"


class Union(RegexFormula):
    """``α1 ∨ α2 ∨ …`` (n-ary, at least two operands)."""

    __slots__ = ("parts",)
    _PRECEDENCE = 1

    def __init__(self, parts):
        flat: list[RegexFormula] = []
        for part in parts:
            if isinstance(part, Union):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if len(flat) < 2:
            raise RegexSyntaxError("Union needs at least two operands")
        object.__setattr__(self, "parts", tuple(flat))

    def __setattr__(self, name, value):
        raise AttributeError("RegexFormula nodes are immutable")

    def children(self) -> tuple[RegexFormula, ...]:
        return self.parts

    def _key(self) -> tuple:
        return ("Union", tuple(p._key() for p in self.parts))

    def _render(self) -> str:
        return "|".join(self._render_child(p) for p in self.parts)


class Concat(RegexFormula):
    """``α1 · α2 · …`` (n-ary, at least two operands)."""

    __slots__ = ("parts",)
    _PRECEDENCE = 2

    def __init__(self, parts):
        flat: list[RegexFormula] = []
        for part in parts:
            if isinstance(part, Concat):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if len(flat) < 2:
            raise RegexSyntaxError("Concat needs at least two operands")
        object.__setattr__(self, "parts", tuple(flat))

    def __setattr__(self, name, value):
        raise AttributeError("RegexFormula nodes are immutable")

    def children(self) -> tuple[RegexFormula, ...]:
        return self.parts

    def _key(self) -> tuple:
        return ("Concat", tuple(p._key() for p in self.parts))

    def _render(self) -> str:
        # A capture after a literal identifier character would re-parse as
        # part of the variable name ("a"+"b{c}" → capture "ab"); the
        # explicit concatenation dot (ignored by the parser) disambiguates.
        pieces: list[str] = []
        for part in self.parts:
            text = self._render_child(part)
            if (
                pieces
                and isinstance(part, Capture)
                and (pieces[-1][-1].isalnum() or pieces[-1][-1] in "_.")
            ):
                pieces.append("·")
            pieces.append(text)
        return "".join(pieces)


class Star(RegexFormula):
    """``α*`` — zero or more concatenated copies."""

    __slots__ = ("body",)
    _PRECEDENCE = 3

    def __init__(self, body: RegexFormula):
        object.__setattr__(self, "body", body)

    def __setattr__(self, name, value):
        raise AttributeError("RegexFormula nodes are immutable")

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.body,)

    def _key(self) -> tuple:
        return ("Star", self.body._key())

    def _render(self) -> str:
        return self._render_child(self.body) + "*"


class Capture(RegexFormula):
    """``x{α}`` — capture the span matched by ``α`` into variable ``x``."""

    __slots__ = ("var", "body")
    _PRECEDENCE = 4

    def __init__(self, var: Variable, body: RegexFormula):
        if not var or not all(c.isalnum() or c in "_." for c in var):
            raise RegexSyntaxError(
                f"variable names must be non-empty alphanumeric/underscore, got {var!r}"
            )
        if not var[0].isalpha() and var[0] != "_":
            raise RegexSyntaxError(f"variable names must start with a letter, got {var!r}")
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "body", body)

    def __setattr__(self, name, value):
        raise AttributeError("RegexFormula nodes are immutable")

    def children(self) -> tuple[RegexFormula, ...]:
        return (self.body,)

    @property
    def variables(self) -> frozenset[Variable]:
        try:
            return self._vars
        except AttributeError:
            out = self.body.variables | {self.var}
            object.__setattr__(self, "_vars", out)
            return out

    def _key(self) -> tuple:
        return ("Capture", self.var, self.body._key())

    def _render(self) -> str:
        return f"{self.var}{{{self.body._render()}}}"


#: Shared singletons for the two constant formulas.
EMPTY = Empty()
EPSILON = Epsilon()
