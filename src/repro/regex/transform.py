"""Sequential → disjunctive-functional translation (Prop. 3.9(1), App. A.2).

Implements the disjunct-set construction ``A(α)`` of the paper's Appendix
A.2, restricted — as the paper's sequentiality assumption guarantees — to
star bodies without variables (for which ``A(α*) = {α*}``; the general rule
is infinitary and never needed for sequential inputs).

The output is a disjunction of functional regex formulas equivalent to the
input under the schemaless semantics.  Proposition 3.11 shows the number of
disjuncts can be ``2^n`` in the worst case; :func:`count_disjuncts` computes
that number without materialising them, which the E4 bench uses to trace the
blow-up curve beyond what fits in memory.
"""

from __future__ import annotations

from ..core.errors import NotSequentialError
from .ast import (
    Capture,
    CharSet,
    Concat,
    Empty,
    Epsilon,
    Literal,
    RegexFormula,
    Star,
    Union,
)
from . import builder
from .properties import is_sequential


def disjunct_set(formula: RegexFormula) -> tuple[RegexFormula, ...]:
    """The paper's ``A(α)``: functional disjuncts jointly equivalent to α.

    Raises:
        NotSequentialError: if the input is not sequential (a star body
            mentions variables, making ``A`` infinite).
    """
    if not is_sequential(formula):
        raise NotSequentialError(
            "disjunctive-functional translation requires a sequential formula"
        )
    results: dict[int, tuple[RegexFormula, ...]] = {}
    stack: list[tuple[RegexFormula, bool]] = [(formula, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in results:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children():
                stack.append((child, False))
            continue
        results[id(node)] = _disjuncts_of(node, results)
    return results[id(formula)]


def _disjuncts_of(
    node: RegexFormula, results: dict[int, tuple[RegexFormula, ...]]
) -> tuple[RegexFormula, ...]:
    if isinstance(node, Empty):
        return ()
    if isinstance(node, (Epsilon, Literal, CharSet)):
        return (node,)
    if isinstance(node, Union):
        if not node.variables:
            # Variable-free disjunction: keep it whole, it is functional.
            return (node,)
        out: list[RegexFormula] = []
        for child in node.parts:
            out.extend(results[id(child)])
        return tuple(out)
    if isinstance(node, Concat):
        acc: list[tuple[RegexFormula, ...]] = [()]
        for child in node.parts:
            child_disjuncts = results[id(child)]
            acc = [prefix + (d,) for prefix in acc for d in child_disjuncts]
        return tuple(builder.concat(*parts) for parts in acc if parts)
    if isinstance(node, Star):
        # Sequential ⇒ the body is variable-free ⇒ the star itself is
        # functional (for ∅) and is its own single disjunct.
        return (node,)
    if isinstance(node, Capture):
        return tuple(builder.capture(node.var, d) for d in results[id(node.body)])
    raise TypeError(f"unknown node type {type(node).__name__}")


def to_disjunctive_functional(formula: RegexFormula) -> RegexFormula:
    """An equivalent disjunctive-functional regex formula (Prop. 3.9(1))."""
    parts = disjunct_set(formula)
    if not parts:
        return builder.empty()
    if len(parts) == 1:
        return parts[0]
    return Union(parts)


def count_disjuncts(formula: RegexFormula) -> int:
    """``|A(α)|`` computed arithmetically (no materialisation).

    Used to trace Prop. 3.11's ``2^n`` curve for parameters where the
    explicit disjunction would not fit in memory.
    """
    if not is_sequential(formula):
        raise NotSequentialError("count_disjuncts requires a sequential formula")
    counts: dict[int, int] = {}
    stack: list[tuple[RegexFormula, bool]] = [(formula, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in counts:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children():
                stack.append((child, False))
            continue
        if isinstance(node, Empty):
            counts[id(node)] = 0
        elif isinstance(node, (Epsilon, Literal, CharSet, Star)):
            counts[id(node)] = 1
        elif isinstance(node, Union):
            if not node.variables:
                counts[id(node)] = 1
            else:
                counts[id(node)] = sum(counts[id(c)] for c in node.parts)
        elif isinstance(node, Concat):
            total = 1
            for child in node.parts:
                total *= counts[id(child)]
            counts[id(node)] = total
        elif isinstance(node, Capture):
            counts[id(node)] = counts[id(node.body)]
        else:
            raise TypeError(f"unknown node type {type(node).__name__}")
    return counts[id(formula)]
