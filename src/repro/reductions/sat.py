"""CNF formulas, generators, and solvers.

The hardness proofs of the paper (Theorems 3.1, 4.1, 4.4; Prop. 4.10) are
reductions from variants of satisfiability.  This module supplies the
source problems:

* :class:`CNF` — formulas in conjunctive normal form, with literals encoded
  as ±(index+1) (DIMACS style);
* random instance generators, including the Tovey form (every clause 2-3
  literals, every variable in ≤ 3 clauses) used by Prop. 4.10 and the
  weighted variant behind Theorem 4.4;
* a DPLL solver plus brute-force model enumeration — the oracles against
  which every reduction is cross-checked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, Sequence

#: A literal: +v for the variable with 1-based index v, -v for its negation.
Literal = int
Clause = tuple[Literal, ...]
Assignment = dict[int, bool]


@dataclass(frozen=True)
class CNF:
    """A CNF formula over variables ``1..n_vars``."""

    n_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for literal in clause:
                if literal == 0 or abs(literal) > self.n_vars:
                    raise ValueError(f"literal {literal} out of range 1..{self.n_vars}")

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Assignment) -> bool:
        """Whether the assignment satisfies every clause."""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True

    def variable_occurrences(self) -> dict[int, int]:
        """Number of clauses each variable appears in."""
        counts = {v: 0 for v in range(1, self.n_vars + 1)}
        for clause in self.clauses:
            for var in {abs(lit) for lit in clause}:
                counts[var] += 1
        return counts

    def is_tovey_form(self) -> bool:
        """Every clause has 2 or 3 literals and every variable appears in
        at most 3 clauses (the still-NP-complete fragment of [31])."""
        if any(len(clause) not in (2, 3) for clause in self.clauses):
            return False
        return all(count <= 3 for count in self.variable_occurrences().values())

    def __str__(self) -> str:
        def lit(l: Literal) -> str:
            return f"x{l}" if l > 0 else f"¬x{-l}"

        return " ∧ ".join(
            "(" + " ∨ ".join(lit(l) for l in clause) + ")" for clause in self.clauses
        )


# -- generators -----------------------------------------------------------------


def random_3cnf(n_vars: int, n_clauses: int, rng: random.Random) -> CNF:
    """A uniformly random 3CNF: each clause picks 3 distinct variables and
    random polarities."""
    if n_vars < 3:
        raise ValueError("random_3cnf needs at least 3 variables")
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_vars + 1), 3)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in variables))
    return CNF(n_vars, tuple(clauses))


def random_tovey_cnf(n_vars: int, rng: random.Random) -> CNF:
    """A random Tovey-form CNF: clauses of size 2–3, each variable used at
    most 3 times (Prop. 4.10's source problem)."""
    budget = {v: 3 for v in range(1, n_vars + 1)}
    clauses: list[Clause] = []
    available = [v for v in budget]
    while True:
        usable = [v for v in available if budget[v] > 0]
        size = rng.choice((2, 3))
        if len(usable) < size:
            break
        chosen = rng.sample(usable, size)
        clause = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        clauses.append(clause)
        for v in chosen:
            budget[v] -= 1
        # Stop early with probability growing in the clause count, so
        # instances are not always saturated.
        if len(clauses) >= n_vars and rng.random() < 0.3:
            break
    cnf = CNF(n_vars, tuple(clauses))
    assert cnf.is_tovey_form()
    return cnf


def pigeonhole_cnf(holes: int) -> CNF:
    """The (unsatisfiable) pigeonhole principle PHP(holes+1, holes) — a
    classic family of certifiably UNSAT instances for the benches."""
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses: list[Clause] = []
    for p in range(pigeons):
        clauses.append(tuple(var(p, h) for h in range(holes)))
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append((-var(p1, h), -var(p2, h)))
    return CNF(pigeons * holes, tuple(clauses))


def to_tovey(cnf: CNF) -> CNF:
    """Tovey's reduction [31]: limit every variable to ≤ 3 occurrences by
    cloning over-used variables and chaining the clones with equivalence
    (implication-cycle) clauses.  Preserves satisfiability."""
    occurrences: dict[int, list[tuple[int, int]]] = {}
    for ci, clause in enumerate(cnf.clauses):
        for li, literal in enumerate(clause):
            occurrences.setdefault(abs(literal), []).append((ci, li))
    next_var = cnf.n_vars + 1
    new_clauses = [list(clause) for clause in cnf.clauses]
    extra: list[Clause] = []
    for var, sites in occurrences.items():
        if len(sites) <= 2:
            continue  # ≤2 clause uses + no cycle keeps it within 3
        clones = [var]
        for _ in range(len(sites) - 1):
            clones.append(next_var)
            next_var += 1
        for clone, (ci, li) in zip(clones, sites):
            original = new_clauses[ci][li]
            new_clauses[ci][li] = clone if original > 0 else -clone
        # Implication cycle clone1 → clone2 → … → clone1 forces equality;
        # each clone then occurs in exactly 3 clauses (1 original + 2 cycle).
        for a, b in zip(clones, clones[1:] + clones[:1]):
            extra.append((-a, b))
    result = CNF(next_var - 1, tuple(tuple(c) for c in new_clauses) + tuple(extra))
    return result


# -- solvers ----------------------------------------------------------------------


def dpll_satisfiable(cnf: CNF) -> Assignment | None:
    """A satisfying assignment, or ``None`` — plain DPLL with unit
    propagation (iterative, no recursion limits)."""
    model = _dpll(list(cnf.clauses), {})
    if model is None:
        return None
    # Fill unconstrained variables with False for a total assignment.
    return {v: model.get(v, False) for v in range(1, cnf.n_vars + 1)}


def _dpll(clauses: list[Clause], assignment: Assignment) -> Assignment | None:
    stack: list[tuple[list[Clause], Assignment]] = [(clauses, assignment)]
    while stack:
        current_clauses, current = stack.pop()
        simplified = _propagate(current_clauses, current)
        if simplified is None:
            continue
        current_clauses, current = simplified
        if not current_clauses:
            return current
        # Branch on the first literal of the first clause.
        literal = current_clauses[0][0]
        var = abs(literal)
        for value in ((literal > 0), not (literal > 0)):
            branch = dict(current)
            branch[var] = value
            stack.append((current_clauses, branch))
    return None


def _propagate(
    clauses: Sequence[Clause], assignment: Assignment
) -> tuple[list[Clause], Assignment] | None:
    """Unit propagation; returns simplified clauses + extended assignment,
    or None on conflict."""
    assignment = dict(assignment)
    while True:
        remaining: list[Clause] = []
        unit: Literal | None = None
        for clause in clauses:
            undecided: list[Literal] = []
            satisfied = False
            for literal in clause:
                value = assignment.get(abs(literal))
                if value is None:
                    undecided.append(literal)
                elif value == (literal > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if not undecided:
                return None  # conflict
            if len(undecided) == 1 and unit is None:
                unit = undecided[0]
            remaining.append(tuple(undecided))
        if unit is None:
            return remaining, assignment
        assignment[abs(unit)] = unit > 0
        clauses = remaining


def is_satisfiable(cnf: CNF) -> bool:
    """Decision form of :func:`dpll_satisfiable`."""
    return dpll_satisfiable(cnf) is not None


def all_models(cnf: CNF) -> Iterator[Assignment]:
    """Every satisfying total assignment, by brute force — exponential;
    for small cross-check instances only."""
    for bits in range(2 ** cnf.n_vars):
        assignment = {
            v: bool(bits >> (v - 1) & 1) for v in range(1, cnf.n_vars + 1)
        }
        if cnf.evaluate(assignment):
            yield assignment


def weighted_satisfiable(cnf: CNF, weight: int) -> Assignment | None:
    """A satisfying assignment with **exactly** ``weight`` true variables
    (the W[1]-complete parameterised problem behind Theorem 4.4), or
    ``None``.  Exhaustive over weight-k subsets — fine for the small
    parameters the W[1] experiments use."""
    for true_vars in combinations(range(1, cnf.n_vars + 1), weight):
        assignment = {v: False for v in range(1, cnf.n_vars + 1)}
        for v in true_vars:
            assignment[v] = True
        if cnf.evaluate(assignment):
            return assignment
    return None


#: The running example of the paper's proofs:
#: φ = (x ∨ y ∨ z) ∧ (¬x ∨ y ∨ ¬z), with x=1, y=2, z=3.
PAPER_PHI = CNF(3, ((1, 2, 3), (-1, 2, -3)))
