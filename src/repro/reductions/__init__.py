"""The paper's hardness reductions, as executable workload generators."""

from .difference_hardness import DifferenceHardnessInstance, build_difference_instance
from .join_hardness import JoinHardnessInstance, build_join_instance
from .sat import (
    CNF,
    PAPER_PHI,
    all_models,
    dpll_satisfiable,
    is_satisfiable,
    pigeonhole_cnf,
    random_3cnf,
    random_tovey_cnf,
    to_tovey,
    weighted_satisfiable,
)
from .tovey import ToveyInstance, build_tovey_instance
from .w1_hardness import W1HardnessInstance, build_w1_instance, codeword, codeword_width

__all__ = [
    "CNF",
    "DifferenceHardnessInstance",
    "JoinHardnessInstance",
    "PAPER_PHI",
    "ToveyInstance",
    "W1HardnessInstance",
    "all_models",
    "build_difference_instance",
    "build_join_instance",
    "build_tovey_instance",
    "build_w1_instance",
    "codeword",
    "codeword_width",
    "dpll_satisfiable",
    "is_satisfiable",
    "pigeonhole_cnf",
    "random_3cnf",
    "random_tovey_cnf",
    "to_tovey",
    "weighted_satisfiable",
]
