"""Theorem 3.1: 3SAT ⤳ nonemptiness of the join of two sequential regex
formulas, on the one-letter document ``a``.

Construction (verbatim from the proof):

* every SAT variable ``x_i`` gets ``2m`` capture variables ``x_i^{j,ℓ}``
  for clause indices ``j`` and polarities ``ℓ ∈ {t, f}``;
* ``γ1 = γ_{x1} ⋯ γ_{xn} · a`` where
  ``γ_{x_i} = (x_i^{1,t}{ε} ⋯ x_i^{m,t}{ε}) ∨ (x_i^{1,f}{ε} ⋯ x_i^{m,f}{ε})``
  — each SAT variable commits to one polarity for *all* clauses at once;
* ``γ2 = a · (δ_1 ⋯ δ_m)`` where ``δ_j`` disjoins ``x_i^{j,t}{ε}`` for each
  positive literal ``x_i ∈ C_j`` and ``x_i^{j,f}{ε}`` for each negative one
  — γ2 picks one satisfied literal per clause.

γ1's captures live at position 1, γ2's at position 2, so compatibility of
``µ1 ⋈ µ2`` degenerates to **domain disjointness**: γ2's picks must dodge
γ1's committed polarities, i.e. every clause contains a literal whose
polarity γ1 did *not* commit — exactly a satisfying assignment (read off
µ2: ``x_i^{j,ℓ} ∈ dom(µ2) ⟹ τ(x_i) = ℓ``).

Both formulas are sequential but far from functional — this is the paper's
witness that the schemaless generalisation breaks the [13] tractability.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.document import Document
from ..core.mapping import Mapping
from ..regex.ast import RegexFormula
from ..regex.builder import capture, concat, eps, lit, union
from .sat import CNF, Assignment


def _cap_var(sat_var: int, clause: int, polarity: bool) -> str:
    """The capture variable ``x_i^{j,ℓ}``."""
    return f"x{sat_var}_c{clause}_{'t' if polarity else 'f'}"


@dataclass(frozen=True)
class JoinHardnessInstance:
    """The reduction's output: two sequential regex formulas and the
    single-letter document."""

    cnf: CNF
    gamma1: RegexFormula
    gamma2: RegexFormula
    document: Document

    def decode(self, joined: Mapping) -> Assignment:
        """Recover a satisfying assignment from a mapping of
        ``⟦γ1 ⋈ γ2⟧(d)``.

        γ1's side commits one polarity ``p`` for *all* clause copies of a
        variable; the assignment is ``τ(x) = ¬p``.  In the joined domain
        γ2's per-clause picks are merged in, so a polarity counts as
        committed only when **all** its clause copies are present.  If both
        polarities are full (γ2 picked the variable in every clause), the
        pick polarity occurs in every clause and satisfies the formula
        single-handedly, so we choose it.
        """
        m = self.cnf.n_clauses
        domain = joined.domain
        assignment: Assignment = {}
        for sat_var in range(1, self.cnf.n_vars + 1):
            full = {
                polarity: all(
                    _cap_var(sat_var, j, polarity) in domain
                    for j in range(1, m + 1)
                )
                for polarity in (True, False)
            }
            if full[True] and full[False]:
                # Ambiguous: take the polarity whose literal occurs in
                # every clause (it must exist for both sides to be full).
                assignment[sat_var] = all(
                    sat_var in clause for clause in self.cnf.clauses
                )
            else:
                # Exactly one polarity is fully committed by γ1; negate it.
                assignment[sat_var] = not full[True]
        return assignment


def build_join_instance(cnf: CNF) -> JoinHardnessInstance:
    """Run the Theorem-3.1 reduction on a 3CNF formula."""
    m = cnf.n_clauses
    # γ1: one polarity-committing block per SAT variable, then the letter.
    blocks = []
    for sat_var in range(1, cnf.n_vars + 1):
        true_chain = concat(
            *(capture(_cap_var(sat_var, j, True), eps()) for j in range(1, m + 1))
        )
        false_chain = concat(
            *(capture(_cap_var(sat_var, j, False), eps()) for j in range(1, m + 1))
        )
        blocks.append(union(true_chain, false_chain))
    gamma1 = concat(*blocks, lit("a"))
    # γ2: the letter, then one satisfied-literal pick per clause.
    deltas = []
    for j, clause in enumerate(cnf.clauses, start=1):
        picks = [
            capture(_cap_var(abs(literal), j, literal > 0), eps())
            for literal in clause
        ]
        deltas.append(union(*picks))
    gamma2 = concat(lit("a"), *deltas)
    return JoinHardnessInstance(cnf, gamma1, gamma2, Document("a"))
