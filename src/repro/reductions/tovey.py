"""Proposition 4.10: hardness of the difference survives severe syntactic
restrictions — a functional, disjunction-free minuend and a subtrahend
that is a disjunction of disjunction-free formulas with every variable in
at most 3 disjuncts.

Source problem: satisfiability of CNFs in Tovey form [31] (clauses of 2–3
literals, every variable in ≤ 3 clauses).  Construction (verbatim):

* document ``d = (bab)^n``;
* ``γ1 = (b x_1{a*} a* b) ⋯ (b x_n{a*} a* b)`` — functional and
  disjunction-free; position block ``i`` encodes variable ``i`` (capture
  ``a`` = true, capture ``ε`` = false);
* for every clause ``C_i``, ``γ2^i`` pins its literals' blocks to the
  falsifying value and matches the other blocks literally (``bab``);
  ``γ2 = ⋁_i γ2^i`` — each variable appears in as many disjuncts as
  clauses it occurs in, hence ≤ 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.document import Document
from ..core.mapping import Mapping
from ..core.spans import Span
from ..regex.ast import RegexFormula
from ..regex.builder import capture, concat, empty, eps, lit, star, sym, union
from .sat import CNF, Assignment


def _block(index: int) -> RegexFormula:
    """``b x_i{a*} a* b`` — the free block for variable ``i``."""
    return concat(sym("b"), capture(f"x{index}", star(sym("a"))), star(sym("a")), sym("b"))


def _pinned_block(index: int, value: bool) -> RegexFormula:
    """``δ``: block ``i`` pinned to a truth value (disjunction-free)."""
    var = f"x{index}"
    if value:
        return concat(sym("b"), capture(var, sym("a")), sym("b"))
    return concat(sym("b"), capture(var, eps()), sym("a"), sym("b"))


@dataclass(frozen=True)
class ToveyInstance:
    """The reduction's output on a Tovey-form CNF."""

    cnf: CNF
    gamma1: RegexFormula
    gamma2: RegexFormula
    document: Document

    def decode(self, mapping: Mapping) -> Assignment:
        """Variable ``i`` is true iff ``x_i`` captured the non-empty span
        of block ``i``."""
        assignment: Assignment = {}
        for sat_var in range(1, self.cnf.n_vars + 1):
            span = mapping[f"x{sat_var}"]
            assignment[sat_var] = len(span) == 1
        return assignment

    def encode(self, assignment: Assignment) -> Mapping:
        """The γ1-mapping of a total assignment (block ``i`` spans
        positions ``3i-2 … 3i``; the ``a`` sits at ``3i-1``)."""
        spans = {}
        for sat_var in range(1, self.cnf.n_vars + 1):
            a_position = 3 * sat_var - 1
            if assignment[sat_var]:
                spans[f"x{sat_var}"] = Span(a_position, a_position + 1)
            else:
                spans[f"x{sat_var}"] = Span(a_position, a_position)
        return Mapping(spans)


def build_tovey_instance(cnf: CNF) -> ToveyInstance:
    """Run the Prop.-4.10 reduction.  The CNF must be in Tovey form (use
    :func:`repro.reductions.sat.to_tovey` to normalise first)."""
    if not cnf.is_tovey_form():
        raise ValueError("build_tovey_instance requires a Tovey-form CNF")
    n = cnf.n_vars
    gamma1 = concat(*(_block(i) for i in range(1, n + 1)))
    disjuncts: list[RegexFormula] = []
    for clause in cnf.clauses:
        pinned = {abs(literal): literal < 0 for literal in clause}
        factors = [
            _pinned_block(i, pinned[i]) if i in pinned else lit("bab")
            for i in range(1, n + 1)
        ]
        disjuncts.append(concat(*factors))
    gamma2 = union(*disjuncts) if disjuncts else empty()
    return ToveyInstance(cnf, gamma1, gamma2, Document("bab" * n))
