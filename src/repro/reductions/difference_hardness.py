"""Theorem 4.1: 3SAT ⤳ nonemptiness of the difference of two *functional*
regex formulas on the document ``a^n``.

Construction (verbatim from the proof):

* document ``d = a^n`` (one letter per SAT variable);
* ``β_i = (x_i{ε} · a) ∨ x_i{a}`` — position ``i`` encodes variable ``i``:
  capturing the empty span ``[i, i>`` means *false*, capturing ``[i, i+1>``
  means *true*;
* ``γ1 = β_1 ⋯ β_n`` — all assignments;
* ``γ2 = ⋁_j γ2^j`` where ``γ2^j`` pins the literals of clause ``C_j`` to
  their falsifying values (``x_ℓ{ε}·a`` for a positive literal,
  ``x_ℓ{a}`` for a negative one) and leaves the other positions as β —
  so ``⟦γ2⟧`` is exactly the assignments violating some clause.

``⟦γ1 \\ γ2⟧(a^n)`` is then the set of satisfying assignments.  Both
formulas are functional with the same variable set, showing the difference
is intractable even in the schema-based fragment where all the positive
operators compile statically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.document import Document
from ..core.mapping import Mapping
from ..core.spans import Span
from ..regex.ast import RegexFormula
from ..regex.builder import capture, concat, empty, eps, lit, union
from .sat import CNF, Assignment


def _beta(index: int) -> RegexFormula:
    """``β_i = (x_i{ε}·a) ∨ x_i{a}``."""
    var = f"x{index}"
    return union(
        concat(capture(var, eps()), lit("a")),
        capture(var, lit("a")),
    )


def _pinned(index: int, value: bool) -> RegexFormula:
    """``δ``: position ``index`` pinned to ``value``."""
    var = f"x{index}"
    if value:
        return capture(var, lit("a"))
    return concat(capture(var, eps()), lit("a"))


@dataclass(frozen=True)
class DifferenceHardnessInstance:
    """The reduction's output: two functional regex formulas over the same
    variables and the document ``a^n``."""

    cnf: CNF
    gamma1: RegexFormula
    gamma2: RegexFormula
    document: Document

    def decode(self, mapping: Mapping) -> Assignment:
        """Read the assignment off a surviving mapping: ``[i, i+1> ↦ true``,
        ``[i, i> ↦ false``."""
        assignment: Assignment = {}
        for sat_var in range(1, self.cnf.n_vars + 1):
            span = mapping[f"x{sat_var}"]
            assignment[sat_var] = span == Span(sat_var, sat_var + 1)
        return assignment

    def encode(self, assignment: Assignment) -> Mapping:
        """The γ1-mapping encoding a total assignment."""
        spans = {}
        for sat_var in range(1, self.cnf.n_vars + 1):
            if assignment[sat_var]:
                spans[f"x{sat_var}"] = Span(sat_var, sat_var + 1)
            else:
                spans[f"x{sat_var}"] = Span(sat_var, sat_var)
        return Mapping(spans)


def build_difference_instance(cnf: CNF) -> DifferenceHardnessInstance:
    """Run the Theorem-4.1 reduction on a 3CNF formula."""
    n = cnf.n_vars
    gamma1 = concat(*(_beta(i) for i in range(1, n + 1)))
    disjuncts: list[RegexFormula] = []
    for clause in cnf.clauses:
        pinned = {abs(literal): literal < 0 for literal in clause}
        # A positive literal must be false, a negative one true, for the
        # clause to be violated.
        factors = [
            _pinned(i, pinned[i]) if i in pinned else _beta(i)
            for i in range(1, n + 1)
        ]
        disjuncts.append(concat(*factors))
    gamma2 = union(*disjuncts) if disjuncts else empty()
    return DifferenceHardnessInstance(cnf, gamma1, gamma2, Document("a" * n))
