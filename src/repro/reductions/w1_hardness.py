"""Theorem 4.4 (Appendix B.2): weight-k 3SAT ⤳ difference nonemptiness with
``|Vars(γ1) ∩ Vars(γ2)| = k`` — the W[1]-hardness witness showing the
polynomial degree of Theorem 4.3 *must* grow with the number of common
variables.

Construction (following B.2):

* the document is ``d = s_1 ⋯ s_n`` where every ``s_i`` is a distinct
  fixed-width codeword over ``{a, b}`` (length ``O(log n)``);
* ``α1 = αS* y_1{αS} αS* ⋯ y_k{αS} αS*`` selects ``k`` codewords in
  increasing position order — the variables set to true (weight-k
  assignments);
* for every clause ``C_i``, ``α_{C_i}`` describes the weight-k selections
  that *violate* the clause: positive literals' codewords excluded from
  every selection slot, negated literals' codewords pinned into specific
  slots (one disjunct per placement of the pinned slots);
* ``α2 = ⋁_i α_{C_i}``.

Then ``⟦α1 \\ α2⟧(d) ≠ ∅`` iff the formula has a satisfying assignment of
weight exactly ``k``.  Only ``y_1 … y_k`` are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.document import Document
from ..core.mapping import Mapping
from ..regex.ast import RegexFormula
from ..regex.builder import capture, chars, concat, empty, lit, star, union
from .sat import CNF, Assignment


def codeword(index: int, width: int) -> str:
    """The fixed-width ``{a, b}`` codeword of the 1-based index."""
    bits = format(index - 1, f"0{width}b")
    return "".join("b" if bit == "1" else "a" for bit in bits)


def codeword_width(n: int) -> int:
    """Codeword width for ``n`` distinct variables."""
    return max(1, (n - 1).bit_length())


@dataclass(frozen=True)
class W1HardnessInstance:
    """The reduction's output, parameterised by the weight ``k``."""

    cnf: CNF
    weight: int
    gamma1: RegexFormula
    gamma2: RegexFormula
    document: Document

    @property
    def shared_variables(self) -> frozenset[str]:
        return frozenset(f"y{u}" for u in range(1, self.weight + 1))

    def decode(self, mapping: Mapping) -> Assignment:
        """Read the weight-k assignment off a surviving mapping: variable
        ``i`` is true iff some ``y_u`` covers its codeword."""
        width = codeword_width(self.cnf.n_vars)
        true_vars: set[int] = set()
        for u in range(1, self.weight + 1):
            span = mapping[f"y{u}"]
            index = (span.begin - 1) // width + 1
            true_vars.add(index)
        return {
            v: v in true_vars for v in range(1, self.cnf.n_vars + 1)
        }


def _selection_formula(slots: list[RegexFormula], filler: RegexFormula) -> RegexFormula:
    """``filler* slot_1 filler* … slot_k filler*``."""
    parts: list[RegexFormula] = [star(filler)]
    for slot in slots:
        parts.append(slot)
        parts.append(star(filler))
    return concat(*parts)


def build_w1_instance(cnf: CNF, weight: int) -> W1HardnessInstance:
    """Run the Theorem-4.4 reduction with parameter ``weight`` = k."""
    n = cnf.n_vars
    k = weight
    width = codeword_width(n)
    words = [codeword(i, width) for i in range(1, n + 1)]
    document = Document("".join(words))
    any_word = union(*(lit(w) for w in words))

    gamma1 = _selection_formula(
        [capture(f"y{u}", any_word) for u in range(1, k + 1)], any_word
    )

    clause_formulas: list[RegexFormula] = []
    for clause in cnf.clauses:
        positive = sorted({abs(l) for l in clause if l > 0})
        negative = sorted({abs(l) for l in clause if l < 0})
        allowed = union(
            *(lit(words[i - 1]) for i in range(1, n + 1) if i not in positive)
        )
        if not negative:
            # All positive: the clause is violated iff no slot picks a
            # positive variable.
            slots = [capture(f"y{u}", allowed) for u in range(1, k + 1)]
            clause_formulas.append(_selection_formula(slots, any_word))
            continue
        if len(negative) > k:
            continue  # cannot set that many variables true with weight k
        # Violation needs every negated variable selected (true); pin their
        # codewords into every increasing choice of slots.
        for positions in combinations(range(1, k + 1), len(negative)):
            slots: list[RegexFormula] = []
            pinned = dict(zip(positions, negative))
            for u in range(1, k + 1):
                if u in pinned:
                    slots.append(capture(f"y{u}", lit(words[pinned[u] - 1])))
                else:
                    slots.append(capture(f"y{u}", allowed))
            clause_formulas.append(_selection_formula(slots, any_word))
    gamma2 = union(*clause_formulas) if clause_formulas else empty()
    return W1HardnessInstance(cnf, k, gamma1, gamma2, document)
