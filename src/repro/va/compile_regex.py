"""Regex formula → vset-automaton compilation (Lemma 4.6; [13, 20]).

A Thompson-style construction treating variable operations like symbols:
``x{α}`` compiles to ``x⊢ · α · ⊣x``.  The construction is linear in the
formula size and preserves the syntactic classes:

* a sequential formula yields a sequential VA;
* a functional formula yields a functional VA;
* a formula synchronized for X yields a VA synchronized for X — every
  occurrence of a symbol gets a fresh target state reached only through its
  own transition, which is exactly the unique-target-state condition
  (Lemma 4.6's proof).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex.ast import (
    Capture,
    CharSet,
    Concat,
    Empty,
    Epsilon,
    Literal,
    RegexFormula,
    Star,
    Union,
)
from .automaton import VA, Label, State, close_op, open_op


@dataclass(slots=True)
class _Fragment:
    """A partial automaton with one entry and one exit state."""

    start: int
    end: int


class _Compiler:
    """Allocates states and accumulates transitions for one compilation."""

    def __init__(self) -> None:
        self._next_state = 0
        self.transitions: list[tuple[State, Label, State]] = []

    def fresh(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def edge(self, src: int, label: Label, dst: int) -> None:
        self.transitions.append((src, label, dst))

    def compile(self, formula: RegexFormula) -> _Fragment:
        # Iterative post-order to avoid recursion limits on deep formulas.
        # Fragments are built per *occurrence*, never shared: ASTs may reuse
        # node objects (e.g. the ε singleton), but every occurrence needs
        # its own fresh states or unrelated sub-automata would be glued
        # together.
        value_stack: list[_Fragment] = []
        work: list[tuple[RegexFormula, bool]] = [(formula, False)]
        while work:
            node, expanded = work.pop()
            if not expanded:
                work.append((node, True))
                for child in reversed(node.children()):
                    work.append((child, False))
                continue
            arity = len(node.children())
            children = value_stack[len(value_stack) - arity :] if arity else []
            del value_stack[len(value_stack) - arity :]
            value_stack.append(self._build(node, children))
        (fragment,) = value_stack
        return fragment

    def _build(self, node: RegexFormula, children: list[_Fragment]) -> _Fragment:
        start, end = self.fresh(), self.fresh()
        if isinstance(node, Empty):
            pass  # no transition: nothing reaches `end`
        elif isinstance(node, Epsilon):
            self.edge(start, None, end)
        elif isinstance(node, Literal):
            self.edge(start, node.symbol, end)
        elif isinstance(node, CharSet):
            for symbol in sorted(node.symbols):
                self.edge(start, symbol, end)
        elif isinstance(node, Union):
            for frag in children:
                self.edge(start, None, frag.start)
                self.edge(frag.end, None, end)
        elif isinstance(node, Concat):
            previous = start
            for frag in children:
                self.edge(previous, None, frag.start)
                previous = frag.end
            self.edge(previous, None, end)
        elif isinstance(node, Star):
            (body,) = children
            self.edge(start, None, end)
            self.edge(start, None, body.start)
            self.edge(body.end, None, body.start)
            self.edge(body.end, None, end)
        elif isinstance(node, Capture):
            (body,) = children
            self.edge(start, open_op(node.var), body.start)
            self.edge(body.end, close_op(node.var), end)
        else:
            raise TypeError(f"unknown node type {type(node).__name__}")
        return _Fragment(start, end)


def regex_to_va(formula: RegexFormula) -> VA:
    """Compile a regex formula into an equivalent VA in linear time.

    The equivalence is under the schemaless semantics:
    ``⟦regex_to_va(α)⟧(d) = ⟦α⟧(d)`` for every document ``d``.
    """
    compiler = _Compiler()
    fragment = compiler.compile(formula)
    return VA(
        fragment.start,
        (fragment.end,),
        compiler.transitions,
        range(compiler._next_state),
    )
