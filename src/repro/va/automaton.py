"""Vset-automata (paper §2.3).

A vset-automaton (VA) is an NFA whose transitions carry either an alphabet
letter, ε, or a *variable operation*: ``x⊢`` (open variable ``x``) or
``⊣x`` (close it).  Variable operations do not consume input.

Transition labels:

* ``None`` — an ε-transition;
* a one-character ``str`` — a letter transition;
* a :class:`VarOp` — a variable operation.

States may be any hashable objects; :meth:`VA.relabelled` canonicalises them
to consecutive integers (useful after product constructions whose states are
nested tuples).

The class is immutable after construction; all "mutations" in
:mod:`repro.va.operations` build new automata.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from hashlib import sha256
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator

from ..core.errors import SpannerError
from ..core.mapping import Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .indexed import IndexedVA
    from .prefilter import VAPrefilter
    from .vectorized import VectorizedVA

State = Hashable


@dataclass(frozen=True, slots=True, order=True)
class VarOp:
    """A variable operation: ``x⊢`` (open) or ``⊣x`` (close)."""

    var: Variable
    is_open: bool

    def __str__(self) -> str:
        return f"{self.var}⊢" if self.is_open else f"⊣{self.var}"

    @property
    def is_close(self) -> bool:
        return not self.is_open


def open_op(var: Variable) -> VarOp:
    """``x⊢``."""
    return VarOp(var, True)


def close_op(var: Variable) -> VarOp:
    """``⊣x``."""
    return VarOp(var, False)


#: A transition label: ε (None), a letter, or a variable operation.
Label = None | str | VarOp

#: One transition (source, label, target).
Transition = tuple[State, Label, State]


def _check_label(label: Label) -> None:
    if label is None or isinstance(label, VarOp):
        return
    if isinstance(label, str):
        if len(label) != 1:
            raise SpannerError(
                f"letter labels must be single characters, got {label!r}"
            )
        return
    raise SpannerError(f"invalid transition label {label!r}")


class VA:
    """An immutable vset-automaton ``(Q, q0, F, δ)``.

    Following footnote 4 of the paper we allow multiple accepting states.
    """

    __slots__ = (
        "_initial",
        "_accepting",
        "_transitions",
        "_out",
        "_states",
        "_vars",
        "_indexed",
        "_vectorized",
        "_prefilter",
        "_fingerprint",
    )

    def __init__(
        self,
        initial: State,
        accepting: Iterable[State],
        transitions: Iterable[Transition],
        states: Iterable[State] = (),
    ):
        trans = tuple(transitions)
        for _, label, _ in trans:
            _check_label(label)
        self._initial = initial
        self._accepting = frozenset(accepting)
        self._transitions = trans
        all_states: set[State] = {initial}
        all_states.update(self._accepting)
        all_states.update(states)
        out: dict[State, list[tuple[Label, State]]] = {}
        variables: set[Variable] = set()
        for src, label, dst in trans:
            all_states.add(src)
            all_states.add(dst)
            out.setdefault(src, []).append((label, dst))
            if isinstance(label, VarOp):
                variables.add(label.var)
        self._states = frozenset(all_states)
        self._out = {state: tuple(edges) for state, edges in out.items()}
        self._vars = frozenset(variables)
        self._indexed: "IndexedVA | None" = None
        self._vectorized = None
        self._prefilter: "VAPrefilter | None" = None
        self._fingerprint: str | None = None

    # -- structure accessors ---------------------------------------------------

    @property
    def initial(self) -> State:
        """The initial state ``q0``."""
        return self._initial

    @property
    def accepting(self) -> frozenset[State]:
        """The accepting states ``F``."""
        return self._accepting

    @property
    def states(self) -> frozenset[State]:
        """All states ``Q``."""
        return self._states

    @property
    def transitions(self) -> tuple[Transition, ...]:
        """All transitions ``δ`` as (source, label, target) triples."""
        return self._transitions

    @property
    def variables(self) -> frozenset[Variable]:
        """``Vars(A)``: variables mentioned by some transition."""
        return self._vars

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def n_transitions(self) -> int:
        return len(self._transitions)

    def transitions_from(self, state: State) -> tuple[tuple[Label, State], ...]:
        """Outgoing (label, target) pairs of ``state``."""
        return self._out.get(state, ())

    def is_accepting(self, state: State) -> bool:
        return state in self._accepting

    def indexed(self) -> "IndexedVA":
        """The dense-integer indexed form of this automaton (see
        :mod:`repro.va.indexed`), computed once and cached.

        The indexed form is document independent; sharing it across
        documents amortises factorization and table building.  Requires a
        sequential automaton (checked by the enumeration entry points).
        """
        if self._indexed is None:
            from .indexed import IndexedVA

            self._indexed = IndexedVA(self)
        return self._indexed

    def vectorized(self) -> "VectorizedVA":
        """The numpy plane-table form of this automaton (see
        :mod:`repro.va.vectorized`), computed once and cached.

        Wraps :meth:`indexed` with the uint64 successor-plane tables and
        the shared frontier-stepping kernel; document independent like the
        indexed form.  Raises
        :class:`~repro.core.errors.BackendUnavailableError` without numpy.
        """
        if self._vectorized is None:
            from .vectorized import VectorizedVA

            self._vectorized = VectorizedVA(self.indexed())
        return self._vectorized

    def prefilter(self) -> "VAPrefilter":
        """The document prefilter derived from this automaton (see
        :mod:`repro.va.prefilter`), computed once and cached.

        A bundle of necessary conditions — alphabet closure, a length
        window, and must-occur letter bounds — that rejects non-matching
        documents in O(1).  Sound only for the sequential automata the
        engine evaluates (the same requirement as :meth:`indexed`).
        """
        if self._prefilter is None:
            from .prefilter import VAPrefilter

            self._prefilter = VAPrefilter(self.indexed())
        return self._prefilter

    def bfs_order(self) -> dict[State, int]:
        """States numbered in BFS discovery order from the initial state
        (unreachable states last, in a stable arbitrary order) — the one
        canonical order shared by :meth:`relabelled`, :meth:`fingerprint`,
        and the normalization pipeline."""
        order: dict[State, int] = {self._initial: 0}
        queue = deque((self._initial,))
        while queue:
            state = queue.popleft()
            for _, target in self.transitions_from(state):
                if target not in order:
                    order[target] = len(order)
                    queue.append(target)
        for state in sorted(self._states - order.keys(), key=repr):
            order[state] = len(order)
        return order

    def fingerprint(self) -> str:
        """A structural digest of the automaton, stable across processes.

        States are canonicalised to BFS discovery order (the
        :meth:`relabelled` order), so two automata that are identical up to
        state names share a fingerprint.  Used by the logical plan layer
        for common-subexpression elimination and fingerprint-keyed plan
        caching; computed once and cached.
        """
        if self._fingerprint is None:
            order = self.bfs_order()

            def label_key(label: Label) -> str:
                if label is None:
                    return "e"
                if isinstance(label, VarOp):
                    return ("o:" if label.is_open else "c:") + repr(label.var)
                return "l:" + label

            parts = [
                str(len(order)),
                ",".join(str(order[s]) for s in sorted(self._accepting, key=order.__getitem__)),
                ";".join(
                    sorted(
                        f"{order[p]}>{label_key(label)}>{order[q]}"
                        for p, label, q in self._transitions
                    )
                ),
            ]
            digest = sha256("|".join(parts).encode("utf-8", "backslashreplace"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def letters(self) -> frozenset[str]:
        """All letters occurring on transitions."""
        return frozenset(
            label for _, label, _ in self._transitions if isinstance(label, str)
        )

    # -- simple rewrites --------------------------------------------------------

    def with_accepting(self, accepting: Iterable[State]) -> "VA":
        """A copy with a different accepting set (states preserved)."""
        return VA(self._initial, accepting, self._transitions, self._states)

    def map_states(self, func: Callable[[State], State]) -> "VA":
        """A copy with every state replaced by ``func(state)``.

        ``func`` must be injective on this automaton's states.
        """
        mapped = {s: func(s) for s in self._states}
        if len(set(mapped.values())) != len(mapped):
            raise SpannerError("state mapping must be injective")
        return VA(
            mapped[self._initial],
            (mapped[s] for s in self._accepting),
            ((mapped[p], label, mapped[q]) for p, label, q in self._transitions),
            mapped.values(),
        )

    def relabelled(self) -> "VA":
        """A copy with states canonicalised to 0..n-1 (BFS order from the
        initial state, unreachable states last in arbitrary-but-stable
        order)."""
        return self.map_states(self.bfs_order().__getitem__)

    def map_labels(self, func: Callable[[Label], Label]) -> "VA":
        """A copy with every transition label replaced by ``func(label)``.

        Used by projection (variable ops → ε) and variable renaming.
        """
        return VA(
            self._initial,
            self._accepting,
            ((p, func(label), q) for p, label, q in self._transitions),
            self._states,
        )

    # -- presentation -----------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"VA(states={self.n_states}, transitions={self.n_transitions}, "
            f"vars={sorted(self._vars)}, accepting={len(self._accepting)})"
        )

    def describe(self) -> str:
        """A multi-line listing of the automaton, for debugging."""
        lines = [f"initial: {self._initial!r}", f"accepting: {sorted(map(repr, self._accepting))}"]
        for p, label, q in self._transitions:
            text = "ε" if label is None else str(label)
            lines.append(f"  {p!r} --{text}--> {q!r}")
        return "\n".join(lines)

    def iter_var_ops(self) -> Iterator[VarOp]:
        """All distinct variable operations on transitions."""
        seen: set[VarOp] = set()
        for _, label, _ in self._transitions:
            if isinstance(label, VarOp) and label not in seen:
                seen.add(label)
                yield label


def gamma(variables: Iterable[Variable]) -> frozenset[VarOp]:
    """``Γ_V``: the set of variable operations over ``V`` (paper §2.3)."""
    out: set[VarOp] = set()
    for var in variables:
        out.add(open_op(var))
        out.add(close_op(var))
    return frozenset(out)
