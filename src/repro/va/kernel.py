"""The run-compressed Boolean transition kernel.

The per-document cost of the indexed evaluation substrate
(:mod:`repro.va.indexed`) is dominated by the layer-by-layer forward and
backward sweeps: one mask application per document letter.  When the
document has long maximal runs of a single letter, that is wasted work —
the transition of a letter σ is a *state-mask transformer* ``f_σ`` (a map
from state bitsets to state bitsets that distributes over union), and
consuming a run of ``r`` copies of σ applies ``f_σ^r``.

:class:`TransitionKernel` exploits this two ways:

* **Fixpoint absorption** — if ``f_σ(m) == m`` the frontier is stable and
  the whole remaining run advances in O(1).  This is the common case:
  frontiers under a repeated letter typically stabilise after a handful of
  steps.
* **Repeated doubling** — otherwise the kernel composes transformers
  ``f_σ^(2^k)`` and memoizes them per ``(letter, 2^k)``, so *any* run of
  length ``r`` advances in ``O(log r)`` mask applications.  Powers are
  document independent and shared across every document evaluated through
  the same :class:`~repro.va.indexed.IndexedVA`.

The kernel also serves the backward co-reachability pass through
:meth:`pred_row`, the per-letter *predecessor* transformer (the transpose
of the successor relation), and keeps a cumulative :attr:`run_hits`
counter the engine samples into ``EngineStats.kernel_run_hits``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..utils.bits import apply_masks, iter_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .indexed import IndexedVA


def compose(outer: "list[int]", inner: "list[int]") -> "list[int]":
    """The transformer applying ``inner`` then ``outer`` (per-state)."""
    return [apply_masks(outer, row) for row in inner]


class TransitionKernel:
    """Run-compressed transition stepping for one :class:`IndexedVA`.

    Attributes:
        successor_masks: the per-letter base transformers (one application
            = one letter consumed), borrowed from the indexed automaton.
        n_states: number of dense states.
        run_hits: cumulative count of compressed run advances (runs of
            length ≥ 2 served by fixpoint absorption or power doubling
            instead of per-letter stepping).
    """

    __slots__ = ("successor_masks", "n_states", "_powers", "_preds", "run_hits")

    def __init__(self, indexed: "IndexedVA"):
        self.successor_masks = indexed.successor_masks
        self.n_states = indexed.n_states
        # _powers[letter_id][k] is the transformer of 2^k applications of
        # the letter; built on demand, memoized per (letter, 2^k).
        self._powers: dict[int, list[list[int]]] = {}
        self._preds: dict[int, list[int]] = {}
        self.run_hits = 0

    def step(self, letter_id: int, mask: int) -> int:
        """One letter: the image of the state set ``mask``."""
        return apply_masks(self.successor_masks[letter_id], mask)

    def power(self, letter_id: int, k: int) -> "list[int]":
        """The memoized transformer of ``2^k`` copies of the letter."""
        powers = self._powers.get(letter_id)
        if powers is None:
            powers = self._powers[letter_id] = [self.successor_masks[letter_id]]
        while len(powers) <= k:
            previous = powers[-1]
            powers.append(compose(previous, previous))
        return powers[k]

    def advance(self, letter_id: int, mask: int, length: int) -> int:
        """The frontier after a run of ``length`` copies of the letter.

        O(1) once the frontier hits a fixpoint of the letter's transformer,
        O(log length) power applications otherwise — never O(length).
        """
        if length <= 0 or not mask:
            return mask
        nxt = apply_masks(self.successor_masks[letter_id], mask)
        if length == 1:
            return nxt
        self.run_hits += 1
        if nxt == mask or not nxt:
            # Fixpoint (or death): the rest of the run changes nothing.
            return nxt
        remaining = length - 1
        mask = nxt
        k = 0
        while remaining and mask:
            if remaining & 1:
                mask = apply_masks(self.power(letter_id, k), mask)
            remaining >>= 1
            k += 1
        return mask

    def cached_power_count(self) -> int:
        """How many composed ``(letter, 2^k)`` transformers are memoized
        (the base ``2^0`` rows are free and not counted).

        The incremental-append path leans on this memo: extending a
        document whose appended letters merge into the tail run re-enters
        :meth:`advance` with the checkpointed frontier, and every power the
        original run already built is reused — the extension costs
        O(log extra) applications and at most O(log extra) *new*
        compositions, never a re-walk of the run.  The tail tests pin that
        by watching this gauge across extensions.
        """
        return sum(len(powers) - 1 for powers in self._powers.values())

    def pred_row(self, letter_id: int) -> "list[int]":
        """The predecessor transformer of the letter (transpose of the
        successor relation), built once per letter on demand.  Drives the
        backward co-reachability pass: ``apply_masks(pred_row(σ), L)`` is
        the set of states with at least one σ-successor in ``L``.
        """
        row = self._preds.get(letter_id)
        if row is None:
            successors = self.successor_masks[letter_id]
            row = [0] * self.n_states
            for source, targets in enumerate(successors):
                bit = 1 << source
                for target in iter_bits(targets):
                    row[target] |= bit
            self._preds[letter_id] = row
        return row

    def __repr__(self) -> str:
        cached = self.cached_power_count()
        return (
            f"TransitionKernel(states={self.n_states}, "
            f"cached_powers={cached}, run_hits={self.run_hits})"
        )
