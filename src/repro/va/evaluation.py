"""Polynomial-delay enumeration for sequential VAs (Theorem 2.5).

The enumerator walks the layered :class:`~repro.va.matchgraph.MatchGraph`
depth-first over per-position *operation-set* choices, maintaining the
profile (set) of automaton states consistent with the choices so far.
Because the graph is pruned to co-reachable nodes, **every** branch of the
search completes to at least one output, so the delay between consecutive
mappings is bounded by (number of layers) × (work per layer) — polynomial
in the input, never in the output size.  Mappings correspond one-to-one to
operation-set sequences, so the enumeration is duplicate-free by
construction.

The enumerator requires a *sequential* VA; on non-sequential input the
operation-set encoding is ambiguous and the result would be wrong, so
:class:`VASpanner` checks sequentiality once up front (a polynomial check,
:func:`repro.va.properties.is_sequential`).
"""

from __future__ import annotations

from typing import Iterator

from ..core.document import Document, as_document
from ..core.errors import NotSequentialError
from ..core.mapping import Mapping, Variable
from ..core.relation import SpanRelation
from ..core.spanner import Spanner
from .automaton import VA, State
from .matchgraph import (
    FactorizedVA,
    MatchGraph,
    OpSet,
    boolean_nonempty,
    mapping_from_opsets,
    opset_sort_key,
)
from .properties import is_sequential


def enumerate_matchgraph(graph: MatchGraph) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧(d)`` with polynomial delay from a prebuilt
    :class:`MatchGraph` (shared-graph entry point used by the engine
    backends)."""
    if graph.is_empty:
        return
    n = len(graph.document)
    initial_profile = frozenset((graph.factorized.va.initial,))
    # Explicit DFS stack: (layer, profile, opsets chosen so far).
    stack: list[tuple[int, frozenset[State], list[OpSet]]] = [
        (0, initial_profile, [])
    ]
    while stack:
        layer, profile, chosen = stack.pop()
        if layer == n:
            for ops in sorted(graph.final_options(profile), key=opset_sort_key):
                yield mapping_from_opsets(chosen + [ops])
            continue
        options = graph.successor_options(layer, profile)
        # Reverse-sorted so the DFS pops options in canonical order.
        for ops in sorted(options, key=opset_sort_key, reverse=True):
            stack.append((layer + 1, options[ops], chosen + [ops]))


def enumerate_compiled(
    factorized: FactorizedVA, document: Document | str
) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧(d)`` with polynomial delay from a pre-factorized VA.

    Sharing the :class:`FactorizedVA` across documents amortises the
    closure computation (useful in the RA-tree evaluator and the benches).
    The match graph is built lazily on the first ``next()``, so the first
    delay carries the linear preprocessing (as Theorem 2.5 accounts it).
    """
    yield from enumerate_matchgraph(MatchGraph(factorized, document))


def enumerate_mappings(va: VA, document: Document | str) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧(d)`` for a sequential VA with polynomial delay.

    Raises:
        NotSequentialError: if the VA is not sequential.  (Nonemptiness for
            arbitrary VAs is NP-hard [11]; use
            :func:`repro.va.runs.enumerate_naive` for the exhaustive
            baseline.)
    """
    if not is_sequential(va):
        raise NotSequentialError(
            "polynomial-delay enumeration requires a sequential VA"
        )
    return enumerate_compiled(FactorizedVA(va), document)


def evaluate_va(va: VA, document: Document | str) -> SpanRelation:
    """Materialise ``⟦A⟧(d)`` via the polynomial-delay enumerator."""
    return SpanRelation(enumerate_mappings(va, document))


def is_nonempty(va: VA, document: Document | str) -> bool:
    """Decide ``⟦A⟧(d) ≠ ∅`` in polynomial time for sequential VAs.

    Runs the Boolean bitmask forward pass of the indexed substrate (one
    linear sweep over aggregate successor masks) — no enumeration edges are
    ever built.
    """
    if not is_sequential(va):
        raise NotSequentialError(
            "polynomial-delay emptiness requires a sequential VA"
        )
    from .indexed import indexed_nonempty

    return indexed_nonempty(va.indexed(), document)


class VASpanner(Spanner):
    """A sequential VA exposed through the :class:`Spanner` interface.

    Construction checks sequentiality once; enumeration then has
    polynomial delay on every document (Theorem 2.5).
    """

    def __init__(self, va: VA, check: bool = True):
        if check and not is_sequential(va):
            raise NotSequentialError("VASpanner requires a sequential VA")
        self.va = va
        self._factorized = FactorizedVA(va)

    def variables(self) -> frozenset[Variable]:
        return self.va.variables

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        return enumerate_compiled(self._factorized, as_document(document))

    def is_nonempty(self, document: Document | str) -> bool:
        """Boolean forward pass over the shared factorization — never
        builds enumeration edges."""
        return boolean_nonempty(self._factorized, as_document(document))

    def __repr__(self) -> str:
        return f"VASpanner({self.va!r})"
