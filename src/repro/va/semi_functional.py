"""Semi-functionalisation of sequential VAs (Lemma 3.6 / Lemma A.1).

A sequential VA is *semi-functional for x* when no state is ambiguous about
``x`` — i.e. ``c̃_q(x) ∈ {u, o, c}`` for every ``q``, never ``d`` ("done").
The transformation splits every ambiguous state ``q`` into two copies
``(q, 'u')`` and ``(q, 'c')`` and re-wires transitions so that each copy is
reached only by runs with the corresponding status (Example 3.5/3.7 of the
paper).  Iterating over a variable set ``X`` costs ``O(2^|X| · (n + m))``
in the worst case — FPT in ``|X|``, as Lemma 3.6 states.
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import NotSequentialError
from ..core.mapping import Variable
from .automaton import VA, Label, State, VarOp
from .configurations import CLOSED, DONE, OPEN, UNSEEN, status_sets
from .operations import trim


def _definite_statuses(
    va: VA, var: Variable
) -> tuple[dict[State, frozenset[str]], set[State]]:
    """Status sets per state plus the set of ambiguous ("done") states."""
    sets = status_sets(va, var)
    ambiguous: set[State] = set()
    for state, statuses in sets.items():
        if statuses == frozenset((UNSEEN, CLOSED)):
            ambiguous.add(state)
        elif len(statuses) != 1:
            raise NotSequentialError(
                f"state {state!r} has status set {sorted(statuses)} for "
                f"{var!r}; input must be a trimmed sequential VA"
            )
    return sets, ambiguous


def split_for_variable(va: VA, var: Variable) -> VA:
    """One round of Lemma A.1: make a trimmed sequential VA semi-functional
    for ``var`` while preserving ⟦·⟧ and semi-functionality for any other
    variable it already had."""
    sets, ambiguous = _definite_statuses(va, var)
    if not ambiguous:
        return va

    def copies(state: State) -> tuple[tuple[State, str], ...]:
        """The (new-state, status) copies of an old state."""
        if state in ambiguous:
            return (((state, UNSEEN), UNSEEN), ((state, CLOSED), CLOSED))
        status = next(iter(sets.get(state, frozenset((UNSEEN,)))))
        return ((state, status),)

    transitions: list[tuple[State, Label, State]] = []
    for src, label, dst in va.transitions:
        for src_copy, src_status in copies(src):
            dst_status = _advance(src_status, label, var)
            if dst_status is None:
                continue  # this copy cannot take the transition
            for dst_copy, status in copies(dst):
                if status == dst_status:
                    transitions.append((src_copy, label, dst_copy))
                    break
            else:
                # The arriving status does not match any copy of dst —
                # possible only when dst is unreachable with that status,
                # i.e. the transition is dead for this copy.
                continue

    initial_copies = copies(va.initial)
    # The initial state is reached with status 'u' by the empty path.
    initial = next(copy for copy, status in initial_copies if status == UNSEEN)
    accepting = [copy for state in va.accepting for copy, _ in copies(state)]
    new_states = [copy for state in va.states for copy, _ in copies(state)]
    return trim(VA(initial, accepting, transitions, new_states))


def _advance(status: str, label: Label, var: Variable) -> str | None:
    """Status after taking a transition, or ``None`` when impossible."""
    if not isinstance(label, VarOp) or label.var != var:
        return status
    if label.is_open:
        return OPEN if status == UNSEEN else None
    return CLOSED if status == OPEN else None


def make_semi_functional(va: VA, variables: Iterable[Variable]) -> VA:
    """Lemma 3.6: an equivalent sequential VA semi-functional for every
    variable in ``variables``.

    The input is trimmed first; the output is trimmed.  Worst-case size is
    ``2^|variables|`` times the input (each round at most doubles the
    states), which is the paper's FPT bound.
    """
    result = trim(va)
    for var in sorted(set(variables) & va.variables):
        result = split_for_variable(result, var)
    # Nested-tuple state names grow with each round; flatten for hygiene.
    return result.relabelled()
