"""Factorized match graphs: the evaluation substrate (Thm. 2.5, [1, 13]).

The evaluation algorithms in this library all run on the same structure:

1. **Factorization** (document independent): for every state ``p`` compute
   its *variable-ε-closure* — the pairs ``(S, q)`` such that ``q`` is
   reachable from ``p`` using only ε-transitions and variable operations,
   where ``S`` is the set of operations performed.  Because the input is
   sequential, no valid run repeats an operation inside one closure, so
   ``S`` is a set.  The closure induces *macro transitions*
   ``p --(S, σ)--> r`` ("perform the operations of S, then read σ").

2. **Match graph** (document dependent): a layered DAG with layers
   ``0..|d|``; layer ``i`` holds the states the VA can be in after
   consuming ``i`` letters (just *before* performing the position-``i+1``
   operations).  Edges between consecutive layers are the macro
   transitions on the document's next letter; at the last layer each state
   carries its *accepting operation sets*.  Dead nodes (not co-reachable)
   are pruned by a backward pass.

A mapping of ``⟦A⟧(d)`` corresponds one-to-one to a sequence
``S_0, …, S_n`` of per-position operation sets labelling a source-to-sink
path — the micro-order of operations inside a position does not affect the
mapping, and factorization collapses it.  This makes duplicate-free
enumeration straightforward (see :mod:`repro.va.evaluation`).

The same structure doubles as the paper's *match structure* ``M(A, d)``
(proof of Theorem 4.8): the per-position operation sets are in one-to-one
correspondence with the variable-configuration sequences used there.
"""

from __future__ import annotations

from ..core.document import Document, as_document
from ..core.errors import EvaluationError, NotSequentialError
from ..core.mapping import Mapping, Variable
from ..core.spans import Span
from .automaton import VA, State, VarOp
from .operations import trim

#: A set of variable operations performed at one document position.
OpSet = frozenset[VarOp]

EMPTY_OPSET: OpSet = frozenset()


def opset_sort_key(ops: OpSet) -> tuple:
    """The canonical enumeration order of operation sets, shared by every
    backend so they yield mappings in the same order."""
    return tuple(sorted((op.var, not op.is_open) for op in ops))


class FactorizedVA:
    """Document-independent factorization of a (sequential) VA.

    Closures are computed lazily per state and cached, so repeated
    evaluations over many documents share the work.
    """

    def __init__(self, va: VA):
        self.va = trim(va)
        self._closures: dict[State, tuple[tuple[OpSet, State], ...]] = {}
        self._macro: dict[State, dict[str, tuple[tuple[OpSet, State], ...]]] = {}

    def closure(self, state: State) -> tuple[tuple[OpSet, State], ...]:
        """All ``(S, q)`` with ``q`` reachable from ``state`` via ε and
        variable operations, ``S`` being the operations performed."""
        cached = self._closures.get(state)
        if cached is not None:
            return cached
        seen: set[tuple[State, OpSet]] = {(state, EMPTY_OPSET)}
        stack: list[tuple[State, OpSet]] = [(state, EMPTY_OPSET)]
        while stack:
            current, ops = stack.pop()
            for label, target in self.va.transitions_from(current):
                if isinstance(label, str):
                    continue
                if label is None:
                    item = (target, ops)
                else:
                    if label in ops:
                        # Re-performing an operation within one position can
                        # never belong to a valid run; prune.
                        continue
                    item = (target, ops | {label})
                if item not in seen:
                    seen.add(item)
                    stack.append(item)
        result = tuple(sorted(((ops, q) for q, ops in seen), key=_closure_key))
        self._closures[state] = result
        return result

    def macro_transitions(
        self, state: State
    ) -> dict[str, tuple[tuple[OpSet, State], ...]]:
        """Macro transitions ``state --(S, σ)--> r`` grouped by letter σ.

        Memoized per state — the match-graph build asks once per
        (layer, state) pair, so without the cache the closure would be
        regrouped O(layers·states) times per document.  The returned dict
        is shared: treat it as immutable.
        """
        cached = self._macro.get(state)
        if cached is not None:
            return cached
        out: dict[str, list[tuple[OpSet, State]]] = {}
        for ops, mid in self.closure(state):
            for label, target in self.va.transitions_from(mid):
                if isinstance(label, str):
                    out.setdefault(label, []).append((ops, target))
        result = {letter: tuple(entries) for letter, entries in out.items()}
        self._macro[state] = result
        return result

    def accepting_opsets(self, state: State) -> frozenset[OpSet]:
        """Operation sets ``S`` such that performing S from ``state``
        reaches an accepting state (no more letters read)."""
        return frozenset(
            ops for ops, q in self.closure(state) if self.va.is_accepting(q)
        )


def _closure_key(item: tuple[OpSet, State]) -> tuple:
    ops, state = item
    return (sorted(map(str, ops)), repr(state))


def boolean_nonempty(factorized: FactorizedVA, document: Document | str) -> bool:
    """Decide ``⟦A⟧(d) ≠ ∅`` with a Boolean forward pass only.

    Tracks reachable state *sets* through the memoized macro transitions —
    no edge dictionaries, no backward pruning, early exit when the frontier
    dies.  A forward-reachable accepting operation set at the last layer
    witnesses a full run, so no co-reachability pass is needed.
    """
    doc = as_document(document)
    current = {factorized.va.initial}
    for i in range(len(doc)):
        letter = doc.letter(i + 1)
        nxt: set[State] = set()
        for state in current:
            for _, target in factorized.macro_transitions(state).get(letter, ()):
                nxt.add(target)
        if not nxt:
            return False
        current = nxt
    return any(factorized.accepting_opsets(state) for state in current)


class MatchGraph:
    """The layered match graph of a VA on one document.

    Attributes:
        layers: for each layer ``i`` (0-based; ``i`` letters consumed), the
            set of live states.
        edges: ``edges[i][q]`` maps each live state of layer ``i`` to its
            grouped successors ``{S: frozenset of live targets}`` reading
            letter ``i+1``.
        final_opsets: ``final_opsets[q]`` for live states of the last
            layer: the accepting operation sets.
    """

    def __init__(self, factorized: FactorizedVA, document: Document | str):
        self.factorized = factorized
        self.document = as_document(document)
        self._build()

    def _build(self) -> None:
        doc, fva = self.document, self.factorized
        n = len(doc)
        va = fva.va
        # Forward pass: reachable states per layer.
        forward: list[set[State]] = [set() for _ in range(n + 1)]
        forward[0].add(va.initial)
        raw_edges: list[dict[State, dict[OpSet, set[State]]]] = [
            {} for _ in range(n)
        ]
        for i in range(n):
            letter = doc.letter(i + 1)
            for state in forward[i]:
                grouped: dict[OpSet, set[State]] = {}
                for ops, target in fva.macro_transitions(state).get(letter, ()):
                    grouped.setdefault(ops, set()).add(target)
                    forward[i + 1].add(target)
                if grouped:
                    raw_edges[i][state] = grouped
        # Final acceptance.
        final: dict[State, frozenset[OpSet]] = {}
        for state in forward[n]:
            opsets = fva.accepting_opsets(state)
            if opsets:
                final[state] = opsets
        # Backward pruning: keep states with a path to acceptance.
        alive: list[set[State]] = [set() for _ in range(n + 1)]
        alive[n] = set(final)
        for i in range(n - 1, -1, -1):
            for state, grouped in raw_edges[i].items():
                if any(t in alive[i + 1] for targets in grouped.values() for t in targets):
                    alive[i].add(state)
        self.layers: list[frozenset[State]] = [frozenset(a) for a in alive]
        self.final_opsets: dict[State, frozenset[OpSet]] = final
        # Prune edges to live targets only.
        self.edges: list[dict[State, dict[OpSet, frozenset[State]]]] = []
        for i in range(n):
            pruned: dict[State, dict[OpSet, frozenset[State]]] = {}
            for state in alive[i]:
                grouped = raw_edges[i].get(state, {})
                kept: dict[OpSet, frozenset[State]] = {}
                for ops, targets in grouped.items():
                    live_targets = frozenset(t for t in targets if t in alive[i + 1])
                    if live_targets:
                        kept[ops] = live_targets
                if kept:
                    pruned[state] = kept
            self.edges.append(pruned)

    @property
    def is_empty(self) -> bool:
        """Whether ``⟦A⟧(d) = ∅`` — no live source state."""
        return self.factorized.va.initial not in self.layers[0]

    def width(self) -> int:
        """Maximum number of live states in any layer (complexity gauge)."""
        return max((len(layer) for layer in self.layers), default=0)

    def states_alive(self) -> int:
        """Total live states across all layers (graph-size gauge; matches
        :meth:`repro.va.indexed.IndexedMatchGraph.states_alive`)."""
        return sum(len(layer) for layer in self.layers)

    def successor_options(
        self, layer: int, profile: frozenset[State]
    ) -> dict[OpSet, frozenset[State]]:
        """From a set of live layer-``layer`` states, the distinct next
        operation sets and the resulting state profiles."""
        options: dict[OpSet, set[State]] = {}
        level = self.edges[layer]
        for state in profile:
            for ops, targets in level.get(state, {}).items():
                options.setdefault(ops, set()).update(targets)
        return {ops: frozenset(targets) for ops, targets in options.items()}

    def final_options(self, profile: frozenset[State]) -> frozenset[OpSet]:
        """Accepting operation sets available from a last-layer profile."""
        out: set[OpSet] = set()
        for state in profile:
            out |= self.final_opsets.get(state, frozenset())
        return frozenset(out)


def mapping_from_opsets(opsets: list[OpSet]) -> Mapping:
    """Assemble the mapping encoded by per-position operation sets.

    ``opsets[i]`` holds the operations performed at document position
    ``i+1``.  Raises :class:`NotSequentialError` if a variable is operated
    twice or closed before opening — which cannot happen for sequential
    input and signals a caller error.
    """
    opened: dict[Variable, int] = {}
    spans: dict[Variable, Span] = {}
    for index, ops in enumerate(opsets):
        position = index + 1
        # Opens must be registered before closes within the same position
        # (for empty spans [p, p>).
        for op in ops:
            if op.is_open:
                if op.var in opened or op.var in spans:
                    raise NotSequentialError(f"variable {op.var!r} opened twice")
                opened[op.var] = position
        for op in ops:
            if not op.is_open:
                begin = opened.pop(op.var, None)
                if begin is None:
                    raise NotSequentialError(
                        f"variable {op.var!r} closed while not open"
                    )
                spans[op.var] = Span(begin, position)
    if opened:
        raise EvaluationError(
            f"variables left open at end of document: {sorted(opened)}"
        )
    return Mapping(spans)
