"""Boolean spanners as classical automata: determinisation and
complementation (§4's impossibility argument, experiment E11).

A Boolean VA (no variables) is an NFA.  Section 4 of the paper argues that
*static* compilation of the difference must fail because it subsumes NFA
complementation, whose state blow-up is exponential [17, Jirásková].  This
module makes that argument executable:

* :func:`boolean_nfa` — strip ε-transitions from a variable-free VA;
* :func:`determinize` — the subset construction;
* :func:`complement_dfa` / :func:`static_boolean_difference` — the static
  compilation route, with its measurable exponential cost;
* the E11 bench contrasts its state counts against the ad-hoc compilation
  (:func:`repro.algebra.difference.adhoc_difference`), which stays
  polynomial in the document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.errors import SpannerError
from .automaton import VA, Label, State

#: A deterministic transition table: state → letter → state.
DfaTable = dict[State, dict[str, State]]


@dataclass(frozen=True)
class NFA:
    """A classical NFA over single-character letters (no ε)."""

    initial: frozenset[State]
    accepting: frozenset[State]
    transitions: dict[State, dict[str, frozenset[State]]]
    alphabet: frozenset[str]

    @property
    def n_states(self) -> int:
        states = set(self.initial) | set(self.accepting) | set(self.transitions)
        for table in self.transitions.values():
            for targets in table.values():
                states |= targets
        return len(states)

    def accepts(self, word: str) -> bool:
        current = set(self.initial)
        for letter in word:
            current = {
                target
                for state in current
                for target in self.transitions.get(state, {}).get(letter, ())
            }
            if not current:
                return False
        return bool(current & self.accepting)


@dataclass(frozen=True)
class DFA:
    """A complete DFA over an explicit alphabet."""

    initial: State
    accepting: frozenset[State]
    table: DfaTable
    alphabet: frozenset[str]

    @property
    def n_states(self) -> int:
        return len(self.table)

    def accepts(self, word: str) -> bool:
        state = self.initial
        for letter in word:
            if letter not in self.alphabet:
                return False
            state = self.table[state][letter]
        return state in self.accepting


def _epsilon_closure(va: VA, states: Iterable[State]) -> frozenset[State]:
    seen = set(states)
    stack = list(seen)
    while stack:
        state = stack.pop()
        for label, target in va.transitions_from(state):
            if label is None and target not in seen:
                seen.add(target)
                stack.append(target)
    return frozenset(seen)


def boolean_nfa(va: VA, alphabet: Iterable[str] | None = None) -> NFA:
    """Convert a variable-free VA into an ε-free NFA.

    Raises:
        SpannerError: if the VA mentions variables (project them away
            first if a Boolean view is intended).
    """
    if va.variables:
        raise SpannerError(
            f"boolean_nfa requires a variable-free VA; got variables "
            f"{sorted(va.variables)}"
        )
    letters = frozenset(alphabet) if alphabet is not None else va.letters()
    transitions: dict[State, dict[str, frozenset[State]]] = {}
    for state in va.states:
        table: dict[str, set[State]] = {}
        for label, target in va.transitions_from(state):
            if isinstance(label, str):
                table.setdefault(label, set()).update(_epsilon_closure(va, (target,)))
        if table:
            transitions[state] = {
                letter: frozenset(targets) for letter, targets in table.items()
            }
    return NFA(
        initial=_epsilon_closure(va, (va.initial,)),
        accepting=frozenset(va.accepting),
        transitions=transitions,
        alphabet=letters,
    )


def determinize(nfa: NFA) -> DFA:
    """The subset construction — worst case 2^n states, and the E11 family
    realises that bound."""
    initial = nfa.initial
    table: DfaTable = {}
    accepting: set[State] = set()
    stack: list[frozenset[State]] = [initial]
    seen: set[frozenset[State]] = {initial}
    while stack:
        subset = stack.pop()
        row: dict[str, State] = {}
        for letter in nfa.alphabet:
            target = frozenset(
                t
                for state in subset
                for t in nfa.transitions.get(state, {}).get(letter, ())
            )
            row[letter] = target
            if target not in seen:
                seen.add(target)
                stack.append(target)
        table[subset] = row
        if subset & nfa.accepting:
            accepting.add(subset)
    return DFA(initial, frozenset(accepting), table, nfa.alphabet)


def complement_dfa(dfa: DFA) -> DFA:
    """Flip acceptance (the DFA is complete by construction)."""
    return DFA(
        dfa.initial,
        frozenset(set(dfa.table) - set(dfa.accepting)),
        dfa.table,
        dfa.alphabet,
    )


def dfa_to_va(dfa: DFA) -> VA:
    """Reify a DFA as a (Boolean) VA."""
    names = {state: index for index, state in enumerate(dfa.table)}
    transitions: list[tuple[State, Label, State]] = []
    for state, row in dfa.table.items():
        for letter, target in row.items():
            transitions.append((names[state], letter, names[target]))
    return VA(
        names[dfa.initial],
        (names[s] for s in dfa.accepting),
        transitions,
        names.values(),
    )


def product_intersection(first: NFA, second: DFA) -> NFA:
    """NFA ∩ DFA by the product construction."""
    alphabet = first.alphabet & second.alphabet
    transitions: dict[State, dict[str, frozenset[State]]] = {}
    initial = frozenset((s, second.initial) for s in first.initial)
    accepting: set[State] = set()
    stack = list(initial)
    seen: set[State] = set(initial)
    while stack:
        state = stack.pop()
        nfa_state, dfa_state = state
        if nfa_state in first.accepting and dfa_state in second.accepting:
            accepting.add(state)
        row: dict[str, frozenset[State]] = {}
        for letter in alphabet:
            nfa_targets = first.transitions.get(nfa_state, {}).get(letter, frozenset())
            dfa_target = second.table[dfa_state][letter]
            targets = frozenset((t, dfa_target) for t in nfa_targets)
            if targets:
                row[letter] = targets
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
        if row:
            transitions[state] = row
    return NFA(initial, frozenset(accepting), transitions, alphabet)


def nfa_to_va(nfa: NFA) -> VA:
    """Reify an NFA as a (Boolean) VA with a fresh ε-initial state."""
    names: dict[State, int] = {}

    def name(state: State) -> int:
        if state not in names:
            names[state] = len(names) + 1
        return names[state]

    transitions: list[tuple[State, Label, State]] = []
    for state, row in nfa.transitions.items():
        for letter, targets in row.items():
            for target in targets:
                transitions.append((name(state), letter, name(target)))
    initial = 0
    for state in nfa.initial:
        transitions.append((initial, None, name(state)))
    return VA(
        initial,
        (name(s) for s in nfa.accepting if True),
        transitions,
        [0, *names.values()],
    )


def static_boolean_difference(
    first: VA, second: VA, alphabet: Iterable[str]
) -> tuple[VA, int]:
    """The *static* difference of two Boolean VAs: ``A1 ∩ complement(A2)``
    via determinisation.

    Returns the compiled VA and the size of the determinised subtrahend —
    the quantity that explodes exponentially on the E11 family, which is
    exactly why the paper replaces static compilation with ad-hoc
    compilation for the difference operator.
    """
    letters = frozenset(alphabet)
    nfa1 = boolean_nfa(first, letters)
    dfa2 = determinize(boolean_nfa(second, letters))
    complemented = complement_dfa(dfa2)
    product = product_intersection(nfa1, complemented)
    return nfa_to_va(product), dfa2.n_states
