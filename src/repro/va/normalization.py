"""The VA normalization pipeline.

Every composition in the algebra (``union_va``, ``fpt_join``, the ad-hoc
differences, …) introduces administrative structure: fresh ε-initials,
duplicate transitions from product constructions, states that cannot reach
acceptance, and operations on variables no accepting run extracts.  None of
it changes the recognised spanner, but all of it is paid for again by every
construction *above* — products are quadratic in the operand sizes, so
keeping intermediates small compounds.

:func:`normalize` composes the individual passes into the canonical
post-composition cleanup the planner applies after every ``apply_*``:

1. :func:`drop_never_used_ops` — ε-out operations on variables that no
   accepting run extracts (before trimming, while there is still junk for
   the analysis to find);
2. :func:`trim` — drop states that are unreachable or cannot accept;
3. :func:`eliminate_epsilon` — remove ε-transitions by closure (the fresh
   initials of unions and the residue of projections disappear here);
4. :func:`dedup_transitions` — collapse duplicate ``(p, label, q)`` triples;
5. a final :func:`trim` for states orphaned by the ε-elimination.

All passes preserve the spanner exactly (mappings come from variable
operations, which are ordinary non-ε labels) and preserve sequentiality
(runs correspond one-to-one modulo ε steps), so normalized automata remain
valid inputs to every enumeration backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from .automaton import VA, State, Transition
from .matchstruct import never_used_variables
from .operations import project_va, trim


@dataclass
class NormalizeReport:
    """Size accounting of one :func:`normalize` run."""

    states_before: int = 0
    states_after: int = 0
    transitions_before: int = 0
    transitions_after: int = 0
    epsilon_removed: int = 0
    duplicates_removed: int = 0
    dead_ops_removed: int = 0

    @property
    def states_removed(self) -> int:
        return self.states_before - self.states_after

    @property
    def transitions_removed(self) -> int:
        return self.transitions_before - self.transitions_after


def dedup_transitions(va: VA) -> VA:
    """Remove duplicate ``(source, label, target)`` triples (first
    occurrence wins, preserving transition order)."""
    seen: set[Transition] = set()
    unique: list[Transition] = []
    for transition in va.transitions:
        if transition not in seen:
            seen.add(transition)
            unique.append(transition)
    if len(unique) == len(va.transitions):
        return va
    return VA(va.initial, va.accepting, unique, va.states)


def _deterministic_state_order(va: VA) -> list[State]:
    """States in the automaton's canonical BFS order — keeps rebuilt
    transition lists deterministic."""
    return list(va.bfs_order())


def epsilon_closure(va: VA, state: State) -> frozenset[State]:
    """All states reachable from ``state`` through ε-transitions only."""
    closure: set[State] = {state}
    stack = [state]
    while stack:
        current = stack.pop()
        for label, target in va.transitions_from(current):
            if label is None and target not in closure:
                closure.add(target)
                stack.append(target)
    return frozenset(closure)


def eliminate_epsilon(va: VA) -> VA:
    """An equivalent VA without ε-transitions.

    Standard NFA ε-elimination lifted to VAs: variable operations are
    ordinary (non-consuming but labelled) transitions, so only the ``None``
    labels are closed over.  A state becomes accepting when its ε-closure
    meets the accepting set.  States are preserved; ones reachable only
    through removed ε-edges are left for the following :func:`trim`.
    """
    if not any(label is None for _, label, _ in va.transitions):
        return va
    transitions: list[Transition] = []
    seen: set[Transition] = set()
    accepting: set[State] = set()
    for state in _deterministic_state_order(va):
        closure = epsilon_closure(va, state)
        if closure & va.accepting:
            accepting.add(state)
        for member in sorted(closure, key=repr):
            for label, target in va.transitions_from(member):
                if label is None:
                    continue
                transition = (state, label, target)
                if transition not in seen:
                    seen.add(transition)
                    transitions.append(transition)
    return VA(va.initial, accepting, transitions, va.states)


def drop_never_used_ops(va: VA) -> VA:
    """ε-out operations on variables no accepting run extracts.

    Runs before trimming (on a trimmed *sequential* automaton every
    surviving operation lies on some accepting run, so there would be
    nothing left to find): compositions hand us untrimmed automata whose
    dead branches may operate on variables the live part never uses, and
    a dropped variable shrinks every product built on top (the factorized
    constructions are exponential in the variable count, not just linear).
    """
    unused = never_used_variables(va, va.variables)
    if not unused:
        return va
    return project_va(va, va.variables - unused)


def normalize(va: VA, report: NormalizeReport | None = None) -> VA:
    """The full post-composition cleanup (see module docstring).

    Args:
        va: any VA (need not be trimmed).
        report: optional accumulator recording the size deltas.

    Returns:
        An equivalent VA with no dead states, no ε-transitions, no
        duplicate transitions, and no operations on never-extracted
        variables.
    """
    if report is not None:
        report.states_before += va.n_states
        report.transitions_before += va.n_transitions
    dropped = drop_never_used_ops(va)
    if report is not None:
        report.dead_ops_removed += sum(
            1 for _, label, _ in va.transitions if label is not None
        ) - sum(1 for _, label, _ in dropped.transitions if label is not None)
    out = trim(dropped)
    eliminated = eliminate_epsilon(out)
    if report is not None:
        report.epsilon_removed += sum(
            1 for _, label, _ in out.transitions if label is None
        )
    deduped = dedup_transitions(eliminated)
    if report is not None:
        report.duplicates_removed += eliminated.n_transitions - deduped.n_transitions
    out = trim(deduped)
    if report is not None:
        report.states_after += out.n_states
        report.transitions_after += out.n_transitions
    return out
