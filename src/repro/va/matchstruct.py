"""Match structures and their determinisation (proof of Theorem 4.8).

The paper's *match structure* ``M(A, d)`` is an NFA over variable
configurations whose language is in one-to-one correspondence with
``⟦A⟧(d)``.  Our :class:`~repro.va.matchgraph.MatchGraph` is an equivalent
presentation over per-position *operation sets* (the configuration after
position ``i`` is the union of the operation sets up to ``i``); this module
adds the piece specific to Theorem 4.8: the **layered determinisation**
``D2`` of the match structure of a VA that is synchronized for its
variables.

For a synchronized (hence, after trimming and dropping never-used
variables, functional) VA the operations occur in a single global order
``ω1 … ω2k`` along every accepting run, so the determinisation stays small:
a subset state is characterised by (layer, first layer at which the current
configuration was entered, configuration index), giving ``O(|d|² · k)``
states (the paper's bound).  :class:`DeterminizedMatchStructure` performs a
plain layered subset construction — correct for *any* sequential VA — and
exposes the realised subset width so tests and the E8 bench can confirm
the synchronized case stays polynomial.
"""

from __future__ import annotations

from ..core.document import Document, as_document
from ..core.errors import NotSynchronizedError
from ..core.mapping import Variable
from .automaton import VA, State, VarOp
from .matchgraph import FactorizedVA, MatchGraph, OpSet
from .properties import accepting_statuses, is_synchronized_for
from .operations import project_va, trim

#: A determinised node: a frozenset of match-graph states in one layer.
Subset = frozenset[State]


def operation_order(va: VA) -> tuple[VarOp, ...]:
    """The single global order ``ω1 … ω2k`` in which a VA synchronized for
    all its variables performs its operations (Appendix B.5).

    Computed by topologically ordering operations by reachability between
    their unique target states.  Raises :class:`NotSynchronizedError` if no
    single order exists.
    """
    ops = sorted(va.iter_var_ops(), key=str)
    if not ops:
        return ()
    if not is_synchronized_for(va, {op.var for op in ops}):
        raise NotSynchronizedError("operation_order requires a synchronized VA")
    # Order by reachability over the automaton graph between occurrences.
    reach = _reachability(va)
    order: list[VarOp] = []
    remaining = set(ops)
    sources = {op: {src for src, label, _ in va.transitions if label == op} for op in ops}
    targets = {op: {dst for _, label, dst in va.transitions if label == op} for op in ops}
    while remaining:
        # An op is "first" if no other remaining op must precede it: op2
        # precedes op1 when op1's sources are reachable from op2's targets
        # but not vice versa.
        for candidate in sorted(remaining, key=str):
            if all(
                not _must_precede(other, candidate, sources, targets, reach)
                for other in remaining
                if other != candidate
            ):
                order.append(candidate)
                remaining.discard(candidate)
                break
        else:
            raise NotSynchronizedError(
                "no global operation order exists; the VA is not synchronized"
            )
    return tuple(order)


def _reachability(va: VA) -> dict[State, frozenset[State]]:
    out: dict[State, frozenset[State]] = {}
    for start in va.states:
        seen = {start}
        stack = [start]
        while stack:
            state = stack.pop()
            for _, target in va.transitions_from(state):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        out[start] = frozenset(seen)
    return out


def _must_precede(first: VarOp, second: VarOp, sources, targets, reach) -> bool:
    """Whether ``first`` must occur before ``second`` on every accepting
    run: some source of ``second`` is reachable from a target of ``first``
    and no source of ``first`` is reachable from a target of ``second``."""
    forward = any(
        src in reach[dst] for dst in targets[first] for src in sources[second]
    )
    backward = any(
        src in reach[dst] for dst in targets[second] for src in sources[first]
    )
    return forward and not backward


class DeterminizedMatchStructure:
    """``D2``: the layered determinisation of a match structure.

    Built from a VA (projected onto the variables of interest) and a
    document.  States of layer ``i`` are subsets of the match graph's
    layer-``i`` states; transitions are deterministic per operation set.

    The construction is correct for any sequential VA; it is guaranteed
    polynomial when the VA is synchronized for its variables (Theorem
    4.8).  :meth:`subset_width` reports the realised width for the E8
    ablation.
    """

    def __init__(self, va: VA, document: Document | str, variables: frozenset[Variable] | None = None):
        doc = as_document(document)
        scoped = trim(project_va(va, variables)) if variables is not None else trim(va)
        self.va = scoped
        self.document = doc
        self.graph = MatchGraph(FactorizedVA(scoped), doc)
        self._build()

    def _build(self) -> None:
        n = len(self.document)
        graph = self.graph
        if graph.is_empty:
            self.layers: list[dict[Subset, dict[OpSet, Subset]]] = [
                {} for _ in range(max(n, 0) + 1)
            ]
            self.initial: Subset = frozenset()
            self.accepting: dict[Subset, frozenset[OpSet]] = {}
            return
        initial: Subset = frozenset((self.va.initial,))
        layers: list[dict[Subset, dict[OpSet, Subset]]] = [{} for _ in range(n + 1)]
        frontier: set[Subset] = {initial}
        for i in range(n):
            next_frontier: set[Subset] = set()
            for subset in frontier:
                options = graph.successor_options(i, subset)
                layers[i][subset] = options
                next_frontier.update(options.values())
            frontier = next_frontier
        accepting: dict[Subset, frozenset[OpSet]] = {}
        for subset in frontier:
            layers[n][subset] = {}
            finals = graph.final_options(subset)
            if finals:
                accepting[subset] = finals
        self.layers = layers
        self.initial = initial
        self.accepting = accepting

    def subset_width(self) -> int:
        """The largest subset ever materialised — polynomial for
        synchronized input, the quantity the E8 ablation plots."""
        width = 0
        for layer in self.layers:
            for subset in layer:
                width = max(width, len(subset))
        return width

    def n_subset_states(self) -> int:
        """Total number of determinised states across layers."""
        return sum(len(layer) for layer in self.layers)

    def accepts(self, opsets: list[OpSet]) -> bool:
        """Whether the fully-specified operation-set sequence is accepted
        (i.e. encodes a mapping of ``⟦A⟧(d)``)."""
        n = len(self.document)
        if len(opsets) != n + 1:
            raise ValueError(f"expected {n + 1} operation sets, got {len(opsets)}")
        subset = self.initial
        for i in range(n):
            options = self.layers[i].get(subset, {})
            nxt = options.get(opsets[i])
            if nxt is None:
                return False
            subset = nxt
        return opsets[n] in self.accepting.get(subset, frozenset())


def never_used_variables(va: VA, variables: frozenset[Variable]) -> frozenset[Variable]:
    """Variables of ``variables`` that no accepting run of ``va`` operates
    on (their extraction is always undefined).  For a synchronized VA every
    variable is either always used or never used; the never-used ones are
    dropped before building ``D2`` (Appendix B.5's WLOG step)."""
    out: set[Variable] = set()
    for var in variables:
        if var not in va.variables:
            out.add(var)
            continue
        statuses = accepting_statuses(va, var)
        if statuses <= {"u"}:
            out.add(var)
    return frozenset(out)
