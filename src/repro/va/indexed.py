"""Dense-indexed evaluation substrate (the engine's ``indexed`` backend).

:class:`~repro.va.matchgraph.FactorizedVA` keeps states as arbitrary
hashable objects and macro transitions as per-state dictionaries — flexible,
but the match-graph hot loop then spends its time hashing tuples and
chasing dictionaries.  :class:`IndexedVA` relabels the states of a trimmed
sequential VA to dense integers ``0..n-1`` (BFS order from the initial
state), interns its letters into a dense :class:`~repro.core.document.Alphabet`,
interns every operation set to a small integer, and precomputes, for every
(letter id, state) pair, the grouped macro transitions as tuples of
``(opset_id, target_bitmask)`` plus an *aggregate successor mask* (the union
of all targets, ignoring operation sets).

State *sets* are then Python integers used as bitsets, and documents are
arrays of letter ids (cached on the :class:`~repro.core.document.Document`
per alphabet), so the forward pass is array indexing and ``|``/``&`` on
machine words instead of string hashing and frozenset algebra.

:class:`IndexedMatchGraph` is *lazy* (streaming): construction runs only a
cheap Boolean forward pass over the aggregate masks — enough to decide
emptiness (Theorem 2.5's linear preprocessing).  The backward co-reachability
pruning is another bitmask-only pass run on first demand, and the per-layer
edge rows that enumeration needs are materialised state by state as the DFS
visits them.  ``first()`` and ``enumerate(limit=k)`` therefore short-circuit:
they pay the Boolean pass plus only the edges along the paths actually
walked, never the full O(n·states) edge build.  Semantics are identical to
the eager :class:`~repro.va.matchgraph.MatchGraph` path — the equivalence
tests in ``tests/engine`` check both against the naive enumerator and check
lazy against eager (``eager=True`` prebuilds every edge row, the old
behaviour, kept for comparison benches).

Both indexed forms are document independent and safe to share across
documents; :meth:`VA.indexed` caches one per automaton.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..core.document import Alphabet, Document, as_document
from ..core.errors import NotSequentialError
from ..core.mapping import Mapping
from .automaton import VA, State
from .matchgraph import FactorizedVA, OpSet, mapping_from_opsets, opset_sort_key
from .properties import is_sequential


class IndexedVA:
    """Document-independent indexed form of a (sequential) VA.

    Attributes:
        factorized: the underlying factorization (shares closure caches).
        n_states: number of live states after trimming.
        initial_id: dense id of the initial state (always 0).
        alphabet: the interned :class:`Alphabet` of the automaton's letters.
        opsets: interned operation sets; index = opset id.
        tables: ``tables[letter_id][state_id]`` is a tuple of
            ``(opset_id, target_bitmask)`` macro transitions, canonically
            ordered.
        successor_masks: ``successor_masks[letter_id][state_id]`` is the
            union of the target bitmasks of ``tables[letter_id][state_id]``
            — the Boolean (operation-blind) transition relation the lazy
            match graph's forward/backward passes run on.
        accept: ``accept[state_id]`` is the tuple of accepting opset ids,
            canonically ordered.
        accept_mask: bitmask of states with at least one accepting opset.
    """

    def __init__(self, va: VA, factorized: FactorizedVA | None = None):
        if factorized is None:
            factorized = FactorizedVA(va)
        self.factorized = factorized
        tva = factorized.va  # trimmed
        order: dict[State, int] = {tva.initial: 0}
        queue = deque((tva.initial,))
        while queue:
            state = queue.popleft()
            for _, target in tva.transitions_from(state):
                if target not in order:
                    order[target] = len(order)
                    queue.append(target)
        # Trimming keeps only reachable states, so `order` covers them all.
        self.n_states = len(order)
        self.initial_id = 0
        self.alphabet = Alphabet.of(tva.letters())
        self.opsets: list[OpSet] = []
        opset_ids: dict[OpSet, int] = {}

        def intern(ops: OpSet) -> int:
            found = opset_ids.get(ops)
            if found is None:
                found = opset_ids[ops] = len(self.opsets)
                self.opsets.append(ops)
            return found

        states_by_id = sorted(order, key=order.__getitem__)
        n_letters = len(self.alphabet)
        tables: list[list[tuple[tuple[int, int], ...]]] = [
            [()] * self.n_states for _ in range(n_letters)
        ]
        successor_masks: list[list[int]] = [
            [0] * self.n_states for _ in range(n_letters)
        ]
        accept: list[tuple[int, ...]] = [()] * self.n_states
        accept_mask = 0
        letter_id = self.alphabet.ids.__getitem__
        for state, sid in order.items():
            grouped: dict[int, dict[int, int]] = {}
            for ops, mid in factorized.closure(state):
                for label, target in tva.transitions_from(mid):
                    if isinstance(label, str):
                        per_ops = grouped.setdefault(letter_id(label), {})
                        oid = intern(ops)
                        per_ops[oid] = per_ops.get(oid, 0) | (1 << order[target])
            for lid, per_ops in grouped.items():
                entries = tuple(
                    sorted(per_ops.items(), key=lambda kv: opset_sort_key(self.opsets[kv[0]]))
                )
                tables[lid][sid] = entries
                mask = 0
                for _, target_mask in entries:
                    mask |= target_mask
                successor_masks[lid][sid] = mask
            accept[sid] = tuple(
                sorted(
                    (intern(ops) for ops in factorized.accepting_opsets(state)),
                    key=lambda oid: opset_sort_key(self.opsets[oid]),
                )
            )
            if accept[sid]:
                accept_mask |= 1 << sid
        self.tables = tables
        self.successor_masks = successor_masks
        self.accept = accept
        self.accept_mask = accept_mask
        self.states_by_id = tuple(states_by_id)
        # Canonical enumeration rank per opset id (ids are interned in
        # discovery order, which is not the canonical order).
        ranked = sorted(range(len(self.opsets)), key=lambda oid: opset_sort_key(self.opsets[oid]))
        self.opset_rank = [0] * len(self.opsets)
        for rank, oid in enumerate(ranked):
            self.opset_rank[oid] = rank

    @property
    def va(self) -> VA:
        """The trimmed automaton this form indexes."""
        return self.factorized.va

    def __repr__(self) -> str:
        return (
            f"IndexedVA(states={self.n_states}, opsets={len(self.opsets)}, "
            f"letters={len(self.alphabet)})"
        )


def _iter_bits(mask: int) -> Iterator[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def indexed_nonempty(indexed: IndexedVA, document: Document | str) -> bool:
    """Decide ``⟦A⟧(d) ≠ ∅`` with the Boolean bitmask pass alone.

    One forward sweep over the aggregate successor masks — no edge rows, no
    backward pruning, early exit as soon as the frontier dies.
    """
    doc = as_document(document)
    ids = doc.encoded(indexed.alphabet)
    succ = indexed.successor_masks
    mask = 1 << indexed.initial_id
    for lid in ids:
        if lid < 0:
            return False  # letter unknown to the VA: no run survives
        row = succ[lid]
        nxt = 0
        while mask:
            low = mask & -mask
            nxt |= row[low.bit_length() - 1]
            mask ^= low
        if not nxt:
            return False
        mask = nxt
    return bool(mask & indexed.accept_mask)


class IndexedMatchGraph:
    """The layered match graph of an :class:`IndexedVA` on one document,
    with layers as state bitmasks — built *lazily*.

    Construction runs only the Boolean forward pass (aggregate successor
    masks), which already decides :attr:`is_empty`.  The backward pruning
    pass runs on first access to :attr:`alive`; enumeration edge rows are
    materialised per (layer, state) as the DFS reaches them.  Pass
    ``eager=True`` to prebuild everything up front (the pre-streaming
    behaviour, kept for the comparison benches and equivalence tests).
    """

    __slots__ = (
        "indexed",
        "document",
        "letter_ids",
        "forward",
        "final",
        "final_mask",
        "_alive",
        "_edges",
    )

    def __init__(
        self, indexed: IndexedVA, document: Document | str, eager: bool = False
    ):
        self.indexed = indexed
        self.document = as_document(document)
        ids = self.document.encoded(indexed.alphabet)
        self.letter_ids = ids
        n = len(ids)
        succ = indexed.successor_masks
        # Boolean forward pass: reachable state masks per layer.
        forward = [0] * (n + 1)
        mask = forward[0] = 1 << indexed.initial_id
        for i, lid in enumerate(ids):
            if lid < 0:
                break  # letter unknown to the VA: nothing lives past here
            row = succ[lid]
            nxt = 0
            while mask:
                low = mask & -mask
                nxt |= row[low.bit_length() - 1]
                mask ^= low
            if not nxt:
                break
            forward[i + 1] = mask = nxt
        self.forward = forward
        # Acceptance at the last layer.
        final_mask = forward[n] & indexed.accept_mask
        self.final_mask = final_mask
        accept = indexed.accept
        self.final: dict[int, tuple[int, ...]] = {
            sid: accept[sid] for sid in _iter_bits(final_mask)
        }
        self._alive: list[int] | None = None
        self._edges: list[dict[int, tuple[tuple[int, int], ...]] | None] = [
            None
        ] * n
        if eager:
            self.materialise()

    @property
    def is_empty(self) -> bool:
        """Whether ``⟦A⟧(d) = ∅`` — no accepting state is forward-reachable
        at the last layer (decided by the Boolean pass alone)."""
        return not self.final_mask

    @property
    def alive(self) -> list[int]:
        """Live (co-reachable) state masks per layer, from the Boolean
        backward pass (run once, on demand)."""
        alive = self._alive
        if alive is None:
            ids = self.letter_ids
            forward = self.forward
            succ = self.indexed.successor_masks
            n = len(ids)
            alive = [0] * (n + 1)
            live = alive[n] = self.final_mask
            for i in range(n - 1, -1, -1):
                if not live:
                    break  # nothing co-reachable earlier either
                row = succ[ids[i]]
                layer_alive = 0
                mask = forward[i]
                while mask:
                    low = mask & -mask
                    if row[low.bit_length() - 1] & live:
                        layer_alive |= low
                    mask ^= low
                alive[i] = live = layer_alive
            self._alive = alive
        return alive

    def states_alive(self) -> int:
        """Total live states across all layers (graph-size gauge)."""
        return sum(mask.bit_count() for mask in self.alive)

    def width(self) -> int:
        """Maximum number of live states in any layer."""
        return max((mask.bit_count() for mask in self.alive), default=0)

    def edge_row(self, layer: int, sid: int) -> list[tuple[int, int]]:
        """The pruned macro transitions of live state ``sid`` at ``layer``
        (``(opset_id, live_target_mask)`` pairs), built on first demand.
        The returned list is the cache entry: treat it as immutable."""
        cache = self._edges[layer]
        if cache is None:
            cache = self._edges[layer] = {}
        row = cache.get(sid)
        if row is None:
            live = self.alive[layer + 1]
            row = cache[sid] = [
                (oid, target_mask & live)
                for oid, target_mask in self.indexed.tables[self.letter_ids[layer]][sid]
                if target_mask & live
            ]
        return row

    def edge_layer(self, layer: int) -> dict[int, list[tuple[int, int]]]:
        """All edge rows of one layer (every live state), materialised."""
        for sid in _iter_bits(self.alive[layer]):
            self.edge_row(layer, sid)
        return self._edges[layer]  # type: ignore[return-value]

    def materialise(self) -> None:
        """Prebuild the backward pass and every edge row (eager mode)."""
        for layer in range(len(self.letter_ids)):
            self.edge_layer(layer)

    def enumerate(self, limit: int | None = None) -> Iterator[Mapping]:
        """DFS enumeration with polynomial delay (Theorem 2.5), bitmask
        profiles and parent-pointer path reconstruction.

        ``limit`` stops after that many mappings; the lazy edge rows mean a
        small limit touches only the layers along the walked paths.
        """
        if self.is_empty or (limit is not None and limit <= 0):
            return
        indexed = self.indexed
        opsets, rank = indexed.opsets, indexed.opset_rank
        n = len(self.letter_ids)
        final = self.final
        alive = self.alive
        tables = indexed.tables
        letter_ids = self.letter_ids
        edges = self._edges
        emitted = 0
        # Stack frames: (layer, profile mask, path node); a path node is
        # (opset_id, parent node) — reconstruction replaces per-push tuple
        # copies of the whole prefix.
        stack: list[tuple[int, int, tuple | None]] = [
            (0, 1 << indexed.initial_id, None)
        ]
        while stack:
            layer, profile, node = stack.pop()
            if layer == n:
                options_set: set[int] = set()
                mask = profile
                while mask:
                    low = mask & -mask
                    options_set.update(final.get(low.bit_length() - 1, ()))
                    mask ^= low
                chosen: list[OpSet] = []
                while node is not None:
                    oid, node = node
                    chosen.append(opsets[oid])
                chosen.reverse()
                for oid in sorted(options_set, key=rank.__getitem__):
                    yield mapping_from_opsets(chosen + [opsets[oid]])
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
                continue
            # Inlined edge_row: the per-layer row build is the hot loop.
            cache = edges[layer]
            if cache is None:
                cache = edges[layer] = {}
            row_table = tables[letter_ids[layer]]
            live = alive[layer + 1]
            options: dict[int, int] = {}
            mask = profile
            while mask:
                low = mask & -mask
                mask ^= low
                sid = low.bit_length() - 1
                row = cache.get(sid)
                if row is None:
                    row = cache[sid] = [
                        (oid, target_mask & live)
                        for oid, target_mask in row_table[sid]
                        if target_mask & live
                    ]
                for oid, target_mask in row:
                    prev = options.get(oid)
                    options[oid] = target_mask if prev is None else prev | target_mask
            if len(options) == 1:
                # Single choice (the common layer in sparse documents):
                # skip the canonical sort.
                oid, target_mask = options.popitem()
                stack.append((layer + 1, target_mask, (oid, node)))
            else:
                # Reverse rank order so the DFS pops options canonically.
                for oid in sorted(options, key=rank.__getitem__, reverse=True):
                    stack.append((layer + 1, options[oid], (oid, node)))

    def first(self) -> Mapping | None:
        """The first mapping in canonical order, or ``None`` if empty —
        one Boolean pass plus the edges along a single root-to-sink path.

        A dedicated greedy walk: the DFS's first leaf is reached by taking
        the canonically-minimal operation set at every layer, so no stack,
        no generator frames, and no alternatives are ever pushed.
        """
        if self.is_empty:
            return None
        indexed = self.indexed
        opsets, rank = indexed.opsets, indexed.opset_rank
        edge_row = self.edge_row
        chosen: list[OpSet] = []
        profile = 1 << indexed.initial_id
        for layer in range(len(self.letter_ids)):
            best_oid = -1
            best_rank = -1
            best_mask = 0
            mask = profile
            while mask:
                low = mask & -mask
                mask ^= low
                sid = low.bit_length() - 1
                for oid, target_mask in edge_row(layer, sid):
                    if best_rank < 0 or rank[oid] < best_rank:
                        best_rank, best_oid, best_mask = rank[oid], oid, target_mask
                    elif oid == best_oid:
                        best_mask |= target_mask
            chosen.append(opsets[best_oid])
            profile = best_mask
        final = self.final
        best_final = -1
        mask = profile
        while mask:
            low = mask & -mask
            mask ^= low
            for oid in final.get(low.bit_length() - 1, ()):
                if best_final < 0 or rank[oid] < rank[best_final]:
                    best_final = oid
        chosen.append(opsets[best_final])
        return mapping_from_opsets(chosen)


def enumerate_indexed(
    indexed: IndexedVA | VA, document: Document | str, limit: int | None = None
) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧(d)`` via the indexed substrate.

    Accepts a prebuilt :class:`IndexedVA` (shared across documents) or a
    raw sequential :class:`VA`.  The match graph is built lazily on the
    first ``next()``, so the first delay carries the preprocessing.
    """
    if isinstance(indexed, VA):
        if not is_sequential(indexed):
            raise NotSequentialError(
                "indexed enumeration requires a sequential VA"
            )
        indexed = IndexedVA(indexed)
    yield from IndexedMatchGraph(indexed, document).enumerate(limit=limit)
