"""Dense-indexed evaluation substrate (the engine's ``indexed`` backend).

:class:`~repro.va.matchgraph.FactorizedVA` keeps states as arbitrary
hashable objects and macro transitions as per-state dictionaries — flexible,
but the match-graph hot loop then spends its time hashing tuples and
chasing dictionaries.  :class:`IndexedVA` relabels the states of a trimmed
sequential VA to dense integers ``0..n-1`` (BFS order from the initial
state), interns every operation set to a small integer, and precomputes,
for every (state, letter) pair, the grouped macro transitions as tuples of
``(opset_id, target_bitmask)``.

State *sets* are then Python integers used as bitsets: the forward pass,
backward pruning, and DFS profile bookkeeping of Theorem 2.5 all become
``|``/``&`` on machine words instead of frozenset algebra.  The semantics
are identical to the :class:`~repro.va.matchgraph.MatchGraph` path — the
equivalence tests in ``tests/engine`` check both against the naive
enumerator on random inputs.

Both forms are document independent and safe to share across documents;
:meth:`VA.indexed` caches one per automaton.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..core.document import Document, as_document
from ..core.errors import NotSequentialError
from ..core.mapping import Mapping
from .automaton import VA, State
from .matchgraph import FactorizedVA, OpSet, mapping_from_opsets, opset_sort_key
from .properties import is_sequential


class IndexedVA:
    """Document-independent indexed form of a (sequential) VA.

    Attributes:
        factorized: the underlying factorization (shares closure caches).
        n_states: number of live states after trimming.
        initial_id: dense id of the initial state (always 0).
        opsets: interned operation sets; index = opset id.
        letter_table: ``letter_table[letter][state_id]`` is a tuple of
            ``(opset_id, target_bitmask)`` macro transitions, canonically
            ordered.
        accept: ``accept[state_id]`` is the tuple of accepting opset ids,
            canonically ordered.
    """

    def __init__(self, va: VA, factorized: FactorizedVA | None = None):
        if factorized is None:
            factorized = FactorizedVA(va)
        self.factorized = factorized
        tva = factorized.va  # trimmed
        order: dict[State, int] = {tva.initial: 0}
        queue = deque((tva.initial,))
        while queue:
            state = queue.popleft()
            for _, target in tva.transitions_from(state):
                if target not in order:
                    order[target] = len(order)
                    queue.append(target)
        # Trimming keeps only reachable states, so `order` covers them all.
        self.n_states = len(order)
        self.initial_id = 0
        self.opsets: list[OpSet] = []
        opset_ids: dict[OpSet, int] = {}

        def intern(ops: OpSet) -> int:
            found = opset_ids.get(ops)
            if found is None:
                found = opset_ids[ops] = len(self.opsets)
                self.opsets.append(ops)
            return found

        states_by_id = sorted(order, key=order.__getitem__)
        letter_rows: dict[str, list[tuple[tuple[int, int], ...]]] = {
            letter: [()] * self.n_states for letter in tva.letters()
        }
        accept: list[tuple[int, ...]] = [()] * self.n_states
        for state, sid in order.items():
            grouped: dict[str, dict[int, int]] = {}
            for ops, mid in factorized.closure(state):
                for label, target in tva.transitions_from(mid):
                    if isinstance(label, str):
                        per_ops = grouped.setdefault(label, {})
                        oid = intern(ops)
                        per_ops[oid] = per_ops.get(oid, 0) | (1 << order[target])
            for letter, per_ops in grouped.items():
                letter_rows[letter][sid] = tuple(
                    sorted(per_ops.items(), key=lambda kv: opset_sort_key(self.opsets[kv[0]]))
                )
            accept[sid] = tuple(
                sorted(
                    (intern(ops) for ops in factorized.accepting_opsets(state)),
                    key=lambda oid: opset_sort_key(self.opsets[oid]),
                )
            )
        self.letter_table = letter_rows
        self.accept = accept
        self.states_by_id = tuple(states_by_id)
        # Canonical enumeration rank per opset id (ids are interned in
        # discovery order, which is not the canonical order).
        ranked = sorted(range(len(self.opsets)), key=lambda oid: opset_sort_key(self.opsets[oid]))
        self.opset_rank = [0] * len(self.opsets)
        for rank, oid in enumerate(ranked):
            self.opset_rank[oid] = rank

    @property
    def va(self) -> VA:
        """The trimmed automaton this form indexes."""
        return self.factorized.va

    def __repr__(self) -> str:
        return (
            f"IndexedVA(states={self.n_states}, opsets={len(self.opsets)}, "
            f"letters={len(self.letter_table)})"
        )


def _iter_bits(mask: int) -> Iterator[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class IndexedMatchGraph:
    """The layered match graph of an :class:`IndexedVA` on one document,
    with layers as state bitmasks.

    Mirrors :class:`~repro.va.matchgraph.MatchGraph` (forward pass,
    acceptance, backward pruning) but on dense integer states.
    """

    __slots__ = ("indexed", "document", "alive", "edges", "final")

    def __init__(self, indexed: IndexedVA, document: Document | str):
        self.indexed = indexed
        self.document = as_document(document)
        doc = self.document
        n = len(doc)
        table = indexed.letter_table
        # Forward pass: reachable state masks per layer.
        forward = [0] * (n + 1)
        forward[0] = 1 << indexed.initial_id
        edges: list[dict[int, tuple[tuple[int, int], ...]]] = [{} for _ in range(n)]
        for i in range(n):
            rows = table.get(doc.letter(i + 1))
            if rows is None:
                break  # letter unknown to the VA: nothing lives past here
            layer_edges = edges[i]
            next_mask = 0
            for sid in _iter_bits(forward[i]):
                entries = rows[sid]
                if entries:
                    layer_edges[sid] = entries
                    for _, target_mask in entries:
                        next_mask |= target_mask
            forward[i + 1] = next_mask
        # Acceptance at the last layer.
        final: dict[int, tuple[int, ...]] = {}
        for sid in _iter_bits(forward[n]):
            if indexed.accept[sid]:
                final[sid] = indexed.accept[sid]
        # Backward pruning to co-reachable states; edges keep live targets.
        alive = [0] * (n + 1)
        for sid in final:
            alive[n] |= 1 << sid
        for i in range(n - 1, -1, -1):
            live_targets = alive[i + 1]
            layer_alive = 0
            pruned: dict[int, tuple[tuple[int, int], ...]] = {}
            for sid, entries in edges[i].items():
                kept = tuple(
                    (oid, masked)
                    for oid, target_mask in entries
                    if (masked := target_mask & live_targets)
                )
                if kept:
                    pruned[sid] = kept
                    layer_alive |= 1 << sid
            edges[i] = pruned
            alive[i] = layer_alive
        self.alive = alive
        self.edges = edges
        self.final = final

    @property
    def is_empty(self) -> bool:
        """Whether ``⟦A⟧(d) = ∅`` — the source state is dead."""
        return not (self.alive[0] >> self.indexed.initial_id) & 1

    def states_alive(self) -> int:
        """Total live states across all layers (graph-size gauge)."""
        return sum(mask.bit_count() for mask in self.alive)

    def width(self) -> int:
        """Maximum number of live states in any layer."""
        return max((mask.bit_count() for mask in self.alive), default=0)

    def enumerate(self) -> Iterator[Mapping]:
        """DFS enumeration with polynomial delay (Theorem 2.5), bitmask
        profiles."""
        if self.is_empty:
            return
        indexed = self.indexed
        opsets, rank = indexed.opsets, indexed.opset_rank
        n = len(self.document)
        edges, final = self.edges, self.final
        stack: list[tuple[int, int, tuple[int, ...]]] = [
            (0, 1 << indexed.initial_id, ())
        ]
        while stack:
            layer, profile, chosen = stack.pop()
            if layer == n:
                options_set: set[int] = set()
                for sid in _iter_bits(profile):
                    options_set.update(final.get(sid, ()))
                for oid in sorted(options_set, key=rank.__getitem__):
                    yield mapping_from_opsets(
                        [opsets[o] for o in chosen] + [opsets[oid]]
                    )
                continue
            level = edges[layer]
            options: dict[int, int] = {}
            for sid in _iter_bits(profile):
                for oid, target_mask in level.get(sid, ()):
                    options[oid] = options.get(oid, 0) | target_mask
            # Reverse rank order so the DFS pops options canonically.
            for oid in sorted(options, key=rank.__getitem__, reverse=True):
                stack.append((layer + 1, options[oid], chosen + (oid,)))


def enumerate_indexed(
    indexed: IndexedVA | VA, document: Document | str
) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧(d)`` via the indexed substrate.

    Accepts a prebuilt :class:`IndexedVA` (shared across documents) or a
    raw sequential :class:`VA`.  The match graph is built lazily on the
    first ``next()``, so the first delay carries the preprocessing.
    """
    if isinstance(indexed, VA):
        if not is_sequential(indexed):
            raise NotSequentialError(
                "indexed enumeration requires a sequential VA"
            )
        indexed = IndexedVA(indexed)
    yield from IndexedMatchGraph(indexed, document).enumerate()
