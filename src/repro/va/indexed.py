"""Dense-indexed evaluation substrate (the engine's ``indexed`` backend).

:class:`~repro.va.matchgraph.FactorizedVA` keeps states as arbitrary
hashable objects and macro transitions as per-state dictionaries — flexible,
but the match-graph hot loop then spends its time hashing tuples and
chasing dictionaries.  :class:`IndexedVA` relabels the states of a trimmed
sequential VA to dense integers ``0..n-1`` (BFS order from the initial
state), interns its letters into a dense :class:`~repro.core.document.Alphabet`,
interns every operation set to a small integer, and precomputes, for every
(letter id, state) pair, the grouped macro transitions as tuples of
``(opset_id, target_bitmask)`` plus an *aggregate successor mask* (the union
of all targets, ignoring operation sets).

State *sets* are then Python integers used as bitsets, and documents are
arrays of letter ids (cached on the :class:`~repro.core.document.Document`
per alphabet), so the forward pass is array indexing and ``|``/``&`` on
machine words instead of string hashing and frozenset algebra.

:class:`IndexedMatchGraph` is *lazy* (streaming): construction runs only a
cheap Boolean forward pass — enough to decide emptiness (Theorem 2.5's
linear preprocessing).  By default that pass is **run-compressed**: it
walks the document's cached run-length encoding
(:meth:`~repro.core.document.Document.runs`) and advances each maximal
single-letter run through the :class:`~repro.va.kernel.TransitionKernel`
in O(log run) memoized mask applications instead of O(run) per-letter
steps, so construction cost scales with the number of *runs*, not letters.
The per-layer forward masks, the backward co-reachability pruning, and the
per-(layer, state) enumeration edge rows all materialise on demand — and
the backward pass reuses the kernel's predecessor transformers with
fixpoint fill inside runs.  The enumeration DFS and the dedicated
:meth:`IndexedMatchGraph.first` walk additionally *skip* through stretches
of a run where the profile is a fixpoint with only the empty operation set
available, compressing long no-capture stretches to O(1) stack frames.
``compressed=False`` is the plain-kernel escape hatch (the pre-kernel
per-letter behaviour, also exposed as the engine's ``indexed-plain``
backend); ``eager=True`` additionally prebuilds every edge row up front.
Semantics are identical on every path — the equivalence tests in
``tests/engine`` check compressed against plain against eager against the
naive enumerator.

Both indexed forms are document independent and safe to share across
documents; :meth:`VA.indexed` caches one per automaton.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator

from ..core.document import Alphabet, Document, as_document
from ..core.errors import NotSequentialError, SpannerError
from ..core.mapping import Mapping
from ..core.spans import Span
from ..utils.bits import apply_masks, iter_bits
from .automaton import VA, State
from .matchgraph import (
    EMPTY_OPSET,
    FactorizedVA,
    OpSet,
    opset_sort_key,
)
from .properties import is_sequential

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import TransitionKernel


class IndexedVA:
    """Document-independent indexed form of a (sequential) VA.

    Attributes:
        factorized: the underlying factorization (shares closure caches).
        n_states: number of live states after trimming.
        initial_id: dense id of the initial state (always 0).
        alphabet: the interned :class:`Alphabet` of the automaton's letters.
        opsets: interned operation sets; index = opset id.
        empty_opset_id: the id of the empty operation set, or ``-1`` when
            every macro transition performs at least one operation — the
            run-skip fast paths key on it.
        tables: ``tables[letter_id][state_id]`` is a tuple of
            ``(opset_id, target_bitmask)`` macro transitions, canonically
            ordered.
        successor_masks: ``successor_masks[letter_id][state_id]`` is the
            union of the target bitmasks of ``tables[letter_id][state_id]``
            — the Boolean (operation-blind) transition relation the lazy
            match graph's forward/backward passes run on.
        accept: ``accept[state_id]`` is the tuple of accepting opset ids,
            canonically ordered.
        accept_mask: bitmask of states with at least one accepting opset.
    """

    def __init__(self, va: VA, factorized: FactorizedVA | None = None):
        if factorized is None:
            factorized = FactorizedVA(va)
        self.factorized = factorized
        tva = factorized.va  # trimmed
        order: dict[State, int] = {tva.initial: 0}
        queue = deque((tva.initial,))
        while queue:
            state = queue.popleft()
            for _, target in tva.transitions_from(state):
                if target not in order:
                    order[target] = len(order)
                    queue.append(target)
        # Trimming keeps only reachable states, so `order` covers them all.
        self.n_states = len(order)
        self.initial_id = 0
        self.alphabet = Alphabet.of(tva.letters())
        self.opsets: list[OpSet] = []
        opset_ids: dict[OpSet, int] = {}

        def intern(ops: OpSet) -> int:
            found = opset_ids.get(ops)
            if found is None:
                found = opset_ids[ops] = len(self.opsets)
                self.opsets.append(ops)
            return found

        states_by_id = sorted(order, key=order.__getitem__)
        n_letters = len(self.alphabet)
        tables: list[list[tuple[tuple[int, int], ...]]] = [
            [()] * self.n_states for _ in range(n_letters)
        ]
        successor_masks: list[list[int]] = [
            [0] * self.n_states for _ in range(n_letters)
        ]
        accept: list[tuple[int, ...]] = [()] * self.n_states
        accept_mask = 0
        letter_id = self.alphabet.ids.__getitem__
        for state, sid in order.items():
            grouped: dict[int, dict[int, int]] = {}
            for ops, mid in factorized.closure(state):
                for label, target in tva.transitions_from(mid):
                    if isinstance(label, str):
                        per_ops = grouped.setdefault(letter_id(label), {})
                        oid = intern(ops)
                        per_ops[oid] = per_ops.get(oid, 0) | (1 << order[target])
            for lid, per_ops in grouped.items():
                entries = tuple(
                    sorted(per_ops.items(), key=lambda kv: opset_sort_key(self.opsets[kv[0]]))
                )
                tables[lid][sid] = entries
                mask = 0
                for _, target_mask in entries:
                    mask |= target_mask
                successor_masks[lid][sid] = mask
            accept[sid] = tuple(
                sorted(
                    (intern(ops) for ops in factorized.accepting_opsets(state)),
                    key=lambda oid: opset_sort_key(self.opsets[oid]),
                )
            )
            if accept[sid]:
                accept_mask |= 1 << sid
        self.tables = tables
        self.successor_masks = successor_masks
        self.accept = accept
        self.accept_mask = accept_mask
        self.states_by_id = tuple(states_by_id)
        self.empty_opset_id = opset_ids.get(EMPTY_OPSET, -1)
        # Canonical enumeration rank per opset id (ids are interned in
        # discovery order, which is not the canonical order).
        ranked = sorted(range(len(self.opsets)), key=lambda oid: opset_sort_key(self.opsets[oid]))
        self.opset_rank = [0] * len(self.opsets)
        for rank, oid in enumerate(ranked):
            self.opset_rank[oid] = rank
        self._kernel: "TransitionKernel | None" = None

    @property
    def va(self) -> VA:
        """The trimmed automaton this form indexes."""
        return self.factorized.va

    def kernel(self) -> "TransitionKernel":
        """The run-compressed transition kernel over this automaton
        (:mod:`repro.va.kernel`), built once and cached.  Its memoized
        ``(letter, 2^k)`` power transformers are shared by every document
        evaluated through this indexed form."""
        if self._kernel is None:
            from .kernel import TransitionKernel

            self._kernel = TransitionKernel(self)
        return self._kernel

    def letter_edge_arrays(
        self, letter_id: int
    ) -> "tuple[list[int], list[int], list[int]]":
        """The macro transitions of one letter, flattened to parallel
        arrays ``(source_sids, opset_ids, target_masks)`` over every
        ``(state, opset)`` edge of ``tables[letter_id]``.

        This is the columnar view the vectorized batch edge-row builder
        gathers from: one plane AND over the whole target column prunes
        every edge of a layer context at once, instead of walking
        ``tables[letter_id][sid]`` per (layer, state) pair.  Built once
        per letter and cached (document independent)."""
        cache = getattr(self, "_letter_edge_arrays", None)
        if cache is None:
            cache = self._letter_edge_arrays = {}
        arrays = cache.get(letter_id)
        if arrays is None:
            sids: list[int] = []
            oids: list[int] = []
            targets: list[int] = []
            for sid, entries in enumerate(self.tables[letter_id]):
                for oid, target_mask in entries:
                    sids.append(sid)
                    oids.append(oid)
                    targets.append(target_mask)
            arrays = cache[letter_id] = (sids, oids, targets)
        return arrays

    def op_programs(self) -> "list[tuple[tuple[str, ...], tuple[str, ...]]]":
        """Per-opset ``(open_vars, close_vars)`` programs, indexed by
        opset id — the unpacked form of :attr:`opsets` the bulk mapping
        emitter replays without iterating frozensets per accepting path.
        Built once and cached (document independent)."""
        programs = getattr(self, "_op_programs", None)
        if programs is None:
            programs = self._op_programs = [
                (
                    tuple(op.var for op in ops if op.is_open),
                    tuple(op.var for op in ops if not op.is_open),
                )
                for ops in self.opsets
            ]
        return programs

    def __repr__(self) -> str:
        return (
            f"IndexedVA(states={self.n_states}, opsets={len(self.opsets)}, "
            f"letters={len(self.alphabet)})"
        )


def indexed_nonempty(
    indexed: IndexedVA,
    document: Document | str,
    compressed: bool = True,
    guard=None,
) -> bool:
    """Decide ``⟦A⟧(d) ≠ ∅`` with the Boolean bitmask pass alone.

    One forward sweep — no edge rows, no backward pruning, early exit as
    soon as the frontier dies.  By default the sweep is run-compressed: it
    advances over the document's run-length encoding through the
    :class:`~repro.va.kernel.TransitionKernel`, costing O(runs · log run)
    instead of O(letters).  ``compressed=False`` keeps the plain per-letter
    walk (the ``indexed-plain`` escape hatch).  An
    :class:`~repro.engine.guards.ExecutionGuard` is checked once per run
    (compressed) or ticked per letter (plain).
    """
    doc = as_document(document)
    if compressed:
        kernel = indexed.kernel()
        letter_id = indexed.alphabet.ids.get
        mask = 1 << indexed.initial_id
        for letter, _start, length in doc.runs():
            if guard is not None:
                guard.check()
            lid = letter_id(letter, -1)
            if lid < 0:
                return False  # letter unknown to the VA: no run survives
            mask = kernel.advance(lid, mask, length)
            if not mask:
                return False
        return bool(mask & indexed.accept_mask)
    ids = doc.encoded(indexed.alphabet)
    succ = indexed.successor_masks
    mask = 1 << indexed.initial_id
    for lid in ids:
        if guard is not None:
            guard.tick()
        if lid < 0:
            return False  # letter unknown to the VA: no run survives
        nxt = apply_masks(succ[lid], mask)
        if not nxt:
            return False
        mask = nxt
    return bool(mask & indexed.accept_mask)


def _mapping_from_entries(entries: "list[tuple[int, OpSet]]") -> Mapping:
    """Assemble a mapping from sparse ``(position, operation set)`` pairs
    in ascending position order — the run-skipping walks only record the
    positions that actually perform operations, so reconstruction costs
    O(operations) instead of O(document).  Equivalent to
    :func:`~repro.va.matchgraph.mapping_from_opsets` on the padded list
    (the input comes from valid runs of a sequential VA, so the
    caller-error checks there cannot fire here)."""
    opened: dict = {}
    spans: dict = {}
    for position, ops in entries:
        for op in ops:
            if op.is_open:
                opened[op.var] = position
        for op in ops:
            if not op.is_open:
                spans[op.var] = Span(opened.pop(op.var), position)
    return Mapping(spans)


class IndexedMatchGraph:
    """The layered match graph of an :class:`IndexedVA` on one document,
    with layers as state bitmasks — built *lazily*.

    Construction runs only the Boolean forward pass (run-compressed by
    default, through the shared :class:`~repro.va.kernel.TransitionKernel`),
    which already decides :attr:`is_empty`.  The per-layer forward masks
    and the backward pruning pass materialise on first access to
    :attr:`forward` / :attr:`alive` (with fixpoint fill inside letter
    runs); enumeration edge rows are materialised per (layer, state) as
    the DFS reaches them.  Pass ``compressed=False`` for the plain
    per-letter kernel (the pre-kernel behaviour), ``eager=True`` to
    prebuild everything up front (kept for the comparison benches and
    equivalence tests).

    ``guard`` attaches an :class:`~repro.engine.guards.ExecutionGuard`:
    the forward/backward passes check it once per letter run (O(runs)
    overhead, not O(positions)), the enumeration DFS ticks it per stack
    frame, and every materialised edge row is charged against the
    ``edge_rows`` budget.  With no guard every checkpoint is a single
    ``is not None`` test.
    """

    __slots__ = (
        "indexed",
        "document",
        "final",
        "final_mask",
        "_n",
        "_runs",
        "_kernel",
        "_letter_ids",
        "_forward",
        "_frontier",
        "_alive",
        "_jump",
        "_edges",
        "_guard",
    )

    def __init__(
        self,
        indexed: IndexedVA,
        document: Document | str,
        eager: bool = False,
        compressed: bool = True,
        guard=None,
    ):
        self.indexed = indexed
        self.document = as_document(document)
        self._guard = guard
        n = self._n = len(self.document)
        self._letter_ids: tuple[int, ...] | None = None
        self._forward: list[int] | None = None
        self._alive: list[int] | None = None
        self._jump: list[int] | None = None
        if compressed:
            # Boolean forward pass over the run-length encoding: each
            # maximal letter run advances through the kernel in O(log run).
            kernel = self._kernel = indexed.kernel()
            letter_id = indexed.alphabet.ids.get
            self._runs: tuple[tuple[int, int, int], ...] | None = tuple(
                (letter_id(letter, -1), start, length)
                for letter, start, length in self.document.runs()
            )
            mask = 1 << indexed.initial_id
            for lid, _start, length in self._runs:
                if guard is not None:
                    guard.check()
                if lid < 0:
                    mask = 0  # letter unknown to the VA: nothing survives
                    break
                mask = kernel.advance(lid, mask, length)
                if not mask:
                    break
        else:
            # Plain per-letter pass (the escape hatch): fills every
            # forward layer eagerly, the pre-kernel behaviour.
            self._runs = None
            self._kernel = None
            succ = indexed.successor_masks
            forward = [0] * (n + 1)
            mask = forward[0] = 1 << indexed.initial_id
            for i, lid in enumerate(self.letter_ids):
                if guard is not None:
                    guard.tick()
                if lid < 0:
                    mask = 0  # letter unknown to the VA: nothing lives past
                    break
                nxt = apply_masks(succ[lid], mask)
                if not nxt:
                    mask = 0
                    break
                forward[i + 1] = mask = nxt
            self._forward = forward
        # Checkpoint the raw pre-acceptance frontier: an append-extension
        # resumes the forward pass from here instead of position 0.
        self._frontier = mask
        # Acceptance at the last layer.
        final_mask = mask & indexed.accept_mask
        self.final_mask = final_mask
        accept = indexed.accept
        self.final: dict[int, tuple[int, ...]] = {
            sid: accept[sid] for sid in iter_bits(final_mask)
        }
        self._edges: list[dict[int, tuple[tuple[int, int], ...]] | None] = [
            None
        ] * n
        if eager:
            self.materialise()

    @property
    def is_empty(self) -> bool:
        """Whether ``⟦A⟧(d) = ∅`` — no accepting state is forward-reachable
        at the last layer (decided by the Boolean pass alone)."""
        return not self.final_mask

    @property
    def letter_ids(self) -> tuple[int, ...]:
        """The document as dense letter ids (cached on the document; built
        on demand — the run-compressed Boolean pass never needs it)."""
        ids = self._letter_ids
        if ids is None:
            ids = self._letter_ids = self.document.encoded(self.indexed.alphabet)
        return ids

    def checkpoint(self) -> int:
        """The raw forward frontier at the last layer, *before* the
        acceptance intersection — the state :meth:`extended` resumes from.
        Distinct from :attr:`final_mask`: a frontier with no accepting
        state today may reach one after the next append."""
        return self._frontier

    def extended(self, document: Document | str, guard=None) -> "IndexedMatchGraph":
        """The match graph of ``document`` — an append-extension of this
        graph's document — built by resuming the Boolean forward pass from
        the checkpointed frontier instead of position 0.

        The graph is layered by position, so the appended letters only
        extend the frontier: the prefix contributes nothing but its
        checkpoint, already-materialised prefix forward layers are carried
        over, and an appended run that merges with the tail run advances
        through the kernel's memoized transformer powers in O(log extra).
        The backward pruning, jump table, and enumeration edge rows are
        *not* carried over — they are pruned against the final layer's
        acceptance, which every append changes — and rebuild lazily over
        the new document on demand.

        ``document`` must extend ``self.document`` letter for letter;
        callers (normally a tail session, via
        :meth:`~repro.core.document.Document.append`) guarantee it, and
        only the lengths are checked — a full prefix comparison would cost
        the O(document) this path exists to avoid.
        """
        doc = as_document(document)
        old_n = self._n
        n = len(doc)
        if n < old_n:
            raise SpannerError(
                f"extended() needs an append-extension of the graph's "
                f"document ({n} letters < {old_n})"
            )
        indexed = self.indexed
        graph = IndexedMatchGraph.__new__(IndexedMatchGraph)
        graph.indexed = indexed
        graph.document = doc
        graph._guard = guard
        graph._n = n
        graph._letter_ids = None
        graph._forward = None
        graph._alive = None
        graph._jump = None
        mask = self._frontier
        if self._runs is not None:
            # Run-compressed: splice the encoded runs (only the possibly
            # merged tail run and the new suffix runs are re-encoded) and
            # advance the checkpoint over the overhang.
            kernel = graph._kernel = self._kernel
            letter_id = indexed.alphabet.ids.get
            old_runs = self._runs
            keep = max(len(old_runs) - 1, 0)
            graph._runs = old_runs[:keep] + tuple(
                (letter_id(letter, -1), start, length)
                for letter, start, length in doc.runs()[keep:]
            )
            for lid, start, length in graph._runs[keep:]:
                if guard is not None:
                    guard.check()
                end = start + length
                if end <= old_n or not mask:
                    continue
                if lid < 0:
                    mask = 0
                    break
                mask = kernel.advance(lid, mask, end - max(start, old_n))
                if not mask:
                    break
            reuse_forward = self._forward is not None
        else:
            # Plain per-letter substrate: its forward layers are always
            # eager, so the extension fills the suffix layers eagerly too.
            graph._runs = None
            graph._kernel = None
            reuse_forward = True
        if reuse_forward:
            succ = indexed.successor_masks
            ids_get = indexed.alphabet.ids.get
            forward = list(self._forward)
            forward.extend([0] * (n - old_n))
            m = self._frontier
            i = old_n
            for ch in doc.text[old_n:]:
                if guard is not None:
                    guard.tick()
                if not m:
                    break
                lid = ids_get(ch, -1)
                if lid < 0:
                    m = 0
                    break
                m = apply_masks(succ[lid], m)
                if not m:
                    break
                i += 1
                forward[i] = m
            graph._forward = forward
            if graph._runs is None:
                mask = m
        graph._frontier = mask
        final_mask = mask & indexed.accept_mask
        graph.final_mask = final_mask
        accept = indexed.accept
        graph.final = {sid: accept[sid] for sid in iter_bits(final_mask)}
        graph._edges = [None] * n
        return graph

    @property
    def forward(self) -> list[int]:
        """Forward-reachable state masks per layer, expanded on demand.

        The run-compressed construction keeps only the run-boundary
        frontier; this expands run interiors layer by layer, short-cutting
        to a slice fill once a run's frontier hits a fixpoint."""
        forward = self._forward
        if forward is None:
            n = self._n
            indexed = self.indexed
            guard = self._guard
            forward = [0] * (n + 1)
            mask = forward[0] = 1 << indexed.initial_id
            succ = indexed.successor_masks
            for lid, start, length in self._runs:
                if guard is not None:
                    guard.check()
                if lid < 0 or not mask:
                    mask = 0
                    break
                row = succ[lid]
                end = start + length
                i = start
                while i < end:
                    nxt = apply_masks(row, mask)
                    if not nxt:
                        mask = 0
                        break
                    i += 1
                    forward[i] = nxt
                    if nxt == mask:
                        # Fixpoint: the rest of the run repeats this mask.
                        forward[i + 1 : end + 1] = [nxt] * (end - i)
                        i = end
                    mask = nxt
                if not mask:
                    break
            self._forward = forward
        return forward

    @property
    def alive(self) -> list[int]:
        """Live (co-reachable ∩ reachable) state masks per layer, from the
        Boolean backward pass (run once, on demand).

        On the run-compressed path the pass walks the run-length encoding
        with the kernel's predecessor transformers, filling whole run
        interiors once the co-reachability chain hits a fixpoint.  An empty
        graph never runs the pass at all: a full accepting path crosses
        every layer, so one empty layer means all layers are empty."""
        alive = self._alive
        if alive is None:
            n = self._n
            if not self.final_mask:
                alive = [0] * (n + 1)
            elif self._runs is not None:
                alive = self._alive_compressed()
            else:
                alive = self._alive_plain()
            self._alive = alive
            guard = self._guard
            if (
                guard is not None
                and guard.budget is not None
                and guard.budget.states is not None
            ):
                guard.charge_states(sum(mask.bit_count() for mask in alive))
        return alive

    def _alive_compressed(self) -> list[int]:
        n = self._n
        forward = self.forward
        kernel = self._kernel
        alive = [0] * (n + 1)
        # `live` chains M[i] = pred(M[i+1]) ∩ forward[i], which equals the
        # reachable ∩ co-reachable pruning exactly (a live state's path
        # successor is itself live); intersecting every layer keeps the
        # masks small.  Inside a run, once both M and the forward mask are
        # stable the recurrence reproduces itself, so the rest of the
        # stable stretch fills without further mask applications.
        guard = self._guard
        live = alive[n] = self.final_mask
        for lid, start, length in reversed(self._runs):
            if guard is not None:
                guard.check()
            if not live:
                break  # nothing co-reachable earlier either
            pred = kernel.pred_row(lid)
            end = start + length
            i = end - 1
            while i >= start:
                nxt = apply_masks(pred, live) & forward[i]
                alive[i] = nxt
                if nxt == live and forward[i] == forward[i + 1]:
                    # Stable: M[j] = pred(M[j+1]) ∩ forward[j] keeps
                    # producing the same mask while the forward chain
                    # stays equal — fill the stretch.
                    j = i - 1
                    fwd_i = forward[i]
                    while j >= start and forward[j] == fwd_i:
                        alive[j] = nxt
                        j -= 1
                    i = j
                else:
                    i -= 1
                live = nxt
        return alive

    def _alive_plain(self) -> list[int]:
        ids = self.letter_ids
        forward = self.forward
        succ = self.indexed.successor_masks
        n = self._n
        guard = self._guard
        alive = [0] * (n + 1)
        live = alive[n] = self.final_mask
        for i in range(n - 1, -1, -1):
            if guard is not None:
                guard.tick()
            if not live:
                break  # nothing co-reachable earlier either
            row = succ[ids[i]]
            layer_alive = 0
            mask = forward[i]
            while mask:
                low = mask & -mask
                if row[low.bit_length() - 1] & live:
                    layer_alive |= low
                mask ^= low
            alive[i] = live = layer_alive
        return alive

    @property
    def jump(self) -> list[int]:
        """Run-skip destinations per layer, built once on demand.

        ``jump[i]`` is the last layer ``j ≥ i+1`` such that every layer in
        ``i..j-1`` reads the same letter and sees the same live mask at its
        successor layer — exactly the stretch whose per-position choices
        repeat layer ``i``'s.  The walks consult it in O(1) per skip, so
        skipping costs one backward sweep total instead of a rescan per
        DFS descent."""
        jump = self._jump
        if jump is None:
            n = self._n
            jump = list(range(1, n + 1))
            if n > 1:
                ids = self.letter_ids
                alive = self.alive
                for i in range(n - 2, -1, -1):
                    if ids[i + 1] == ids[i] and alive[i + 2] == alive[i + 1]:
                        jump[i] = jump[i + 1]
            self._jump = jump
        return jump

    def states_alive(self) -> int:
        """Total live states across all layers (graph-size gauge)."""
        return sum(mask.bit_count() for mask in self.alive)

    def width(self) -> int:
        """Maximum number of live states in any layer."""
        return max((mask.bit_count() for mask in self.alive), default=0)

    def edge_row(self, layer: int, sid: int) -> list[tuple[int, int]]:
        """The pruned macro transitions of live state ``sid`` at ``layer``
        (``(opset_id, live_target_mask)`` pairs), built on first demand.
        The returned list is the cache entry: treat it as immutable."""
        cache = self._edges[layer]
        if cache is None:
            cache = self._edges[layer] = {}
        row = cache.get(sid)
        if row is None:
            if self._guard is not None:
                self._guard.charge_edge_rows(1)
            live = self.alive[layer + 1]
            row = cache[sid] = [
                (oid, target_mask & live)
                for oid, target_mask in self.indexed.tables[self.letter_ids[layer]][sid]
                if target_mask & live
            ]
        return row

    def edge_layer(self, layer: int) -> dict[int, list[tuple[int, int]]]:
        """All edge rows of one layer (every live state), materialised."""
        for sid in iter_bits(self.alive[layer]):
            self.edge_row(layer, sid)
        return self._edges[layer]  # type: ignore[return-value]

    def materialise(self) -> None:
        """Prebuild the backward pass and every edge row (eager mode)."""
        for layer in range(self._n):
            self.edge_layer(layer)

    def enumerate(self, limit: int | None = None) -> Iterator[Mapping]:
        """DFS enumeration with polynomial delay (Theorem 2.5), bitmask
        profiles and parent-pointer path reconstruction.

        ``limit`` stops after that many mappings; the lazy edge rows mean a
        small limit touches only the layers along the walked paths.  Inside
        a letter run, a stretch where the only option is the empty
        operation set on a fixpoint profile is *skipped* in one stack
        frame — the per-position choices there are forced, so the DFS
        records the repeat count instead of walking every layer.
        """
        if self.is_empty or (limit is not None and limit <= 0):
            return
        indexed = self.indexed
        opsets, rank = indexed.opsets, indexed.opset_rank
        empty_oid = indexed.empty_opset_id
        n = self._n
        final = self.final
        alive = self.alive
        jump = self.jump
        tables = indexed.tables
        letter_ids = self.letter_ids
        edges = self._edges
        guard = self._guard
        emitted = 0
        # Stack frames: (layer, profile mask, path node); a path node is
        # (opset_id, repeat count, parent node) — reconstruction replaces
        # per-push tuple copies of the whole prefix, and the repeat count
        # encodes skipped run stretches.
        stack: list[tuple[int, int, tuple | None]] = [
            (0, 1 << indexed.initial_id, None)
        ]
        while stack:
            if guard is not None:
                guard.tick()
            layer, profile, node = stack.pop()
            if layer == n:
                options_set: set[int] = set()
                mask = profile
                while mask:
                    low = mask & -mask
                    options_set.update(final.get(low.bit_length() - 1, ()))
                    mask ^= low
                # Sparse reconstruction: only skipped (empty) opsets carry
                # a repeat count, so operating positions are exact.
                entries: list[tuple[int, OpSet]] = []
                position = n
                while node is not None:
                    oid, count, node = node
                    ops = opsets[oid]
                    if ops:
                        entries.append((position, ops))
                    position -= count
                entries.reverse()
                for oid in sorted(options_set, key=rank.__getitem__):
                    final_ops = opsets[oid]
                    yield _mapping_from_entries(
                        entries + [(n + 1, final_ops)] if final_ops else entries
                    )
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
                continue
            # Inlined edge_row: the per-layer row build is the hot loop.
            cache = edges[layer]
            if cache is None:
                cache = edges[layer] = {}
            row_table = tables[letter_ids[layer]]
            live = alive[layer + 1]
            options: dict[int, int] = {}
            mask = profile
            while mask:
                low = mask & -mask
                mask ^= low
                sid = low.bit_length() - 1
                row = cache.get(sid)
                if row is None:
                    if guard is not None:
                        guard.charge_edge_rows(1)
                    row = cache[sid] = [
                        (oid, target_mask & live)
                        for oid, target_mask in row_table[sid]
                        if target_mask & live
                    ]
                for oid, target_mask in row:
                    prev = options.get(oid)
                    options[oid] = target_mask if prev is None else prev | target_mask
            if len(options) == 1:
                # Single choice (the common layer in sparse documents):
                # skip the canonical sort.
                oid, target_mask = options.popitem()
                if oid == empty_oid and target_mask == profile:
                    # Run-skip: the profile is a fixpoint and the only
                    # choice performs no operations, so every layer of the
                    # precomputed stretch repeats this exact (forced) step
                    # — jump past it in one frame.
                    j = jump[layer]
                    stack.append((j, profile, (oid, j - layer, node)))
                else:
                    stack.append((layer + 1, target_mask, (oid, 1, node)))
            else:
                # Reverse rank order so the DFS pops options canonically.
                for oid in sorted(options, key=rank.__getitem__, reverse=True):
                    stack.append((layer + 1, options[oid], (oid, 1, node)))

    def first(self) -> Mapping | None:
        """The first mapping in canonical order, or ``None`` if empty —
        one Boolean pass plus the edges along a single root-to-sink path.

        A dedicated greedy walk: the DFS's first leaf is reached by taking
        the canonically-minimal operation set at every layer, so no stack,
        no generator frames, and no alternatives are ever pushed.  The
        same run-skip as :meth:`enumerate` fast-forwards through forced
        empty-opset stretches inside letter runs.
        """
        if self.is_empty:
            return None
        indexed = self.indexed
        opsets, rank = indexed.opsets, indexed.opset_rank
        empty_oid = indexed.empty_opset_id
        edge_row = self.edge_row
        jump = self.jump
        n = self._n
        guard = self._guard
        entries: list[tuple[int, OpSet]] = []
        profile = 1 << indexed.initial_id
        layer = 0
        while layer < n:
            if guard is not None:
                guard.tick()
            best_oid = -1
            best_rank = -1
            best_mask = 0
            mask = profile
            while mask:
                low = mask & -mask
                mask ^= low
                sid = low.bit_length() - 1
                for oid, target_mask in edge_row(layer, sid):
                    if best_rank < 0 or rank[oid] < best_rank:
                        best_rank, best_oid, best_mask = rank[oid], oid, target_mask
                    elif oid == best_oid:
                        best_mask |= target_mask
            if best_oid == empty_oid and best_mask == profile:
                # Run-skip: forced-equivalent empty steps on a fixpoint
                # profile — the greedy choice repeats through the stretch.
                layer = jump[layer]
            else:
                ops = opsets[best_oid]
                if ops:
                    entries.append((layer + 1, ops))
                profile = best_mask
                layer += 1
        final = self.final
        best_final = -1
        mask = profile
        while mask:
            low = mask & -mask
            mask ^= low
            for oid in final.get(low.bit_length() - 1, ()):
                if best_final < 0 or rank[oid] < rank[best_final]:
                    best_final = oid
        final_ops = opsets[best_final]
        if final_ops:
            entries.append((n + 1, final_ops))
        return _mapping_from_entries(entries)


def enumerate_indexed(
    indexed: IndexedVA | VA, document: Document | str, limit: int | None = None
) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧(d)`` via the indexed substrate.

    Accepts a prebuilt :class:`IndexedVA` (shared across documents) or a
    raw sequential :class:`VA`.  The match graph is built lazily on the
    first ``next()``, so the first delay carries the preprocessing.
    """
    if isinstance(indexed, VA):
        if not is_sequential(indexed):
            raise NotSequentialError(
                "indexed enumeration requires a sequential VA"
            )
        indexed = IndexedVA(indexed)
    yield from IndexedMatchGraph(indexed, document).enumerate(limit=limit)
