"""Run semantics and the naive baseline evaluator (paper §2.3).

A *run* of a VA over a document ``d = σ1…σn`` is a path from the initial
state that consumes exactly the letters of the document; variable
operations do not advance the position.  A run is *valid* when every
variable is opened at most once, closed at most once, and closed only after
being opened; it is *accepting* when it ends in an accepting state at
position ``n+1``.  ``⟦A⟧(d)`` collects the mapping ``µ_ρ`` of every valid
accepting run ρ.

:func:`enumerate_naive` explores the configuration graph exhaustively.  It
is the **baseline** the paper's hardness results are measured against
(exponential in general) and a correctness oracle for the optimised
evaluator of :mod:`repro.va.evaluation`.
"""

from __future__ import annotations

from typing import Iterator

from ..core.document import Document, as_document
from ..core.mapping import Mapping, Variable
from ..core.relation import SpanRelation
from ..core.spans import Span
from .automaton import VA, State, VarOp

#: A configuration of the naive search: automaton state, document position
#: (1-based; n+1 = everything consumed), currently-open variables with
#: their opening positions, and already-closed spans.
_Config = tuple[State, int, frozenset[tuple[Variable, int]], frozenset[tuple[Variable, Span]]]


def enumerate_naive(va: VA, document: Document | str) -> Iterator[Mapping]:
    """Yield ``⟦A⟧(d)`` by exhaustive configuration-graph search.

    Correct for *arbitrary* VAs (validity is enforced per configuration,
    invalid prefixes are pruned), with no delay or total-time guarantee —
    worst-case exponential, as Theorem 3.1/4.1 imply is unavoidable in
    general.
    """
    doc = as_document(document)
    n = len(doc)
    start: _Config = (va.initial, 1, frozenset(), frozenset())
    seen_configs: set[_Config] = {start}
    emitted: set[Mapping] = set()
    stack: list[_Config] = [start]
    while stack:
        state, pos, open_vars, closed = stack.pop()
        if pos == n + 1 and not open_vars and va.is_accepting(state):
            mapping = Mapping(dict(closed))
            if mapping not in emitted:
                emitted.add(mapping)
                yield mapping
            # accepting configurations may still have outgoing transitions
        open_dict = dict(open_vars)
        closed_vars = {var for var, _ in closed}
        for label, target in va.transitions_from(state):
            successor: _Config | None = None
            if label is None:
                successor = (target, pos, open_vars, closed)
            elif isinstance(label, str):
                if pos <= n and doc.letter(pos) == label:
                    successor = (target, pos + 1, open_vars, closed)
            elif isinstance(label, VarOp):
                if label.is_open:
                    if label.var not in open_dict and label.var not in closed_vars:
                        successor = (
                            target,
                            pos,
                            open_vars | {(label.var, pos)},
                            closed,
                        )
                else:
                    begin = open_dict.get(label.var)
                    if begin is not None:
                        successor = (
                            target,
                            pos,
                            frozenset(p for p in open_vars if p[0] != label.var),
                            closed | {(label.var, Span(begin, pos))},
                        )
            if successor is not None and successor not in seen_configs:
                seen_configs.add(successor)
                stack.append(successor)


def evaluate_naive(va: VA, document: Document | str) -> SpanRelation:
    """Materialised form of :func:`enumerate_naive`."""
    return SpanRelation(enumerate_naive(va, document))


def accepts_boolean(va: VA, document: Document | str) -> bool:
    """Whether the VA has *any* valid accepting run on the document
    (i.e. ``⟦A⟧(d) ≠ ∅``), via the naive search."""
    for _ in enumerate_naive(va, document):
        return True
    return False


def count_runs_explored(va: VA, document: Document | str) -> int:
    """Number of distinct configurations the naive search visits — the
    cost measure reported by the hardness benchmarks (E2/E6)."""
    doc = as_document(document)
    n = len(doc)
    start: _Config = (va.initial, 1, frozenset(), frozenset())
    seen: set[_Config] = {start}
    stack = [start]
    while stack:
        state, pos, open_vars, closed = stack.pop()
        open_dict = dict(open_vars)
        closed_vars = {var for var, _ in closed}
        for label, target in va.transitions_from(state):
            successor: _Config | None = None
            if label is None:
                successor = (target, pos, open_vars, closed)
            elif isinstance(label, str):
                if pos <= n and doc.letter(pos) == label:
                    successor = (target, pos + 1, open_vars, closed)
            elif isinstance(label, VarOp):
                if label.is_open:
                    if label.var not in open_dict and label.var not in closed_vars:
                        successor = (target, pos, open_vars | {(label.var, pos)}, closed)
                else:
                    begin = open_dict.get(label.var)
                    if begin is not None:
                        successor = (
                            target,
                            pos,
                            frozenset(p for p in open_vars if p[0] != label.var),
                            closed | {(label.var, Span(begin, pos))},
                        )
            if successor is not None and successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return len(seen)
