"""Variable-configuration analysis (paper §3.1).

For a *trimmed sequential* VA and a variable ``x``, every state ``q`` falls
into exactly one of four cases over the runs from ``q0`` to ``q``:

* ``o`` — all runs open ``x`` without closing it;
* ``c`` — all runs open and close ``x``;
* ``u`` — no run opens ``x`` ("unseen"; the paper's ``w``/"wait" for
  functional VAs);
* ``d`` — "done": some runs closed ``x`` and some never opened it.

The mixed cases {u,o} and {o,c} are impossible in a trimmed sequential VA
(a state reachable both with ``x`` open and with ``x`` unseen/closed could
be extended to an accepting run that is invalid); we raise
:class:`~repro.core.errors.NotSequentialError` if we ever observe them,
which doubles as a cheap sanity check for callers that forgot to trim.

This is the machinery behind semi-functionalisation (Lemma 3.6) and all the
join/difference compilations that build on it.
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import NotSequentialError
from ..core.mapping import Variable
from .automaton import VA, State, VarOp
from .operations import is_trim

#: The four extended-configuration labels of §3.1.
UNSEEN = "u"
OPEN = "o"
CLOSED = "c"
DONE = "d"

_LABEL_OF_SET = {
    frozenset("u"): UNSEEN,
    frozenset("o"): OPEN,
    frozenset("c"): CLOSED,
    frozenset("uc"): DONE,
}


def status_sets(va: VA, var: Variable) -> dict[State, frozenset[str]]:
    """For each reachable state, the set of ``var`` statuses over all paths
    from the initial state.

    Statuses are ``u``/``o``/``c``; an error transition (double open,
    close-before-open) raises :class:`NotSequentialError` immediately,
    since on a trimmed automaton it would witness an invalid accepting
    run.
    """
    statuses: dict[State, set[str]] = {va.initial: {UNSEEN}}
    stack: list[tuple[State, str]] = [(va.initial, UNSEEN)]
    while stack:
        state, status = stack.pop()
        for label, target in va.transitions_from(state):
            if isinstance(label, VarOp) and label.var == var:
                if label.is_open:
                    if status != UNSEEN:
                        raise NotSequentialError(
                            f"variable {var!r} reopened on a path through {state!r}"
                        )
                    nxt = OPEN
                else:
                    if status != OPEN:
                        raise NotSequentialError(
                            f"variable {var!r} closed while not open at {state!r}"
                        )
                    nxt = CLOSED
            else:
                nxt = status
            bucket = statuses.setdefault(target, set())
            if nxt not in bucket:
                bucket.add(nxt)
                stack.append((target, nxt))
    return {state: frozenset(bucket) for state, bucket in statuses.items()}


def extended_configuration(va: VA, var: Variable) -> dict[State, str]:
    """The extended variable-configuration function ``c̃_q(var)`` of §3.1
    for every reachable state ``q``.

    Requires a trimmed sequential VA (checked lazily: the impossible mixed
    status sets raise :class:`NotSequentialError`).
    """
    out: dict[State, str] = {}
    for state, statuses in status_sets(va, var).items():
        label = _LABEL_OF_SET.get(statuses)
        if label is None:
            raise NotSequentialError(
                f"state {state!r} has status set {sorted(statuses)} for variable "
                f"{var!r}; the automaton is not a trimmed sequential VA"
            )
        out[state] = label
    return out


def configuration_table(
    va: VA, variables: Iterable[Variable] | None = None
) -> dict[State, dict[Variable, str]]:
    """``c̃_q`` for every reachable state and every requested variable
    (default: all of ``Vars(A)``)."""
    if not is_trim(va):
        raise NotSequentialError(
            "configuration analysis requires a trimmed VA; call operations.trim first"
        )
    chosen = sorted(variables) if variables is not None else sorted(va.variables)
    per_var = {var: extended_configuration(va, var) for var in chosen}
    table: dict[State, dict[Variable, str]] = {}
    for state in va.states:
        table[state] = {
            var: per_var[var].get(state, UNSEEN) for var in chosen
        }
    return table


def is_semi_functional_for(va: VA, variables: Iterable[Variable]) -> bool:
    """Whether ``c̃_q(x) ∈ {u, o, c}`` for every state ``q`` and every
    ``x`` in ``variables`` (§3.1) — i.e. no state is ambiguous ("done")."""
    for var in variables:
        if var not in va.variables:
            continue
        for label in extended_configuration(va, var).values():
            if label == DONE:
                return False
    return True


def accepting_used_sets(va: VA, variables: Iterable[Variable]) -> dict[State, frozenset[Variable]]:
    """For a VA that is semi-functional for ``variables``: the subset of
    those variables used (status ``c``) at each accepting state.

    This is well defined exactly because semi-functionality makes the
    status at each state unambiguous; used by the skip-set decomposition
    of Theorem 4.8 and the FPT join (Lemma 3.2).
    """
    chosen = sorted(set(variables) & va.variables)
    per_var = {var: extended_configuration(va, var) for var in chosen}
    out: dict[State, frozenset[Variable]] = {}
    for state in va.accepting:
        used: set[Variable] = set()
        for var in chosen:
            label = per_var[var].get(state, UNSEEN)
            if label == DONE:
                raise NotSequentialError(
                    f"accepting state {state!r} is ambiguous for {var!r}; "
                    "semi-functionalise first (repro.va.semi_functional)"
                )
            if label == CLOSED:
                used.add(var)
            elif label == OPEN:
                raise NotSequentialError(
                    f"accepting state {state!r} reachable with {var!r} still open"
                )
        out[state] = frozenset(used)
    return out
