"""Vectorized bitset transition kernel: numpy uint64 state planes.

The Boolean forward/backward passes of the indexed substrate
(:mod:`repro.va.indexed`) step Python-int bitsets one letter at a time —
fast for small automata, but on large documents with ≥64-state queries the
per-position big-int walk dominates everything (``is_nonempty``,
``first``, graph construction).  This module reworks those passes around
numpy uint64 *state planes* plus an on-the-fly subset construction:

* **State planes** — a state set over ``n`` states is an ``(n_planes,)``
  uint64 array with ``n_planes = ceil(n / 64)``; every word operation
  covers 64 states at once.  Per-layer masks of a whole document pack into
  one ``(len(d) + 1, n_planes)`` uint64 array, so whole-document
  combinations (the reachable ∩ co-reachable intersection, layer
  popcounts, the run-skip jump comparisons) are single vectorized ops
  instead of ``len(d)`` Python-int operations.
* **Successor-plane table** — :class:`VectorizedVA` precomputes an
  ``(alphabet, states, n_planes)`` uint64 table; one transition
  application is a gather of the frontier's state rows plus one
  ``bitwise_or.reduce`` — the vectorized form of
  :func:`repro.utils.bits.apply_masks`.  The backward co-reachability
  pass mirrors it with predecessor-plane tables (the transposed
  relation), built per letter on demand.
* **Frontier nodes** — the forward recurrence is inherently sequential
  (layer ``i + 1`` needs layer ``i``), so raw per-position numpy calls
  would drown in per-call overhead.  Instead the kernel interns every
  frontier it has ever seen as a *node* whose per-letter successor slots
  are filled lazily — an on-the-fly subset construction over exactly the
  reachable frontiers.  The hot loop is ``node = node[letter_id]``; the
  plane gather runs only on cache misses, and real workloads revisit a
  handful of distinct frontiers, so almost every position is one list
  index.  Nodes are document independent and shared across a corpus —
  like the memoized transformer powers of PR 4 — and bounded
  (:attr:`VectorizedKernel.STEP_CACHE_LIMIT`); pathological automata
  that overflow the bound keep computing misses through the plane table.
* **Run doubling on planes** — long maximal letter runs advance through
  memoized ``(letter, 2^k)`` *plane-matrix* transformer powers (the
  vectorized mirror of :class:`repro.va.kernel.TransitionKernel`), with
  the same fixpoint absorption, so run-heavy documents keep their
  O(runs · log run) cost; :meth:`VectorizedKernel.frontier` picks the
  node walk or the run-compressed path per document from its run profile.

:class:`VectorizedMatchGraph` subclasses
:class:`~repro.va.indexed.IndexedMatchGraph` so enumeration semantics are
*inherited*, not re-implemented: the DFS, edge rows, and mapping
reconstruction are the proven indexed code paths, fed by plane-backed
``forward``/``alive``/``jump`` layers (unpacked to Python-int form exactly
once, on demand).  :meth:`VectorizedMatchGraph.first` gets a dedicated
walk that never materialises the alive layers at all: it prunes against
interned co-reachability nodes and memoizes the greedy per-layer choice on
``(profile, letter, co-reach node)`` in a kernel-level (cross-document)
cache.

numpy is an *optional* dependency (the ``[fast]`` extra).  When it is not
installed, importing this module is harmless; building any vectorized
object raises :class:`~repro.core.errors.BackendUnavailableError` with an
installation hint, and the engine's pure-Python backends keep working
unchanged.

Plane layout is little-endian both across and within words (state ``s``
lives in bit ``s % 64`` of word ``s // 64``), matching
``int.to_bytes(..., "little")`` — the explicit ``<u8`` dtype keeps the
packed bytes identical on big-endian hosts too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..core.document import Document, as_document
from ..core.errors import (
    BackendUnavailableError,
    NotSequentialError,
    SpannerError,
)
from ..core.mapping import Mapping
from ..core.spans import Span
from ..utils.bits import iter_bits
from .automaton import VA
from .indexed import IndexedMatchGraph, IndexedVA, _mapping_from_entries
from .properties import is_sequential

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as NUMPY
except ImportError:  # pragma: no cover
    NUMPY = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .matchgraph import OpSet

#: Little-endian uint64: native (zero-cost) on every mainstream platform,
#: and it pins the byte layout so ``tobytes``/``int.from_bytes`` agree
#: everywhere.
_U64 = "<u8"

_NUMPY_HINT = (
    "the vectorized backend needs numpy — install the fast extra "
    "(pip install repro[fast]) or pick another backend (e.g. indexed)"
)

#: Default block budget of the batched enumeration path: the maximum
#: number of distinct (letter, live-successor-mask) *layer contexts* a
#: document may have before full enumeration falls back to the inherited
#: scalar DFS.  Run-compressed dedup means real documents collapse to a
#: handful of contexts (a 10k-letter run is one), so the budget only
#: trips on adversarially heterogeneous documents where the batched row
#: cache would churn.  Override per engine with ``enumeration_block_size``
#: (``0`` disables batching outright — the scalar escape hatch).
DEFAULT_ENUM_BLOCK_SIZE = 4096


def numpy_available() -> bool:
    """Whether the vectorized substrate can be built in this process."""
    return NUMPY is not None


def require_numpy():
    """The numpy module, or a clean :class:`BackendUnavailableError`."""
    if NUMPY is None:
        raise BackendUnavailableError(_NUMPY_HINT)
    return NUMPY


# -- plane packing ------------------------------------------------------------


def mask_to_planes(mask: int, n_planes: int):
    """Pack an int bitset into an ``(n_planes,)`` uint64 plane array."""
    np = require_numpy()
    return np.frombuffer(
        mask.to_bytes(8 * n_planes, "little"), dtype=_U64
    ).copy()


def planes_to_mask(planes) -> int:
    """Unpack a plane array (any shape, one state set) back to an int."""
    return int.from_bytes(planes.tobytes(), "little")


def _planes_from_masks(masks, n_planes: int):
    """Pack a sequence of int bitsets into a ``(len, n_planes)`` array."""
    np = NUMPY
    if n_planes == 1:
        return np.array(masks, dtype=_U64).reshape(len(masks), 1)
    row = 8 * n_planes
    buf = b"".join(mask.to_bytes(row, "little") for mask in masks)
    return np.frombuffer(buf, dtype=_U64).reshape(len(masks), n_planes)


def _masks_from_planes(planes) -> "list[int]":
    """Unpack a ``(rows, n_planes)`` array into a list of int bitsets."""
    n_planes = planes.shape[1]
    if n_planes == 1:
        return planes[:, 0].tolist()
    out = planes[:, 0].tolist()
    for p in range(1, n_planes):
        shift = 64 * p
        out = [
            low | (high << shift) if high else low
            for low, high in zip(out, planes[:, p].tolist())
        ]
    return out


def _popcounts(planes):
    """Per-row population counts of a ``(rows, n_planes)`` plane array."""
    np = NUMPY
    if hasattr(np, "bitwise_count"):  # numpy ≥ 2.0
        return np.bitwise_count(planes).sum(axis=1)
    bits = np.unpackbits(
        np.ascontiguousarray(planes).view(np.uint8), axis=1, bitorder="little"
    )
    return bits.sum(axis=1, dtype=np.int64)


# -- the document-independent vectorized form ---------------------------------


class VectorizedVA:
    """Plane-table form of an :class:`IndexedVA` (document independent).

    Attributes:
        indexed: the underlying indexed form (tables, opsets, acceptance).
        n_states: dense state count.
        n_planes: uint64 words per state set (``ceil(n_states / 64)``).
        succ_planes: the ``(alphabet, states, n_planes)`` successor-plane
            table — row ``[lid, sid]`` is the plane form of
            ``indexed.successor_masks[lid][sid]``.
    """

    __slots__ = (
        "indexed",
        "n_states",
        "n_planes",
        "succ_planes",
        "_kernel",
        "_letter_edges",
    )

    def __init__(self, indexed: IndexedVA):
        np = require_numpy()
        self.indexed = indexed
        n_states = self.n_states = indexed.n_states
        n_planes = self.n_planes = max(1, (n_states + 63) // 64)
        n_letters = len(indexed.alphabet)
        row = 8 * n_planes
        buf = b"".join(
            mask.to_bytes(row, "little")
            for per_letter in indexed.successor_masks
            for mask in per_letter
        )
        self.succ_planes = np.frombuffer(buf, dtype=_U64).reshape(
            n_letters, n_states, n_planes
        )
        self._kernel: "VectorizedKernel | None" = None
        self._letter_edges: dict[int, tuple] = {}

    @property
    def va(self) -> VA:
        """The trimmed automaton this form evaluates."""
        return self.indexed.va

    @property
    def alphabet(self):
        return self.indexed.alphabet

    def kernel(self) -> "VectorizedKernel":
        """The shared vectorized kernel (frontier nodes, plane powers),
        built once and reused by every document."""
        if self._kernel is None:
            self._kernel = VectorizedKernel(self)
        return self._kernel

    def letter_edge_planes(self, letter_id: int) -> tuple:
        """The flattened ``(source_sids, opset_ids, target_planes)``
        columns of one letter's macro transitions, with the target column
        packed as an ``(edges, n_planes)`` uint64 array — the gather table
        of the batch edge-row builder.  One plane AND of this column
        against a layer's live mask prunes every edge of the layer at
        once.  Built once per letter and cached (document independent)."""
        arrays = self._letter_edges.get(letter_id)
        if arrays is None:
            sids, oids, targets = self.indexed.letter_edge_arrays(letter_id)
            planes = _planes_from_masks(targets, self.n_planes)
            arrays = self._letter_edges[letter_id] = (sids, oids, planes)
        return arrays

    def __repr__(self) -> str:
        return (
            f"VectorizedVA(states={self.n_states}, planes={self.n_planes}, "
            f"letters={len(self.indexed.alphabet)})"
        )


class VectorizedKernel:
    """Frontier stepping for one :class:`VectorizedVA`.

    Frontiers are interned as *nodes*: ``node[letter_id]`` is the
    successor node (``None`` until computed — the on-the-fly subset
    construction), ``node[n_letters]`` the frontier's int mask, and
    ``node[n_letters + 1]`` a kernel-unique small id (the memo handle of
    :meth:`VectorizedMatchGraph.first`).  Separate node families cover
    the successor and the predecessor relation; misses are computed by
    the vectorized plane gather.  Long maximal letter runs go through
    :meth:`advance`, the plane mirror of
    :meth:`repro.va.kernel.TransitionKernel.advance`: fixpoint absorption
    first, memoized ``(letter, 2^k)`` plane-matrix powers otherwise.

    Attributes:
        run_hits: compressed run advances (length ≥ 2), sampled into
            ``EngineStats.kernel_run_hits``.
        step_misses: frontier transitions actually computed through the
            plane tables (cache misses), sampled into
            ``EngineStats.frontier_cache_misses``.
        edge_rows_batched: layer contexts whose edge rows were actually
            materialised by the batch builder (one per distinct
            ``(letter, live mask)`` pair — every other layer was served
            from the cross-document row cache), sampled into
            ``EngineStats.edge_rows_batched``.
    """

    #: Total interned nodes + filled successor slots across both node
    #: families.  Real workloads reach a few dozen; the bound only
    #: matters for adversarial subset-construction blowups, which simply
    #: stop caching (transient nodes, computed per use, never linked).
    STEP_CACHE_LIMIT = 1 << 16

    #: Entries in the cross-document greedy-walk memo of ``first()``.
    FIRST_CACHE_LIMIT = 1 << 16

    #: Entries in each of the batched-enumeration caches (edge rows per
    #: layer context, canonical option fans per DFS step).  Past the
    #: bound the builders keep computing but stop caching, like the
    #: frontier-node bound above.
    BATCH_CACHE_LIMIT = 1 << 16

    #: A document advances per position (node walk) when its mean run
    #: length is below this, per run (fixpoint + doubling) otherwise.
    RUN_COMPRESS_THRESHOLD = 4

    __slots__ = (
        "vva",
        "_n_letters",
        "_mask_slot",
        "_id_slot",
        "_nodes",
        "_pred_nodes",
        "_next_id",
        "_cached_steps",
        "_powers",
        "_pred_tables",
        "first_memo",
        "_batch_rows",
        "options_memo",
        "run_hits",
        "step_misses",
        "edge_rows_batched",
    )

    def __init__(self, vva: VectorizedVA):
        self.vva = vva
        n_letters = self._n_letters = len(vva.indexed.alphabet)
        self._mask_slot = n_letters
        self._id_slot = n_letters + 1
        self._nodes: dict[int, list] = {}
        self._pred_nodes: dict[int, list] = {}
        self._next_id = 0
        self._cached_steps = 0
        # _powers[lid][k]: the (states, n_planes) transformer of 2^k letters.
        self._powers: dict[int, list] = {}
        self._pred_tables: dict[int, object] = {}
        self.first_memo: dict = {}
        # _batch_rows[(lid, alive_int)]: {sid: [(oid, live_target), ...]}
        # — the batch-materialised edge rows of one layer context.
        self._batch_rows: dict = {}
        # options_memo[(profile, lid, alive_int)]: the canonical option
        # fan of one DFS step, rank sorted — the batched walk's hot probe.
        self.options_memo: dict = {}
        self.run_hits = 0
        self.step_misses = 0
        self.edge_rows_batched = 0

    # -- the vectorized transition op ------------------------------------

    def _gather(self, table, mask: int) -> int:
        """One transformer application: gather the set states' plane rows
        from ``table`` (``(states, n_planes)``) and OR-reduce them — the
        vectorized :func:`~repro.utils.bits.apply_masks`."""
        sids = list(iter_bits(mask))
        if not sids:
            return 0
        return planes_to_mask(NUMPY.bitwise_or.reduce(table[sids], axis=0))

    # -- interned frontier nodes ------------------------------------------

    def _intern(self, registry: dict, mask: int) -> list:
        """The node of ``mask`` in ``registry`` (created on first use;
        transient — computed but never registered — once the cache bound
        is hit)."""
        node = registry.get(mask)
        if node is None:
            node = [None] * self._n_letters
            node.append(mask)
            node.append(self._next_id)
            self._next_id += 1
            if self._cached_steps < self.STEP_CACHE_LIMIT:
                registry[mask] = node
                self._cached_steps += 1
        return node

    def node(self, mask: int) -> list:
        """The successor-family node of a frontier mask."""
        return self._intern(self._nodes, mask)

    def pred_node(self, mask: int) -> list:
        """The predecessor-family node of a co-reachability mask."""
        return self._intern(self._pred_nodes, mask)

    def extend(self, node: list, letter_id: int) -> list:
        """Fill (and link, within the bound) one successor slot by a
        plane gather — the forward cache-miss path."""
        nxt_mask = self._gather(
            self.vva.succ_planes[letter_id], node[self._mask_slot]
        )
        self.step_misses += 1
        nxt = self._intern(self._nodes, nxt_mask)
        if self._cached_steps < self.STEP_CACHE_LIMIT:
            node[letter_id] = nxt
            self._cached_steps += 1
        return nxt

    def pred_extend(self, node: list, letter_id: int) -> list:
        """Fill one predecessor slot — the backward cache-miss path."""
        nxt_mask = self._gather(
            self.pred_table(letter_id), node[self._mask_slot]
        )
        self.step_misses += 1
        nxt = self._intern(self._pred_nodes, nxt_mask)
        if self._cached_steps < self.STEP_CACHE_LIMIT:
            node[letter_id] = nxt
            self._cached_steps += 1
        return nxt

    def step(self, letter_id: int, mask: int) -> int:
        """One letter forward: the image of the frontier ``mask``."""
        node = self._intern(self._nodes, mask)
        nxt = node[letter_id]
        if nxt is None:
            nxt = self.extend(node, letter_id)
        return nxt[self._mask_slot]

    def pred_step(self, letter_id: int, mask: int) -> int:
        """One letter backward: the states with a successor in ``mask``."""
        node = self._intern(self._pred_nodes, mask)
        nxt = node[letter_id]
        if nxt is None:
            nxt = self.pred_extend(node, letter_id)
        return nxt[self._mask_slot]

    def pred_table(self, letter_id: int):
        """The ``(states, n_planes)`` predecessor-plane table of a letter
        (transpose of the successor relation), built once on demand."""
        table = self._pred_tables.get(letter_id)
        if table is None:
            vva = self.vva
            rows = [0] * vva.n_states
            for source, targets in enumerate(
                vva.indexed.successor_masks[letter_id]
            ):
                bit = 1 << source
                for target in iter_bits(targets):
                    rows[target] |= bit
            table = _planes_from_masks(rows, vva.n_planes)
            self._pred_tables[letter_id] = table
        return table

    # -- batched enumeration: edge rows and option fans --------------------

    def batch_rows(self, letter_id: int, alive_row, alive_int: int) -> dict:
        """The edge rows of one *layer context* — every live macro
        transition of ``letter_id`` into the live successor mask — as
        ``{source_sid: [(opset_id, live_target_mask), ...]}``, built in
        one plane gather over the letter's flattened edge column
        (``target_planes & alive_row`` + a nonzero scan) instead of a
        per-(layer, state) Python loop.

        Contexts are keyed ``(letter_id, live_mask)``: run-compressed
        dedup means a 10k-letter run (or any two layers reading the same
        letter with the same live successor mask, across *documents* —
        tail sessions re-hit unchanged-prefix contexts) costs one build.
        ``alive_row`` is the plane form of ``alive_int`` (the caller has
        it at hand; only misses touch it).
        """
        key = (letter_id, alive_int)
        rows = self._batch_rows.get(key)
        if rows is None:
            sids, oids, planes = self.vva.letter_edge_planes(letter_id)
            live = planes & alive_row
            kept = NUMPY.nonzero(live.any(axis=1))[0]
            masks = _masks_from_planes(live[kept])
            rows = {}
            for flat, mask in zip(kept.tolist(), masks):
                sid = sids[flat]
                entry = rows.get(sid)
                if entry is None:
                    rows[sid] = [(oids[flat], mask)]
                else:
                    entry.append((oids[flat], mask))
            self.edge_rows_batched += 1
            if len(self._batch_rows) < self.BATCH_CACHE_LIMIT:
                self._batch_rows[key] = rows
        return rows

    def batch_options(
        self, profile: int, letter_id: int, alive_row, alive_int: int
    ) -> tuple:
        """The canonical option fan of one batched DFS step: the distinct
        ``(opset_id, union live target)`` choices of ``profile`` at a
        layer context, sorted by canonical opset rank — exactly the
        ``options`` dict the inherited scalar DFS rebuilds per stack
        frame, precomputed once per ``(profile, letter, live mask)`` and
        memoized across documents."""
        rows = self.batch_rows(letter_id, alive_row, alive_int)
        options: dict[int, int] = {}
        for sid in iter_bits(profile):
            for oid, mask in rows.get(sid, ()):
                prev = options.get(oid)
                options[oid] = mask if prev is None else prev | mask
        rank = self.vva.indexed.opset_rank
        opts = tuple(sorted(options.items(), key=lambda kv: rank[kv[0]]))
        if len(self.options_memo) < self.BATCH_CACHE_LIMIT:
            self.options_memo[(profile, letter_id, alive_int)] = opts
        return opts

    # -- run compression on planes ----------------------------------------

    def power(self, letter_id: int, k: int):
        """The memoized ``(states, n_planes)`` transformer of ``2^k``
        copies of the letter, composed by repeated plane-matrix squaring."""
        np = NUMPY
        powers = self._powers.get(letter_id)
        if powers is None:
            powers = self._powers[letter_id] = [
                np.ascontiguousarray(self.vva.succ_planes[letter_id])
            ]
        n_states = self.vva.n_states
        while len(powers) <= k:
            previous = powers[-1]
            # bits[s, t]: state t is in the image row of state s.  The
            # where/reduce pair is the plane form of kernel.compose().
            bits = np.unpackbits(
                previous.view(np.uint8), axis=1, bitorder="little"
            )[:, :n_states].astype(bool)
            zero = np.zeros(1, dtype=_U64)
            powers.append(
                np.bitwise_or.reduce(
                    np.where(bits[:, :, None], previous[None, :, :], zero),
                    axis=1,
                )
            )
        return powers[k]

    def advance(self, letter_id: int, mask: int, length: int) -> int:
        """The frontier after a run of ``length`` copies of the letter —
        O(1) on a fixpoint, O(log length) plane gathers otherwise."""
        if length <= 0 or not mask:
            return mask
        nxt = self.step(letter_id, mask)
        if length == 1:
            return nxt
        self.run_hits += 1
        if nxt == mask or not nxt:
            return nxt
        remaining = length - 1
        mask = nxt
        k = 0
        while remaining and mask:
            if remaining & 1:
                mask = self._gather(self.power(letter_id, k), mask)
            remaining >>= 1
            k += 1
        return mask

    # -- whole-document sweeps ---------------------------------------------

    def frontier(self, document: Document, mask: int, guard=None) -> int:
        """The final forward frontier of ``document`` started at ``mask``
        (``0`` if the frontier dies or a letter is unknown to the VA).

        Adaptive: documents dominated by short runs walk interned nodes
        per position (one list index each); run-heavy documents advance
        per run through fixpoint absorption and plane-power doubling.
        A ``guard`` is checked once per run on the compressed path; the
        node walk keeps its unguarded hot loop untouched and runs a
        chunked twin (one check per ~4k positions) only when guarded.
        """
        if not mask:
            return 0
        n = len(document)
        if n == 0:
            return mask
        alphabet = self.vva.indexed.alphabet
        runs = document.runs()
        if n >= self.RUN_COMPRESS_THRESHOLD * len(runs):
            for lid, _start, length in _encoded_runs(runs, alphabet):
                if guard is not None:
                    guard.check()
                if lid < 0:
                    return 0
                mask = self.advance(lid, mask, length)
                if not mask:
                    return 0
            return mask
        ids = alphabet.ids
        if any(letter not in ids for letter in document.letter_counts()):
            return 0  # an unknown letter kills every run through it
        node = self._intern(self._nodes, mask)
        extend = self.extend
        encoded = document.encoded(alphabet)
        if guard is None:
            for lid in encoded:
                nxt = node[lid]
                node = nxt if nxt is not None else extend(node, lid)
        else:
            for start in range(0, n, 4096):
                guard.check()
                for lid in encoded[start : start + 4096]:
                    nxt = node[lid]
                    node = nxt if nxt is not None else extend(node, lid)
        return node[self._mask_slot]

    def cache_bytes_estimate(self) -> int:
        """A rough gauge of this kernel's cross-document cache footprint
        (interned nodes, batched edge rows, option/first memos) — what a
        guard's ``cache_bytes`` budget is checked against.  Deliberately
        coarse: per-entry constants stand in for deep ``sys.getsizeof``
        walks, so the gauge is cheap enough to consult per enumeration."""
        slots = self._n_letters + 2
        node_bytes = self._cached_steps * 8 * slots
        row_bytes = 96 * len(self._batch_rows)
        memo_bytes = 96 * (len(self.options_memo) + len(self.first_memo))
        power_bytes = sum(
            sum(p.nbytes for p in powers) for powers in self._powers.values()
        )
        return node_bytes + row_bytes + memo_bytes + power_bytes

    def __repr__(self) -> str:
        cached_powers = sum(len(p) - 1 for p in self._powers.values())
        return (
            f"VectorizedKernel(states={self.vva.n_states}, "
            f"cached_steps={self._cached_steps}, "
            f"cached_powers={cached_powers}, run_hits={self.run_hits})"
        )


def _encoded_runs(runs, alphabet):
    """The maximal-run view with letters replaced by dense ids (-1 when
    the letter is unknown to the alphabet)."""
    ids = alphabet.ids
    return (
        (ids.get(letter, -1), start, length) for letter, start, length in runs
    )


def vectorized_nonempty(
    vva: VectorizedVA, document: Document | str, guard=None
) -> bool:
    """Decide ``⟦A⟧(d) ≠ ∅`` with the vectorized Boolean forward pass
    (one adaptive frontier sweep — see :meth:`VectorizedKernel.frontier`)."""
    doc = as_document(document)
    indexed = vva.indexed
    mask = vva.kernel().frontier(doc, 1 << indexed.initial_id, guard=guard)
    return bool(mask & indexed.accept_mask)


# -- the per-document graph ---------------------------------------------------


class VectorizedMatchGraph(IndexedMatchGraph):
    """The layered match graph on one document, with plane-array layers.

    Construction runs only the adaptive Boolean forward frontier (enough
    for :attr:`is_empty`).  The per-layer forward masks, the backward
    co-reachability pass, the run-skip jump table, and the layer gauges
    are computed through the shared :class:`VectorizedKernel` and the
    ``(len(d) + 1, n_planes)`` uint64 plane arrays; the reachable ∩
    co-reachable intersection is one whole-document vectorized AND.

    Enumeration is *inherited* from :class:`IndexedMatchGraph` — the DFS,
    edge rows, run-skipping, and mapping reconstruction are byte-for-byte
    the indexed semantics, reading ``alive``/``jump`` through the
    overridden properties (plane arrays unpacked to Python-int layers
    once, on demand).  :meth:`first` never touches those layers: it walks
    interned co-reachability nodes with a kernel-level greedy-choice memo.
    """

    __slots__ = (
        "vva",
        "_vkernel",
        "_forward_planes",
        "_alive_planes",
        "_cnodes",
        "_block_size",
        "_layer_ctx",
        "_forced_skips",
    )

    def __init__(
        self,
        vva: VectorizedVA,
        document: Document | str,
        block_size: "int | None" = None,
        guard=None,
    ):
        indexed = vva.indexed
        self.vva = vva
        self.indexed = indexed
        self.document = as_document(document)
        self._guard = guard
        n = self._n = len(self.document)
        self._letter_ids = None
        self._forward = None
        self._alive = None
        self._jump = None
        self._kernel = None  # the scalar-kernel slot of the base stays unused
        self._forward_planes = None
        self._alive_planes = None
        self._cnodes = None
        self._layer_ctx = None
        self._forced_skips: dict = {}
        self._block_size = (
            DEFAULT_ENUM_BLOCK_SIZE if block_size is None else block_size
        )
        kernel = self._vkernel = vva.kernel()
        self._runs = tuple(_encoded_runs(self.document.runs(), indexed.alphabet))
        mask = kernel.frontier(
            self.document, 1 << indexed.initial_id, guard=guard
        )
        # Checkpoint for append-extensions (see the base class).
        self._frontier = mask
        final_mask = mask & indexed.accept_mask
        self.final_mask = final_mask
        accept = indexed.accept
        self.final = {sid: accept[sid] for sid in iter_bits(final_mask)}
        self._edges = [None] * n

    def extended(
        self, document: Document | str, guard=None
    ) -> "VectorizedMatchGraph":
        """The match graph of ``document`` — an append-extension of this
        graph's document — resumed from the checkpointed frontier (the
        vectorized mirror of the base-class override).

        The overhang advances through the shared kernel: interned frontier
        nodes per appended letter, plane-power doubling when appended
        letters merge into the tail run.  Already-materialised prefix
        forward layers carry over; the plane arrays, co-reachability
        nodes, jump table, and edge rows rebuild lazily (they are pruned
        against the acceptance of the *new* final layer).  The *batched*
        edge rows and option fans live on the kernel, keyed by
        ``(letter, live mask)`` content rather than position — layer
        contexts of the unchanged prefix that reproduce their masks after
        the append re-hit those caches, so a tail session's
        re-enumerations reuse the batched rows of the stable prefix
        instead of rebuilding them per append.
        """
        doc = as_document(document)
        old_n = self._n
        n = len(doc)
        if n < old_n:
            raise SpannerError(
                f"extended() needs an append-extension of the graph's "
                f"document ({n} letters < {old_n})"
            )
        indexed = self.indexed
        graph = VectorizedMatchGraph.__new__(VectorizedMatchGraph)
        graph.vva = self.vva
        graph.indexed = indexed
        graph.document = doc
        graph._guard = guard
        graph._n = n
        graph._letter_ids = None
        graph._forward = None
        graph._alive = None
        graph._jump = None
        graph._kernel = None
        graph._forward_planes = None
        graph._alive_planes = None
        graph._cnodes = None
        graph._layer_ctx = None
        graph._forced_skips = {}
        graph._block_size = self._block_size
        kernel = graph._vkernel = self._vkernel
        ids_get = indexed.alphabet.ids.get
        old_runs = self._runs
        keep = max(len(old_runs) - 1, 0)
        graph._runs = old_runs[:keep] + tuple(
            (ids_get(letter, -1), start, length)
            for letter, start, length in doc.runs()[keep:]
        )
        mask = self._frontier
        for lid, start, length in graph._runs[keep:]:
            if guard is not None:
                guard.check()
            end = start + length
            if end <= old_n or not mask:
                continue
            if lid < 0:
                mask = 0
                break
            mask = kernel.advance(lid, mask, end - max(start, old_n))
            if not mask:
                break
        if self._forward is not None:
            forward = list(self._forward)
            forward.extend([0] * (n - old_n))
            m = self._frontier
            i = old_n
            for ch in doc.text[old_n:]:
                if not m:
                    break
                lid = ids_get(ch, -1)
                if lid < 0:
                    break
                m = kernel.step(lid, m)
                if not m:
                    break
                i += 1
                forward[i] = m
            graph._forward = forward
        graph._frontier = mask
        final_mask = mask & indexed.accept_mask
        graph.final_mask = final_mask
        accept = indexed.accept
        graph.final = {sid: accept[sid] for sid in iter_bits(final_mask)}
        graph._edges = [None] * n
        return graph

    # -- plane-backed layer materialisation --------------------------------

    @property
    def forward(self) -> "list[int]":
        """Forward-reachable masks per layer (int form, built once): the
        interned-node walk over the runs, with fixpoint slice fill."""
        forward = self._forward
        if forward is None:
            n = self._n
            guard = self._guard
            forward = [0] * (n + 1)
            mask = forward[0] = 1 << self.indexed.initial_id
            kernel = self._vkernel
            mask_slot = kernel._mask_slot
            extend = kernel.extend
            node = kernel.node(mask)
            for lid, start, length in self._runs:
                if guard is not None:
                    guard.check()
                if lid < 0 or not node[mask_slot]:
                    break
                end = start + length
                i = start
                while i < end:
                    nxt = node[lid]
                    if nxt is None:
                        nxt = kernel.extend(node, lid)
                    i += 1
                    forward[i] = nxt[mask_slot]
                    if nxt is node:
                        # Fixpoint: the rest of the run repeats this mask.
                        forward[i + 1 : end + 1] = [nxt[mask_slot]] * (end - i)
                        i = end
                    node = nxt
                if not node[mask_slot]:
                    break
            self._forward = forward
        return forward

    @property
    def forward_planes(self):
        """The forward layers as a ``(n + 1, n_planes)`` uint64 array."""
        planes = self._forward_planes
        if planes is None:
            planes = self._forward_planes = _planes_from_masks(
                self.forward, self.vva.n_planes
            )
        return planes

    def _coreach_nodes(self) -> "list[list]":
        """Interned co-reachability nodes per layer: the pure backward
        recurrence ``C[i] = pred(C[i + 1])`` from the accepting layer,
        with node-identity fixpoint slice fill inside runs."""
        cnodes = self._cnodes
        if cnodes is None:
            kernel = self._vkernel
            guard = self._guard
            n = self._n
            node = kernel.pred_node(self.final_mask)
            cnodes = [node] * (n + 1)
            if self.final_mask:
                for lid, start, length in reversed(self._runs):
                    if guard is not None:
                        guard.check()
                    i = start + length - 1
                    while i >= start:
                        nxt = node[lid]
                        if nxt is None:
                            nxt = kernel.pred_extend(node, lid)
                        cnodes[i] = nxt
                        if nxt is node:
                            # Fixpoint: the rest of the run repeats it.
                            cnodes[start:i] = [nxt] * (i - start)
                            i = start
                        i -= 1
                        node = nxt
            else:
                cnodes[:n] = [kernel.pred_node(0)] * n
            self._cnodes = cnodes
        return cnodes

    @property
    def alive_planes(self):
        """Live (reachable ∩ co-reachable) plane layers.

        Chains the backward co-reachability nodes, packs them, and
        intersects with the forward layers in one whole-document
        vectorized AND — equal to the indexed backend's per-layer pruning
        (a forward state's successor along any path is itself forward, so
        intersecting late loses nothing)."""
        planes = self._alive_planes
        if planes is None:
            np = NUMPY
            n_planes = self.vva.n_planes
            if not self.final_mask:
                planes = np.zeros((self._n + 1, n_planes), dtype=_U64)
            else:
                mask_slot = self._vkernel._mask_slot
                coreach = [node[mask_slot] for node in self._coreach_nodes()]
                planes = self.forward_planes & _planes_from_masks(
                    coreach, n_planes
                )
            self._alive_planes = planes
            guard = self._guard
            if (
                guard is not None
                and guard.budget is not None
                and guard.budget.states is not None
            ):
                guard.charge_states(int(_popcounts(planes).sum()))
        return planes

    @property
    def alive(self) -> "list[int]":
        """Live masks per layer in int form (unpacked once, for the
        inherited DFS and edge rows)."""
        alive = self._alive
        if alive is None:
            alive = self._alive = _masks_from_planes(self.alive_planes)
        return alive

    @property
    def jump(self) -> "list[int]":
        """Run-skip destinations per layer (see the indexed base class),
        built by vectorized comparisons instead of a per-layer scan."""
        jump = self._jump
        if jump is None:
            np = NUMPY
            n = self._n
            if n <= 1:
                jump = list(range(1, n + 1))
            else:
                ids = np.fromiter(self.letter_ids, dtype=np.int64, count=n)
                alive = self.alive_planes
                # extendable[i] (i < n-1): layer i+1 reads the same letter
                # and sees the same live successor layer — jump through it.
                extendable = np.zeros(n, dtype=bool)
                extendable[: n - 1] = (ids[1:] == ids[:-1]) & (
                    alive[2:] == alive[1:-1]
                ).all(axis=1)
                position = np.arange(n, dtype=np.int64)
                breaks = np.where(extendable, n - 1, position)
                jump = (np.minimum.accumulate(breaks[::-1])[::-1] + 1).tolist()
            self._jump = jump
        return jump

    # -- gauges -----------------------------------------------------------

    def states_alive(self) -> int:
        """Total live states across all layers (vectorized popcount)."""
        return int(_popcounts(self.alive_planes).sum())

    def width(self) -> int:
        """Maximum number of live states in any layer."""
        counts = _popcounts(self.alive_planes)
        return int(counts.max()) if counts.size else 0

    # -- batched enumeration ----------------------------------------------

    def enumerate(self, limit: "int | None" = None) -> Iterator[Mapping]:
        """DFS enumeration over *batched* edge rows (same mappings, same
        canonical order, same polynomial delay as the inherited scalar
        walk).

        The scalar DFS rebuilds an options dict per stack frame from
        per-(layer, state) edge rows.  Here each layer resolves to a
        *context* ``(letter, live successor mask)`` whose full option fan
        is materialised once by :meth:`VectorizedKernel.batch_options`
        from a whole-column plane gather, then shared by every layer,
        run repetition, and document that reproduces the context.  Paths
        are parent-pointer arrays (three flat int lists) instead of
        per-node tuples, and leaves emit through the trusted
        :meth:`Mapping.from_arrays` bulk constructor.

        Falls back to the inherited scalar walk when the document's
        distinct contexts exceed the block budget (``block_size`` /
        ``--enum-block``; ``0`` disables batching) — the context cache is
        the memory cost, so wildly heterogeneous documents keep the lazy
        per-edge path.
        """
        if self.is_empty or (limit is not None and limit <= 0):
            return iter(())
        block = self._block_size
        if block > 0 and self._distinct_contexts() <= block:
            return self._enumerate_batched(limit)
        return super().enumerate(limit=limit)

    def _distinct_contexts(self) -> int:
        """Number of distinct ``(letter, live successor mask)`` layer
        contexts — the batched DFS materialises one edge-row set per
        context, so this is its working-set size (vectorized row-dedup
        over the packed alive planes)."""
        if self._n == 0:
            return 0
        return len(self._layer_contexts()[1])

    def _layer_contexts(self) -> tuple:
        """Per-layer context assignment: ``(inverse, reps)`` where
        ``inverse[i]`` is the dense context id of layer ``i`` and
        ``reps[c]`` is the first layer with context ``c`` — one
        ``np.unique`` row-dedup over ``(letter, packed alive planes)``."""
        cached = self._layer_ctx
        if cached is None:
            np = NUMPY
            n = self._n
            key = np.empty((n, 1 + self.vva.n_planes), dtype=_U64)
            key[:, 0] = np.fromiter(
                self.letter_ids, dtype=np.int64, count=n
            ).astype(np.uint64)
            key[:, 1:] = self.alive_planes[1:]
            uniq, inverse = np.unique(key, axis=0, return_inverse=True)
            inverse = inverse.reshape(n)  # numpy 2.x returns the keyed shape
            reps = np.zeros(len(uniq), dtype=np.int64)
            # Reversed fancy assignment: the last write per context is its
            # smallest layer index.
            reps[inverse[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
            cached = self._layer_ctx = (inverse, reps)
        return cached

    #: Entry cap of the forced-stretch skip index (see
    #: :meth:`_enumerate_batched`): one entry per distinct
    #: ``(layer, profile)`` pair inside a forced stretch, so the cap only
    #: trips when the DFS genuinely visits that many distinct pairs — at
    #: which point the index stops growing and the walk degrades to
    #: stepping, never to incorrectness.
    _SKIP_INDEX_LIMIT = 1 << 19

    def _enumerate_batched(self, limit: "int | None") -> Iterator[Mapping]:
        indexed = self.indexed
        opsets, rank = indexed.opsets, indexed.opset_rank
        programs = indexed.op_programs()
        n = self._n
        final = self.final
        alive = self.alive
        alive_planes = self.alive_planes
        letter_ids = self.letter_ids
        kernel = self._vkernel
        omemo = kernel.options_memo
        build_options = kernel.batch_options
        fskip = self._forced_skips
        skip_limit = self._SKIP_INDEX_LIMIT
        guard = self._guard
        if guard is not None:
            guard.gauge_cache_bytes(kernel.cache_bytes_estimate())
        emitted = 0
        # Parent-pointer arenas: one slot per *operating* (non-empty
        # opset) step — run stretches and empty steps leave no trace, so
        # leaf reconstruction costs O(captures), not O(path).
        node_pos: list[int] = []
        node_oid: list[int] = []
        node_parent: list[int] = []
        stack: list[tuple[int, int, int]] = [
            (0, 1 << indexed.initial_id, -1)
        ]
        while stack:
            layer, profile, parent = stack.pop()
            while layer < n:
                if guard is not None:
                    guard.tick()
                lid = letter_ids[layer]
                a_int = alive[layer + 1]
                opts = omemo.get((profile, lid, a_int))
                if opts is None:
                    if guard is not None:
                        guard.charge_edge_rows(1)
                    opts = build_options(
                        profile, lid, alive_planes[layer + 1], a_int
                    )
                if len(opts) == 1:
                    oid, target = opts[0]
                    if not opsets[oid]:
                        # Forced no-op stretch: a single empty-opset
                        # option means nothing to record and nothing to
                        # choose until the next fan, operating step, dead
                        # end, or the leaf.  The skip index maps
                        # ``(layer, profile)`` to that event in one hop —
                        # unlike the scalar walk's same-letter run-skip it
                        # crosses letter boundaries *and* profile changes
                        # (a scanning profile may oscillate per letter),
                        # and path compression means the first path to
                        # walk a forced suffix pays O(stretch) once while
                        # every later path joins it within a few layers.
                        hop = fskip.get((layer, profile))
                        if hop is None:
                            walked = [(layer, profile)]
                            hl, hp = layer + 1, target
                            while hl < n:
                                if guard is not None:
                                    guard.tick()
                                hop = fskip.get((hl, hp))
                                if hop is not None:
                                    break
                                hlid = letter_ids[hl]
                                ha = alive[hl + 1]
                                hopts = omemo.get((hp, hlid, ha))
                                if hopts is None:
                                    if guard is not None:
                                        guard.charge_edge_rows(1)
                                    hopts = build_options(
                                        hp, hlid, alive_planes[hl + 1], ha
                                    )
                                if len(hopts) != 1 or opsets[hopts[0][0]]:
                                    break
                                walked.append((hl, hp))
                                hl += 1
                                hp = hopts[0][1]
                            if hop is None:
                                hop = (hl, hp)
                            if len(fskip) < skip_limit:
                                for step in walked:
                                    fskip[step] = hop
                        layer, profile = hop
                        continue
                elif not opts:
                    break  # dead profile (unreachable on live layers)
                else:
                    # Alternatives pushed in reverse rank so later pops
                    # walk them canonically; the rank-first option
                    # continues inline without a push/pop round-trip.
                    for oid, target in opts[:0:-1]:
                        if opsets[oid]:
                            node_pos.append(layer + 1)
                            node_oid.append(oid)
                            node_parent.append(parent)
                            stack.append(
                                (layer + 1, target, len(node_pos) - 1)
                            )
                        else:
                            stack.append((layer + 1, target, parent))
                    oid, target = opts[0]
                if opsets[oid]:
                    node_pos.append(layer + 1)
                    node_oid.append(oid)
                    node_parent.append(parent)
                    parent = len(node_pos) - 1
                profile = target
                layer += 1
            else:
                # Leaf (layer == n): canonical final fan over the
                # profile's accepting states, spans rebuilt once from the
                # parent chain and shared across the fan.
                options_set: set[int] = set()
                mask = profile
                while mask:
                    low = mask & -mask
                    options_set.update(final.get(low.bit_length() - 1, ()))
                    mask ^= low
                chain: list[int] = []
                p = parent
                while p >= 0:
                    chain.append(p)
                    p = node_parent[p]
                opened: dict[str, int] = {}
                spans: dict[str, Span] = {}
                for p in reversed(chain):
                    position = node_pos[p]
                    opens, closes = programs[node_oid[p]]
                    for var in opens:
                        opened[var] = position
                    for var in closes:
                        spans[var] = Span(opened.pop(var), position)
                base_items = None
                for foid in sorted(options_set, key=rank.__getitem__):
                    fopens, fcloses = programs[foid]
                    if fopens or fcloses:
                        opened_f = dict(opened)
                        spans_f = dict(spans)
                        for var in fopens:
                            opened_f[var] = n + 1
                        for var in fcloses:
                            spans_f[var] = Span(opened_f.pop(var), n + 1)
                        yield Mapping.from_arrays(
                            tuple(sorted(spans_f.items()))
                        )
                    else:
                        if base_items is None:
                            base_items = tuple(sorted(spans.items()))
                        yield Mapping.from_arrays(base_items)
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return

    # -- first(): memoized greedy walk ------------------------------------

    def first(self) -> "Mapping | None":
        """The first mapping in canonical order, or ``None`` if empty.

        Semantically identical to the inherited greedy walk (canonically
        minimal operation set per layer, run-skip through forced
        empty-opset fixpoints) but pruned against the co-reachability
        nodes instead of the alive layers: a candidate target of a live
        profile is always forward-reachable, so ``target ∩ coreach`` is
        exactly ``target ∩ alive`` and the backward intersection never
        needs materialising.  The per-layer choice is memoized on
        ``(profile, letter, co-reach node id)`` in a *kernel-level* cache
        shared across documents, so long documents cost one dictionary
        probe per position with the edge inspection running only on
        misses.
        """
        if self.is_empty:
            return None
        indexed = self.indexed
        opsets, rank = indexed.opsets, indexed.opset_rank
        empty_oid = indexed.empty_opset_id
        tables = indexed.tables
        kernel = self._vkernel
        mask_slot, id_slot = kernel._mask_slot, kernel._id_slot
        memo = kernel.first_memo
        memo_limit = kernel.FIRST_CACHE_LIMIT
        letter_ids = self.letter_ids
        cnodes = self._coreach_nodes()
        n = self._n
        guard = self._guard
        entries: "list[tuple[int, OpSet]]" = []
        profile = 1 << indexed.initial_id
        layer = 0
        while layer < n:
            if guard is not None:
                guard.tick()
            lid = letter_ids[layer]
            cnode = cnodes[layer + 1]
            key = (profile, lid, cnode[id_slot])
            best = memo.get(key)
            if best is None:
                live = cnode[mask_slot]
                row_table = tables[lid]
                best_oid = -1
                best_rank = -1
                best_mask = 0
                for sid in iter_bits(profile):
                    for oid, target_mask in row_table[sid]:
                        target_mask &= live
                        if not target_mask:
                            continue
                        if best_rank < 0 or rank[oid] < best_rank:
                            best_rank, best_oid = rank[oid], oid
                            best_mask = target_mask
                        elif oid == best_oid:
                            best_mask |= target_mask
                best = (best_oid, best_mask)
                if len(memo) < memo_limit:
                    memo[key] = best
            best_oid, best_mask = best
            if best_oid == empty_oid and best_mask == profile:
                # Run-skip: forced-equivalent empty steps on a fixpoint
                # profile — scan the stretch once (same letter, same
                # co-reach context at the successor layer) and jump it,
                # mirroring the inherited walk's jump-table skip.
                j = layer + 1
                while j < n and letter_ids[j] == lid and cnodes[j + 1] is cnode:
                    j += 1
                layer = j
            else:
                ops = opsets[best_oid]
                if ops:
                    entries.append((layer + 1, ops))
                profile = best_mask
                layer += 1
        final = self.final
        best_final = -1
        for sid in iter_bits(profile):
            for oid in final.get(sid, ()):
                if best_final < 0 or rank[oid] < rank[best_final]:
                    best_final = oid
        final_ops = opsets[best_final]
        if final_ops:
            entries.append((n + 1, final_ops))
        return _mapping_from_entries(entries)


def enumerate_vectorized(
    vectorized: "VectorizedVA | VA",
    document: Document | str,
    limit: "int | None" = None,
) -> Iterator[Mapping]:
    """Enumerate ``⟦A⟧(d)`` via the vectorized substrate (lazy — the graph
    is built on the first ``next()``)."""
    if isinstance(vectorized, VA):
        if not is_sequential(vectorized):
            raise NotSequentialError(
                "vectorized enumeration requires a sequential VA"
            )
        vectorized = vectorized.vectorized()
    yield from VectorizedMatchGraph(vectorized, document).enumerate(limit=limit)
