"""Polynomial-time property checks for vset-automata (paper §2.3, §4.2).

All checks are reachability analyses on the product of the automaton with a
small per-variable monitor tracking that variable's status:

* ``u`` — unseen, ``o`` — currently open, ``c`` — closed, ``E`` — error
  (opened twice, closed while not open, …).

A VA is *sequential* when no accepting run misbehaves on any variable
(reaches ``E`` or accepts while ``o``); *functional* when additionally every
accepting run uses every mentioned variable; *synchronized for X* (§4.2)
when each operation on a variable of X has a unique target state and the
accepting runs either all use the variable or none does.
"""

from __future__ import annotations

from typing import Iterable

from ..core.mapping import Variable
from .automaton import VA, State, VarOp

_ERROR = "E"


def _monitor_step(status: str, label: object, var: Variable) -> str:
    """Advance the per-variable monitor over one transition label."""
    if not isinstance(label, VarOp) or label.var != var:
        return status
    if label.is_open:
        return "o" if status == "u" else _ERROR
    return "c" if status == "o" else _ERROR


def _reachable_statuses(va: VA, var: Variable) -> dict[State, set[str]]:
    """For each state, the monitor statuses of ``var`` over all paths from
    the initial state (including error paths)."""
    statuses: dict[State, set[str]] = {va.initial: {"u"}}
    stack: list[tuple[State, str]] = [(va.initial, "u")]
    while stack:
        state, status = stack.pop()
        for label, target in va.transitions_from(state):
            nxt = _monitor_step(status, label, var)
            bucket = statuses.setdefault(target, set())
            if nxt not in bucket:
                bucket.add(nxt)
                stack.append((target, nxt))
    return statuses


def accepting_statuses(va: VA, var: Variable) -> set[str]:
    """Monitor statuses of ``var`` observable at accepting states."""
    statuses = _reachable_statuses(va, var)
    out: set[str] = set()
    for state in va.accepting:
        out |= statuses.get(state, set())
    return out


def is_sequential(va: VA) -> bool:
    """Whether all accepting runs are valid (§2.3).

    Checked per variable: no accepting run reaches the error status or
    accepts with the variable still open.  Letters are irrelevant to
    validity, so plain graph reachability suffices (quantifying over all
    documents at once).
    """
    for var in va.variables:
        bad = accepting_statuses(va, var) & {"o", _ERROR}
        if bad:
            return False
    return True


def is_functional(va: VA) -> bool:
    """Whether the VA is functional: sequential, and every accepting run
    opens and closes every variable of ``Vars(A)``."""
    for var in va.variables:
        if accepting_statuses(va, var) != {"c"}:
            return False
    return True


def unique_target_state(va: VA, op: VarOp) -> State | None:
    """The unique target state of operation ``op``, or ``None`` if there
    are several (or the operation never occurs)."""
    targets = {dst for _, label, dst in va.transitions if label == op}
    if len(targets) == 1:
        return next(iter(targets))
    return None


def is_synchronized_for(va: VA, variables: Iterable[Variable]) -> bool:
    """Whether the VA is synchronized for ``X`` (§4.2): each ``x⊢``/``⊣x``
    with ``x ∈ X`` has a unique target state, and either all accepting runs
    operate on ``x`` or none does."""
    for var in variables:
        if var not in va.variables:
            continue  # never mentioned: trivially "no accepting run operates"
        for op in (VarOp(var, True), VarOp(var, False)):
            occurs = any(label == op for _, label, _ in va.transitions)
            if occurs and unique_target_state(va, op) is None:
                return False
        acc = accepting_statuses(va, var)
        if acc & {"o", _ERROR}:
            return False  # not even sequential for var
        if not (acc <= {"c"} or acc <= {"u"}):
            return False  # some accepting runs use var, others do not
    return True


def is_synchronized(va: VA) -> bool:
    """Synchronized for all of its own variables."""
    return is_synchronized_for(va, va.variables)
