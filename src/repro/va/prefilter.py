"""VA-derived corpus prefilters: reject non-matching documents in O(1).

Evaluating a spanner on a document that cannot match still costs a full
Boolean forward pass.  For corpus workloads where most documents do not
match, that linear scan per document dominates.  This module derives, once
per compiled automaton, a set of *necessary conditions* on documents —
facts true of **every** document with a nonempty result — and checks them
against per-document statistics the :class:`~repro.core.document.Document`
caches (its letter histogram and length), so the engine can reject a
non-matching document in O(distinct letters) ≈ O(1) without building any
graph, encoding the document, or even touching its text beyond the cached
histogram.

Derived conditions (all on the Boolean letter structure of the trimmed
automaton, i.e. the macro-transition graph of the indexed form):

* **alphabet closure** — a VA consumes the whole document, so any letter
  outside its alphabet makes the result empty;
* **length window** — the minimum number of letters on any accepting path
  (BFS), and, when the letter graph is acyclic, the maximum (longest-path
  DP); documents outside the window cannot match;
* **must-occur letter bounds** — for each letter, the minimum number of
  times it is read on *any* accepting path (0–1 BFS, counting only edges
  of that letter); a document with fewer occurrences cannot match.  The
  bounds form the must-occur letter multiset lower bound: a letter with a
  positive bound is *required* on every accepting path.

Soundness (the prefilter never rejects a document with a nonempty result)
is checked by hypothesis properties in ``tests/va/test_prefilter.py``
against the naive enumerator.  Completeness is not promised — admitted
documents may still turn out empty; they simply proceed to the kernel.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..core.document import Document, as_document
from ..utils.bits import apply_masks, iter_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .indexed import IndexedVA

#: Effectively-infinite distance for the 0-1 BFS.
_INF = float("inf")


class VAPrefilter:
    """Necessary document conditions of one automaton (document free).

    Attributes:
        alphabet: the automaton's interned letter alphabet.
        empty: the automaton's language is empty — every document rejects.
        min_length: minimum letters on any accepting path.
        max_length: maximum letters on any accepting path, or ``None``
            when the letter graph has a cycle (unbounded).
        required: canonically ordered ``(letter, min_count)`` pairs for
            letters with a positive must-occur bound.
    """

    __slots__ = ("alphabet", "empty", "min_length", "max_length", "required")

    def __init__(self, indexed: "IndexedVA"):
        self.alphabet = indexed.alphabet
        succ = indexed.successor_masks
        n_states = indexed.n_states
        initial = indexed.initial_id
        accept_mask = indexed.accept_mask
        self.min_length = _min_path_length(succ, n_states, initial, accept_mask)
        self.empty = self.min_length is None
        if self.empty:
            self.min_length = 0
            self.max_length = 0
            self.required = ()
            return
        self.max_length = _max_path_length(succ, n_states, initial, accept_mask)
        required = []
        for lid, letter in enumerate(self.alphabet.signature):
            bound = _min_letter_count(succ, n_states, initial, accept_mask, lid)
            if bound > 0:
                required.append((letter, bound))
        self.required = tuple(required)

    def admits(self, document: Document | str) -> bool:
        """Whether ``document`` passes every necessary condition.

        ``False`` proves the result is empty; ``True`` decides nothing.
        O(distinct letters of the document) after the document's cached
        histogram exists.
        """
        doc = as_document(document)
        return self.admits_profile(len(doc), doc.letter_counts())

    def admits_profile(self, length: int, counts) -> bool:
        """:meth:`admits` on a bare ``(length, letter histogram)`` profile.

        The document-free form: a :class:`~repro.corpus.CorpusStore` keeps
        exactly this profile per document, so its residual filter runs the
        check straight off the persisted rows, hydrating only the
        survivors.  ``counts`` is any mapping letter → occurrences.
        """
        if self.empty:
            return False
        if length < self.min_length:
            return False
        if self.max_length is not None and length > self.max_length:
            return False
        ids = self.alphabet.ids
        if len(counts) > len(ids):
            return False  # pigeonhole: some letter is outside the alphabet
        for letter in counts:
            if letter not in ids:
                return False
        for letter, bound in self.required:
            if counts.get(letter, 0) < bound:
                return False
        return True

    def describe(self) -> str:
        """One line for ``CompiledPlan.explain()``."""
        if self.empty:
            return "empty language (rejects every document)"
        letters = "".join(self.alphabet.signature)
        window = f"length ≥ {self.min_length}"
        if self.max_length is not None:
            window = f"length in [{self.min_length}, {self.max_length}]"
        parts = [f"letters ⊆ {{{letters}}}", window]
        if self.required:
            bounds = ", ".join(
                f"{letter}×{bound}" if bound > 1 else letter
                for letter, bound in self.required
            )
            parts.append(f"requires {bounds}")
        return "; ".join(parts)

    def __repr__(self) -> str:
        return f"VAPrefilter({self.describe()})"


def _min_path_length(
    succ: "list[list[int]]", n_states: int, initial: int, accept_mask: int
) -> "int | None":
    """Minimum letter edges from ``initial`` to an accepting state, or
    ``None`` when no accepting state is reachable (empty language)."""
    frontier = seen = 1 << initial
    depth = 0
    while True:
        if frontier & accept_mask:
            return depth
        nxt = 0
        for row in succ:
            nxt |= apply_masks(row, frontier)
        nxt &= ~seen
        if not nxt:
            return None
        seen |= nxt
        frontier = nxt
        depth += 1


def _max_path_length(
    succ: "list[list[int]]", n_states: int, initial: int, accept_mask: int
) -> "int | None":
    """Longest letter path from ``initial`` to an accepting state, or
    ``None`` when the letter graph is cyclic (unbounded documents)."""
    out_masks = [0] * n_states
    for row in succ:
        for state in range(n_states):
            out_masks[state] |= row[state]
    # Kahn's algorithm over the reachable subgraph: cycle ⇒ unbounded.
    indegree = [0] * n_states
    for state in range(n_states):
        for target in iter_bits(out_masks[state]):
            indegree[target] += 1
    queue = deque(s for s in range(n_states) if not indegree[s])
    topo = []
    while queue:
        state = queue.popleft()
        topo.append(state)
        for target in iter_bits(out_masks[state]):
            indegree[target] -= 1
            if not indegree[target]:
                queue.append(target)
    if len(topo) < n_states:
        return None  # a cycle somewhere in the (trimmed) graph
    longest = [-1] * n_states
    longest[initial] = 0
    best = None
    for state in topo:
        here = longest[state]
        if here < 0:
            continue
        if (accept_mask >> state) & 1 and (best is None or here > best):
            best = here
        for target in iter_bits(out_masks[state]):
            if here + 1 > longest[target]:
                longest[target] = here + 1
    return best


def _min_letter_count(
    succ: "list[list[int]]",
    n_states: int,
    initial: int,
    accept_mask: int,
    letter_id: int,
) -> int:
    """Minimum number of ``letter_id`` edges on any accepting path (0-1
    BFS: edges of the letter weigh 1, every other letter weighs 0)."""
    edges: list[list[tuple[int, int]]] = [[] for _ in range(n_states)]
    for lid, row in enumerate(succ):
        weight = 1 if lid == letter_id else 0
        for state in range(n_states):
            targets = row[state]
            if targets:
                edges[state].append((weight, targets))
    dist: list[float] = [_INF] * n_states
    dist[initial] = 0
    queue: deque[int] = deque((initial,))
    while queue:
        state = queue.popleft()
        here = dist[state]
        for weight, targets in edges[state]:
            through = here + weight
            for target in iter_bits(targets):
                if through < dist[target]:
                    dist[target] = through
                    if weight:
                        queue.append(target)
                    else:
                        queue.appendleft(target)
    best = min((dist[state] for state in iter_bits(accept_mask)), default=_INF)
    return 0 if best is _INF else int(best)
