"""Structural operations on vset-automata.

Trimming, disjoint unions, projection, renaming, and the construction of
ad-hoc "mapping path" automata used by the document-dependent difference
compilation (Lemma 4.2).
"""

from __future__ import annotations

from typing import Iterable, Mapping as TMapping

from ..core.document import Document, as_document
from ..core.errors import SpannerError
from ..core.mapping import Mapping, Variable
from ..core.spans import Span
from .automaton import VA, Label, State, VarOp, close_op, open_op


def reachable_states(va: VA) -> frozenset[State]:
    """States reachable from the initial state."""
    seen: set[State] = {va.initial}
    stack = [va.initial]
    while stack:
        state = stack.pop()
        for _, target in va.transitions_from(state):
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return frozenset(seen)


def coreachable_states(va: VA) -> frozenset[State]:
    """States from which some accepting state is reachable."""
    incoming: dict[State, list[State]] = {}
    for src, _, dst in va.transitions:
        incoming.setdefault(dst, []).append(src)
    seen: set[State] = set(va.accepting)
    stack = list(va.accepting)
    while stack:
        state = stack.pop()
        for src in incoming.get(state, ()):
            if src not in seen:
                seen.add(src)
                stack.append(src)
    return frozenset(seen)


def trim(va: VA) -> VA:
    """Remove states that are unreachable or cannot reach acceptance.

    Every upper-bound construction in the paper assumes trimmed automata
    (all runs are prefixes of accepting runs).  If the initial state itself
    is dead the result is a one-state automaton accepting nothing.
    """
    alive = reachable_states(va) & coreachable_states(va)
    if va.initial not in alive:
        return VA(va.initial, (), (), (va.initial,))
    return VA(
        va.initial,
        (s for s in va.accepting if s in alive),
        (
            (p, label, q)
            for p, label, q in va.transitions
            if p in alive and q in alive
        ),
        alive,
    )


def is_trim(va: VA) -> bool:
    """Whether every state is both reachable and co-reachable."""
    return reachable_states(va) & coreachable_states(va) == va.states


def disjoint_union_states(first: VA, second: VA) -> tuple[VA, VA]:
    """Rename states so the two automata share none (tags 0/1)."""
    return (
        first.map_states(lambda s: (0, s)),
        second.map_states(lambda s: (1, s)),
    )


def union_va(first: VA, second: VA) -> VA:
    """``A1 ∪ A2`` by a fresh initial state with ε-edges to both initials.

    Preserves sequentiality; the standard positive-operator compilation
    from Freydenberger et al. [13].
    """
    left, right = disjoint_union_states(first, second)
    initial: State = ("u", 0)
    transitions = list(left.transitions) + list(right.transitions)
    transitions.append((initial, None, left.initial))
    transitions.append((initial, None, right.initial))
    return VA(
        initial,
        set(left.accepting) | set(right.accepting),
        transitions,
        set(left.states) | set(right.states) | {initial},
    )


def union_all(automata: Iterable[VA]) -> VA:
    """N-ary disjoint union with one fresh initial state."""
    tagged = [va.map_states(lambda s, i=i: (i, s)) for i, va in enumerate(automata)]
    initial: State = ("u", "all")
    transitions: list[tuple[State, Label, State]] = []
    accepting: set[State] = set()
    states: set[State] = {initial}
    for va in tagged:
        transitions.extend(va.transitions)
        transitions.append((initial, None, va.initial))
        accepting |= va.accepting
        states |= va.states
    return VA(initial, accepting, transitions, states)


def project_va(va: VA, keep: Iterable[Variable]) -> VA:
    """``π_Y(A)``: replace operations on dropped variables by ε.

    This is the schemaless projection of §2.4: each output mapping is
    restricted to ``Y``.  Preserves sequentiality (dropping operations can
    only make runs "more valid").
    """
    keep_set = frozenset(keep)

    def relabel(label: Label) -> Label:
        if isinstance(label, VarOp) and label.var not in keep_set:
            return None
        return label

    return va.map_labels(relabel)


def rename_variables(va: VA, renaming: TMapping[Variable, Variable]) -> VA:
    """Rename variables on all transitions (absent keys are kept)."""
    new_names = [renaming.get(v, v) for v in va.variables]
    if len(set(new_names)) != len(new_names):
        raise SpannerError(f"variable renaming {renaming} collapses variables")

    def relabel(label: Label) -> Label:
        if isinstance(label, VarOp):
            return VarOp(renaming.get(label.var, label.var), label.is_open)
        return label

    return va.map_labels(relabel)


def empty_va() -> VA:
    """A VA recognising the empty spanner (no mapping on any document)."""
    return VA(0, (), (), (0,))


def universal_empty_mapping_va(alphabet: Iterable[str]) -> VA:
    """A VA producing the empty mapping on every document over ``alphabet``
    (the Boolean spanner ``Σ*``)."""
    transitions: list[tuple[State, Label, State]] = [
        (0, letter, 0) for letter in alphabet
    ]
    return VA(0, (0,), transitions)


def ops_at_positions(mapping: Mapping, doc_length: int) -> list[list[VarOp]]:
    """The canonical operation schedule of a mapping.

    Returns a list of ``doc_length + 1`` buckets; bucket ``i`` (0-based)
    holds the operations performed at document position ``i+1``, ordered
    canonically: closes of earlier-opened spans first, then the open/close
    pairs of empty spans, then opens of spans that extend further.  Every
    open precedes its close, so replaying the schedule is a valid run.
    """
    buckets: list[list[VarOp]] = [[] for _ in range(doc_length + 1)]
    closes: list[list[VarOp]] = [[] for _ in range(doc_length + 1)]
    empties: list[list[VarOp]] = [[] for _ in range(doc_length + 1)]
    opens: list[list[VarOp]] = [[] for _ in range(doc_length + 1)]
    for var, span in mapping.items():
        if span.end > doc_length + 1:
            raise SpannerError(
                f"mapping {mapping} does not fit a document of length {doc_length}"
            )
        if span.is_empty:
            empties[span.begin - 1].append(open_op(var))
            empties[span.begin - 1].append(close_op(var))
        else:
            opens[span.begin - 1].append(open_op(var))
            closes[span.end - 1].append(close_op(var))
    for i in range(doc_length + 1):
        buckets[i] = (
            sorted(closes[i])
            + empties[i]  # open immediately followed by close, pairwise
            + sorted(opens[i])
        )
    return buckets


def mapping_path_va(mapping: Mapping, document: Document | str) -> VA:
    """An ad-hoc VA accepting exactly ``document`` with exactly ``mapping``.

    The backbone of the document-dependent compilations (Lemma 4.2): a
    straight-line automaton that reads the document letter by letter and
    performs the mapping's variable operations at the right positions.
    """
    doc = as_document(document)
    n = len(doc)
    buckets = ops_at_positions(mapping, n)
    transitions: list[tuple[State, Label, State]] = []
    state = 0
    for i in range(n + 1):
        for op in buckets[i]:
            transitions.append((state, op, state + 1))
            state += 1
        if i < n:
            transitions.append((state, doc.letter(i + 1), state + 1))
            state += 1
    return VA(0, (state,), transitions, range(state + 1))


def relation_va(mappings: Iterable[Mapping], document: Document | str) -> VA:
    """An ad-hoc VA whose output on ``document`` is exactly the given set
    of mappings (disjoint union of mapping paths)."""
    paths = [mapping_path_va(m, document) for m in mappings]
    if not paths:
        return empty_va()
    if len(paths) == 1:
        return paths[0]
    return union_all(paths)


def single_span_va(var: Variable, alphabet: Iterable[str]) -> VA:
    """The spanner ``Σ* x{Σ*} Σ*`` — every span of the document (utility)."""
    letters = list(alphabet)
    transitions: list[tuple[State, Label, State]] = []
    for letter in letters:
        transitions.append((0, letter, 0))
        transitions.append((1, letter, 1))
        transitions.append((2, letter, 2))
    transitions.append((0, open_op(var), 1))
    transitions.append((1, close_op(var), 2))
    return VA(0, (2,), transitions)


def shift_mapping(mapping: Mapping, offset: int) -> Mapping:
    """Translate every span of a mapping by ``offset`` (utility for
    workload generators)."""
    return Mapping({v: Span(s.begin + offset, s.end + offset) for v, s in mapping.items()})
