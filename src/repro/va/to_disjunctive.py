"""Sequential VA → disjunctive functional VA (Prop. 3.9(2), §3.2).

A *disjunctive functional* VA is a disjoint union of functional VAs behind
one fresh ε-initial state.  Every sequential VA has an equivalent one, but
the translation may square the state count per variable — a ``2^|Vars|``
blow-up overall, and Proposition 3.11 shows this is unavoidable.  The E4
bench traces exactly that curve.

Construction: semi-functionalise for all variables (making the used-set of
every accepting state definite), then for each used-set ``V`` realised by
some accepting state, carve out the sub-automaton of runs ending in those
states.  Each carved automaton is functional for ``V`` (see the argument in
DESIGN.md / the paper's Appendix A.2), and their union is equivalent to the
input.
"""

from __future__ import annotations

from ..core.errors import NotSequentialError, SpannerError
from ..core.mapping import Variable
from .automaton import VA
from .configurations import accepting_used_sets
from .normalization import dedup_transitions
from .operations import project_va, trim, union_all
from .properties import is_sequential
from .semi_functional import make_semi_functional


def functional_components(
    va: VA, max_components: int | None = None
) -> dict[frozenset[Variable], VA]:
    """Split a sequential VA into functional VAs, one per realised
    used-variable set.

    Args:
        va: a sequential VA.
        max_components: optional guard — raise :class:`SpannerError` when
            the number of realised used-sets exceeds it (the blow-up is
            exponential in the worst case; callers probing Prop. 3.11 use
            this to fail fast).

    Returns:
        A dict mapping each used-set ``V`` to a trimmed functional VA whose
        accepting runs use exactly ``V``.
    """
    if not is_sequential(va):
        raise NotSequentialError("disjunctive-functional translation requires a sequential VA")
    # Trim the semi-functional form before splitting: states that cannot
    # reach acceptance would otherwise be copied into every component.
    prepared = trim(make_semi_functional(trim(va), va.variables))
    used_sets = accepting_used_sets(prepared, va.variables)
    groups: dict[frozenset[Variable], list] = {}
    for state, used in used_sets.items():
        groups.setdefault(used, []).append(state)
    if max_components is not None and len(groups) > max_components:
        raise SpannerError(
            f"disjunctive-functional translation needs {len(groups)} components, "
            f"exceeding the limit of {max_components}"
        )
    components: dict[frozenset[Variable], VA] = {}
    for used, accepting in groups.items():
        component = trim(prepared.with_accepting(accepting))
        # Transitions mentioning unused variables cannot survive trimming
        # (they lead only to accepting states of other used-sets), but the
        # projection is a harmless belt-and-braces normalisation.  The
        # projection can leave parallel ε-duplicates of formerly distinct
        # operation edges; dedup + trim keeps the carved automata minimal.
        component = trim(dedup_transitions(project_va(component, used)))
        components[used] = component.relabelled()
    return components


def to_disjunctive_functional_va(va: VA, max_components: int | None = None) -> VA:
    """An equivalent disjunctive functional VA (Prop. 3.9(2)).

    The result is a fresh initial state with ε-edges into pairwise-disjoint
    functional components.
    """
    components = functional_components(va, max_components=max_components)
    if not components:
        return trim(va)  # the empty spanner
    ordered = [components[key] for key in sorted(components, key=sorted)]
    if len(ordered) == 1:
        return ordered[0]
    return trim(dedup_transitions(union_all(ordered))).relabelled()


def count_functional_components(va: VA) -> int:
    """Number of functional components the translation produces — the
    measurement reported by the E4 (Prop. 3.11) bench."""
    return len(functional_components(va))
