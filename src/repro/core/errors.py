"""Exception hierarchy for the spanner library.

Every error raised by this package derives from :class:`SpannerError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class SpannerError(Exception):
    """Base class for all errors raised by this library."""


class SpanError(SpannerError, ValueError):
    """An ill-formed span, e.g. ``[i, j>`` with ``j < i`` or ``i < 1``."""


class MappingError(SpannerError, ValueError):
    """An ill-formed mapping, e.g. merging incompatible mappings."""


class RegexSyntaxError(SpannerError, ValueError):
    """The textual regex-formula syntax could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class NotSequentialError(SpannerError, ValueError):
    """An algorithm requiring a sequential regex formula / VA got a
    non-sequential one.

    Most upper-bound constructions in the paper (Theorem 2.5, Lemma 3.2,
    Lemma 4.2, Theorem 4.8) are only correct — and only tractable — for
    sequential inputs, so we refuse loudly instead of producing garbage.
    """


class NotFunctionalError(SpannerError, ValueError):
    """An algorithm requiring a functional regex formula / VA got a
    non-functional one."""


class NotSynchronizedError(SpannerError, ValueError):
    """Theorem 4.8 requires the subtrahend to be synchronized for the
    common variables; this error reports a violation."""


class ArityError(SpannerError, ValueError):
    """An RA-tree instantiation does not match the tree's placeholders."""


class EvaluationError(SpannerError, RuntimeError):
    """An internal invariant of an evaluation algorithm was violated."""


class BackendUnavailableError(SpannerError, RuntimeError):
    """A requested enumeration backend cannot run in this environment,
    e.g. ``--backend vectorized`` without numpy installed.  The message
    names the missing dependency and the portable alternatives."""


class VariableError(SpannerError, ValueError):
    """An invalid variable usage, e.g. re-opening an already open variable
    in a context that forbids it."""
