"""Exception hierarchy for the spanner library.

Every error raised by this package derives from :class:`SpannerError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class SpannerError(Exception):
    """Base class for all errors raised by this library."""


class SpanError(SpannerError, ValueError):
    """An ill-formed span, e.g. ``[i, j>`` with ``j < i`` or ``i < 1``."""


class MappingError(SpannerError, ValueError):
    """An ill-formed mapping, e.g. merging incompatible mappings."""


class RegexSyntaxError(SpannerError, ValueError):
    """The textual regex-formula syntax could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class NotSequentialError(SpannerError, ValueError):
    """An algorithm requiring a sequential regex formula / VA got a
    non-sequential one.

    Most upper-bound constructions in the paper (Theorem 2.5, Lemma 3.2,
    Lemma 4.2, Theorem 4.8) are only correct — and only tractable — for
    sequential inputs, so we refuse loudly instead of producing garbage.
    """


class NotFunctionalError(SpannerError, ValueError):
    """An algorithm requiring a functional regex formula / VA got a
    non-functional one."""


class NotSynchronizedError(SpannerError, ValueError):
    """Theorem 4.8 requires the subtrahend to be synchronized for the
    common variables; this error reports a violation."""


class ArityError(SpannerError, ValueError):
    """An RA-tree instantiation does not match the tree's placeholders."""


class EvaluationError(SpannerError, RuntimeError):
    """An internal invariant of an evaluation algorithm was violated."""


class BackendUnavailableError(SpannerError, RuntimeError):
    """A requested enumeration backend cannot run in this environment,
    e.g. ``--backend vectorized`` without numpy installed.  The message
    names the missing dependency and the portable alternatives."""


class ExecutionInterrupted(SpannerError, RuntimeError):
    """An evaluation was stopped by an
    :class:`~repro.engine.guards.ExecutionGuard` before completing.

    Structured: :attr:`reason` names what tripped (``"deadline"``,
    ``"budget:mappings"``, ``"cancelled"``, …), :attr:`partial` carries
    whatever prefix of the result the tripped call had already produced
    (``None`` when the call materialises nothing), and :attr:`stats` is an
    :class:`~repro.engine.stats.EngineStats` snapshot taken at the trip
    (``None`` when the guard ran outside an engine).  With
    ``on_budget="partial"`` the engine absorbs this exception and returns
    the prefix with a truncation flag instead.
    """

    def __init__(
        self,
        message: str,
        reason: str = "interrupted",
        partial=None,
        stats=None,
    ):
        super().__init__(message)
        self.reason = reason
        self.partial = partial
        self.stats = stats


class DeadlineExceeded(ExecutionInterrupted):
    """The guard's wall-clock deadline passed mid-evaluation."""


class BudgetExceeded(ExecutionInterrupted):
    """A guard resource budget (mappings, states, edge rows, cache bytes)
    was exhausted mid-evaluation."""


class ExecutionCancelled(ExecutionInterrupted):
    """The guard's shared :class:`~repro.engine.guards.CancelToken` was
    cancelled by another thread."""


class StoreBusy(SpannerError, RuntimeError):
    """A corpus-store sqlite call stayed locked/busy through every retry
    of the store's bounded backoff policy.  Transient by nature — another
    writer holds the file — so retrying the whole operation later is
    legitimate; the store never half-applies a transaction."""


class StoreCorrupt(SpannerError, RuntimeError):
    """A corpus-store file is damaged (malformed database, failed
    integrity check) — *not* a transient lock, so it is never retried.
    The message carries the ``corpus rebuild --verify`` hint when the
    derived state (artifacts, posting lists) may still be repairable."""


class VariableError(SpannerError, ValueError):
    """An invalid variable usage, e.g. re-opening an already open variable
    in a context that forbids it."""
