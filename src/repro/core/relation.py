"""Span relations: finite sets of mappings — a spanner's output on one
document (paper §2.1).

:class:`SpanRelation` is the materialised form of ``⟦q⟧(d)``.  It behaves
like an immutable set of :class:`~repro.core.mapping.Mapping` objects and
carries the semantic (set-based) implementations of the algebraic operators
of §2.4, which serve as the *ground truth* against which every compiled
construction in :mod:`repro.algebra` is tested.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .document import Document
from .mapping import Mapping, Variable


class SpanRelation:
    """An immutable set of mappings.

    Unlike classical relations, the mappings need not share a domain
    (schemaless semantics).

    ``truncated`` marks relations produced by a guarded evaluation that
    tripped under ``on_budget="partial"``: the mappings are a prefix of
    the full result, not all of it.  The flag is presentation metadata —
    two relations with the same mappings compare and hash equal
    regardless of it.
    """

    __slots__ = ("_mappings", "truncated")

    def __init__(self, mappings: Iterable[Mapping] = (), truncated: bool = False):
        self._mappings = frozenset(mappings)
        self.truncated = truncated

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._mappings)

    def __iter__(self) -> Iterator[Mapping]:
        # Sorted for reproducible iteration/printing across runs.
        return iter(sorted(self._mappings, key=lambda m: m.items()))

    def __contains__(self, mapping: object) -> bool:
        return mapping in self._mappings

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SpanRelation):
            return self._mappings == other._mappings
        if isinstance(other, (set, frozenset)):
            return self._mappings == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._mappings)

    def __repr__(self) -> str:
        suffix = ", truncated" if self.truncated else ""
        if not self._mappings:
            return f"SpanRelation(∅{suffix})"
        rows = ", ".join(repr(m) for m in list(self)[:6])
        more = "" if len(self) <= 6 else f", … ({len(self)} total)"
        return f"SpanRelation({rows}{more}{suffix})"

    @property
    def is_empty(self) -> bool:
        """Whether this relation has no mappings at all."""
        return not self._mappings

    def variables(self) -> frozenset[Variable]:
        """The union of all mapping domains."""
        out: set[Variable] = set()
        for m in self._mappings:
            out |= m.domain
        return frozenset(out)

    # -- the algebra of §2.4 (semantic / materialised form) ------------------

    def union(self, other: "SpanRelation") -> "SpanRelation":
        """Set union ``P1 ∪ P2``."""
        return SpanRelation(self._mappings | other._mappings)

    def project(self, variables: Iterable[Variable]) -> "SpanRelation":
        """Projection ``π_Y``: restrict every mapping to ``Y``.

        Distinct mappings may collapse; duplicates are removed (the output
        is still a set).
        """
        keep = set(variables)
        return SpanRelation(m.restrict(keep) for m in self._mappings)

    def join(self, other: "SpanRelation") -> "SpanRelation":
        """Natural join ``P1 ⋈ P2``: unions of all compatible pairs."""
        out: set[Mapping] = set()
        for m1 in self._mappings:
            for m2 in other._mappings:
                if m1.is_compatible(m2):
                    out.add(m1.union(m2))
        return SpanRelation(out)

    def difference(self, other: "SpanRelation") -> "SpanRelation":
        """SPARQL difference ``P1 \\ P2``: mappings of P1 compatible with
        **no** mapping of P2.

        Note this is *not* set difference: a mapping of P1 is killed by any
        compatible mapping of P2, including ones with disjoint domains.
        """
        return SpanRelation(
            m1
            for m1 in self._mappings
            if not any(m1.is_compatible(m2) for m2 in other._mappings)
        )

    def select(self, predicate: Callable[[Mapping], bool]) -> "SpanRelation":
        """Keep only mappings satisfying ``predicate`` (utility, not in the
        paper's algebra)."""
        return SpanRelation(m for m in self._mappings if predicate(m))

    def rename(self, renaming: dict[Variable, Variable]) -> "SpanRelation":
        """Rename variables in every mapping."""
        return SpanRelation(m.rename(renaming) for m in self._mappings)

    # -- presentation ---------------------------------------------------------

    def to_table(
        self, document: Document | None = None, columns: list[Variable] | None = None
    ) -> str:
        """Render as an aligned text table in the style of Example 2.1.

        Empty cells stand for *undefined* variables.  When ``document`` is
        given, each span is also shown with the substring it covers.
        """
        if columns is None:
            columns = sorted(self.variables())
        header = [" "] + list(columns)
        rows: list[list[str]] = []
        for idx, m in enumerate(self, start=1):
            row = [f"µ{idx}:"]
            for var in columns:
                sp = m.get(var)
                if sp is None:
                    row.append("")
                elif document is not None:
                    row.append(f"{sp} {document.substring(sp)!r}")
                else:
                    row.append(str(sp))
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


#: The empty relation.
EMPTY_RELATION = SpanRelation()
