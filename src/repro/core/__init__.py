"""Core substrate: documents, spans, mappings, relations, spanner ABC."""

from .document import Alphabet, Document, as_document
from .errors import (
    ArityError,
    BackendUnavailableError,
    BudgetExceeded,
    DeadlineExceeded,
    EvaluationError,
    ExecutionCancelled,
    ExecutionInterrupted,
    MappingError,
    NotFunctionalError,
    NotSequentialError,
    NotSynchronizedError,
    RegexSyntaxError,
    SpanError,
    SpannerError,
    StoreBusy,
    StoreCorrupt,
    VariableError,
)
from .mapping import EMPTY_MAPPING, Mapping, Variable, compatible, merge
from .relation import EMPTY_RELATION, SpanRelation
from .spanner import ConstantSpanner, RelationSpanner, Spanner
from .spans import Span, all_spans, count_spans, span

__all__ = [
    "Alphabet",
    "ArityError",
    "BackendUnavailableError",
    "BudgetExceeded",
    "ConstantSpanner",
    "DeadlineExceeded",
    "Document",
    "EMPTY_MAPPING",
    "EMPTY_RELATION",
    "EvaluationError",
    "ExecutionCancelled",
    "ExecutionInterrupted",
    "Mapping",
    "MappingError",
    "NotFunctionalError",
    "NotSequentialError",
    "NotSynchronizedError",
    "RegexSyntaxError",
    "RelationSpanner",
    "Span",
    "SpanError",
    "SpanRelation",
    "Spanner",
    "SpannerError",
    "StoreBusy",
    "StoreCorrupt",
    "Variable",
    "VariableError",
    "all_spans",
    "as_document",
    "compatible",
    "count_spans",
    "merge",
    "span",
]
