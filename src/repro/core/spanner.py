"""The schemaless-spanner abstraction (paper §2.1).

A *schemaless spanner* is a function mapping every document to a finite set
of mappings.  This module defines the abstract interface shared by all
spanner representations in the library (regex formulas, vset-automata,
RA-tree queries, black boxes), plus small generic adapters.

The central methods:

* :meth:`Spanner.evaluate` — materialise ``⟦q⟧(d)`` as a
  :class:`~repro.core.relation.SpanRelation` (the paper's ``VqW(d)``).
* :meth:`Spanner.enumerate` — stream the mappings one by one; for the
  representations with polynomial-delay guarantees (sequential VAs,
  Theorem 2.5) this is the guaranteed-delay path.
* :meth:`Spanner.is_nonempty` — the nonemptiness decision problem of §2.5.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator

from .document import Document, as_document
from .mapping import Mapping, Variable
from .relation import SpanRelation


class Spanner(abc.ABC):
    """Abstract base class of all schemaless-spanner representations."""

    @abc.abstractmethod
    def variables(self) -> frozenset[Variable]:
        """The variables this representation *mentions* (``Vars(q)``).

        Under the schemaless semantics individual output mappings may use
        only a subset of these.
        """

    @abc.abstractmethod
    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        """Yield the mappings of ``⟦q⟧(d)``, without duplicates.

        Subclasses with enumeration guarantees (e.g. sequential VAs)
        document their delay bound here.
        """

    def evaluate(self, document: Document | str) -> SpanRelation:
        """Materialise ``⟦q⟧(d)`` as a relation."""
        return SpanRelation(self.enumerate(as_document(document)))

    def is_nonempty(self, document: Document | str) -> bool:
        """Decide whether ``⟦q⟧(d) ≠ ∅`` (first result only).

        Representations with a cheaper Boolean decision procedure (e.g.
        sequential VAs, whose bitmask forward pass skips enumeration
        entirely) override this.
        """
        for _ in self.enumerate(as_document(document)):
            return True
        return False

    def first(self, document: Document | str) -> Mapping | None:
        """The first mapping of ``⟦q⟧(d)`` in enumeration order, or
        ``None`` if the result is empty — for the guaranteed-delay
        representations this is the paper's "first answer after linear
        preprocessing" operation."""
        return next(iter(self.enumerate(as_document(document))), None)

    # -- batch protocol ------------------------------------------------------

    def evaluate_many(
        self, documents: Iterable[Document | str]
    ) -> list[SpanRelation]:
        """Materialise ``⟦q⟧(d)`` for a batch of documents.

        The default loops over :meth:`evaluate`; representations with
        document-independent compiled state (prepared VAs, engine-backed
        queries) share it across the whole batch.
        """
        return [self.evaluate(doc) for doc in documents]

    def enumerate_stream(
        self, documents: Iterable[Document | str]
    ) -> Iterator[tuple[int, Mapping]]:
        """Stream ``(document_index, mapping)`` pairs over a (possibly
        unbounded) document stream, lazily."""
        for index, doc in enumerate(documents):
            for mapping in self.enumerate(as_document(doc)):
                yield index, mapping

    def degree(self) -> int:
        """Upper bound on ``|dom(µ)|`` over all outputs (Corollary 5.3).

        The default bound is the number of mentioned variables; black-box
        spanners may override with a tighter constant.
        """
        return len(self.variables())

    # -- fluent algebra (semantic combinators; see repro.algebra for the
    #    compiled fast paths) ------------------------------------------------

    def join(self, other: "Spanner") -> "Spanner":
        """``self ⋈ other`` (§2.4), as a materialising combinator."""
        from ..algebra.operators import JoinSpanner

        return JoinSpanner(self, other)

    def union(self, other: "Spanner") -> "Spanner":
        """``self ∪ other`` (§2.4)."""
        from ..algebra.operators import UnionSpanner

        return UnionSpanner(self, other)

    def minus(self, other: "Spanner") -> "Spanner":
        """``self \\ other`` — the SPARQL-style difference (§2.4)."""
        from ..algebra.operators import DifferenceSpanner

        return DifferenceSpanner(self, other)

    def project(self, variables) -> "Spanner":
        """``π_Y(self)`` (§2.4)."""
        from ..algebra.operators import ProjectionSpanner

        return ProjectionSpanner(self, variables)

    def __and__(self, other: "Spanner") -> "Spanner":
        return self.join(other)

    def __or__(self, other: "Spanner") -> "Spanner":
        return self.union(other)

    def __sub__(self, other: "Spanner") -> "Spanner":
        return self.minus(other)


class RelationSpanner(Spanner):
    """A spanner wrapping an explicit per-document function.

    Used for black boxes and test fixtures: supply any function
    ``Document -> iterable of Mapping``.
    """

    def __init__(self, func, variables: frozenset[Variable] | set[Variable], name: str = "blackbox"):
        self._func = func
        self._variables = frozenset(variables)
        self._name = name

    def variables(self) -> frozenset[Variable]:
        return self._variables

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        doc = as_document(document)
        seen: set[Mapping] = set()
        for mapping in self._func(doc):
            if mapping not in seen:
                seen.add(mapping)
                yield mapping

    def __repr__(self) -> str:
        return f"RelationSpanner({self._name})"


class ConstantSpanner(Spanner):
    """A spanner returning a fixed relation on every document (test utility)."""

    def __init__(self, relation: SpanRelation):
        self._relation = relation

    def variables(self) -> frozenset[Variable]:
        return self._relation.variables()

    def enumerate(self, document: Document | str) -> Iterator[Mapping]:
        return iter(self._relation)

    def __repr__(self) -> str:
        return f"ConstantSpanner({len(self._relation)} mappings)"
