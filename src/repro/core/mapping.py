"""Mappings: partial assignments of spans to variables (paper §2.1, §2.4).

A *mapping* ``µ`` assigns spans to a finite set of variables — its *domain*
``dom(µ)``.  Under the schemaless semantics of Maturana et al. different
mappings produced by the same spanner may have different domains; the empty
mapping (empty domain) is a perfectly valid extraction result.

Compatibility (``µ1 ~ µ2``) and union (``µ1 ∪ µ2``) follow the SPARQL-style
definitions of §2.4: two mappings are compatible when they agree on every
common variable, and then their union is the mapping defined on the union of
the domains.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping as TMapping

from .errors import MappingError
from .spans import Span

#: Variables are plain strings; the paper's ``Vars`` is countably infinite
#: and disjoint from the alphabet, which we do not need to enforce — any
#: hashable string works.
Variable = str


class Mapping:
    """An immutable partial function from variables to spans.

    Construct from any ``dict``-like of variable → :class:`Span`::

        Mapping({"x": Span(1, 3), "y": Span(3, 3)})

    Mappings are hashable (usable inside relations/sets) and compare by
    value.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, assignments: TMapping[Variable, Span] | Iterable[tuple[Variable, Span]] = ()):
        items = dict(assignments)
        for var, sp in items.items():
            if not isinstance(var, str):
                raise MappingError(f"variable must be str, got {type(var).__name__}")
            if not isinstance(sp, Span):
                raise MappingError(
                    f"value for {var!r} must be Span, got {type(sp).__name__}"
                )
        # Store as a sorted tuple so that equal mappings hash equally.
        self._items: tuple[tuple[Variable, Span], ...] = tuple(
            sorted(items.items())
        )
        self._hash = hash(self._items)

    @classmethod
    def from_arrays(
        cls, items: tuple[tuple[Variable, Span], ...]
    ) -> "Mapping":
        """Trusted bulk constructor: build a mapping directly from a
        **sorted** tuple of ``(variable, Span)`` pairs with unique
        variables, skipping the per-item validation and re-sorting of
        ``__init__``.

        This is the emission path of the vectorized batched enumerator
        (:mod:`repro.va.vectorized`), which reconstructs whole blocks of
        accepting paths at once — per-mapping validation there would cost
        more than the reconstruction itself.  Callers own the invariants;
        a mapping built from unsorted or duplicated items breaks equality
        and hashing.  The result is indistinguishable from a validated
        ``Mapping`` (same ``_items`` layout, same hash).
        """
        self = object.__new__(cls)
        self._items = items
        self._hash = hash(items)
        return self

    # -- basic protocol ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Variable]:
        return (var for var, _ in self._items)

    def __contains__(self, var: object) -> bool:
        return any(v == var for v, _ in self._items)

    def __getitem__(self, var: Variable) -> Span:
        for v, sp in self._items:
            if v == var:
                return sp
        raise KeyError(var)

    def get(self, var: Variable, default: Span | None = None) -> Span | None:
        """Span assigned to ``var``, or ``default`` when undefined."""
        for v, sp in self._items:
            if v == var:
                return sp
        return default

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}↦{sp}" for v, sp in self._items)
        return f"{{{inner}}}"

    # -- the paper's operations --------------------------------------------

    @property
    def domain(self) -> frozenset[Variable]:
        """``dom(µ)``: the set of variables this mapping assigns."""
        return frozenset(v for v, _ in self._items)

    def items(self) -> tuple[tuple[Variable, Span], ...]:
        """The (variable, span) pairs, sorted by variable name."""
        return self._items

    def is_compatible(self, other: "Mapping") -> bool:
        """SPARQL compatibility: agreement on every common variable.

        Mappings with disjoint domains are vacuously compatible — this is
        the crux of why the schemaless difference is subtle (§4).
        """
        if len(self._items) > len(other._items):
            self, other = other, self  # iterate over the smaller one
        for var, sp in self._items:
            other_sp = other.get(var)
            if other_sp is not None and other_sp != sp:
                return False
        return True

    def union(self, other: "Mapping") -> "Mapping":
        """``µ1 ∪ µ2`` for compatible mappings; raises otherwise."""
        if not self.is_compatible(other):
            raise MappingError(f"cannot union incompatible mappings {self} and {other}")
        merged = dict(self._items)
        merged.update(other._items)
        return Mapping(merged)

    def restrict(self, variables: Iterable[Variable]) -> "Mapping":
        """``µ ↾ Y``: the restriction to ``dom(µ) ∩ Y`` (projection, §2.4)."""
        keep = set(variables)
        return Mapping({v: sp for v, sp in self._items if v in keep})

    def drop(self, variables: Iterable[Variable]) -> "Mapping":
        """The restriction to ``dom(µ) \\ variables``."""
        lose = set(variables)
        return Mapping({v: sp for v, sp in self._items if v not in lose})

    def rename(self, renaming: TMapping[Variable, Variable]) -> "Mapping":
        """Rename variables; variables absent from ``renaming`` are kept."""
        renamed = {renaming.get(v, v): sp for v, sp in self._items}
        if len(renamed) != len(self._items):
            raise MappingError(f"renaming {renaming} collapses variables of {self}")
        return Mapping(renamed)

    def as_dict(self) -> dict[Variable, Span]:
        """A plain mutable ``dict`` copy of the assignments."""
        return dict(self._items)


#: The empty mapping — produced e.g. by a Boolean spanner that matched.
EMPTY_MAPPING = Mapping()


def compatible(first: Mapping, second: Mapping) -> bool:
    """Function form of :meth:`Mapping.is_compatible`."""
    return first.is_compatible(second)


def merge(first: Mapping, second: Mapping) -> Mapping:
    """Function form of :meth:`Mapping.union`."""
    return first.union(second)
