"""Spans: intervals of positions inside a document (paper §2.1).

A span ``[i, j>`` with ``1 <= i <= j`` marks the substring ``d[i..j-1]`` of a
document ``d`` (1-based, end-exclusive, exactly as in Fagin et al. and the
paper).  ``[i, i>`` is an *empty* span; note that ``[i, i>`` and ``[j, j>``
with ``i != j`` are **different objects** even though both denote the empty
string — span identity is positional, not textual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import SpanError


@dataclass(frozen=True, slots=True, order=True)
class Span:
    """A span ``[begin, end>`` of a document, 1-based and end-exclusive.

    Attributes:
        begin: first position covered (1-based).
        end: one past the last position covered; ``end == begin`` for an
            empty span.
    """

    begin: int
    end: int

    def __post_init__(self) -> None:
        if self.begin < 1:
            raise SpanError(f"span begin must be >= 1, got {self.begin}")
        if self.end < self.begin:
            raise SpanError(
                f"span end must be >= begin, got [{self.begin}, {self.end}>"
            )

    def __str__(self) -> str:  # the paper's [i, j> notation
        return f"[{self.begin}, {self.end}>"

    def __len__(self) -> int:
        return self.end - self.begin

    @property
    def is_empty(self) -> bool:
        """Whether this span denotes the empty string."""
        return self.begin == self.end

    def contains(self, other: "Span") -> bool:
        """Whether ``other`` lies fully inside this span."""
        return self.begin <= other.begin and other.end <= self.end

    def overlaps(self, other: "Span") -> bool:
        """Whether the two spans share at least one position.

        Empty spans overlap nothing (they cover no position).
        """
        return max(self.begin, other.begin) < min(self.end, other.end)

    def precedes(self, other: "Span") -> bool:
        """Whether this span ends at or before ``other`` begins."""
        return self.end <= other.begin

    def shift(self, offset: int) -> "Span":
        """Return this span translated by ``offset`` positions."""
        return Span(self.begin + offset, self.end + offset)


def span(begin: int, end: int) -> Span:
    """Convenience constructor mirroring the paper's ``[i, j>`` notation."""
    return Span(begin, end)


def all_spans(length: int) -> Iterator[Span]:
    """Yield every span of a document of the given length.

    ``spans(d)`` in the paper: all ``[i, j>`` with ``1 <= i <= j <= len+1``.
    There are ``(length+1)(length+2)/2`` of them.
    """
    if length < 0:
        raise SpanError(f"document length must be >= 0, got {length}")
    for i in range(1, length + 2):
        for j in range(i, length + 2):
            yield Span(i, j)


def count_spans(length: int) -> int:
    """Number of spans of a document of the given length."""
    if length < 0:
        raise SpanError(f"document length must be >= 0, got {length}")
    return (length + 1) * (length + 2) // 2
