"""Documents: finite strings over a finite alphabet (paper §2.1).

A :class:`Document` is a thin immutable wrapper around ``str`` that adds the
paper's 1-based span addressing (``d[i, j>`` denotes ``σ_i … σ_{j-1}``) plus
a few convenience queries used throughout the library.  Wrapping instead of
subclassing ``str`` keeps slicing semantics explicit: plain integer slicing
on a Document is deliberately not supported — use spans.
"""

from __future__ import annotations

from typing import Iterator

from .errors import SpanError
from .spans import Span, all_spans


class Document:
    """An input document: an immutable string with span-based access."""

    __slots__ = ("_text",)

    def __init__(self, text: str):
        self._text = text

    @property
    def text(self) -> str:
        """The raw underlying string."""
        return self._text

    def __len__(self) -> int:
        return len(self._text)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Document):
            return self._text == other._text
        if isinstance(other, str):
            return self._text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Document", self._text))

    def __repr__(self) -> str:
        preview = self._text if len(self._text) <= 40 else self._text[:37] + "..."
        return f"Document({preview!r})"

    def __iter__(self) -> Iterator[str]:
        return iter(self._text)

    def letter(self, position: int) -> str:
        """The letter ``σ_position`` (1-based), as in the paper."""
        if not 1 <= position <= len(self._text):
            raise SpanError(
                f"letter position {position} out of range 1..{len(self._text)}"
            )
        return self._text[position - 1]

    def substring(self, s: Span) -> str:
        """The substring ``d[i, j>`` covered by span ``s``."""
        if s.end > len(self._text) + 1:
            raise SpanError(f"span {s} exceeds document of length {len(self._text)}")
        return self._text[s.begin - 1 : s.end - 1]

    def full_span(self) -> Span:
        """The span ``[1, |d|+1>`` covering the whole document."""
        return Span(1, len(self._text) + 1)

    def spans(self) -> Iterator[Span]:
        """All spans of this document (``spans(d)`` in the paper)."""
        return all_spans(len(self._text))

    def alphabet(self) -> frozenset[str]:
        """The set of letters actually occurring in this document."""
        return frozenset(self._text)


def as_document(value: "Document | str") -> Document:
    """Coerce a ``str`` or :class:`Document` into a :class:`Document`.

    Public API entry points accept either, so user code can pass plain
    strings everywhere.
    """
    if isinstance(value, Document):
        return value
    if isinstance(value, str):
        return Document(value)
    raise TypeError(f"expected str or Document, got {type(value).__name__}")
