"""Documents: finite strings over a finite alphabet (paper §2.1).

A :class:`Document` is a thin immutable wrapper around ``str`` that adds the
paper's 1-based span addressing (``d[i, j>`` denotes ``σ_i … σ_{j-1}``) plus
a few convenience queries used throughout the library.  Wrapping instead of
subclassing ``str`` keeps slicing semantics explicit: plain integer slicing
on a Document is deliberately not supported — use spans.

:class:`Alphabet` is the interned dense letter → integer-id mapping the
indexed evaluation substrate runs on: the hot forward pass indexes
precomputed per-letter tables by these ids instead of hashing one-character
strings.  :meth:`Document.encoded` caches the document's id array per
alphabet signature, so evaluating many automata sharing an alphabet (or one
automaton many times) encodes each document exactly once.
"""

from __future__ import annotations

from collections import Counter
from itertools import groupby
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from .errors import SpanError
from .spans import Span, all_spans


class Alphabet:
    """An interned, immutable mapping of letters to dense ids ``0..k-1``.

    Construct via :meth:`Alphabet.of`, which canonicalises the letter set
    (sorted order) and interns the result: equal letter sets share one
    instance process-wide, so id assignments agree and per-document
    encodings are shared across every automaton over the same letters.

    Attributes:
        signature: the sorted tuple of letters — the interning key and the
            key documents cache their encodings under.
        ids: ``ids[letter]`` is the dense id of ``letter``.
    """

    __slots__ = ("signature", "ids")

    _interned: "dict[tuple[str, ...], Alphabet]" = {}

    def __init__(self, signature: tuple[str, ...]):
        self.signature = signature
        self.ids = {letter: index for index, letter in enumerate(signature)}

    @classmethod
    def of(cls, letters: Iterable[str]) -> "Alphabet":
        signature = tuple(sorted(set(letters)))
        found = cls._interned.get(signature)
        if found is None:
            found = cls._interned[signature] = cls(signature)
        return found

    def __len__(self) -> int:
        return len(self.signature)

    def __contains__(self, letter: str) -> bool:
        return letter in self.ids

    def id_of(self, letter: str) -> int:
        """The dense id of ``letter``, or ``-1`` if not in the alphabet."""
        return self.ids.get(letter, -1)

    def encode(self, text: str) -> tuple[int, ...]:
        """``text`` as a tuple of letter ids (``-1`` for unknown letters)."""
        get = self.ids.get
        return tuple(get(ch, -1) for ch in text)

    def __repr__(self) -> str:
        preview = "".join(self.signature[:16])
        if len(self.signature) > 16:
            preview += "…"
        return f"Alphabet({preview!r})"


#: Per-document encoding caches keep at most this many alphabets.
_ENCODING_CACHE_LIMIT = 8


class Document:
    """An input document: an immutable string with span-based access."""

    __slots__ = ("_text", "_encodings", "_runs", "_letter_counts")

    def __init__(self, text: str):
        self._text = text
        self._encodings: dict[tuple[str, ...], tuple[int, ...]] | None = None
        self._runs: tuple[tuple[str, int, int], ...] | None = None
        self._letter_counts: "Mapping[str, int] | None" = None

    @classmethod
    def from_cached(
        cls,
        text: str,
        runs: "tuple[tuple[str, int, int], ...] | None" = None,
        letter_counts: "Mapping[str, int] | None" = None,
    ) -> "Document":
        """A document with its derived artifacts pre-seeded.

        The hydration entry point of :class:`~repro.corpus.CorpusStore`:
        a store that already persisted the run-length encoding and the
        letter histogram hands them straight to the document, so
        :meth:`runs` and :meth:`letter_counts` never walk the text again.
        Callers are trusted to pass artifacts consistent with ``text`` —
        the store's ``verify()`` path cross-checks them.
        """
        doc = cls(text)
        if runs is not None:
            doc._runs = tuple(runs)
        if letter_counts is not None:
            doc._letter_counts = MappingProxyType(dict(letter_counts))
        return doc

    @property
    def text(self) -> str:
        """The raw underlying string."""
        return self._text

    def __len__(self) -> int:
        return len(self._text)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Document):
            return self._text == other._text
        if isinstance(other, str):
            return self._text == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Document", self._text))

    def __reduce__(self):
        # Caches are derived data (and the histogram view is an unpicklable
        # MappingProxyType): pickle the text alone, recompute on demand.
        return (self.__class__, (self._text,))

    def __repr__(self) -> str:
        preview = self._text if len(self._text) <= 40 else self._text[:37] + "..."
        return f"Document({preview!r})"

    def __iter__(self) -> Iterator[str]:
        return iter(self._text)

    def letter(self, position: int) -> str:
        """The letter ``σ_position`` (1-based), as in the paper."""
        if not 1 <= position <= len(self._text):
            raise SpanError(
                f"letter position {position} out of range 1..{len(self._text)}"
            )
        return self._text[position - 1]

    def substring(self, s: Span) -> str:
        """The substring ``d[i, j>`` covered by span ``s``."""
        if s.end > len(self._text) + 1:
            raise SpanError(f"span {s} exceeds document of length {len(self._text)}")
        return self._text[s.begin - 1 : s.end - 1]

    def full_span(self) -> Span:
        """The span ``[1, |d|+1>`` covering the whole document."""
        return Span(1, len(self._text) + 1)

    def spans(self) -> Iterator[Span]:
        """All spans of this document (``spans(d)`` in the paper)."""
        return all_spans(len(self._text))

    def alphabet(self) -> frozenset[str]:
        """The set of letters actually occurring in this document."""
        return frozenset(self._text)

    def runs(self) -> tuple[tuple[str, int, int], ...]:
        """The maximal letter runs of this document, as ``(letter, start,
        length)`` triples with 0-based ``start`` offsets.

        Computed once and cached — the run-length encoding is alphabet
        independent, so one RLE serves every automaton.  The run-compressed
        transition kernel (:mod:`repro.va.kernel`) advances each run in
        ``O(log length)`` mask applications instead of ``O(length)``
        per-letter steps.
        """
        cached = self._runs
        if cached is None:
            out = []
            position = 0
            for letter, group in groupby(self._text):
                length = sum(1 for _ in group)
                out.append((letter, position, length))
                position += length
            cached = self._runs = tuple(out)
        return cached

    def letter_counts(self) -> "Mapping[str, int]":
        """The letter histogram of this document (letter → occurrences).

        Computed once and cached.  The VA-derived prefilter
        (:mod:`repro.va.prefilter`) compares it against a query's
        must-occur letter bounds to reject non-matching documents in O(1)
        before any match graph is built.  The returned mapping is a
        read-only :class:`types.MappingProxyType` view of the cache — a
        caller mutating it would silently corrupt every later prefilter
        decision, so mutation raises instead.  (:meth:`runs` needs no such
        guard: it returns a tuple.)
        """
        cached = self._letter_counts
        if cached is None:
            cached = self._letter_counts = MappingProxyType(
                dict(Counter(self._text))
            )
        return cached

    def append(self, suffix: "str | Document") -> "Document":
        """A new document holding ``self.text + suffix``, with every cached
        artifact *extended* instead of recomputed.

        The incremental entry point of the tailing runtime: the run-length
        encoding, the letter histogram, and every cached per-alphabet
        encoding of the result are derived from this document's caches in
        O(len(suffix)) — appending letters that merge with the last maximal
        run extends that run in place (O(1) amortized), so repeatedly
        tailing a growing document never re-walks the prefix.  ``self`` is
        untouched (documents stay immutable); an empty suffix returns a
        document sharing the caches outright.
        """
        if isinstance(suffix, Document):
            suffix = suffix._text
        if not suffix:
            doc = Document.__new__(Document)
            doc._text = self._text
            doc._encodings = dict(self._encodings) if self._encodings else None
            doc._runs = self.runs()
            doc._letter_counts = self.letter_counts()
            return doc
        doc = Document.__new__(Document)
        doc._text = self._text + suffix
        # Runs: the suffix's own runs, with its first run merged into our
        # last one when the letters agree.
        old_runs = self.runs()
        out = list(old_runs)
        position = len(self._text)
        for letter, group in groupby(suffix):
            length = sum(1 for _ in group)
            if out and position == out[-1][1] + out[-1][2] and out[-1][0] == letter:
                last = out[-1]
                out[-1] = (letter, last[1], last[2] + length)
            else:
                out.append((letter, position, length))
            position += length
        doc._runs = tuple(out)
        # Histogram: add the suffix's counts on top of ours.
        counts = dict(self.letter_counts())
        for letter, count in Counter(suffix).items():
            counts[letter] = counts.get(letter, 0) + count
        doc._letter_counts = MappingProxyType(counts)
        # Encodings: extend every cached per-alphabet id tuple by the
        # suffix's ids (the prefix ids are position independent).
        if self._encodings:
            doc._encodings = {
                signature: ids + Alphabet.of(signature).encode(suffix)
                for signature, ids in self._encodings.items()
            }
        else:
            doc._encodings = None
        return doc

    def encoded(self, alphabet: Alphabet) -> tuple[int, ...]:
        """This document as dense letter ids under ``alphabet``.

        Letters outside the alphabet encode as ``-1``.  The result is
        cached per alphabet signature (bounded to ``_ENCODING_CACHE_LIMIT``
        alphabets, oldest evicted first), so the indexed forward pass over
        a corpus pays the string walk once per (document, alphabet) pair.
        """
        cache = self._encodings
        if cache is None:
            cache = self._encodings = {}
        key = alphabet.signature
        ids = cache.get(key)
        if ids is None:
            ids = cache[key] = alphabet.encode(self._text)
            if len(cache) > _ENCODING_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
        return ids


def as_document(value: "Document | str") -> Document:
    """Coerce a ``str`` or :class:`Document` into a :class:`Document`.

    Public API entry points accept either, so user code can pass plain
    strings everywhere.
    """
    if isinstance(value, Document):
        return value
    if isinstance(value, str):
        return Document(value)
    raise TypeError(f"expected str or Document, got {type(value).__name__}")
