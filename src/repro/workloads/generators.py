"""Parametrised workload generators for the experiment suite.

* random documents and random sequential regex formulas / VAs — the
  stand-in for the paper's large machine-built extractors (§1's
  ANN-extracted automata with tens of thousands of states);
* the Proposition-3.11 family (exponential sequential → disjunctive
  functional blow-up);
* the Example-3.10 sequential VA family, built directly as an automaton;
* the NFA family with exponentially large complement DFAs, witnessing why
  static difference compilation is hopeless (E11, [17]);
* synchronized subtrahend families for the Theorem-4.8 experiments.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.document import Document
from ..regex.ast import RegexFormula
from ..regex.builder import capture, chars, concat, opt, sigma_star, star, sym, union
from ..va.automaton import VA, Label, State, close_op, open_op


def random_document(alphabet: Sequence[str], length: int, rng: random.Random) -> Document:
    """A uniformly random document."""
    return Document("".join(rng.choice(list(alphabet)) for _ in range(length)))


def random_sequential_formula(
    n_vars: int,
    rng: random.Random,
    alphabet: Sequence[str] = "ab",
    depth: int = 3,
) -> RegexFormula:
    """A random *sequential* regex formula mentioning ``n_vars`` variables.

    Built compositionally so sequentiality holds by construction: variables
    are partitioned across concatenation factors, never placed under stars,
    and unions receive either variable-disjoint or identically-scoped
    branches.
    """
    variables = [f"v{i}" for i in range(n_vars)]
    rng.shuffle(variables)
    return _random_formula(variables, rng, list(alphabet), depth)


def _random_formula(
    variables: list[str], rng: random.Random, alphabet: list[str], depth: int
) -> RegexFormula:
    if depth <= 0:
        if variables:  # depth exhausted: emit the remaining captures plainly
            return concat(
                *(capture(var, _random_atom(rng, alphabet)) for var in variables)
            ) if len(variables) > 1 else capture(variables[0], _random_atom(rng, alphabet))
        return _random_atom(rng, alphabet)
    if not variables and rng.random() < 0.4:
        return _random_atom(rng, alphabet)
    shape = rng.random()
    if variables and shape < 0.35:
        var, rest = variables[0], variables[1:]
        inner = _random_formula([], rng, alphabet, depth - 1)
        body = capture(var, inner)
        if rest:
            return concat(body, _random_formula(rest, rng, alphabet, depth - 1))
        return body
    if shape < 0.6 and len(variables) >= 2:
        split = rng.randint(1, len(variables) - 1)
        return concat(
            _random_formula(variables[:split], rng, alphabet, depth - 1),
            _random_formula(variables[split:], rng, alphabet, depth - 1),
        )
    if shape < 0.8:
        # Union: both branches may use the same variables (sequentiality
        # allows it; functionality requires it).
        left = _random_formula(variables, rng, alphabet, depth - 1)
        if rng.random() < 0.5:
            right = _random_formula(variables, rng, alphabet, depth - 1)
        else:
            right = _random_formula([], rng, alphabet, depth - 1)
        return union(left, right)
    if shape < 0.9:
        return concat(
            star(_random_atom(rng, alphabet)),
            _random_formula(variables, rng, alphabet, depth - 1),
        )
    return concat(
        _random_formula(variables, rng, alphabet, depth - 1),
        opt(_random_atom(rng, alphabet)),
    )


def _random_atom(rng: random.Random, alphabet: list[str]) -> RegexFormula:
    kind = rng.random()
    if kind < 0.4:
        return sym(rng.choice(alphabet))
    if kind < 0.7:
        return chars(rng.sample(alphabet, min(len(alphabet), rng.randint(1, 2))))
    if kind < 0.9:
        return star(chars(alphabet))
    return concat(sym(rng.choice(alphabet)), sym(rng.choice(alphabet)))


# -- Proposition 3.11: the exponential-blow-up family ---------------------------


def prop311_formula(n: int, alphabet: Sequence[str] = "ab") -> RegexFormula:
    """``(x1{Σ*} ∨ y1{Σ*}) ⋯ (xn{Σ*} ∨ yn{Σ*})`` (Example 3.10): any
    equivalent disjunctive functional formula needs ≥ 2^n disjuncts."""
    sigma = sigma_star(alphabet)
    factors = [
        union(capture(f"x{i}", sigma), capture(f"y{i}", sigma))
        for i in range(1, n + 1)
    ]
    return concat(*factors)


def prop311_va(n: int, alphabet: Sequence[str] = "ab") -> VA:
    """The 3n+1-state sequential VA of Example 3.10: every equivalent
    disjunctive functional VA needs ≥ 2^n states.

    The paper's figure shares one middle state between the ``x_i`` and
    ``y_i`` branches, which (read literally) admits invalid accepting runs
    (open ``x_i``, close ``y_i``); we use one middle state per branch so
    the automaton is sequential by construction, at the same 3n+1 state
    count (entry + two branch states per block, exits shared with the next
    entry).
    """
    transitions: list[tuple[State, Label, State]] = []
    for i in range(n):
        entry, via_x, via_y, exit_ = 3 * i, 3 * i + 1, 3 * i + 2, 3 * i + 3
        transitions.append((entry, open_op(f"x{i+1}"), via_x))
        transitions.append((entry, open_op(f"y{i+1}"), via_y))
        for letter in alphabet:
            transitions.append((via_x, letter, via_x))
            transitions.append((via_y, letter, via_y))
        transitions.append((via_x, close_op(f"x{i+1}"), exit_))
        transitions.append((via_y, close_op(f"y{i+1}"), exit_))
    return VA(0, (3 * n,), transitions)


# -- E11: static difference needs exponential complements ------------------------


def nth_from_end_formula(n: int) -> RegexFormula:
    """The Boolean language ``(a|b)* a (a|b)^{n-1}`` — "the n-th letter
    from the end is a".  Its complement DFA needs ≥ 2^n states [17],
    so compiling a difference against it statically must blow up, while
    the ad-hoc compilation stays linear in the document."""
    parts: list[RegexFormula] = [star(chars("ab")), sym("a")]
    parts.extend(chars("ab") for _ in range(n - 1))
    return concat(*parts)


def nth_from_end_va(n: int) -> VA:
    """Automaton form of :func:`nth_from_end_formula` (n+1 states)."""
    transitions: list[tuple[State, Label, State]] = [
        (0, "a", 0),
        (0, "b", 0),
        (0, "a", 1),
    ]
    for i in range(1, n):
        transitions.append((i, "a", i + 1))
        transitions.append((i, "b", i + 1))
    return VA(0, (n,), transitions)


# -- Theorem 4.8: synchronized subtrahend families -------------------------------


def synchronized_block_formula(
    n_vars: int, alphabet: Sequence[str] = "ab", separator: str = "c"
) -> RegexFormula:
    """``x1{Σ*} c x2{Σ*} c … c xk{Σ*}`` — functional and synchronized for
    all variables (no variable under any disjunction).  The subtrahend
    family of the E8 experiments."""
    sigma = sigma_star(alphabet)
    parts: list[RegexFormula] = []
    for i in range(1, n_vars + 1):
        if i > 1:
            parts.append(sym(separator))
        parts.append(capture(f"x{i}", sigma))
    return concat(*parts)


def unsynchronized_block_formula(
    n_vars: int, alphabet: Sequence[str] = "ab", separator: str = "c"
) -> RegexFormula:
    """Like :func:`synchronized_block_formula` but every block offers two
    disjunctive placements, breaking synchronizedness — the negative
    control of the E8 ablation."""
    sigma = sigma_star(alphabet)
    parts: list[RegexFormula] = []
    for i in range(1, n_vars + 1):
        if i > 1:
            parts.append(sym(separator))
        block = union(
            capture(f"x{i}", concat(sym(alphabet[0]), sigma)),
            concat(sym(alphabet[0]), capture(f"x{i}", sigma)),
        )
        parts.append(union(block, capture(f"x{i}", concat(sym(alphabet[1]), sigma))))
    return concat(*parts)
