"""Workload generators: the paper's examples, realistic extractors, and
parametrised families for the experiment suite.

Realistic end-to-end suites with golden outputs live under
:mod:`repro.workloads.packs`."""

from . import packs
from .generators import (
    nth_from_end_formula,
    nth_from_end_va,
    prop311_formula,
    prop311_va,
    random_document,
    random_sequential_formula,
    synchronized_block_formula,
    unsynchronized_block_formula,
)
from .regexes import (
    LIBRARY,
    TEXT_ALPHABET,
    anywhere,
    date_formula,
    email_formula,
    ipv4_formula,
    log_line_formula,
    phone_formula,
    url_formula,
    us_address_formula,
)
from .students import (
    ALPHABET,
    GAMMA,
    NEWLINE,
    STUDENTS_DOCUMENT,
    alpha_info,
    alpha_mail,
    alpha_name,
    alpha_phone,
    alpha_recommendation,
    alpha_student_mail,
    alpha_student_phone,
    alpha_uk_mail,
    generate_students,
)

__all__ = [
    "ALPHABET",
    "GAMMA",
    "LIBRARY",
    "NEWLINE",
    "STUDENTS_DOCUMENT",
    "TEXT_ALPHABET",
    "alpha_info",
    "alpha_mail",
    "alpha_name",
    "alpha_phone",
    "alpha_recommendation",
    "alpha_student_mail",
    "alpha_student_phone",
    "alpha_uk_mail",
    "anywhere",
    "date_formula",
    "email_formula",
    "generate_students",
    "ipv4_formula",
    "log_line_formula",
    "nth_from_end_formula",
    "nth_from_end_va",
    "packs",
    "phone_formula",
    "prop311_formula",
    "prop311_va",
    "random_document",
    "random_sequential_formula",
    "synchronized_block_formula",
    "unsynchronized_block_formula",
    "url_formula",
    "us_address_formula",
]
