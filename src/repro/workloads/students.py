"""The paper's running example: the students document and spanners
(Figure 1, Examples 2.1, 2.2, 2.4, 5.1) plus a scalable generator.

The alphabet is Γ ∪ Δ of Example 2.1: letters, digits, space, ``.``, ``@``,
and the end-of-line symbol (we use ``\\n`` for the paper's ``←``).
"""

from __future__ import annotations

import random
import string

from ..core.document import Document
from ..regex.ast import RegexFormula
from ..regex.builder import (
    capture,
    char_range,
    chars,
    concat,
    eps,
    lit,
    opt,
    plus,
    star,
    sym,
    union,
)

#: The paper's ``←`` end-of-line marker.
NEWLINE = "\n"

#: Γ of Example 2.1 (without the end-of-line symbol Δ).
GAMMA = frozenset(string.ascii_letters + string.digits + " .@")

#: Γ ∪ Δ — the full alphabet.
ALPHABET = GAMMA | {NEWLINE}

#: Figure 1's document (positions match the paper: "Rodion" starts at 1,
#: "Raskolnikov" at 8, "rr@edu.ru" at 20, and so on).
STUDENTS_DOCUMENT = Document(
    "Rodion Raskolnikov rr@edu.ru\n"
    "Zosimov 6222345 mov@edu.ru\n"
    "Pyotr Luzhin 6225545 luzi@edu.uk\n"
)


def _gamma_star() -> RegexFormula:
    """``Γ*``."""
    return star(chars(GAMMA))


def _lower_star() -> RegexFormula:
    """``γ = (a ∨ … ∨ z)*`` of Example 2.2."""
    return star(char_range("a", "z"))


def _name_token() -> RegexFormula:
    """``δ = (A ∨ … ∨ Z)(a ∨ … ∨ z)*`` of Example 2.2."""
    return concat(char_range("A", "Z"), star(char_range("a", "z")))


def alpha_mail(var: str = "xmail") -> RegexFormula:
    """``αmail := xmail{γ@γ.γ}`` (Example 2.2)."""
    g = _lower_star()
    return capture(var, concat(g, sym("@"), g, sym("."), g))


def alpha_name(first: str = "xfirst", last: str = "xlast") -> RegexFormula:
    """``αname := (xfirst{δ} ␣ xlast{δ}) ∨ xlast{δ}`` (Example 2.2) —
    sequential but not functional (the first name is optional)."""
    return union(
        concat(capture(first, _name_token()), sym(" "), capture(last, _name_token())),
        capture(last, _name_token()),
    )


def alpha_phone(var: str = "xphone") -> RegexFormula:
    """``αphone := xphone{β+}`` with ``β = (0 ∨ … ∨ 9)`` (Example 2.2;
    we use + rather than * so a phone number is nonempty)."""
    return capture(var, plus(char_range("0", "9")))


def _line_start() -> RegexFormula:
    """Anchor at a line start: either the document start or any prefix
    ending with a newline.  (The paper's ``Γ*·(ε∨←)`` prefix cannot skip
    earlier lines, since Γ excludes the newline; this is the intended
    reading.)"""
    return union(eps(), concat(star(chars(ALPHABET)), sym(NEWLINE)))


def alpha_info() -> RegexFormula:
    """``αinfo`` of Example 2.2: one student line anywhere in the document,
    extracting name (first optional), optional phone, and email."""
    return concat(
        _line_start(),
        alpha_name(),
        sym(" "),
        union(concat(alpha_phone(), sym(" ")), eps()),
        alpha_mail(),
        sym(NEWLINE),
        star(chars(ALPHABET)),
    )


def alpha_uk_mail(var: str = "xmail") -> RegexFormula:
    """``αUKm`` of Example 2.4: email addresses ending in ``uk``."""
    g = _lower_star()
    return concat(
        _line_start(),
        _gamma_star(),
        sym(" "),
        capture(var, concat(g, sym("@"), g, sym("."), lit("uk"))),
        sym(NEWLINE),
        star(chars(ALPHABET)),
    )


# -- Example 5.1: the extended corpus with recommendations ----------------------


def _line_field(student: str, field: RegexFormula) -> RegexFormula:
    """A line whose first token is the student name and which contains
    ``field`` as a later space-separated element."""
    return concat(
        _line_start(),
        capture(student, _name_token()),
        sym(" "),
        union(concat(_gamma_star(), sym(" ")), eps()),
        field,
        union(concat(sym(" "), _gamma_star()), eps()),
        sym(NEWLINE),
        star(chars(ALPHABET)),
    )


def alpha_student_mail(student: str = "xstdnt", mail: str = "xml") -> RegexFormula:
    """``αsm``: a student name with their email address (functional)."""
    g = _lower_star()
    return _line_field(student, capture(mail, concat(g, sym("@"), g, sym("."), g)))


def alpha_student_phone(student: str = "xstdnt", phone: str = "xphn") -> RegexFormula:
    """``αsp``: a student name with their phone number (functional)."""
    return _line_field(student, capture(phone, plus(char_range("0", "9"))))


def alpha_recommendation(student: str = "xstdnt", rec: str = "xrcmnd") -> RegexFormula:
    """``αnr``: a student name with a recommendation text — marked by the
    literal ``rec.`` prefix on the line (functional)."""
    return concat(
        _line_start(),
        capture(student, _name_token()),
        sym(" "),
        _gamma_star(),
        lit("rec."),
        capture(rec, star(chars(GAMMA - {"."}))),
        sym(NEWLINE),
        star(chars(ALPHABET)),
    )


# -- corpus generator -------------------------------------------------------------

_FIRST = ("Rodion", "Pyotr", "Sofya", "Arkady", "Dmitri", "Avdotya", "Porfiry")
_LAST = ("Raskolnikov", "Luzhin", "Marmeladov", "Svidrigailov", "Razumikhin", "Zosimov")
_DOMAINS = ("edu.ru", "edu.uk", "edu.de", "uni.uk", "lab.ru")
_RECOMMENDATIONS = ("good work", "great thesis", "excellent results", "weak attendance", "solid effort")


def generate_students(
    n_students: int,
    rng: random.Random,
    with_first_name: float = 0.7,
    with_phone: float = 0.6,
    with_recommendation: float = 0.0,
) -> Document:
    """A synthetic corpus in the Figure-1 line format, scalable for the
    document-length sweeps (E1/E7/E9).

    Each line: ``[First ]Last [phone ]mail@host.tld[ rec.text]\\n``.  The
    leading newline convention of Figure 1 is preserved by starting lines
    flush (the extractors handle both the first line and inner lines).
    """
    lines: list[str] = []
    for _ in range(n_students):
        parts: list[str] = []
        if rng.random() < with_first_name:
            parts.append(rng.choice(_FIRST))
        parts.append(rng.choice(_LAST))
        if rng.random() < with_phone:
            parts.append(str(rng.randint(6000000, 6999999)))
        user = "".join(rng.choice(string.ascii_lowercase) for _ in range(rng.randint(2, 5)))
        parts.append(f"{user}@{rng.choice(_DOMAINS)}")
        if rng.random() < with_recommendation:
            parts.append("rec." + rng.choice(_RECOMMENDATIONS))
        lines.append(" ".join(parts))
    return Document("\n".join(lines) + "\n")
