"""A library of realistic regex formulas (the paper's §1 motivation:
RegExLib-scale extractors for emails, dates, phone numbers, URLs,
addresses).

All formulas are *sequential*; most are functional.  They are built for
documents over :data:`TEXT_ALPHABET` and scale the automaton sizes into the
hundreds of states, matching the paper's observation that practical atomic
extractors are large enough that combined complexity is the right yardstick.
"""

from __future__ import annotations

import string

from ..regex.ast import RegexFormula
from ..regex.builder import (
    capture,
    char_range,
    chars,
    concat,
    eps,
    lit,
    opt,
    plus,
    star,
    sym,
    union,
)

#: Alphabet for the realistic workloads.
TEXT_ALPHABET = frozenset(string.ascii_letters + string.digits + " .,:@/-()\n")

_LOWER = char_range("a", "z")
_UPPER = char_range("A", "Z")
_DIGIT = char_range("0", "9")
_ALNUM = chars(string.ascii_letters + string.digits)


def _skip() -> RegexFormula:
    """Skip arbitrary context."""
    return star(chars(TEXT_ALPHABET))


def anywhere(body: RegexFormula) -> RegexFormula:
    """Wrap an extractor so it matches anywhere in a document."""
    return concat(_skip(), body, _skip())


def email_formula(user_var: str = "user", host_var: str = "host") -> RegexFormula:
    """An RFC-2822-flavoured mailbox extractor (cf. RegExLib id 711):
    captures the local part and the host separately."""
    word = plus(chars(string.ascii_lowercase + string.digits))
    local = concat(word, star(concat(chars(".-"), word)))
    domain = concat(word, plus(concat(sym("."), word)))
    return concat(capture(user_var, local), sym("@"), capture(host_var, domain))


def date_formula(
    day_var: str = "day", month_var: str = "month", year_var: str = "year"
) -> RegexFormula:
    """A date extractor (cf. RegExLib id 969): ``DD-MM-YYYY``,
    ``DD/MM/YYYY``, or ``DD Mon YYYY``."""
    two_digits = concat(_DIGIT, opt(_DIGIT))
    month_name = union(*(lit(m) for m in (
        "Jan", "Feb", "Mar", "Apr", "May", "Jun",
        "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    )))
    year = concat(_DIGIT, _DIGIT, _DIGIT, _DIGIT)
    sep = chars("-/ ")
    return concat(
        capture(day_var, two_digits),
        sep,
        capture(month_var, union(two_digits, month_name)),
        sep,
        capture(year_var, year),
    )


def phone_formula(var: str = "phone") -> RegexFormula:
    """A phone-number extractor: optional area code in parentheses, then
    dash/space-separated digit groups."""
    group = plus(_DIGIT)
    area = concat(sym("("), group, sym(")"), opt(sym(" ")))
    return capture(var, concat(opt(area), group, star(concat(chars("- "), group))))


def url_formula(host_var: str = "urlhost", path_var: str = "urlpath") -> RegexFormula:
    """A URL extractor: ``http[s]://host/path`` with separate captures."""
    word = plus(chars(string.ascii_lowercase + string.digits + "-"))
    host = concat(word, plus(concat(sym("."), word)))
    path_seg = plus(chars(string.ascii_letters + string.digits + ".-"))
    path = star(concat(sym("/"), path_seg))
    return concat(
        lit("http"), opt(sym("s")), lit("://"),
        capture(host_var, host),
        capture(path_var, path),
    )


def us_address_formula(
    number_var: str = "streetno", street_var: str = "street", zip_var: str = "zip"
) -> RegexFormula:
    """A simplified US street-address extractor (cf. RegExLib id 1564):
    ``123 Name St[, City], 12345``."""
    word = concat(_UPPER, star(_LOWER))
    suffix = union(*(lit(s) for s in ("St", "Ave", "Rd", "Blvd", "Ln", "Dr")))
    return concat(
        capture(number_var, plus(_DIGIT)),
        sym(" "),
        capture(street_var, concat(word, star(concat(sym(" "), word)), sym(" "), suffix)),
        star(concat(sym(","), sym(" "), word)),
        lit(", "),
        capture(zip_var, concat(_DIGIT, _DIGIT, _DIGIT, _DIGIT, _DIGIT)),
    )


def ipv4_formula(var: str = "ip") -> RegexFormula:
    """An IPv4 dotted-quad extractor (unvalidated octets, as most RegExLib
    entries do)."""
    octet = concat(_DIGIT, opt(_DIGIT), opt(_DIGIT))
    return capture(var, concat(octet, sym("."), octet, sym("."), octet, sym("."), octet))


def log_line_formula(
    ts_var: str = "ts", level_var: str = "level", msg_var: str = "msg"
) -> RegexFormula:
    """A system-log line extractor: ``HH:MM:SS LEVEL message`` — the
    log-analysis workload of §1."""
    two = concat(_DIGIT, _DIGIT)
    timestamp = concat(two, sym(":"), two, sym(":"), two)
    level = union(lit("INFO"), lit("WARN"), lit("ERROR"), lit("DEBUG"))
    message = star(chars(TEXT_ALPHABET - {"\n"}))
    return concat(
        capture(ts_var, timestamp),
        sym(" "),
        capture(level_var, level),
        sym(" "),
        capture(msg_var, message),
    )


#: The full library, for sweeps over "realistic extractor" inputs.
LIBRARY: dict[str, RegexFormula] = {
    "email": email_formula(),
    "date": date_formula(),
    "phone": phone_formula(),
    "url": url_formula(),
    "us_address": us_address_formula(),
    "ipv4": ipv4_formula(),
    "log_line": log_line_formula(),
}
