"""Workload packs: realistic extraction suites with golden outputs.

Each pack pairs a synthetic-but-realistic document generator with the
regex formulas that extract from it **and** pure-string golden oracles
computing the expected extractions independently of the spanner runtime —
so the packs double as correctness nets (engine output ≡ golden output)
and as benchmark corpora (the generators are deterministic per seed).

Packs:

* :mod:`repro.workloads.packs.server_logs` — timestamped access-log lines
  (the §1 log-analysis workload and the corpus of the incremental-append
  benchmark).
"""

from .server_logs import (
    error_timestamp_formula,
    generate_lines,
    generate_log,
    golden_error_timestamps,
    golden_fields,
)

__all__ = [
    "error_timestamp_formula",
    "generate_lines",
    "generate_log",
    "golden_error_timestamps",
    "golden_fields",
]
