"""Workload packs: realistic extraction suites with golden outputs.

Each pack pairs a synthetic-but-realistic document generator with the
regex formulas that extract from it **and** pure-string golden oracles
computing the expected extractions independently of the spanner runtime —
so the packs double as correctness nets (engine output ≡ golden output)
and as benchmark corpora (the generators are deterministic per seed).

Packs:

* :mod:`repro.workloads.packs.server_logs` — timestamped access-log lines
  (the §1 log-analysis workload and the corpus of the incremental-append
  benchmark).
* :mod:`repro.workloads.packs.csv_records` — comma-separated ledger
  exports (the enumeration-heavy record-scraping workload: one mapping
  per record, plus a per-field scraping query).
"""

from .csv_records import (
    field_formula,
    generate_csv,
    generate_records,
    golden_interior_fields,
    golden_record,
    golden_records,
    record_formula,
)
from .server_logs import (
    error_timestamp_formula,
    generate_lines,
    generate_log,
    golden_error_timestamps,
    golden_fields,
)

__all__ = [
    "error_timestamp_formula",
    "field_formula",
    "generate_csv",
    "generate_lines",
    "generate_log",
    "generate_records",
    "golden_error_timestamps",
    "golden_fields",
    "golden_interior_fields",
    "golden_record",
    "golden_records",
    "record_formula",
]
