"""The server-logs workload pack: synthetic-but-realistic access logs.

Lines follow the ``HH:MM:SS LEVEL message`` shape of
:func:`repro.workloads.regexes.log_line_formula`.  The generator is
deterministic per seed, stays inside :data:`~repro.workloads.regexes
.TEXT_ALPHABET`, and keeps messages free of colons and of the literal
level tokens — so a timestamp pattern or ``" ERROR "`` can only occur at
the head of a line, and the pure-string golden oracles below agree with
the spanner semantics exactly (one mapping per matching line).

The pack feeds three consumers:

* the workload tests — engine output ≡ golden output on random seeds;
* the tail-session tests — a realistic growing document whose appends
  merge runs and cross line boundaries;
* ``benchmarks/bench_e18_incremental.py`` — the monitoring corpus of the
  incremental-append sweeps (quiet streams via ``error_rate=0``).
"""

from __future__ import annotations

import random

from ...regex.ast import RegexFormula
from ...regex.builder import capture, char_range, chars, concat, lit, star
from ..regexes import TEXT_ALPHABET

#: The level tokens of :func:`~repro.workloads.regexes.log_line_formula`.
LEVELS = ("INFO", "WARN", "ERROR", "DEBUG")

#: Message templates: lowercase words, digits, and punctuation from
#: TEXT_ALPHABET — never a colon (no accidental timestamps) and never an
#: uppercase level token (no accidental ``" ERROR "``).
_TEMPLATES = (
    "request for /api/items/{n} handled in {m} ms",
    "user u{n} connected from host-{m}.internal",
    "cache warm for shard {n} ({m} entries)",
    "queue depth {n}, draining worker-{m}",
    "disk usage {n} percent on /data/vol{m}",
    "upstream replica-{n} slow, retrying in {m} ms",
    "connection reset by peer u{n} after {m} requests",
    "checksum mismatch in segment {n}, rewriting {m} bytes",
)


def generate_lines(
    n: int,
    seed: int = 0,
    error_rate: float = 0.05,
    start_second: int = 0,
) -> list[str]:
    """``n`` log lines, deterministic per ``(seed, error_rate,
    start_second)``.

    Timestamps advance monotonically (1–3 s per line, wrapping at
    midnight) from ``start_second`` — pass the previous batch's end to
    continue a stream across appends.  ``error_rate`` is the per-line
    probability of an ``ERROR`` level (``0`` generates the quiet
    monitoring stream the incremental benchmark measures).
    """
    rng = random.Random(f"{seed}/{error_rate}/{start_second}")
    lines = []
    second = start_second
    for _ in range(n):
        second = (second + rng.randrange(1, 4)) % 86400
        timestamp = (
            f"{second // 3600:02d}:{second % 3600 // 60:02d}:{second % 60:02d}"
        )
        if rng.random() < error_rate:
            level = "ERROR"
        else:
            level = rng.choice(("INFO", "WARN", "DEBUG"))
        message = rng.choice(_TEMPLATES).format(
            n=rng.randrange(1000), m=rng.randrange(1000)
        )
        lines.append(f"{timestamp} {level} {message}")
    return lines


def generate_log(
    n: int,
    seed: int = 0,
    error_rate: float = 0.05,
    start_second: int = 0,
) -> str:
    """The ``n``-line log as one newline-terminated document."""
    return "".join(
        line + "\n"
        for line in generate_lines(n, seed, error_rate, start_second)
    )


def _is_timestamp(text: str) -> bool:
    return (
        len(text) == 8
        and text[2] == ":"
        and text[5] == ":"
        and all(text[i].isdigit() for i in (0, 1, 3, 4, 6, 7))
    )


def golden_fields(line: str) -> "dict[str, str] | None":
    """The ``{ts, level, msg}`` fields of one well-formed log line, by
    pure string splitting — the oracle for
    :func:`~repro.workloads.regexes.log_line_formula` (which yields
    exactly one mapping per well-formed line), independent of the
    spanner runtime."""
    parts = line.split(" ", 2)
    if len(parts) != 3:
        return None
    timestamp, level, message = parts
    if level not in LEVELS or not _is_timestamp(timestamp):
        return None
    if any(ch not in TEXT_ALPHABET or ch == "\n" for ch in message):
        return None
    return {"ts": timestamp, "level": level, "msg": message}


def golden_error_timestamps(text: str) -> list[str]:
    """The timestamps of the ``ERROR`` lines of a pack-generated log, in
    document order — the oracle for :func:`error_timestamp_formula`
    (one mapping per ``ERROR`` line; duplicates kept, matching the
    one-span-per-line mapping count)."""
    out = []
    for line in text.splitlines():
        fields = golden_fields(line)
        if fields is not None and fields["level"] == "ERROR" and fields["msg"]:
            out.append(fields["ts"])
    return out


def error_timestamp_formula(ts_var: str = "ts") -> RegexFormula:
    """Capture the timestamp of an ``ERROR`` line, anywhere in a
    multi-line log — the monitoring query of the incremental benchmark
    (quiet streams keep its match graph empty, so a tail session answers
    each append in O(appended))."""
    digit = char_range("0", "9")
    two = concat(digit, digit)
    timestamp = concat(two, lit(":"), two, lit(":"), two)
    skip = star(chars(TEXT_ALPHABET))
    return concat(
        skip, capture(ts_var, timestamp), lit(" ERROR "), skip
    )
