"""The CSV-records workload pack: comma-separated ledger exports.

Documents are newline-terminated CSV with a header line and
``id,email,city,amount`` records::

    id,email,city,amount
    4021,grace.hopper17@mail.example.com,arlington,310.25
    4022,alan.turing3@example.org,london,18.00

The generator is deterministic per seed, stays inside
:data:`~repro.workloads.regexes.TEXT_ALPHABET`, and keeps every field
free of commas and newlines — so the comma/newline delimiters are
unambiguous and the pure-string golden oracles below agree with the
spanner semantics exactly.  A ``noise_rate`` fraction of lines are
free-text audit notes (never starting with a digit), which the record
formula must skip and the field formula treats like any other line.

This pack is the *enumeration-heavy* counterpart to
:mod:`~repro.workloads.packs.server_logs`: :func:`record_formula` yields
one four-variable mapping per record (thousands per document) and
:func:`field_formula` yields one mapping per interior field occurrence,
so full enumeration — not emptiness — dominates.  It feeds the workload
tests (engine ≡ golden on every backend) and the enumeration-throughput
benchmark section of ``benchmarks/bench_e16_kernel_prefilter.py``.
"""

from __future__ import annotations

import random
import string

from ...regex.ast import RegexFormula
from ...regex.builder import capture, char_range, chars, concat, lit, plus, star
from ..regexes import TEXT_ALPHABET

#: Field alphabets (all ⊂ TEXT_ALPHABET, never ``,`` or newline).
_DIGITS = string.digits
_LOCAL_CHARS = string.ascii_lowercase + string.digits + "."
_DOMAIN_CHARS = string.ascii_lowercase + string.digits + ".-"
_CITY_CHARS = string.ascii_lowercase + "-"
#: Anything a field may hold: TEXT_ALPHABET minus the two delimiters.
_FIELD_CHARS = "".join(sorted(TEXT_ALPHABET - {",", "\n"}))

_FIRST = ("ada", "grace", "alan", "edsger", "donald", "barbara", "tony", "edith")
_LAST = ("lovelace", "hopper", "turing", "dijkstra", "knuth", "liskov", "hoare", "clarke")
_HOSTS = ("example.org", "mail.example.com", "records.example.net", "ledger-eu.example.org")
_CITIES = ("london", "zurich", "austin", "eindhoven", "pasadena", "new-york", "arlington", "milton-keynes")
_NOTES = (
    "note: manual adjustment pending review",
    "audit trail rotated, see ledger archive",
    "balance carried over from prior export",
    "reconciliation run skipped (weekend)",
)

HEADER = "id,email,city,amount"


def generate_records(
    n: int, seed: int = 0, noise_rate: float = 0.0
) -> list[str]:
    """``n`` CSV lines (records and, at ``noise_rate``, free-text audit
    notes), deterministic per ``(seed, noise_rate)``.  Record ids ascend,
    mirroring an export in insertion order."""
    rng = random.Random(f"{seed}/{noise_rate}")
    lines = []
    record_id = rng.randrange(1000, 5000)
    for _ in range(n):
        if rng.random() < noise_rate:
            lines.append(rng.choice(_NOTES))
            continue
        record_id += rng.randrange(1, 3)
        email = (
            f"{rng.choice(_FIRST)}.{rng.choice(_LAST)}"
            f"{rng.randrange(100)}@{rng.choice(_HOSTS)}"
        )
        amount = f"{rng.randrange(10_000)}.{rng.randrange(100):02d}"
        lines.append(
            f"{record_id},{email},{rng.choice(_CITIES)},{amount}"
        )
    return lines


def generate_csv(n: int, seed: int = 0, noise_rate: float = 0.0) -> str:
    """The ``n``-line export as one newline-terminated document with the
    :data:`HEADER` line first — every record line is then delimited by
    newlines on *both* sides, which is what anchors
    :func:`record_formula` to whole lines."""
    return "".join(
        line + "\n"
        for line in [HEADER, *generate_records(n, seed, noise_rate)]
    )


# -- golden oracles (pure string code, no spanner machinery) ---------------


def golden_record(line: str) -> "dict[str, str] | None":
    """The ``{id, email, city, amount}`` fields of one well-formed record
    line, by pure string splitting — ``None`` for the header, audit
    notes, and anything else malformed."""
    parts = line.split(",")
    if len(parts) != 4:
        return None
    record_id, email, city, amount = parts
    if not record_id or any(ch not in _DIGITS for ch in record_id):
        return None
    local, at, domain = email.partition("@")
    if at != "@" or not local or not domain:
        return None
    if any(ch not in _LOCAL_CHARS for ch in local):
        return None
    if any(ch not in _DOMAIN_CHARS for ch in domain):
        return None
    if not city or any(ch not in _CITY_CHARS for ch in city):
        return None
    whole, dot, cents = amount.partition(".")
    if dot != "." or not whole or len(cents) != 2:
        return None
    if any(ch not in _DIGITS for ch in whole + cents):
        return None
    return {"id": record_id, "email": email, "city": city, "amount": amount}


def golden_records(text: str) -> "list[dict[str, str]]":
    """The well-formed records of a document, in document order — the
    oracle for :func:`record_formula`, which yields exactly one mapping
    per well-formed *newline-delimited* line (so the first line and an
    unterminated last line never count, matching the formula's anchors)."""
    parts = text.split("\n")
    out = []
    for index, line in enumerate(parts):
        if 1 <= index < len(parts) - 1:
            fields = golden_record(line)
            if fields is not None:
                out.append(fields)
    return out


def golden_interior_fields(text: str) -> list[str]:
    """Every comma-delimited *interior* field occurrence (a non-empty
    comma-free stretch with a comma on both sides, within one line), in
    document order, duplicates kept — the oracle for
    :func:`field_formula`.  On a four-field record these are the email
    and the city; audit notes contribute whatever their commas delimit."""
    out = []
    for line in text.split("\n"):
        parts = line.split(",")
        out.extend(field for field in parts[1:-1] if field)
    return out


# -- the extraction formulas ----------------------------------------------


def record_formula(
    id_var: str = "id",
    email_var: str = "email",
    city_var: str = "city",
    amount_var: str = "amount",
) -> RegexFormula:
    """Capture all four fields of every newline-delimited record line.

    Each field pattern is forced by its delimiter (fields never contain
    commas, the amount's cent part is exactly two digits), so a
    well-formed line yields exactly one mapping and a malformed line
    yields none — :func:`golden_records` is the exact oracle.
    """
    digit = char_range("0", "9")
    skip = star(chars(TEXT_ALPHABET))
    comma = lit(",")
    email = concat(
        plus(chars(_LOCAL_CHARS)), lit("@"), plus(chars(_DOMAIN_CHARS))
    )
    amount = concat(plus(digit), lit("."), digit, digit)
    return concat(
        skip,
        lit("\n"),
        capture(id_var, plus(digit)),
        comma,
        capture(email_var, email),
        comma,
        capture(city_var, plus(chars(_CITY_CHARS))),
        comma,
        capture(amount_var, amount),
        lit("\n"),
        skip,
    )


def field_formula(var: str = "field") -> RegexFormula:
    """Capture every interior comma-delimited field occurrence — the
    scraping query that does not assume the record shape.  Adjacent
    fields share their middle comma (``,a,b,`` yields both ``a`` and
    ``b``), which is exactly what :func:`golden_interior_fields`
    computes; this is the pack's densest enumeration workload."""
    skip = star(chars(TEXT_ALPHABET))
    return concat(
        skip, lit(","), capture(var, plus(chars(_FIELD_CHARS))), lit(","), skip
    )
