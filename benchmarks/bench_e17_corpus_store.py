"""E17 — the persistent corpus store: ingest-once amortisation, posting-list
candidate pruning, and index-driven batch evaluation vs the list walk.

The list-walk ``evaluate_many`` pays O(corpus bytes) on *every call*: each
document is re-wrapped and its letter histogram recomputed just so the
prefilter can reject it.  A :class:`~repro.corpus.CorpusStore` pays that
cost once, at ingest, and answers each query from the posting-list index in
time proportional to the *candidates* instead:

* **ingest** — one-time cost of hashing, artifact derivation (histogram +
  run-length encoding), and posting-list construction, plus the dedup-hit
  fast path on re-ingest;
* **index vs walk** — the acceptance section: a needle-in-a-haystack
  corpus (short matching documents in a sea of long non-matching ones)
  swept across selectivities.  The bar: **≥5x** speedup of the warm-store
  index path over the list walk at 1% selectivity on a ≥1000-document
  corpus.  Cold-handle numbers (fresh process: sqlite open + hydration,
  no document cache) are reported alongside.  Both paths must return
  byte-identical relations;
* **maintenance** — incremental add/update/remove vs the full
  ``rebuild()``, so the cost of keeping the index consistent stays
  visible.

Results are written to ``BENCH_corpus.json`` at the repository root (CI
uploads it; ``tests/integration/test_perf_budgets.py`` gates the committed
copy).  Set ``BENCH_E17_TINY=1`` for a seconds-scale smoke version with the
timing assertions relaxed.
"""

import os
import random
import tempfile
import time
from pathlib import Path

from repro.corpus import CorpusStore
from repro.engine import Engine
from repro.utils import format_table

TINY = bool(os.environ.get("BENCH_E17_TINY"))

#: The workload: rare-letter captures in an a/b sea — the prefilter derives
#: "requires c", which the index answers from the ``c`` posting list.
FORMULA = "(a|b|c)*x{c+}(a|b|c)*"

CORPUS_DOCS = 30 if TINY else 1_200
NONMATCH_LENGTH = 80 if TINY else 3_000
MATCH_LENGTH = 20 if TINY else 60
SELECTIVITIES = (0.1, 1.0) if TINY else (0.01, 0.1, 0.5)
REPEATS = 1 if TINY else 3

MAINT_BATCH = 5 if TINY else 100

_JSON: dict = {
    "experiment": "e17_corpus_store",
    "formula": FORMULA,
    "tiny": TINY,
    "sections": {},
}


def _flush_json():
    from bench_common import write_json_report

    _JSON["generated_unix"] = int(time.time())
    write_json_report("BENCH_corpus.json", _JSON, at_root=True)


def _compiled():
    from bench_common import compile_formula

    return compile_formula(FORMULA)


def _best_of(repeats, func):
    best, value = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = func()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best * 1e3, value


def _corpus(matching_fraction: float, seed: int) -> list[str]:
    """Needle-in-a-haystack: short matching documents (containing ``cc``)
    scattered through long ``c``-free ones."""
    rng = random.Random(seed)
    n_matching = max(1, int(CORPUS_DOCS * matching_fraction))
    texts = []
    for i in range(CORPUS_DOCS):
        if i < n_matching:
            body = "".join(rng.choice("ab") for _ in range(MATCH_LENGTH))
            cut = rng.randrange(1, MATCH_LENGTH)
            texts.append(body[:cut] + "cc" + body[cut:])
        else:
            texts.append(
                "".join(rng.choice("ab") for _ in range(NONMATCH_LENGTH))
            )
    rng.shuffle(texts)
    return texts


# -- ingest ------------------------------------------------------------------


def _ingest_sweep():
    texts = _corpus(0.1, seed=17)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store.sqlite"
        with CorpusStore(path) as store:
            ingest_ms, _ = _best_of(1, lambda: store.add_many(texts))
            assert len(store) == len(texts)  # unique by construction
            reingest_ms, _ = _best_of(1, lambda: store.add_many(texts))
            assert store.dedup_hits == len(texts)
            store_bytes = store.stats()["store_bytes"]
    total_letters = sum(len(t) for t in texts)
    return {
        "docs": len(texts),
        "total_letters": total_letters,
        "ingest_ms": round(ingest_ms, 2),
        "reingest_dedup_ms": round(reingest_ms, 2),
        "docs_per_s": round(len(texts) / (ingest_ms / 1e3), 1),
        "store_bytes": store_bytes,
    }


def bench_e17_ingest(benchmark, report):
    row = benchmark.pedantic(_ingest_sweep, rounds=1, iterations=1)
    table = format_table(
        list(row.keys()),
        [list(row.values())],
        title="E17a ingest-once cost: artifact derivation + posting lists, "
        "and the content-hash dedup fast path on re-ingest",
    )
    report("E17a_corpus_ingest", table)
    _JSON["sections"]["ingest"] = row
    _flush_json()
    assert row["reingest_dedup_ms"] < row["ingest_ms"], row


# -- index-driven evaluation vs the list walk --------------------------------


def _index_vs_walk_sweep():
    va = _compiled()
    rows = []
    for fraction in SELECTIVITIES:
        texts = _corpus(fraction, seed=int(fraction * 1000))
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.sqlite"
            with CorpusStore(path) as store:
                store.add_many(texts)
                assert len(store) == len(texts)

            walk_engine = Engine()
            walk_engine.evaluate_many(va, texts)  # warm the plan cache
            walk_ms, walk_relations = _best_of(
                REPEATS, lambda: walk_engine.evaluate_many(va, texts)
            )

            # Cold: a fresh handle per call — sqlite open, index plan,
            # hydration from rows; the engine's compiled plan stays warm
            # so the delta is purely the store side.
            cold_engine = Engine()
            cold_engine.evaluate_many(va, texts[:1])  # warm the plan cache

            def cold_call():
                with CorpusStore(path) as cold_store:
                    return cold_engine.evaluate_many(va, cold_store)

            cold_ms, cold_relations = _best_of(REPEATS, cold_call)

            # Warm: one long-lived handle — the steady state of a standing
            # corpus; survivors are served from the LRU document cache.
            warm_engine = Engine()
            with CorpusStore(path) as warm_store:
                warm_engine.evaluate_many(va, warm_store)  # warm both caches
                before = warm_engine.stats.snapshot()
                warm_ms, warm_relations = _best_of(
                    REPEATS,
                    lambda: warm_engine.evaluate_many(va, warm_store),
                )
                delta = warm_engine.stats.delta(before)

            # The acceptance criterion's other half: byte-identical results.
            assert cold_relations == walk_relations
            assert warm_relations == walk_relations
            matching = sum(1 for r in walk_relations if len(r))
            rows.append(
                {
                    "matching_fraction": fraction,
                    "docs": len(texts),
                    "matching_docs": matching,
                    "walk_ms": round(walk_ms, 3),
                    "index_cold_ms": round(cold_ms, 3),
                    "index_warm_ms": round(warm_ms, 3),
                    "speedup_cold": round(walk_ms / cold_ms, 2),
                    "speedup_warm": round(walk_ms / warm_ms, 2),
                    "candidates_per_query": delta.index_candidates // REPEATS,
                    "hydrations_per_query": delta.hydrations // REPEATS,
                }
            )
    return rows


def bench_e17_index_vs_walk(benchmark, report):
    rows = benchmark.pedantic(_index_vs_walk_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "matching",
            "docs",
            "matches",
            "walk_ms",
            "cold_ms",
            "warm_ms",
            "cold_speedup",
            "warm_speedup",
            "candidates",
        ],
        [
            [
                r["matching_fraction"],
                r["docs"],
                r["matching_docs"],
                r["walk_ms"],
                r["index_cold_ms"],
                r["index_warm_ms"],
                f'{r["speedup_cold"]:.2f}x',
                f'{r["speedup_warm"]:.2f}x',
                r["candidates_per_query"],
            ]
            for r in rows
        ],
        title=f"E17b index-driven evaluate_many vs list walk ({CORPUS_DOCS} "
        f"docs, non-matching {NONMATCH_LENGTH} letters, matching "
        f"{MATCH_LENGTH}): posting-list pruning + cached-artifact hydration",
    )
    report("E17b_index_vs_walk", table)
    _JSON["sections"]["index_vs_walk"] = {
        "docs": CORPUS_DOCS,
        "nonmatch_length": NONMATCH_LENGTH,
        "match_length": MATCH_LENGTH,
        "repeats": REPEATS,
        "rows": rows,
    }
    _flush_json()
    for row in rows:
        # The index must prune: candidates stay at the matching-doc scale.
        assert row["candidates_per_query"] <= row["matching_docs"] + 1, row
    if not TINY:
        # Acceptance bar: ≥5x for the warm store at 1% selectivity on a
        # ≥1000-document corpus.  Dense corpora converge on the walk (both
        # paths evaluate every document) — reported, not asserted.
        sparsest = min(rows, key=lambda r: r["matching_fraction"])
        assert sparsest["matching_fraction"] <= 0.01, rows
        assert sparsest["docs"] >= 1000, rows
        assert sparsest["speedup_warm"] >= 5.0, sparsest


# -- incremental maintenance vs rebuild --------------------------------------


def _maintenance_sweep():
    texts = _corpus(0.1, seed=23)
    extra = _corpus(0.1, seed=29)[:MAINT_BATCH]
    with tempfile.TemporaryDirectory() as tmp:
        with CorpusStore(Path(tmp) / "store.sqlite") as store:
            store.add_many(texts)
            add_ms, added = _best_of(1, lambda: store.add_many(extra))
            update_ms, _ = _best_of(
                1,
                lambda: [
                    store.update(doc_id, f"{store.text(doc_id)}ab")
                    for doc_id in added
                ],
            )
            remove_ms, _ = _best_of(
                1, lambda: [store.remove(doc_id) for doc_id in added]
            )
            rebuild_ms, summary = _best_of(1, lambda: store.rebuild(verify=True))
            assert summary["issues"] == [], summary
            assert len(store) == len(texts)
    return {
        "base_docs": len(texts),
        "batch": MAINT_BATCH,
        "add_ms": round(add_ms, 2),
        "update_ms": round(update_ms, 2),
        "remove_ms": round(remove_ms, 2),
        "rebuild_verify_ms": round(rebuild_ms, 2),
    }


def bench_e17_maintenance(benchmark, report):
    row = benchmark.pedantic(_maintenance_sweep, rounds=1, iterations=1)
    table = format_table(
        list(row.keys()),
        [list(row.values())],
        title=f"E17c incremental maintenance ({MAINT_BATCH}-doc batches) vs "
        "full rebuild --verify",
    )
    report("E17c_corpus_maintenance", table)
    _JSON["sections"]["maintenance"] = row
    _flush_json()
    assert row["add_ms"] < row["rebuild_verify_ms"], row
