"""E4 — Proposition 3.11: the sequential → disjunctive-functional
translation blows up exponentially.

Shape to confirm: on the (x_i{Σ*} ∨ y_i{Σ*})-concatenation family the
number of functional components is exactly 2^n (for both the regex-formula
and the automaton translation), while the sequential original stays at
3n+1 states.
"""

from repro.regex import count_disjuncts
from repro.utils import format_table
from repro.va import count_functional_components, to_disjunctive_functional_va, trim
from repro.workloads import prop311_formula, prop311_va

COUNT_SIZES = (1, 2, 4, 6, 8, 10)
MATERIALISE_SIZES = (1, 2, 3, 4, 5, 6)


def _sweep():
    rows = []
    for n in COUNT_SIZES:
        formula_disjuncts = count_disjuncts(prop311_formula(n))
        va = trim(prop311_va(n))
        if n in MATERIALISE_SIZES:
            components = count_functional_components(va)
            dfunc_states = to_disjunctive_functional_va(va).n_states
        else:
            components, dfunc_states = "(skipped)", "(skipped)"
        rows.append([n, va.n_states, formula_disjuncts, components, dfunc_states])
    return rows


def bench_e4_blowup_curve(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["n", "seq_va_states", "regex_disjuncts", "va_components", "dfunc_va_states"],
        rows,
        title="E4 sequential → disjunctive functional blow-up (Prop. 3.11 "
        "family) — disjuncts/components are exactly 2^n",
    )
    report("E4_dfunc_blowup", table)
    for row in rows:
        assert row[2] == 2 ** row[0]
        if isinstance(row[3], int):
            assert row[3] == 2 ** row[0]


def bench_e4_translate_n6(benchmark):
    va = trim(prop311_va(6))
    benchmark(lambda: to_disjunctive_functional_va(va).n_states)
