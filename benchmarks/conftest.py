"""Shared infrastructure for the experiment benches.

Every bench records its measurement table through the ``report`` fixture;
tables are written to ``benchmarks/results/<id>.txt`` and echoed in the
terminal summary, so ``pytest benchmarks/ --benchmark-only | tee …``
captures both pytest-benchmark's timing table and the per-experiment
series that EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture
def report():
    """Record a named measurement table: ``report("E1", table_text)``."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        _REPORTS.append((name, text))

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "experiment reports")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"──── {name} " + "─" * max(0, 60 - len(name)))
        for line in text.splitlines():
            terminalreporter.write_line(line)
