"""E7 — Lemma 4.2 / Theorems 4.3 + 4.4: the ad-hoc difference compilation.

Shapes to confirm:
* for a fixed number k of common variables, compile+evaluate time grows
  polynomially with the document length (Theorem 4.3);
* sweeping k at fixed document shows super-polynomial growth in k — the
  W[1]-hardness signature of Theorem 4.4 (the polynomial's degree must
  depend on k).
"""

import random
import time

from repro.algebra import adhoc_difference
from repro.utils import fit_power_law, format_table
from repro.va import evaluate_va

from bench_common import block_document, compile_formula

from repro.regex import capture, concat, sigma_star, sym

CHUNK_SWEEP = (2, 4, 8, 16)
K_SWEEP = (1, 2, 3)


def _prefix_pair(shared: int):
    """Minuend: every s_i is an arbitrary prefix of block i (many
    mappings).  Subtrahend: every s_i is pinned to block i's first letter
    (one mapping).  They share all ``shared`` variables, so a minuend
    mapping survives unless it picks the pinned prefix everywhere."""
    sigma = sigma_star("ab")

    def blocks(make):
        parts = []
        for i in range(1, shared + 1):
            if parts:
                parts.append(sym("c"))
            parts.append(make(i))
        return concat(*parts) if len(parts) > 1 else parts[0]

    minuend = compile_formula(blocks(lambda i: concat(capture(f"s{i}", sigma), sigma)))
    subtrahend = compile_formula(
        blocks(lambda i: concat(capture(f"s{i}", sym("a")), sigma))
    )
    return minuend, subtrahend


def _run(shared: int, chunk_length: int):
    left, right = _prefix_pair(shared)
    doc = block_document(shared, chunk_length, alphabet="a", rng=random.Random(3))
    start = time.perf_counter()
    compiled = adhoc_difference(left, right, doc)
    result = evaluate_va(compiled, doc)
    elapsed = time.perf_counter() - start
    return elapsed, len(doc), compiled.n_states, len(result)


def _sweep_doc():
    rows, xs, ys = [], [], []
    for chunk_length in CHUNK_SWEEP:
        elapsed, chars, states, out = _run(shared=1, chunk_length=chunk_length)
        rows.append([chars, states, out, f"{elapsed * 1e3:.1f}"])
        xs.append(chars)
        ys.append(max(elapsed, 1e-7))
    return rows, xs, ys


def _sweep_k():
    rows, times = [], []
    for k in K_SWEEP:
        elapsed, chars, states, out = _run(shared=k, chunk_length=3)
        rows.append([k, states, out, f"{elapsed * 1e3:.1f}"])
        times.append(elapsed)
    return rows, times


def bench_e7_document_sweep(benchmark, report):
    rows, xs, ys = benchmark.pedantic(_sweep_doc, rounds=1, iterations=1)
    exponent = fit_power_law(xs, ys)
    table = format_table(
        ["doc_chars", "adhoc_states", "results", "compile+eval_ms"],
        rows,
        title=f"E7a ad-hoc difference: document sweep (k=1) — power-law "
        f"exponent ≈ {exponent:.2f} (polynomial, Thm 4.3)",
    )
    report("E7a_adhoc_difference_doc_sweep", table)
    assert exponent < 5.0


def bench_e7_shared_variable_sweep(benchmark, report):
    rows, times = benchmark.pedantic(_sweep_k, rounds=1, iterations=1)
    table = format_table(
        ["shared_k", "adhoc_states", "results", "compile+eval_ms"],
        rows,
        title="E7b ad-hoc difference: k sweep (3-letter blocks) — growth in k is "
        "super-polynomial (W[1] signature, Thm 4.4)",
    )
    report("E7b_adhoc_difference_k_sweep", table)


def bench_e7_single(benchmark):
    left, right = _prefix_pair(2)
    doc = block_document(2, 6, alphabet="a", rng=random.Random(3))
    benchmark(lambda: evaluate_va(adhoc_difference(left, right, doc), doc))
