"""E9 — Theorem 5.2: extraction complexity of a fixed RA tree.

Shape to confirm: the full Figure-2 query (join + difference + projection,
all nodes sharing ≤ 2 variables) evaluates with polynomially growing time
and per-result delay as the document grows.
"""

import random
import time

from repro.algebra import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
)
from repro.utils import fit_power_law, format_table, record_enumeration
from repro.workloads import (
    alpha_recommendation,
    alpha_student_mail,
    alpha_student_phone,
    generate_students,
)

SIZES = (5, 10, 20, 30)


def figure2_query() -> RAQuery:
    tree = Project(Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("nr")), "keep")
    inst = Instantiation(
        spanners={
            "sm": alpha_student_mail(),
            "sp": alpha_student_phone(),
            "nr": alpha_recommendation(),
        },
        projections={"keep": frozenset({"xstdnt"})},
    )
    return RAQuery(tree, inst, PlannerConfig(max_shared=2))


def _sweep():
    query = figure2_query()
    rows, xs, ys = [], [], []
    for n_students in SIZES:
        doc = generate_students(
            n_students, random.Random(9), with_phone=0.9, with_recommendation=0.3
        )
        start = time.perf_counter()
        stats = record_enumeration(query.enumerate(doc))
        elapsed = time.perf_counter() - start
        rows.append(
            [
                len(doc),
                stats.count,
                f"{elapsed * 1e3:.0f}",
                f"{stats.max_inter_delay * 1e3:.2f}",
            ]
        )
        xs.append(len(doc))
        ys.append(max(elapsed, 1e-7))
    return rows, xs, ys


def bench_e9_figure2_scaling(benchmark, report):
    rows, xs, ys = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    exponent = fit_power_law(xs, ys)
    table = format_table(
        ["doc_chars", "results", "total_ms", "max_inter_delay_ms"],
        rows,
        title=f"E9 Figure-2 RA tree (join+difference+projection, k≤2): "
        f"total-time power-law exponent ≈ {exponent:.2f} (polynomial)",
    )
    report("E9_ra_tree", table)
    assert exponent < 5.0


def bench_e9_single(benchmark):
    query = figure2_query()
    doc = generate_students(10, random.Random(9), with_phone=0.9, with_recommendation=0.3)
    benchmark(lambda: len(query.evaluate(doc)))
