"""E16 — the run-compressed transition kernel and the VA-derived corpus
prefilter: run-heavy documents, selectivity sweeps, and shared-corpus
batches.

The evaluation kernel's per-document cost should be sublinear in practice:

* **run-compressed kernel** — documents with long single-letter runs
  advance through memoized ``(letter, 2^k)`` transformer powers (plus
  fixpoint absorption), and the enumeration DFS skips forced empty-opset
  stretches, so both emptiness and full enumeration scale with the number
  of *runs*, not letters.  The acceptance bar: ≥2x full-enumeration
  speedup over the plain per-letter kernel on run-heavy documents.
* **prefilter** — corpora where most documents provably cannot match are
  rejected in O(1) from the cached letter histogram, before any graph or
  encoding exists.  The acceptance bar: ≥5x emptiness/first-match
  throughput on a sparse corpus (≤10% matching documents).
* **shared-corpus batches** — ``Engine.evaluate_many`` prefilters up
  front and only evaluates (or ships to workers) the survivors.
* **backend matrix** — ``indexed`` vs ``indexed-plain`` vs the numpy
  ``vectorized`` backend on a >64-state (multi-plane) query: Boolean
  emptiness and first-match on a low-run 100k-letter document (where the
  vectorized frontier-node walk should win ≥5x) and on a run-heavy
  document (where the indexed kernel's Python-int doubling stays ahead —
  both cells are reported so the README's backend-selection matrix stays
  honest).
* **enumeration throughput** (E16e) — *full enumeration* (mappings/sec)
  across a run-length × match-density grid: ``indexed`` vs the
  vectorized scalar walk (``--enum-block 0``) vs the batched block DFS
  over batch-materialised edge rows.  The acceptance bar: ≥3x
  enumeration throughput for vectorized-batched over ``indexed`` on the
  low-run 100k-letter cells.

Results are written as human-readable tables (the ``report`` fixture) and
machine-readably to ``BENCH_kernel.json`` at the repository root (CI
uploads it as an artifact; ``bench_common.write_json_report`` stamps the
git SHA).  Set ``BENCH_E16_TINY=1`` for a seconds-scale smoke version that
still exercises every code path and the full JSON schema, with the timing
assertions relaxed.
"""

import os
import random
import time

from repro.core import Document
from repro.engine import Engine
from repro.utils import format_table
from repro.va import IndexedMatchGraph, indexed_nonempty

TINY = bool(os.environ.get("BENCH_E16_TINY"))

#: The kernel workload: rare-letter captures in an a/b run sea.  The
#: prefilter derives "requires c" from it, so mark-free documents are
#: provably non-matching.
FORMULA = "(a|b|c)*x{c+}(a|b|c)*"

#: Run lengths for the run-heavy sweep (documents keep ~the same letter
#: count while runs lengthen, so the plain kernel's cost stays flat and
#: the compressed kernel's falls with the run count).
RUN_LENGTHS = (4, 16) if TINY else (10, 100, 1000)
KERNEL_DOC_LETTERS = 400 if TINY else 20_000
KERNEL_MARKS = 4

SELECTIVITIES = (0.25, 1.0) if TINY else (0.01, 0.1, 0.5)
CORPUS_DOCS = 12 if TINY else 400
CORPUS_DOC_LENGTH = 60 if TINY else 2_000
BATCH_SIZES = (8,) if TINY else (50, 200, 800)
REPEATS = 1 if TINY else 3

_JSON: dict = {
    "experiment": "e16_kernel_prefilter",
    "formula": FORMULA,
    "tiny": TINY,
    "sections": {},
}


def _flush_json():
    from bench_common import write_json_report

    _JSON["generated_unix"] = int(time.time())
    write_json_report("BENCH_kernel.json", _JSON, at_root=True)


def _compiled():
    from bench_common import compile_formula

    return compile_formula(FORMULA)


def _best_of(repeats, func):
    best, value = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = func()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best * 1e3, value


def _run_heavy_document(
    letters: int, run_length: int, marks: int, seed: int
) -> Document:
    """~``letters`` letters of alternating a/b runs of ``run_length``,
    with ``marks`` isolated ``c`` letters spread between runs (0 marks
    gives a provably non-matching document)."""
    rng = random.Random(seed)
    n_runs = max(1, letters // run_length)
    mark_at = set(rng.sample(range(1, n_runs), min(marks, n_runs - 1)) if n_runs > 1 else [])
    parts = []
    for i in range(n_runs):
        parts.append(("a" if i % 2 == 0 else "b") * run_length)
        if i in mark_at:
            parts.append("c")
    return Document("".join(parts))


# -- run-compressed kernel: full enumeration and emptiness -------------------


def _kernel_sweep():
    va = _compiled()
    indexed = va.indexed()
    rows = []
    for run_length in RUN_LENGTHS:
        doc = _run_heavy_document(
            KERNEL_DOC_LETTERS, run_length, KERNEL_MARKS, seed=run_length
        )
        empty_doc = _run_heavy_document(
            KERNEL_DOC_LETTERS, run_length, 0, seed=run_length
        )
        compressed_ms, n_compressed = _best_of(
            REPEATS,
            lambda: sum(1 for _ in IndexedMatchGraph(indexed, doc).enumerate()),
        )
        plain_ms, n_plain = _best_of(
            REPEATS,
            lambda: sum(
                1
                for _ in IndexedMatchGraph(
                    indexed, doc, compressed=False
                ).enumerate()
            ),
        )
        assert n_compressed == n_plain > 0
        nonempty_compressed_ms, _ = _best_of(
            REPEATS, lambda: indexed_nonempty(indexed, empty_doc)
        )
        nonempty_plain_ms, _ = _best_of(
            REPEATS, lambda: indexed_nonempty(indexed, empty_doc, compressed=False)
        )
        rows.append(
            {
                "run_length": run_length,
                "doc_letters": len(doc),
                "mappings": n_compressed,
                "full_compressed_ms": round(compressed_ms, 3),
                "full_plain_ms": round(plain_ms, 3),
                "full_speedup": round(plain_ms / compressed_ms, 2),
                "emptiness_compressed_ms": round(nonempty_compressed_ms, 4),
                "emptiness_plain_ms": round(nonempty_plain_ms, 4),
                "emptiness_speedup": round(
                    nonempty_plain_ms / nonempty_compressed_ms, 2
                ),
            }
        )
    return rows


def bench_e16_run_compressed_kernel(benchmark, report):
    rows = benchmark.pedantic(_kernel_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "run_len",
            "letters",
            "mappings",
            "full_kernel_ms",
            "full_plain_ms",
            "speedup",
            "empty_kernel_ms",
            "empty_plain_ms",
            "speedup",
        ],
        [
            [
                r["run_length"],
                r["doc_letters"],
                r["mappings"],
                r["full_compressed_ms"],
                r["full_plain_ms"],
                f'{r["full_speedup"]:.2f}x',
                r["emptiness_compressed_ms"],
                r["emptiness_plain_ms"],
                f'{r["emptiness_speedup"]:.2f}x',
            ]
            for r in rows
        ],
        title="E16a run-compressed kernel vs plain per-letter kernel on "
        f"run-heavy documents (~{KERNEL_DOC_LETTERS} letters, "
        f"{KERNEL_MARKS} marks): full enumeration and Boolean emptiness",
    )
    report("E16a_run_compressed_kernel", table)
    _JSON["sections"]["kernel_run_sweep"] = {
        "doc_letters": KERNEL_DOC_LETTERS,
        "marks": KERNEL_MARKS,
        "repeats": REPEATS,
        "rows": rows,
    }
    _flush_json()
    if not TINY:
        # Acceptance bar: ≥2x full enumeration on run-heavy documents.
        longest = rows[-1]
        assert longest["full_speedup"] >= 2.0, longest
        assert longest["emptiness_speedup"] >= 2.0, longest


# -- prefilter: selectivity sweep --------------------------------------------


def _selectivity_corpus(matching_fraction: float, seed: int) -> list[Document]:
    """A corpus where only ``matching_fraction`` of documents contain the
    required ``c`` mark (the rest are provably non-matching)."""
    rng = random.Random(seed)
    n_matching = max(1, int(CORPUS_DOCS * matching_fraction))
    docs = []
    for i in range(CORPUS_DOCS):
        marks = 2 if i < n_matching else 0
        docs.append(
            _run_heavy_document(
                CORPUS_DOC_LENGTH, 10, marks, seed=rng.randrange(1 << 30)
            )
        )
    rng.shuffle(docs)
    return docs


def _selectivity_sweep():
    va = _compiled()
    rows = []
    for fraction in SELECTIVITIES:
        docs = _selectivity_corpus(fraction, seed=int(fraction * 1000))
        results = {}
        for label, prefilter in (("prefiltered", True), ("full_scan", False)):
            engine = Engine(prefilter=prefilter)
            engine.is_nonempty(va, docs[0])  # warm the plan cache
            nonempty_ms, _ = _best_of(
                REPEATS,
                lambda: sum(1 for doc in docs if engine.is_nonempty(va, doc)),
            )
            first_ms, _ = _best_of(
                REPEATS,
                lambda: sum(
                    1 for doc in docs if engine.first(va, doc) is not None
                ),
            )
            results[label] = (nonempty_ms, first_ms, engine)
        nonempty_pf, first_pf, engine_pf = results["prefiltered"]
        nonempty_full, first_full, _ = results["full_scan"]
        rows.append(
            {
                "matching_fraction": fraction,
                "docs": len(docs),
                "nonempty_prefiltered_ms": round(nonempty_pf, 3),
                "nonempty_full_ms": round(nonempty_full, 3),
                "nonempty_speedup": round(nonempty_full / nonempty_pf, 2),
                "first_prefiltered_ms": round(first_pf, 3),
                "first_full_ms": round(first_full, 3),
                "first_speedup": round(first_full / first_pf, 2),
                "prefilter_rejects": engine_pf.stats.prefilter_rejects,
            }
        )
    return rows


def bench_e16_prefilter_selectivity(benchmark, report):
    rows = benchmark.pedantic(_selectivity_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "matching",
            "docs",
            "nonempty_pf_ms",
            "nonempty_full_ms",
            "speedup",
            "first_pf_ms",
            "first_full_ms",
            "speedup",
        ],
        [
            [
                r["matching_fraction"],
                r["docs"],
                r["nonempty_prefiltered_ms"],
                r["nonempty_full_ms"],
                f'{r["nonempty_speedup"]:.2f}x',
                r["first_prefiltered_ms"],
                r["first_full_ms"],
                f'{r["first_speedup"]:.2f}x',
            ]
            for r in rows
        ],
        title=f"E16b prefilter selectivity sweep ({CORPUS_DOCS} docs x "
        f"{CORPUS_DOC_LENGTH} letters): corpus emptiness and first-match "
        "throughput, O(1) histogram rejection vs full Boolean scan",
    )
    report("E16b_prefilter_selectivity", table)
    _JSON["sections"]["prefilter_selectivity"] = {
        "docs": CORPUS_DOCS,
        "doc_length": CORPUS_DOC_LENGTH,
        "repeats": REPEATS,
        "rows": rows,
    }
    _flush_json()
    if not TINY:
        # Acceptance bar: ≥5x emptiness/first-match throughput on a
        # sparse corpus (≤10% matching documents).  Emptiness clears it
        # across the sparse range; first-match clears it on the sparsest
        # corpus — at exactly 10% matching the surviving documents' full
        # first-match work (identical under both engines) already bounds
        # any prefilter's speedup near 2x, so that row is reported as the
        # curve but asserted only against the baseline.
        sparse = [r for r in rows if r["matching_fraction"] <= 0.1]
        assert sparse, rows
        for row in sparse:
            assert row["nonempty_speedup"] >= 5.0, row
            assert row["first_speedup"] >= 1.0, row
        sparsest = min(rows, key=lambda r: r["matching_fraction"])
        assert sparsest["matching_fraction"] <= 0.1, sparsest
        assert sparsest["first_speedup"] >= 5.0, sparsest


# -- shared-corpus batch path -------------------------------------------------


def _batch_sweep():
    va = _compiled()
    rows = []
    for size in BATCH_SIZES:
        rng = random.Random(size)
        n_matching = max(1, size // 10)
        docs = [
            _run_heavy_document(
                CORPUS_DOC_LENGTH,
                10,
                2 if i < n_matching else 0,
                seed=rng.randrange(1 << 30),
            )
            for i in range(size)
        ]
        rng.shuffle(docs)
        baseline = None
        timings = {}
        for label, prefilter in (("prefiltered", True), ("full_scan", False)):
            engine = Engine(prefilter=prefilter)
            wall_ms, relations = _best_of(
                REPEATS, lambda: engine.evaluate_many(va, docs)
            )
            if baseline is None:
                baseline = relations
            else:
                assert relations == baseline  # prefilter must not change results
            timings[label] = wall_ms
        rows.append(
            {
                "batch_size": size,
                "matching_docs": sum(1 for r in baseline if len(r)),
                "prefiltered_ms": round(timings["prefiltered"], 3),
                "full_scan_ms": round(timings["full_scan"], 3),
                "speedup": round(timings["full_scan"] / timings["prefiltered"], 2),
            }
        )
    return rows


# -- backend matrix: indexed vs indexed-plain vs vectorized -------------------

#: A >64-state query (≥ 2 uint64 planes once indexed): an anchored 24-letter
#: pattern inside a capture, in an a/b sea.
MATRIX_FORMULA = "(a|b)*x{" + "ab" * 12 + "a+}(a|b)*"
MATRIX_DOC_LETTERS = 2_000 if TINY else 100_000
MATRIX_RUN_LENGTH = 25_000  # the run-heavy workload's run size (non-tiny)
MATRIX_BACKENDS = ("indexed", "indexed-plain", "vectorized")


def _matrix_documents() -> "list[tuple[str, Document]]":
    """The two matrix workloads: a low-run (random a/b) document with one
    planted match, and a run-heavy (few long runs) document."""
    rng = random.Random(16)
    n = MATRIX_DOC_LETTERS
    low_run = [rng.choice("ab") for _ in range(n)]
    planted = "ab" * 12 + "aa"
    middle = n // 2
    low_run[middle : middle + len(planted)] = planted
    run_length = max(4, min(MATRIX_RUN_LENGTH, n // 4))
    parts = []
    while sum(len(p) for p in parts) < n:
        parts.append("a" * run_length)
        parts.append("b" * run_length)
    run_heavy = "".join(parts)[:n] + planted
    return [
        ("low_run", Document("".join(low_run))),
        ("run_heavy", Document(run_heavy)),
    ]


def _backend_matrix_sweep():
    from repro.engine import available_backends, get_backend
    from repro.regex import parse

    from bench_common import compile_formula

    va = compile_formula(parse(MATRIX_FORMULA))
    assert va.indexed().n_states > 64  # multi-plane by construction
    runnable = [b for b in MATRIX_BACKENDS if b in available_backends()]
    rows = []
    for workload, doc in _matrix_documents():
        for backend in runnable:
            prepared = get_backend(backend).prepare(va)
            prepared.is_nonempty(doc)  # warm caches (nodes, powers, encoding)
            nonempty_ms, nonempty = _best_of(
                REPEATS, lambda: prepared.is_nonempty(doc)
            )
            first_ms, first = _best_of(REPEATS, lambda: prepared.run(doc).first())
            assert nonempty and first is not None, (workload, backend)
            rows.append(
                {
                    "workload": workload,
                    "backend": backend,
                    "doc_letters": len(doc),
                    "nonempty_ms": round(nonempty_ms, 4),
                    "first_ms": round(first_ms, 4),
                }
            )
    return rows


def _matrix_speedups(rows):
    """Vectorized-over-indexed ratios per workload (absent without numpy)."""
    by_key = {(r["workload"], r["backend"]): r for r in rows}
    speedups = {}
    for workload in ("low_run", "run_heavy"):
        indexed = by_key.get((workload, "indexed"))
        vectorized = by_key.get((workload, "vectorized"))
        if indexed and vectorized:
            speedups[workload] = {
                "nonempty": round(
                    indexed["nonempty_ms"] / vectorized["nonempty_ms"], 2
                ),
                "first": round(indexed["first_ms"] / vectorized["first_ms"], 2),
            }
    return speedups


def bench_e16_backend_matrix(benchmark, report):
    rows = benchmark.pedantic(_backend_matrix_sweep, rounds=1, iterations=1)
    speedups = _matrix_speedups(rows)
    table = format_table(
        ["workload", "backend", "letters", "nonempty_ms", "first_ms"],
        [
            [
                r["workload"],
                r["backend"],
                r["doc_letters"],
                r["nonempty_ms"],
                r["first_ms"],
            ]
            for r in rows
        ],
        title="E16d backend matrix on a >64-state query "
        f"({MATRIX_DOC_LETTERS} letters): Boolean emptiness and first-match "
        "per enumeration backend",
    )
    report("E16d_backend_matrix", table)
    _JSON["sections"]["backend_matrix"] = {
        "formula": MATRIX_FORMULA,
        "doc_letters": MATRIX_DOC_LETTERS,
        "repeats": REPEATS,
        "backends": list(MATRIX_BACKENDS),
        "rows": rows,
        "vectorized_speedup_vs_indexed": speedups,
    }
    _flush_json()
    if not TINY and "low_run" in speedups:
        # Acceptance bar: ≥5x over indexed on a low-run 100k-letter
        # document with a ≥64-state query, for both emptiness and
        # first-match.  (Run-heavy documents are indexed's home turf —
        # reported, not asserted.)
        low_run = speedups["low_run"]
        assert low_run["nonempty"] >= 5.0, speedups
        assert low_run["first"] >= 5.0, speedups


# -- enumeration throughput: indexed vs vectorized-scalar vs batched ---------

ENUM_DOC_LETTERS = 2_000 if TINY else 100_000
#: Gap shapes for the needle sea: 1 = low-run (random a/b letters),
#: larger values = run-heavy (single-letter runs of that length).
ENUM_RUN_LENGTHS = (1, 1_000)
#: Per-gap needle probabilities (match density; one needle is always
#: planted mid-document so every cell enumerates at least one mapping).
ENUM_NEEDLE_RATES = (0.02, 0.08)
ENUM_REPEATS = 1  # full enumeration is the cost being measured


def _enum_document(run_length: int, needle_rate: float, seed: int) -> Document:
    """~``ENUM_DOC_LETTERS`` letters of a/b gaps with ``ab^12 a`` needles
    (the :data:`MATRIX_FORMULA` match) planted between gaps."""
    rng = random.Random(seed)
    needle = "ab" * 12 + "a"
    parts = []
    total = 0
    while total < ENUM_DOC_LETTERS:
        if run_length <= 1:
            gap = "".join(
                rng.choice("ab") for _ in range(rng.randrange(20, 60))
            )
        else:
            gap = ("a" if rng.random() < 0.5 else "b") * run_length
        parts.append(gap)
        total += len(gap)
        if rng.random() < needle_rate:
            parts.append(needle)
            total += len(needle)
    text = "".join(parts)[:ENUM_DOC_LETTERS]
    middle = len(text) // 2
    return Document(text[:middle] + needle + text[middle:])


def _enumeration_sweep():
    from repro.engine import available_backends
    from repro.regex import parse

    from bench_common import compile_formula

    va = compile_formula(parse(MATRIX_FORMULA))
    indexed = va.indexed()
    have_numpy = "vectorized" in available_backends()
    rows = []
    for run_length in ENUM_RUN_LENGTHS:
        for rate in ENUM_NEEDLE_RATES:
            doc = _enum_document(
                run_length, rate, seed=run_length * 1000 + int(rate * 100)
            )
            indexed_ms, n_indexed = _best_of(
                ENUM_REPEATS,
                lambda: sum(
                    1 for _ in IndexedMatchGraph(indexed, doc).enumerate()
                ),
            )
            assert n_indexed > 0, (run_length, rate)
            row = {
                "workload": "low_run" if run_length <= 1 else "run_heavy",
                "run_length": run_length,
                "needle_rate": rate,
                "doc_letters": len(doc),
                "mappings": n_indexed,
                "indexed_ms": round(indexed_ms, 3),
                "indexed_maps_per_s": round(n_indexed / (indexed_ms / 1e3), 1),
            }
            if have_numpy:
                from repro.va.vectorized import VectorizedMatchGraph

                vva = va.vectorized()
                scalar_ms, n_scalar = _best_of(
                    ENUM_REPEATS,
                    lambda: sum(
                        1
                        for _ in VectorizedMatchGraph(
                            vva, doc, block_size=0
                        ).enumerate()
                    ),
                )
                batched_ms, n_batched = _best_of(
                    ENUM_REPEATS,
                    lambda: sum(
                        1 for _ in VectorizedMatchGraph(vva, doc).enumerate()
                    ),
                )
                assert n_scalar == n_batched == n_indexed, (run_length, rate)
                row.update(
                    {
                        "scalar_ms": round(scalar_ms, 3),
                        "batched_ms": round(batched_ms, 3),
                        "scalar_maps_per_s": round(
                            n_scalar / (scalar_ms / 1e3), 1
                        ),
                        "batched_maps_per_s": round(
                            n_batched / (batched_ms / 1e3), 1
                        ),
                        "batched_speedup_vs_indexed": round(
                            indexed_ms / batched_ms, 2
                        ),
                        "batched_speedup_vs_scalar": round(
                            scalar_ms / batched_ms, 2
                        ),
                    }
                )
            rows.append(row)
    return rows


def bench_e16_enumeration_throughput(benchmark, report):
    rows = benchmark.pedantic(_enumeration_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "workload",
            "needle_rate",
            "mappings",
            "indexed_ms",
            "scalar_ms",
            "batched_ms",
            "batched_maps_per_s",
            "vs_indexed",
        ],
        [
            [
                r["workload"],
                r["needle_rate"],
                r["mappings"],
                r["indexed_ms"],
                r.get("scalar_ms", "-"),
                r.get("batched_ms", "-"),
                r.get("batched_maps_per_s", "-"),
                f'{r["batched_speedup_vs_indexed"]:.2f}x'
                if "batched_speedup_vs_indexed" in r
                else "-",
            ]
            for r in rows
        ],
        title="E16e full-enumeration throughput on the >64-state matrix "
        f"query ({ENUM_DOC_LETTERS} letters): indexed vs vectorized-scalar "
        "(--enum-block 0) vs vectorized-batched, run-length x match-density",
    )
    report("E16e_enumeration_throughput", table)
    _JSON["sections"]["enumeration_throughput"] = {
        "formula": MATRIX_FORMULA,
        "doc_letters": ENUM_DOC_LETTERS,
        "repeats": ENUM_REPEATS,
        "run_lengths": list(ENUM_RUN_LENGTHS),
        "needle_rates": list(ENUM_NEEDLE_RATES),
        "rows": rows,
    }
    _flush_json()
    if not TINY:
        # Acceptance bar: ≥3x full-enumeration throughput for the batched
        # path over indexed on every low-run cell (run-heavy cells ride
        # the shared run-skip, so they are reported, not asserted).
        low_run = [
            r
            for r in rows
            if r["workload"] == "low_run"
            and "batched_speedup_vs_indexed" in r
        ]
        if low_run:
            for row in low_run:
                assert row["batched_speedup_vs_indexed"] >= 3.0, row


def bench_e16_shared_corpus_batch(benchmark, report):
    rows = benchmark.pedantic(_batch_sweep, rounds=1, iterations=1)
    table = format_table(
        ["batch", "matching", "prefiltered_ms", "full_scan_ms", "speedup"],
        [
            [
                r["batch_size"],
                r["matching_docs"],
                r["prefiltered_ms"],
                r["full_scan_ms"],
                f'{r["speedup"]:.2f}x',
            ]
            for r in rows
        ],
        title="E16c shared-corpus batch evaluation "
        f"(~10% matching docs x {CORPUS_DOC_LENGTH} letters): "
        "evaluate_many with the up-front prefilter vs full scans",
    )
    report("E16c_shared_corpus_batch", table)
    _JSON["sections"]["batch_corpus"] = {
        "doc_length": CORPUS_DOC_LENGTH,
        "repeats": REPEATS,
        "rows": rows,
    }
    _flush_json()
    for row in rows:
        assert row["matching_docs"] >= 1, row
