"""E5 — Proposition 3.12 / Corollary 3.13: joining disjunctive functional
VAs is polynomial.

Shape to confirm: compile time for the join of two dfunc VAs grows
polynomially (about quadratically: one product per component pair) with
the number of disjuncts — contrast with E2's exponential unrestricted
join.
"""

import time

from repro.algebra import dfunc_join
from repro.utils import fit_power_law, format_table
from repro.va import evaluate_va

from bench_common import dfunc_va

DISJUNCT_SWEEP = (1, 2, 4, 6, 8)


def _sweep():
    rows, xs, ys = [], [], []
    for d in DISJUNCT_SWEEP:
        left, right = dfunc_va(d), dfunc_va(d)
        start = time.perf_counter()
        joined = dfunc_join(left, right)
        elapsed = time.perf_counter() - start
        rows.append([d, left.n_states, joined.n_states, f"{elapsed * 1e3:.1f}"])
        xs.append(d)
        ys.append(max(elapsed, 1e-7))
    return rows, xs, ys


def bench_e5_disjunct_sweep(benchmark, report):
    rows, xs, ys = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    exponent = fit_power_law(xs, ys)
    table = format_table(
        ["disjuncts", "operand_states", "join_states", "compile_ms"],
        rows,
        title=f"E5 dfunc join (Prop. 3.12): compile-time exponent in the "
        f"disjunct count ≈ {exponent:.2f} (expect ≈ 2, pairwise products)",
    )
    report("E5_dfunc_join", table)
    assert exponent < 4.0


def bench_e5_join_and_evaluate(benchmark):
    left, right = dfunc_va(4), dfunc_va(4)

    def run():
        return len(evaluate_va(dfunc_join(left, right), "abab"))

    benchmark(run)
