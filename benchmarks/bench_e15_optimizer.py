"""E15 — the logical-plan optimizer: optimize-on vs optimize-off over deep
union/join/projection trees.

Two workloads where the rewrite rules have something to do:

* **deep unions with duplicate subtrees** — a union chain over a small
  formula pool (so duplicates abound) under a projection.  Dedup-union,
  projection pushdown and static folding should shrink the compiled
  automaton (states-after < states-before) and with it both compile and
  enumeration time;
* **join chains with private variables** — every operand carries optional
  private capture variables that the top-level projection discards;
  pushing the projection through the join drops them *before* the FPT
  product is built, which is where the state blow-up actually happens.
  (The final automata converge after the normalization post-pass; the win
  is the *intermediate* product size, visible as compile wall time and in
  the optimizer's estimated-states delta.)

Each measurement compiles and evaluates the same query with
``Engine(optimize=True)`` and ``Engine(optimize=False)`` (fresh engines,
fresh formula objects — no shared caches) and records plan sizes
(``CompiledPlan.static_states``), compile and enumeration wall time, and
the rules that fired.

Results are written as human-readable tables (the ``report`` fixture) and
machine-readably to ``BENCH_optimizer.json`` at the repository root (CI
uploads it as an artifact).  Set ``BENCH_E15_TINY=1`` for a seconds-scale
smoke run exercising the full schema with relaxed assertions.
"""

import os
import time

from repro import Engine, Instantiation, RAQuery, parse
from repro.algebra.ra_tree import Join, Leaf, Project, UnionNode
from repro.utils import format_table
from repro.workloads import random_document

TINY = bool(os.environ.get("BENCH_E15_TINY"))

#: Formula pool for the union workload: few distinct shapes, so a deep
#: chain necessarily repeats subtrees.
UNION_POOL = (
    "(a|b)*x{(a|b)+}(a|b)*",
    "(a|b)*x{a+}b(a|b)*",
    "(a|b)*x{b+}y{a*}(a|b)*",
)

UNION_DEPTHS = (4,) if TINY else (4, 8, 16)
JOIN_WIDTHS = (2,) if TINY else (2, 3)
DOC_LENGTH = 30 if TINY else 60
N_DOCS = 2 if TINY else 4
REPEATS = 1 if TINY else 2

_JSON: dict = {
    "experiment": "e15_optimizer",
    "tiny": TINY,
    "union_pool": list(UNION_POOL),
    "sections": {},
}


def _flush_json():
    from bench_common import write_json_report

    _JSON["generated_unix"] = int(time.time())
    write_json_report("BENCH_optimizer.json", _JSON, at_root=True)


def _documents(seed: int = 7):
    import random

    rng = random.Random(seed)
    return [random_document("ab", DOC_LENGTH, rng) for _ in range(N_DOCS)]


def _union_query():
    """A projection over a deep union chain drawn from the small pool."""

    def build(depth: int):
        spanners = {
            f"u{i}": parse(UNION_POOL[i % len(UNION_POOL)]) for i in range(depth)
        }
        tree = Leaf("u0")
        for index in range(1, depth):
            tree = UnionNode(tree, Leaf(f"u{index}"))
        return Project(tree, frozenset({"x"})), Instantiation(spanners=spanners)

    return build


def _join_query():
    """A projection over a join chain with per-operand private variables."""

    def build(width: int):
        spanners = {}
        tree = None
        for index in range(width):
            # All operands share x; p<i>/q<i> are private, optional, and
            # projected away at the top.
            text = (
                f"(a|b)*x{{(a|b)+}}(a|b)*"
                f"(p{index}{{a+}}|ε)(a|b)*(q{index}{{b+}}|ε)(a|b)*"
            )
            spanners[f"j{index}"] = parse(text)
            leaf = Leaf(f"j{index}")
            tree = leaf if tree is None else Join(tree, leaf)
        return Project(tree, frozenset({"x"})), Instantiation(spanners=spanners)

    return build


def _measure(tree, inst, docs, optimize: bool) -> dict:
    best = None
    for _ in range(REPEATS):
        engine = Engine(optimize=optimize)
        query = RAQuery(tree, inst, engine=engine)
        start = time.perf_counter()
        plan = engine.prepare(query).plan
        compile_seconds = time.perf_counter() - start
        start = time.perf_counter()
        mappings = sum(len(query.evaluate(doc)) for doc in docs)
        enumerate_seconds = time.perf_counter() - start
        row = {
            "static_states": plan.static_states(),
            "estimated_states": (
                plan.report.estimate_after
                if plan.report is not None
                else plan.logical.estimated_states
            ),
            "compile_ms": compile_seconds * 1e3,
            "enumerate_ms": enumerate_seconds * 1e3,
            "total_ms": (compile_seconds + enumerate_seconds) * 1e3,
            "mappings": mappings,
            "rules_fired": dict(engine.stats.rule_fires),
        }
        if best is None or row["total_ms"] < best["total_ms"]:
            best = row
    return best


def _sweep(name: str, build, sizes, report) -> list[dict]:
    docs = _documents()
    rows = []
    for size in sizes:
        tree_on, inst_on = build(size)
        on = _measure(tree_on, inst_on, docs, optimize=True)
        tree_off, inst_off = build(size)  # fresh formula objects
        off = _measure(tree_off, inst_off, docs, optimize=False)
        assert on["mappings"] == off["mappings"], (name, size)
        rows.append(
            {
                "size": size,
                "states_before": off["static_states"],
                "states_after": on["static_states"],
                "estimated_states_before": off["estimated_states"],
                "estimated_states_after": on["estimated_states"],
                "compile_ms_off": off["compile_ms"],
                "compile_ms_on": on["compile_ms"],
                "enumerate_ms_off": off["enumerate_ms"],
                "enumerate_ms_on": on["enumerate_ms"],
                "total_ms_off": off["total_ms"],
                "total_ms_on": on["total_ms"],
                "speedup": off["total_ms"] / max(on["total_ms"], 1e-9),
                "mappings": on["mappings"],
                "rules_fired": on["rules_fired"],
            }
        )
    _JSON["sections"][name] = rows
    _flush_json()
    table = format_table(
        ["size", "states off→on", "compile off/on ms", "enum off/on ms", "speedup"],
        [
            [
                row["size"],
                f"{row['states_before']}→{row['states_after']}",
                f"{row['compile_ms_off']:.1f}/{row['compile_ms_on']:.1f}",
                f"{row['enumerate_ms_off']:.1f}/{row['enumerate_ms_on']:.1f}",
                f"{row['speedup']:.2f}x",
            ]
            for row in rows
        ],
    )
    report(f"E15-{name}", table)
    return rows


def bench_e15_union_dedup_and_pushdown(report):
    """Deep duplicate-laden unions: the optimizer must shrink the plan and
    win on compile+enumerate wall time."""
    rows = _sweep("deep_union_cse", _union_query(), UNION_DEPTHS, report)
    for row in rows:
        assert row["states_after"] < row["states_before"], row
    if not TINY:
        deepest = rows[-1]
        assert deepest["total_ms_on"] < deepest["total_ms_off"], deepest


def bench_e15_join_projection_pushdown(report):
    """Join chains with discarded private variables: pushdown shrinks the
    FPT product (intermediate size → compile time), never growing the
    final plan."""
    rows = _sweep("join_pushdown", _join_query(), JOIN_WIDTHS, report)
    for row in rows:
        assert row["states_after"] <= row["states_before"], row
        assert (
            row["estimated_states_after"] < row["estimated_states_before"]
        ), row
        assert "push-project-join" in row["rules_fired"], row
    if not TINY:
        widest = rows[-1]
        assert widest["compile_ms_on"] < widest["compile_ms_off"], widest
