"""E8 — Theorem 4.8 / Corollary 4.9: the synchronized difference, with the
determinisation-width ablation.

Workload: K separator-delimited blocks.  The minuend binds ``x_i`` to any
prefix of block i (many mappings); the subtrahend pins every ``x_i`` to the
block's first letter (one mapping) — functional and synchronized, sharing
*all* K variables with the minuend (outside E7's bounded-k regime).

Shapes to confirm:
* compile+evaluate time grows polynomially with the document length;
* the tracked-subset width (our stand-in for the paper's deterministic
  match structure D2) stays flat for the synchronized subtrahend and grows
  for an unsynchronized control with ambiguous operation placement.
"""

import random
import time

from repro.algebra import SyncDifferenceStats, synchronized_difference
from repro.regex import capture, concat, sigma_star, star, sym, union
from repro.utils import fit_power_law, format_table
from repro.va import evaluate_va

from bench_common import compile_formula

K = 3
LENGTH_SWEEP = (2, 4, 6, 8)


def _blocks(block_formula) -> "object":
    parts = []
    for i in range(1, K + 1):
        if parts:
            parts.append(sym("c"))
        parts.append(block_formula(i))
    return concat(*parts)


def _minuend():
    sigma = sigma_star("ab")
    return compile_formula(_blocks(lambda i: concat(capture(f"x{i}", sigma), sigma)))


def _subtrahend_synchronized():
    sigma = sigma_star("ab")
    return compile_formula(_blocks(lambda i: concat(capture(f"x{i}", sym("a")), sigma)))


def _subtrahend_unsynchronized():
    sigma = sigma_star("ab")
    return compile_formula(
        _blocks(
            lambda i: union(
                concat(capture(f"x{i}", sym("a")), sigma),
                concat(sym("a"), capture(f"x{i}", sigma)),
            )
        )
    )


def _document(block_length: int) -> str:
    rng = random.Random(8)
    chunks = [
        "a" + "".join(rng.choice("ab") for _ in range(block_length - 1))
        for _ in range(K)
    ]
    return "c".join(chunks)


def _run(doc: str, synchronized: bool = True):
    minuend = _minuend()
    subtrahend = (
        _subtrahend_synchronized() if synchronized else _subtrahend_unsynchronized()
    )
    stats = SyncDifferenceStats()
    start = time.perf_counter()
    compiled = synchronized_difference(
        minuend, subtrahend, doc, require_synchronized=synchronized, stats=stats
    )
    result = evaluate_va(compiled, doc)
    elapsed = time.perf_counter() - start
    return elapsed, stats, len(result)


def _sweep():
    rows, xs, ys = [], [], []
    for block_length in LENGTH_SWEEP:
        doc = _document(block_length)
        elapsed, stats, out = _run(doc)
        rows.append(
            [
                len(doc),
                stats.max_tracked_set,
                stats.product_nodes,
                out,
                f"{elapsed * 1e3:.1f}",
            ]
        )
        xs.append(len(doc))
        ys.append(max(elapsed, 1e-7))
    return rows, xs, ys


def bench_e8_document_sweep(benchmark, report):
    rows, xs, ys = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    exponent = fit_power_law(xs, ys)
    table = format_table(
        ["doc_chars", "max_tracked_set", "product_nodes", "results", "ms"],
        rows,
        title=f"E8a synchronized difference (k={K}, all variables shared): "
        f"power-law exponent ≈ {exponent:.2f}; tracked-set width stays flat",
    )
    report("E8a_sync_difference_doc_sweep", table)
    assert all(row[3] > 0 for row in rows), "workload must produce survivors"
    widths = [row[1] for row in rows]
    assert max(widths) <= 4, "synchronized subtrahend must keep tracking small"


def _skipping_minuend():
    """A minuend whose runs may *skip* each shared variable — skipped
    variables leave the subtrahend's operation placement unconstrained,
    which is where the determinisation width lives."""
    from repro.regex import eps

    sigma = sigma_star("ab")
    return compile_formula(
        _blocks(lambda i: union(concat(capture(f"x{i}", sigma), sigma), sigma))
    )


def _ablation():
    doc = _document(5)
    minuend = _skipping_minuend()
    rows = []
    for label, synchronized in (("synchronized", True), ("unsynchronized", False)):
        subtrahend = (
            _subtrahend_synchronized() if synchronized else _subtrahend_unsynchronized()
        )
        stats = SyncDifferenceStats()
        start = time.perf_counter()
        compiled = synchronized_difference(
            minuend, subtrahend, doc, require_synchronized=synchronized, stats=stats
        )
        out = len(evaluate_va(compiled, doc))
        elapsed = time.perf_counter() - start
        rows.append(
            [
                label,
                stats.max_tracked_set,
                stats.product_nodes,
                out,
                f"{elapsed * 1e3:.1f}",
            ]
        )
    return rows


def bench_e8_synchronizedness_ablation(benchmark, report):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    table = format_table(
        ["subtrahend", "max_tracked_set", "product_nodes", "results", "ms"],
        rows,
        title="E8b ablation: the D2-style tracked-set width under a "
        "synchronized vs unsynchronized subtrahend",
    )
    report("E8b_sync_difference_ablation", table)
    sync_width, unsync_width = rows[0][1], rows[1][1]
    assert unsync_width >= sync_width


def bench_e8_single(benchmark):
    doc = _document(6)
    minuend, subtrahend = _minuend(), _subtrahend_synchronized()
    benchmark(
        lambda: len(
            evaluate_va(synchronized_difference(minuend, subtrahend, doc), doc)
        )
    )
