"""E2 — Theorem 3.1: the join of two sequential regex formulas is NP-hard.

Shape to confirm: the baseline (materialise both operands, join) grows
exponentially with the number of SAT variables on the reduction instances
— the operand relations have 2^n and 3^m mappings — while the DPLL oracle
confirms every verdict.
"""

import random
import time

from repro.algebra import semantic_join
from repro.reductions import build_join_instance, is_satisfiable, random_3cnf
from repro.utils import format_table, growth_factors
from repro.va import evaluate_va, regex_to_va, trim

SIZES = (3, 4, 5, 6, 7)


def _solve(n_vars: int, seed: int = 0):
    cnf = random_3cnf(n_vars, n_vars + 2, random.Random(seed))
    instance = build_join_instance(cnf)
    start = time.perf_counter()
    r1 = evaluate_va(trim(regex_to_va(instance.gamma1)), instance.document)
    r2 = evaluate_va(trim(regex_to_va(instance.gamma2)), instance.document)
    joined = semantic_join(r1, r2)
    elapsed = time.perf_counter() - start
    assert (not joined.is_empty) == is_satisfiable(cnf)
    return elapsed, len(r1), len(r2), len(joined)


def _sweep():
    rows, times = [], []
    for n in SIZES:
        elapsed, left, right, out = _solve(n)
        rows.append([n, left, right, out, f"{elapsed * 1e3:.1f}"])
        times.append(elapsed)
    return rows, times


def bench_e2_join_hardness_sweep(benchmark, report):
    rows, times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    factors = growth_factors(times)
    table = format_table(
        ["sat_vars", "|⟦γ1⟧|", "|⟦γ2⟧|", "|join|", "time_ms"],
        rows,
        title="E2 join hardness (Thm 3.1 reduction, baseline join); "
        f"per-variable growth factors {[f'{f:.1f}' for f in factors]}",
    )
    report("E2_join_hardness", table)
    # exponential signature: the left operand doubles per variable
    assert rows[-1][1] == 2 ** SIZES[-1]


def bench_e2_single_instance(benchmark):
    benchmark(lambda: _solve(5))
