"""E12 — Prop. 4.10 + Theorem 4.4: hardness survives the syntactic
restrictions.

Shapes to confirm:
* Tovey instances (disjunction-free minuend, ≤3 disjuncts per variable)
  still drive the baseline difference exponential in the variable count;
* the W[1] family's cost grows with the parameter k even at fixed
  document size.
"""

import random
import time

from repro.algebra import semantic_difference
from repro.reductions import (
    build_tovey_instance,
    build_w1_instance,
    is_satisfiable,
    random_3cnf,
    random_tovey_cnf,
    weighted_satisfiable,
)
from repro.utils import format_table, growth_factors
from repro.va import evaluate_va, regex_to_va, trim

TOVEY_SIZES = (4, 6, 8, 10)
W1_WEIGHTS = (1, 2, 3)


def _solve_tovey(n_vars: int, seed: int = 2):
    cnf = random_tovey_cnf(n_vars, random.Random(seed))
    instance = build_tovey_instance(cnf)
    start = time.perf_counter()
    r1 = evaluate_va(trim(regex_to_va(instance.gamma1)), instance.document)
    r2 = evaluate_va(trim(regex_to_va(instance.gamma2)), instance.document)
    difference = semantic_difference(r1, r2)
    elapsed = time.perf_counter() - start
    assert (not difference.is_empty) == is_satisfiable(cnf)
    return elapsed, len(r1), len(difference)


def _solve_w1(weight: int, seed: int = 2):
    cnf = random_3cnf(6, 5, random.Random(seed))
    instance = build_w1_instance(cnf, weight)
    start = time.perf_counter()
    r1 = evaluate_va(trim(regex_to_va(instance.gamma1)), instance.document)
    r2 = evaluate_va(trim(regex_to_va(instance.gamma2)), instance.document)
    difference = semantic_difference(r1, r2)
    elapsed = time.perf_counter() - start
    expected = weighted_satisfiable(cnf, weight) is not None
    assert (not difference.is_empty) == expected
    return elapsed, len(r1), len(r2)


def _sweep_tovey():
    rows, times = [], []
    for n in TOVEY_SIZES:
        elapsed, assignments, models = _solve_tovey(n)
        rows.append([n, assignments, models, f"{elapsed * 1e3:.1f}"])
        times.append(elapsed)
    return rows, times


def _sweep_w1():
    rows = []
    for k in W1_WEIGHTS:
        elapsed, selections, violations = _solve_w1(k)
        rows.append([k, selections, violations, f"{elapsed * 1e3:.1f}"])
    return rows


def bench_e12_tovey_sweep(benchmark, report):
    rows, times = benchmark.pedantic(_sweep_tovey, rounds=1, iterations=1)
    table = format_table(
        ["vars", "|⟦γ1⟧|", "|difference|", "time_ms"],
        rows,
        title="E12a Prop.-4.10 instances (disjunction-free structure): "
        f"baseline still exponential, growth {[f'{g:.1f}' for g in growth_factors(times)]}",
    )
    report("E12a_tovey_hardness", table)
    assert rows[-1][1] == 2 ** TOVEY_SIZES[-1]


def bench_e12_w1_sweep(benchmark, report):
    rows = benchmark.pedantic(_sweep_w1, rounds=1, iterations=1)
    table = format_table(
        ["weight_k", "|⟦γ1⟧| (= C(n,k))", "|⟦γ2⟧|", "time_ms"],
        rows,
        title="E12b Thm-4.4 family (6 SAT vars, k shared spanner "
        "variables): cost grows with the parameter k",
    )
    report("E12b_w1_hardness", table)


def bench_e12_tovey_single(benchmark):
    benchmark(lambda: _solve_tovey(8))
