"""E1 — Theorem 2.5: polynomial-delay enumeration for sequential VAs.

Shape to confirm: the *maximum inter-result delay* grows polynomially
(near-linearly for this workload) with the document length, independent of
the output size; the first delay carries the linear preprocessing.
"""

import random

from repro.utils import fit_power_law, format_table, record_enumeration
from repro.va import FactorizedVA, enumerate_compiled, regex_to_va, trim
from repro.workloads import alpha_info, generate_students

SIZES = (10, 20, 40, 80)


def _factorized():
    return FactorizedVA(trim(regex_to_va(alpha_info())))


def _sweep():
    fva = _factorized()
    rows = []
    lengths, delays = [], []
    for n_students in SIZES:
        doc = generate_students(n_students, random.Random(7))
        stats = record_enumeration(enumerate_compiled(fva, doc))
        rows.append(
            [
                len(doc),
                stats.count,
                f"{stats.first_delay * 1e3:.2f}",
                f"{stats.max_inter_delay * 1e3:.3f}",
                f"{stats.mean_delay * 1e3:.3f}",
            ]
        )
        lengths.append(len(doc))
        delays.append(max(stats.max_inter_delay, 1e-7))
    return rows, lengths, delays


def bench_e1_delay_scaling(benchmark, report):
    rows, lengths, delays = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    exponent = fit_power_law(lengths, delays)
    table = format_table(
        ["doc_chars", "mappings", "first_ms", "max_inter_ms", "mean_ms"],
        rows,
        title=f"E1 enumeration delay (αinfo on student corpora); "
        f"max-inter-delay power-law exponent ≈ {exponent:.2f}",
    )
    report("E1_enumeration_delay", table)
    # polynomial of low degree — nowhere near the output-sized blowup a
    # materialising evaluator would show
    assert exponent < 3.0


def bench_e1_enumerate_40_students(benchmark):
    fva = _factorized()
    doc = generate_students(40, random.Random(7))
    benchmark(lambda: sum(1 for _ in enumerate_compiled(fva, doc)))
