"""E18 — incremental append evaluation: tailing a growing document costs
O(appended), not O(document).

The match graph is layered by position, so a :class:`~repro.engine.tail
.TailSession` resumes the Boolean forward pass from the previous run's
checkpointed frontier instead of rebuilding from position 0.  The sweep
tails the server-logs workload pack (``repro.workloads.packs``) with the
ERROR-timestamp monitoring query and times each 100-letter append two
ways:

* **incremental** — ``session.reevaluate(chunk)`` on one long-lived
  session (frontier resume over the overhang);
* **rebuild** — a fresh full evaluation of the whole accumulated
  document, plan cache warm (what every poll costs without the
  incremental runtime).

Two regimes:

* **quiet** (the acceptance section) — ``error_rate=0``: no append ever
  completes a match, so the incremental path is pure frontier extension
  plus an emptiness test.  The bar: **≥5x** speedup for 100-letter
  appends on a ≥50k-letter document (in practice it is orders of
  magnitude — the rebuild re-walks every layer).
* **dense** — ``error_rate=0.2``: matching re-evaluations pay
  enumeration over the whole document, which both paths share; reported,
  not asserted.

Results are written to ``BENCH_incremental.json`` at the repository root
(CI uploads it; ``tests/integration/test_perf_budgets.py`` gates the
committed copy).  Set ``BENCH_E18_TINY=1`` for a seconds-scale smoke
version with the timing assertions relaxed.
"""

import os
import time

from repro.engine import Engine
from repro.utils import format_table
from repro.va import regex_to_va, trim
from repro.workloads.packs import (
    error_timestamp_formula,
    generate_log,
    golden_error_timestamps,
)

TINY = bool(os.environ.get("BENCH_E18_TINY"))

APPEND_LETTERS = 100
APPENDS = 3 if TINY else 20
QUIET_DOC_LETTERS = (2_000,) if TINY else (10_000, 50_000)
DENSE_DOC_LETTERS = 1_000 if TINY else 5_000

_JSON: dict = {
    "experiment": "e18_incremental",
    "formula": "error_timestamp_formula (workload pack: server_logs)",
    "tiny": TINY,
    "sections": {},
}


def _flush_json():
    from bench_common import write_json_report

    _JSON["generated_unix"] = int(time.time())
    write_json_report("BENCH_incremental.json", _JSON, at_root=True)


def _log_of_length(letters: int, error_rate: float, seed: int) -> str:
    """A pack-generated log trimmed to exactly ``letters`` letters."""
    lines = 1 + letters // 40  # pack lines run ~45-60 letters
    text = generate_log(lines, seed=seed, error_rate=error_rate)
    while len(text) < letters:
        lines *= 2
        text = generate_log(lines, seed=seed, error_rate=error_rate)
    return text[:letters]


def _measure(base_letters: int, error_rate: float, seed: int) -> dict:
    """Time APPENDS × APPEND_LETTERS-letter appends, incremental vs
    rebuild, on a ``base_letters``-letter document."""
    va = trim(regex_to_va(error_timestamp_formula()))
    total = base_letters + APPENDS * APPEND_LETTERS
    text = _log_of_length(total, error_rate, seed)
    base = text[:base_letters]
    chunks = [
        text[base_letters + i * APPEND_LETTERS :
             base_letters + (i + 1) * APPEND_LETTERS]
        for i in range(APPENDS)
    ]

    engine = Engine()
    session = engine.tail(va, base)
    session.reevaluate()  # establish the checkpointed run (setup, untimed)
    incremental_matches = 0
    start = time.perf_counter()
    for chunk in chunks:
        incremental_matches += len(session.reevaluate(chunk))
    incremental_ms = (time.perf_counter() - start) * 1e3 / APPENDS

    rebuild_engine = Engine()
    rebuild_engine.evaluate(va, base)  # warm the plan cache (untimed)
    accumulated = base
    rebuild_ms_total = 0.0
    final_relation = None
    for chunk in chunks:
        accumulated += chunk
        start = time.perf_counter()
        final_relation = rebuild_engine.evaluate(va, accumulated)
        rebuild_ms_total += time.perf_counter() - start
    rebuild_ms = rebuild_ms_total * 1e3 / APPENDS

    # Correctness alongside the timing: the session's lifetime emissions
    # cover the full document's matches, which equal the golden oracle.
    assert accumulated == text
    assert len(final_relation) == len(golden_error_timestamps(text))
    assert session.total_matches >= len(final_relation)

    stats = engine.stats
    return {
        "doc_letters": base_letters,
        "append_letters": APPEND_LETTERS,
        "appends": APPENDS,
        "error_rate": error_rate,
        "matches": incremental_matches,
        "incremental_ms": round(incremental_ms, 4),
        "rebuild_ms": round(rebuild_ms, 4),
        "speedup": round(rebuild_ms / incremental_ms, 1),
        "reused_layers": stats.tail_reused_layers,
        "recomputed_layers": stats.tail_recomputed_layers,
    }


def _table(rows, title):
    return format_table(
        [
            "doc",
            "append",
            "appends",
            "err_rate",
            "matches",
            "incr_ms",
            "rebuild_ms",
            "speedup",
            "reused",
            "recomputed",
        ],
        [
            [
                r["doc_letters"],
                r["append_letters"],
                r["appends"],
                r["error_rate"],
                r["matches"],
                r["incremental_ms"],
                r["rebuild_ms"],
                f'{r["speedup"]}x',
                r["reused_layers"],
                r["recomputed_layers"],
            ]
            for r in rows
        ],
        title=title,
    )


# -- quiet regime (acceptance) ------------------------------------------------


def _quiet_sweep():
    return [
        _measure(letters, error_rate=0.0, seed=18 + i)
        for i, letters in enumerate(QUIET_DOC_LETTERS)
    ]


def bench_e18_quiet_tail(benchmark, report):
    rows = benchmark.pedantic(_quiet_sweep, rounds=1, iterations=1)
    report(
        "E18a_quiet_tail",
        _table(
            rows,
            "E18a quiet monitoring stream (error_rate=0): per-append cost "
            "of the incremental session vs a full re-evaluation",
        ),
    )
    _JSON["sections"]["quiet"] = {"rows": rows}
    _flush_json()
    for row in rows:
        # No append completes a match on a quiet stream, and the session
        # reuses every already-built layer.
        assert row["matches"] == 0, row
        assert row["reused_layers"] > 0, row
    if not TINY:
        # Acceptance bar: ≥5x for 100-letter appends on a ≥50k-letter
        # document.
        big = max(rows, key=lambda r: r["doc_letters"])
        assert big["doc_letters"] >= 50_000, rows
        assert big["append_letters"] == 100, rows
        assert big["speedup"] >= 5.0, big


# -- dense regime (reported) --------------------------------------------------


def _dense_sweep():
    return [_measure(DENSE_DOC_LETTERS, error_rate=0.2, seed=31)]


def bench_e18_dense_tail(benchmark, report):
    rows = benchmark.pedantic(_dense_sweep, rounds=1, iterations=1)
    report(
        "E18b_dense_tail",
        _table(
            rows,
            "E18b dense stream (error_rate=0.2): matching re-evaluations "
            "pay enumeration over the whole document in both paths — the "
            "incremental saving is graph construction only",
        ),
    )
    _JSON["sections"]["dense"] = {"rows": rows}
    _flush_json()
    assert rows[0]["matches"] > 0, rows
