"""E3 — Lemma 3.2 / Theorem 3.3: FPT join compilation.

Shapes to confirm:
* for a fixed number of shared variables k, compile time and output size
  grow polynomially with the operand sizes;
* sweeping k shows the ~4^k component-pair factor — exponential in k only
  (the FPT signature; Theorem 3.1 says this cannot be avoided).
"""

import time

from repro.algebra import fpt_join
from repro.utils import fit_power_law, format_table
from repro.va import evaluate_va

from bench_common import block_document, shared_block_pair

SHARED_SWEEP = (0, 1, 2, 3)
PRIVATE_SWEEP = (1, 3, 5, 7)


def _compile_pair(shared: int, private: int):
    left, right = shared_block_pair(shared, private)
    start = time.perf_counter()
    joined = fpt_join(left, right)
    elapsed = time.perf_counter() - start
    return elapsed, left.n_states + right.n_states, joined.n_states, joined


def _sweep_shared():
    rows, times = [], []
    for k in SHARED_SWEEP:
        elapsed, in_states, out_states, _ = _compile_pair(k, private=2)
        rows.append([k, in_states, out_states, f"{elapsed * 1e3:.1f}"])
        times.append(elapsed)
    return rows, times


def _sweep_size():
    rows, sizes, times = [], [], []
    for private in PRIVATE_SWEEP:
        elapsed, in_states, out_states, _ = _compile_pair(1, private)
        rows.append([private, in_states, out_states, f"{elapsed * 1e3:.1f}"])
        sizes.append(in_states)
        times.append(elapsed)
    return rows, sizes, times


def bench_e3_shared_variable_sweep(benchmark, report):
    rows, times = benchmark.pedantic(_sweep_shared, rounds=1, iterations=1)
    table = format_table(
        ["shared_k", "input_states", "output_states", "compile_ms"],
        rows,
        title="E3a FPT join: sweep shared variables k (private=2) — "
        "expect ~4^k growth in k",
    )
    report("E3a_fpt_join_shared_sweep", table)


def bench_e3_operand_size_sweep(benchmark, report):
    rows, sizes, times = benchmark.pedantic(_sweep_size, rounds=1, iterations=1)
    exponent = fit_power_law(sizes, [max(t, 1e-7) for t in times])
    table = format_table(
        ["private_vars", "input_states", "output_states", "compile_ms"],
        rows,
        title=f"E3b FPT join: operand-size sweep (k=1 fixed) — compile-time "
        f"power-law exponent ≈ {exponent:.2f} (polynomial)",
    )
    report("E3b_fpt_join_size_sweep", table)
    assert exponent < 4.0


def bench_e3_compile_and_evaluate(benchmark):
    left, right = shared_block_pair(2, 2)
    doc = block_document(4, 3)  # 4 blocks to match the 4-block formulas

    def run():
        joined = fpt_join(left, right)
        return len(evaluate_va(joined, doc))

    benchmark(run)
