"""E14 — the streaming match-graph runtime: first-match latency, density
sweeps, and parallel corpus evaluation.

Theorem 2.5 promises the *first* answer after one linear preprocessing
pass.  The lazy :class:`~repro.va.indexed.IndexedMatchGraph` makes that
concrete: construction is a Boolean bitmask forward pass, and enumeration
edges materialise only along the paths the DFS walks.  This bench measures

* **first-match latency** (lazy vs. the eager edge build, sweeping document
  length on sparse documents) — the lazy path must be ≥2x faster on long
  sparse inputs;
* a **match-density sweep** at fixed length — how first-match, full
  enumeration, and the Boolean emptiness check scale as matches thicken;
* **parallel corpus evaluation** — ``Engine.evaluate_many(workers=N)``
  sharding a document batch across processes, which must scale near
  linearly when the hardware has the cores (the assertion is skipped on
  starved runners; the measured numbers are recorded either way).

Results are written both as human-readable tables (the ``report`` fixture)
and machine-readably to ``BENCH_runtime.json`` at the repository root (the
perf-trajectory seed; CI uploads it as an artifact).  Set ``BENCH_E14_TINY=1``
to run a seconds-scale smoke version that still exercises every code path
and the full JSON schema, with the timing assertions relaxed.
"""

import os
import time

from repro.core import Document
from repro.engine import Engine
from repro.utils import format_table
from repro.va import (
    FactorizedVA,
    IndexedMatchGraph,
    MatchGraph,
    enumerate_matchgraph,
    indexed_nonempty,
)
from repro.workloads import random_document

TINY = bool(os.environ.get("BENCH_E14_TINY"))

#: Sparse single-capture workload: matches are the rare `c` positions in an
#: a/b sea, so match count ≈ density · length while the match graph still
#: spans the whole document.
FORMULA = "(a|b|c)*x{c}(a|b|c)*"

#: First-match workload: two adjacent captures anchored at rare `c` marks —
#: enough automaton structure that the eager build materialises many live
#: states per layer while the first-match walk touches one.
FIRST_FORMULA = "(a|b|c)*x{c(a|b)*}y{(a|b)*c}(a|b|c)*"

LENGTHS = (100, 300) if TINY else (1_000, 2_500, 5_000, 10_000)
SPARSE_DENSITY = 0.002
DENSITIES = (0.01, 0.05) if TINY else (0.0005, 0.005, 0.05)
DENSITY_LENGTH = 200 if TINY else 5_000
PARALLEL_DOCS = 8 if TINY else 200
PARALLEL_LENGTH = 100 if TINY else 2_000
PARALLEL_DENSITY = 0.01
WORKER_SWEEP = (1, 2) if TINY else (1, 2, 4)
REPEATS = 1 if TINY else 3

_JSON: dict = {
    "experiment": "e14_streaming_runtime",
    "formula": FORMULA,
    "first_match_formula": FIRST_FORMULA,
    "tiny": TINY,
    "cpu_count": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count(),
    "sections": {},
}


def _flush_json():
    from bench_common import write_json_report

    _JSON["generated_unix"] = int(time.time())
    write_json_report("BENCH_runtime.json", _JSON, at_root=True)


def _compiled():
    from bench_common import compile_formula

    return compile_formula(FORMULA)


def _sparse_document(length: int, density: float, seed: int) -> Document:
    import random

    rng = random.Random(seed)
    base = random_document("ab", length, rng).text
    # At least two marks so the pair-capture formula always has a match.
    n_marks = max(2, int(length * density))
    positions = rng.sample(range(length), n_marks)
    chars = list(base)
    for position in positions:
        chars[position] = "c"
    # A Document (not a str) so the letter-id encoding is computed once and
    # cached across repeated runs, as in a corpus-serving engine.
    return Document("".join(chars))


def _best_of(repeats, func):
    best, value = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = func()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best * 1e3, value


# -- first-match latency: lazy vs eager graphs ------------------------------


def _first_match_sweep():
    from bench_common import compile_formula

    va = compile_formula(FIRST_FORMULA)
    indexed = va.indexed()
    factorized = FactorizedVA(va)
    rows = []
    for length in LENGTHS:
        doc = _sparse_document(length, SPARSE_DENSITY, seed=length)
        lazy_ms, lazy_first = _best_of(
            REPEATS, lambda: IndexedMatchGraph(indexed, doc).first()
        )
        eager_ms, eager_first = _best_of(
            REPEATS,
            lambda: next(
                IndexedMatchGraph(indexed, doc, eager=True).enumerate(), None
            ),
        )
        matchgraph_ms, mg_first = _best_of(
            REPEATS,
            lambda: next(enumerate_matchgraph(MatchGraph(factorized, doc)), None),
        )
        assert lazy_first == eager_first == mg_first is not None
        rows.append(
            {
                "length": length,
                "lazy_first_ms": round(lazy_ms, 3),
                "eager_first_ms": round(eager_ms, 3),
                "matchgraph_first_ms": round(matchgraph_ms, 3),
                "speedup_vs_eager": round(eager_ms / lazy_ms, 2),
            }
        )
    return rows


def bench_e14_first_match_latency(benchmark, report):
    rows = benchmark.pedantic(_first_match_sweep, rounds=1, iterations=1)
    table = format_table(
        ["length", "lazy_ms", "eager_ms", "matchgraph_ms", "speedup_vs_eager"],
        [
            [
                r["length"],
                r["lazy_first_ms"],
                r["eager_first_ms"],
                r["matchgraph_first_ms"],
                f'{r["speedup_vs_eager"]:.2f}x',
            ]
            for r in rows
        ],
        title=f"E14a first-match latency on sparse documents "
        f"(density {SPARSE_DENSITY}): lazy Boolean pass + on-demand edges "
        "vs eager full edge build",
    )
    report("E14a_first_match_latency", table)
    _JSON["sections"]["first_match"] = {
        "formula": FIRST_FORMULA,
        "density": SPARSE_DENSITY,
        "repeats": REPEATS,
        "rows": rows,
    }
    _flush_json()
    if not TINY:
        # The acceptance bar: ≥2x on sparse 10k-letter documents.
        longest = rows[-1]
        assert longest["speedup_vs_eager"] >= 2.0, longest


# -- match-density sweep ----------------------------------------------------


def _density_sweep():
    va = _compiled()
    indexed = va.indexed()
    rows = []
    for density in DENSITIES:
        doc = _sparse_document(DENSITY_LENGTH, density, seed=int(density * 1e6))
        nonempty_ms, _ = _best_of(REPEATS, lambda: indexed_nonempty(indexed, doc))
        first_ms, _ = _best_of(REPEATS, lambda: IndexedMatchGraph(indexed, doc).first())
        full_ms, mappings = _best_of(
            REPEATS, lambda: sum(1 for _ in IndexedMatchGraph(indexed, doc).enumerate())
        )
        rows.append(
            {
                "density": density,
                "mappings": mappings,
                "nonempty_ms": round(nonempty_ms, 3),
                "first_ms": round(first_ms, 3),
                "full_ms": round(full_ms, 3),
            }
        )
    return rows


def bench_e14_match_density(benchmark, report):
    rows = benchmark.pedantic(_density_sweep, rounds=1, iterations=1)
    table = format_table(
        ["density", "mappings", "nonempty_ms", "first_ms", "full_ms"],
        [
            [r["density"], r["mappings"], r["nonempty_ms"], r["first_ms"], r["full_ms"]]
            for r in rows
        ],
        title=f"E14b match-density sweep at length {DENSITY_LENGTH}: the "
        "Boolean emptiness check and first-match stay flat while full "
        "enumeration grows with the output",
    )
    report("E14b_match_density", table)
    _JSON["sections"]["density_sweep"] = {"length": DENSITY_LENGTH, "rows": rows}
    _flush_json()
    # Short-circuit sanity: deciding emptiness must not cost more than full
    # enumeration at the densest setting.
    densest = rows[-1]
    assert densest["nonempty_ms"] <= densest["full_ms"] * 1.5, densest


# -- parallel corpus evaluation ---------------------------------------------


def _parallel_sweep():
    va = _compiled()
    docs = [
        _sparse_document(PARALLEL_LENGTH, PARALLEL_DENSITY, seed=i)
        for i in range(PARALLEL_DOCS)
    ]
    rows = []
    baseline_ms = None
    baseline = None
    for workers in WORKER_SWEEP:
        engine = Engine()
        start = time.perf_counter()
        relations = engine.evaluate_many(va, docs, workers=workers)
        wall_ms = (time.perf_counter() - start) * 1e3
        if baseline is None:
            baseline, baseline_ms = relations, wall_ms
        else:
            assert relations == baseline  # sharding must not change results
        rows.append(
            {
                "workers": workers,
                "wall_ms": round(wall_ms, 1),
                "speedup": round(baseline_ms / wall_ms, 2),
                "parallel_shards": engine.stats.parallel_shards,
                "documents": engine.stats.documents,
            }
        )
    return rows


def bench_e14_parallel_scaling(benchmark, report):
    rows = benchmark.pedantic(_parallel_sweep, rounds=1, iterations=1)
    cpus = _JSON["cpu_count"] or 1
    table = format_table(
        ["workers", "wall_ms", "speedup", "shards", "documents"],
        [
            [r["workers"], r["wall_ms"], f'{r["speedup"]:.2f}x', r["parallel_shards"], r["documents"]]
            for r in rows
        ],
        title=f"E14c parallel corpus evaluation ({PARALLEL_DOCS} docs x "
        f"{PARALLEL_LENGTH} letters, {cpus} CPU(s) available): "
        "evaluate_many(workers=N) shards across processes",
    )
    report("E14c_parallel_scaling", table)
    _JSON["sections"]["parallel_scaling"] = {
        "n_docs": PARALLEL_DOCS,
        "doc_length": PARALLEL_LENGTH,
        "density": PARALLEL_DENSITY,
        "rows": rows,
    }
    _flush_json()
    for row in rows:
        assert row["documents"] == PARALLEL_DOCS  # stats merged from shards
    if not TINY and cpus >= 4:
        by_workers = {r["workers"]: r for r in rows}
        assert by_workers[4]["speedup"] >= 2.0, by_workers[4]
