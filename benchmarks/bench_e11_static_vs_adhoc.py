"""E11 — Section 4's core argument: static difference compilation must
blow up exponentially [17]; ad-hoc compilation does not.

Shape to confirm: on the "n-th letter from the end" family the statically
compiled difference (via determinising the subtrahend) reaches 2^n states,
while the ad-hoc automaton for a fixed document grows only linearly in n —
the crossover that motivates the paper's whole ad-hoc approach.

``bench_e11_engine_static_cache`` exercises the flip side through the
execution engine: the *static prefix* of a query (here an FPT join) is
document independent, so caching it across a repeated-document workload
must beat recompiling the whole tree per document — the staged
architecture Theorem 5.2's static/ad-hoc split licenses.
"""

import random
import time

from repro.algebra import (
    Instantiation,
    PlannerConfig,
    RAQuery,
    adhoc_difference,
    evaluate_ra,
)
from repro.algebra.ra_tree import Difference, Join, Leaf, Project
from repro.engine import Engine
from repro.regex import parse
from repro.utils import format_table
from repro.va import evaluate_va, trim
from repro.va.boolean import static_boolean_difference
from repro.workloads import nth_from_end_va, random_document

N_SWEEP = (2, 4, 6, 8, 10, 12)
DOC_LENGTH = 30


def _sigma_star_va():
    from bench_common import compile_formula

    return compile_formula("(a|b)*")


def _sweep():
    sigma_star = _sigma_star_va()
    doc = random_document("ab", DOC_LENGTH, random.Random(11)).text
    rows = []
    for n in N_SWEEP:
        subtrahend = trim(nth_from_end_va(n))
        start = time.perf_counter()
        static_va, dfa_states = static_boolean_difference(sigma_star, subtrahend, "ab")
        static_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        adhoc_va = adhoc_difference(sigma_star, subtrahend, doc)
        adhoc_ms = (time.perf_counter() - start) * 1e3
        # both must agree on the document
        assert evaluate_va(trim(static_va), doc) == evaluate_va(adhoc_va, doc)
        rows.append(
            [
                n,
                dfa_states,
                static_va.n_states,
                f"{static_ms:.1f}",
                adhoc_va.n_states,
                f"{adhoc_ms:.1f}",
            ]
        )
    return rows


def bench_e11_static_vs_adhoc(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "n",
            "subtrahend_DFA_states",
            "static_diff_states",
            "static_ms",
            "adhoc_states",
            "adhoc_ms",
        ],
        rows,
        title="E11 static vs ad-hoc difference on the nth-from-end family "
        f"(doc length {DOC_LENGTH}): static explodes as 2^n, ad-hoc stays "
        "document-linear",
    )
    report("E11_static_vs_adhoc", table)
    # Exponential vs flat: by n=12 the determinised subtrahend dwarfs the
    # ad-hoc automaton.
    assert rows[-1][1] >= 2 ** N_SWEEP[-1]


def bench_e11_adhoc_only(benchmark):
    sigma_star = _sigma_star_va()
    subtrahend = trim(nth_from_end_va(10))
    doc = random_document("ab", DOC_LENGTH, random.Random(11)).text
    benchmark(lambda: adhoc_difference(sigma_star, subtrahend, doc).n_states)


# -- the engine's static-prefix cache on a repeated-document workload -------

N_DISTINCT_DOCS = 6
N_REPEATS = 3


def _engine_workload():
    """A query whose static prefix (an FPT join) dominates compilation,
    plus a repeated-document stream."""
    tree = Project(
        Difference(Join(Leaf("a"), Leaf("b")), Leaf("c")), frozenset({"x"})
    )
    inst = Instantiation(
        spanners={
            "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
            "b": parse("(a|b)*x{(a|b)+}y{(a|b)*}"),
            "c": parse("(a|b)*x{a}(a|b)*"),
        }
    )
    config = PlannerConfig(max_shared=2)
    rng = random.Random(23)
    distinct = [
        random_document("ab", 8, rng).text for _ in range(N_DISTINCT_DOCS)
    ]
    docs = distinct * N_REPEATS
    rng.shuffle(docs)
    return tree, inst, config, docs


def _engine_cache_run():
    tree, inst, config, docs = _engine_workload()

    start = time.perf_counter()
    cold = [evaluate_ra(tree, inst, doc, config) for doc in docs]
    cold_ms = (time.perf_counter() - start) * 1e3

    engine = Engine(document_cache_size=N_DISTINCT_DOCS)
    query = RAQuery(tree, inst, config, engine=engine)
    start = time.perf_counter()
    warm = query.evaluate_many(docs)
    warm_ms = (time.perf_counter() - start) * 1e3

    assert warm == cold  # interchangeable results
    stats = engine.stats
    rows = [
        ["cold (full recompile/doc)", len(docs), f"{cold_ms:.1f}", "-", "-", "-"],
        [
            "warm (engine plan cache)",
            len(docs),
            f"{warm_ms:.1f}",
            stats.static_reuses,
            stats.adhoc_compiles,
            stats.document_hits,
        ],
    ]
    return rows, cold_ms, warm_ms


def bench_e11_engine_static_cache(benchmark, report):
    rows, cold_ms, warm_ms = benchmark.pedantic(
        _engine_cache_run, rounds=1, iterations=1
    )
    table = format_table(
        ["mode", "docs", "total_ms", "static_reuses", "adhoc_compiles", "doc_cache_hits"],
        rows,
        title="E11b engine static-prefix cache vs per-document recompilation "
        f"({N_DISTINCT_DOCS} distinct docs x {N_REPEATS} repeats): the static "
        "join compiles once, only the ad-hoc difference is per-document",
    )
    report("E11b_engine_static_cache", table)
    # The staged engine must beat full recompilation on repeated documents.
    assert warm_ms < cold_ms, (warm_ms, cold_ms)
