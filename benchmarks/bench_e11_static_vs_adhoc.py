"""E11 — Section 4's core argument: static difference compilation must
blow up exponentially [17]; ad-hoc compilation does not.

Shape to confirm: on the "n-th letter from the end" family the statically
compiled difference (via determinising the subtrahend) reaches 2^n states,
while the ad-hoc automaton for a fixed document grows only linearly in n —
the crossover that motivates the paper's whole ad-hoc approach.
"""

import random
import time

from repro.algebra import adhoc_difference
from repro.utils import format_table
from repro.va import evaluate_va, trim
from repro.va.boolean import static_boolean_difference
from repro.workloads import nth_from_end_va, random_document

N_SWEEP = (2, 4, 6, 8, 10, 12)
DOC_LENGTH = 30


def _sigma_star_va():
    from bench_common import compile_formula

    return compile_formula("(a|b)*")


def _sweep():
    sigma_star = _sigma_star_va()
    doc = random_document("ab", DOC_LENGTH, random.Random(11)).text
    rows = []
    for n in N_SWEEP:
        subtrahend = trim(nth_from_end_va(n))
        start = time.perf_counter()
        static_va, dfa_states = static_boolean_difference(sigma_star, subtrahend, "ab")
        static_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        adhoc_va = adhoc_difference(sigma_star, subtrahend, doc)
        adhoc_ms = (time.perf_counter() - start) * 1e3
        # both must agree on the document
        assert evaluate_va(trim(static_va), doc) == evaluate_va(adhoc_va, doc)
        rows.append(
            [
                n,
                dfa_states,
                static_va.n_states,
                f"{static_ms:.1f}",
                adhoc_va.n_states,
                f"{adhoc_ms:.1f}",
            ]
        )
    return rows


def bench_e11_static_vs_adhoc(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "n",
            "subtrahend_DFA_states",
            "static_diff_states",
            "static_ms",
            "adhoc_states",
            "adhoc_ms",
        ],
        rows,
        title="E11 static vs ad-hoc difference on the nth-from-end family "
        f"(doc length {DOC_LENGTH}): static explodes as 2^n, ad-hoc stays "
        "document-linear",
    )
    report("E11_static_vs_adhoc", table)
    # Exponential vs flat: by n=12 the determinised subtrahend dwarfs the
    # ad-hoc automaton.
    assert rows[-1][1] >= 2 ** N_SWEEP[-1]


def bench_e11_adhoc_only(benchmark):
    sigma_star = _sigma_star_va()
    subtrahend = trim(nth_from_end_va(10))
    doc = random_document("ab", DOC_LENGTH, random.Random(11)).text
    benchmark(lambda: adhoc_difference(sigma_star, subtrahend, doc).n_states)
