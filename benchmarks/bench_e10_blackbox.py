"""E10 — Corollary 5.3 / Example 5.4: black-box spanners inside RA trees.

Shape to confirm: replacing a regular leaf (αnr) by an opaque degree-2
black box (the sentiment module) keeps the evaluation polynomial — the
black box is materialised per document (polynomial output by degree
boundedness) and folded in by the ad-hoc machinery.
"""

import random
import time

from repro.algebra import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    SentimentSpanner,
    StringEqualitySpanner,
)
from repro.utils import fit_power_law, format_table
from repro.workloads import (
    alpha_student_mail,
    alpha_student_phone,
    generate_students,
)

SIZES = (5, 10, 20, 30)


def blackbox_query() -> RAQuery:
    tree = Project(Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("posrec")), "keep")
    inst = Instantiation(
        spanners={
            "sm": alpha_student_mail(),
            "sp": alpha_student_phone(),
            "posrec": SentimentSpanner(
                "xstdnt", "xposrec", lexicon={"good", "great", "excellent"}
            ),
        },
        projections={"keep": frozenset({"xstdnt"})},
    )
    return RAQuery(tree, inst, PlannerConfig(max_shared=2))


def _sweep():
    query = blackbox_query()
    rows, xs, ys = [], [], []
    for n_students in SIZES:
        doc = generate_students(
            n_students, random.Random(10), with_phone=0.9, with_recommendation=0.5
        )
        start = time.perf_counter()
        count = sum(1 for _ in query.enumerate(doc))
        elapsed = time.perf_counter() - start
        rows.append([len(doc), count, f"{elapsed * 1e3:.0f}"])
        xs.append(len(doc))
        ys.append(max(elapsed, 1e-7))
    return rows, xs, ys


def bench_e10_blackbox_scaling(benchmark, report):
    rows, xs, ys = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    exponent = fit_power_law(xs, ys)
    table = format_table(
        ["doc_chars", "results", "total_ms"],
        rows,
        title=f"E10 black-box (PosRec) inside the Figure-2 tree: power-law "
        f"exponent ≈ {exponent:.2f} (polynomial, Cor. 5.3)",
    )
    report("E10_blackbox", table)
    assert exponent < 5.0


def bench_e10_string_equality_join(benchmark):
    # The classic beyond-regular black box joined with a regular anchor.
    from repro.algebra import evaluate_ra

    tree = Join(Leaf("eq"), Leaf("anchor"))
    inst = Instantiation(
        spanners={
            "eq": StringEqualitySpanner("x", "y"),
            "anchor": __import__("repro").parse("[ab]*x{[ab][ab]}[ab]*"),
        }
    )
    doc = "abbaabba"
    benchmark(lambda: len(evaluate_ra(tree, inst, doc)))
