"""E6 — Theorem 4.1: the difference of two *functional* regex formulas is
NP-hard.

Shape to confirm: the baseline (materialise, subtract) grows exponentially
with the number of SAT variables on the reduction instances (γ1 has 2^n
mappings on a^n); the DPLL oracle confirms every verdict.
"""

import random
import time

from repro.algebra import semantic_difference
from repro.reductions import build_difference_instance, is_satisfiable, random_3cnf
from repro.utils import format_table, growth_factors
from repro.va import evaluate_va, regex_to_va, trim

SIZES = (4, 6, 8, 10, 12)


def _solve(n_vars: int, seed: int = 1):
    cnf = random_3cnf(n_vars, n_vars + 2, random.Random(seed))
    instance = build_difference_instance(cnf)
    start = time.perf_counter()
    r1 = evaluate_va(trim(regex_to_va(instance.gamma1)), instance.document)
    r2 = evaluate_va(trim(regex_to_va(instance.gamma2)), instance.document)
    difference = semantic_difference(r1, r2)
    elapsed = time.perf_counter() - start
    assert (not difference.is_empty) == is_satisfiable(cnf)
    return elapsed, len(r1), len(r2), len(difference)


def _sweep():
    rows, times = [], []
    for n in SIZES:
        elapsed, left, right, out = _solve(n)
        rows.append([n, left, right, out, f"{elapsed * 1e3:.1f}"])
        times.append(elapsed)
    return rows, times


def bench_e6_difference_hardness_sweep(benchmark, report):
    rows, times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    factors = growth_factors(times)
    table = format_table(
        ["sat_vars", "|⟦γ1⟧|", "|⟦γ2⟧|", "|models|", "time_ms"],
        rows,
        title="E6 difference hardness (Thm 4.1 reduction, baseline "
        f"difference); growth factors {[f'{f:.1f}' for f in factors]}",
    )
    report("E6_difference_hardness", table)
    assert rows[-1][1] == 2 ** SIZES[-1]


def bench_e6_single_instance(benchmark):
    benchmark(lambda: _solve(8))
