"""Workload builders and result writers shared by the experiment benches."""

from __future__ import annotations

import json
import pathlib
import random
import subprocess

from repro.regex import capture, concat, eps, parse, sigma_star, sym, union
from repro.regex.ast import RegexFormula
from repro.va import VA, regex_to_va, trim

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def git_sha() -> str:
    """The repository HEAD commit, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def write_json_report(name: str, payload: dict, at_root: bool = False) -> pathlib.Path:
    """Write a machine-readable JSON result and return its path.

    Results land in ``benchmarks/results/`` by default; ``at_root=True``
    writes to the repository root instead — used for the trajectory-seeding
    files (``BENCH_*.json``) that CI uploads as artifacts and later PRs
    compare against.  Every report is stamped with the git SHA it was
    measured at (under ``git_sha``), so baselines stay attributable.
    """
    directory = REPO_ROOT if at_root else RESULTS_DIR
    directory.mkdir(exist_ok=True)
    path = directory / name
    payload = dict(payload)
    payload.setdefault("git_sha", git_sha())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def compile_formula(formula: "RegexFormula | str") -> VA:
    if isinstance(formula, str):
        formula = parse(formula)
    return trim(regex_to_va(formula))


def shared_block_pair(
    shared: int, private: int, alphabet: str = "ab", separator: str = "c"
) -> tuple[VA, VA]:
    """A pair of sequential VAs sharing exactly ``shared`` variables, each
    with ``private`` extra variables; every variable is optional, so the
    FPT join must reason about used-sets (the hard part of Lemma 3.2)."""

    def build(prefix: str) -> RegexFormula:
        sigma = sigma_star(alphabet)
        parts = []
        for i in range(1, shared + 1):
            if parts:
                parts.append(sym(separator))
            parts.append(union(capture(f"s{i}", sigma), eps()))
        for i in range(1, private + 1):
            if parts:
                parts.append(sym(separator))
            parts.append(union(capture(f"{prefix}{i}", sigma), eps()))
        return concat(*parts) if len(parts) > 1 else parts[0]

    return compile_formula(build("l")), compile_formula(build("r"))


def dfunc_va(disjuncts: int, alphabet: str = "ab") -> VA:
    """A disjunctive functional VA with the given number of functional
    components, each over its own variable."""
    sigma = sigma_star(alphabet)
    parts = [
        concat(capture(f"d{i}", sigma), sigma)
        for i in range(1, disjuncts + 1)
    ]
    return compile_formula(union(*parts) if len(parts) > 1 else parts[0])


def block_document(
    blocks: int,
    chunk_length: int = 3,
    alphabet: str = "ab",
    separator: str = "c",
    rng=None,
) -> str:
    """A document of exactly ``blocks`` separator-delimited chunks of
    ``chunk_length`` letters — match the block count to the formula's
    block count or nothing will match."""
    rng = rng or random.Random(0)
    chunks = [
        "".join(rng.choice(alphabet) for _ in range(chunk_length))
        for _ in range(blocks)
    ]
    return separator.join(chunks)
