"""The batched vectorized enumeration path end to end: block DFS over
batch-materialised edge rows ≡ the scalar walk ≡ ``indexed`` ≡ naive
(hypothesis, including >64-state multi-plane automata, empty and
run-heavy documents, and ``limit=`` prefixes with mid-fan cutoffs), the
block-budget fallback, the ``limit`` row-materialisation short-circuit,
tail-session row reuse, the bulk :meth:`Mapping.from_arrays`
constructor, and the shared-kernel gauge watermark."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Mapping, Span, SpanRelation
from repro.engine import Engine
from repro.regex import parse
from repro.va import evaluate_naive, regex_to_va, trim
from repro.va.indexed import IndexedMatchGraph
from repro.va.vectorized import (
    DEFAULT_ENUM_BLOCK_SIZE,
    VectorizedMatchGraph,
    numpy_available,
)

from ..properties.conftest import documents, sequential_formulas

_SETTINGS = settings(max_examples=40, deadline=None)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="batched enumeration needs numpy"
)

#: Run-heavy documents: long single-letter stretches (the inherited
#: run-skip path interacting with the batched skip index).
run_documents = st.lists(
    st.tuples(st.sampled_from("ab"), st.integers(min_value=1, max_value=40)),
    min_size=0,
    max_size=4,
).map(lambda runs: "".join(letter * length for letter, length in runs))


def _multi_plane_va():
    """A sequential VA with more than 64 dense states (≥ 2 planes)."""
    va = trim(regex_to_va(parse("(a|b)*x{" + "ab" * 12 + "a+}(a|b)*")))
    assert va.indexed().n_states > 64
    return va


def _graph(va, doc, block_size=None):
    return VectorizedMatchGraph(va.vectorized(), doc, block_size=block_size)


@needs_numpy
class TestBatchedMatchesEveryPath:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_batched_scalar_indexed_naive_agree(self, formula, doc):
        va = trim(regex_to_va(formula))
        expected = evaluate_naive(va, doc)
        batched = list(_graph(va, doc).enumerate())
        scalar = list(_graph(va, doc, block_size=0).enumerate())
        indexed = list(IndexedMatchGraph(va.indexed(), doc).enumerate())
        assert batched == scalar == indexed
        assert SpanRelation(batched) == expected

    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_batched_matches_scalar_on_run_heavy_documents(self, formula, doc):
        va = trim(regex_to_va(formula))
        assert list(_graph(va, doc).enumerate()) == list(
            _graph(va, doc, block_size=0).enumerate()
        )

    @given(
        sequential_formulas(), documents, st.integers(min_value=0, max_value=4)
    )
    @_SETTINGS
    def test_limit_is_a_prefix_even_mid_fan(self, formula, doc, limit):
        va = trim(regex_to_va(formula))
        full = list(_graph(va, doc).enumerate())
        assert list(_graph(va, doc).enumerate(limit=limit)) == full[:limit]

    @pytest.mark.parametrize(
        "doc", ["", "ab" * 13 + "aa", "ab" * 40, "a" * 120, "ab" * 13 + "ac"]
    )
    def test_multi_plane_documents(self, doc):
        va = _multi_plane_va()
        batched = list(_graph(va, doc).enumerate())
        assert batched == list(_graph(va, doc, block_size=0).enumerate())
        assert batched == list(IndexedMatchGraph(va.indexed(), doc).enumerate())
        for limit in (1, 3):
            assert (
                list(_graph(va, doc).enumerate(limit=limit)) == batched[:limit]
            )


@needs_numpy
class TestBlockBudget:
    def test_budget_below_context_count_falls_back_to_scalar(self):
        va = trim(regex_to_va(parse("(a|b)*x{a+}(a|b)*")))
        doc = "abba" * 20
        graph = _graph(va, doc, block_size=1)
        assert graph._distinct_contexts() > 1
        fallback = list(graph.enumerate())
        # The fallback never materialised a batched row.
        assert va.vectorized().kernel().edge_rows_batched == 0
        assert fallback == list(_graph(va, doc).enumerate())

    def test_default_budget_batches_and_counts_rows(self):
        va = trim(regex_to_va(parse("(a|b)*x{a+}(a|b)*")))
        doc = "abba" * 20
        graph = _graph(va, doc)
        assert graph._distinct_contexts() <= DEFAULT_ENUM_BLOCK_SIZE
        assert list(graph.enumerate())
        assert va.vectorized().kernel().edge_rows_batched > 0

    def test_engine_knob_disables_batching(self):
        formula = "(a|b)*x{a+}(a|b)*"
        doc = "abba" * 20
        engine = Engine(backend="vectorized", enumeration_block_size=0)
        reference = Engine(backend="indexed")
        va = trim(regex_to_va(parse(formula)))
        assert list(engine.enumerate(va, doc)) == list(
            reference.enumerate(va, doc)
        )
        assert engine.stats.edge_rows_batched == 0

    def test_engine_attributes_batched_rows_to_stats(self):
        engine = Engine(backend="vectorized")
        va = trim(regex_to_va(parse("(a|b)*x{a+}(a|b)*")))
        list(engine.enumerate(va, "abba" * 20))
        assert engine.stats.edge_rows_batched > 0
        assert engine.stats.edge_rows_batched == (
            va.vectorized().kernel().edge_rows_batched
        )
        assert "edge rows batched" in engine.stats.summary()


@needs_numpy
class TestLimitShortCircuit:
    """``enumerate(limit=k)`` stops materialising edge rows once ``k``
    mappings are out — pinned via the ``edge_rows_batched`` gauge."""

    FORMULA = "(a|b)*x{" + "ab" * 12 + "a+}(a|b)*"
    #: The needle early so ``limit=1`` answers near the document start,
    #: then a long tail whose contexts a full enumeration must also walk.
    DOC = "ab" * 12 + "a" + "ab" * 300 + "a" * 7 + "ab" * 12 + "a"

    def test_limit_zero_builds_no_rows(self):
        va = trim(regex_to_va(parse(self.FORMULA)))  # fresh kernel
        engine = Engine(backend="vectorized")
        assert list(engine.enumerate(va, self.DOC, limit=0)) == []
        assert engine.stats.edge_rows_batched == 0

    def test_rows_build_lazily_per_visited_context(self):
        # Rows materialise per *visited* (letter, live mask) context, not
        # eagerly per document: a limited run builds no more than the
        # document's distinct contexts, and stays a correct prefix.
        va = trim(regex_to_va(parse(self.FORMULA)))
        engine = Engine(backend="vectorized")
        got = list(engine.enumerate(va, self.DOC, limit=1))
        assert got == list(
            Engine(backend="indexed").enumerate(va, self.DOC, limit=1)
        )
        rows = engine.stats.edge_rows_batched
        graph = _graph(va, self.DOC)
        assert 0 < rows <= graph._distinct_contexts()

    def test_warm_kernel_limited_run_builds_no_rows(self):
        va = trim(regex_to_va(parse(self.FORMULA)))
        engine = Engine(backend="vectorized", document_cache_size=0)
        list(engine.enumerate(va, self.DOC))
        rows = engine.stats.edge_rows_batched
        assert rows > 0
        list(engine.enumerate(va, self.DOC, limit=1))
        assert engine.stats.edge_rows_batched == rows


@needs_numpy
class TestTailRowReuse:
    def test_tail_reevaluations_reuse_prefix_rows(self):
        va = trim(regex_to_va(parse("(a|b)*x{ab}(a|b)*")))
        engine = Engine(backend="vectorized")
        session = engine.tail(va)
        session.reevaluate("ab" * 30)
        first_rows = engine.stats.edge_rows_batched
        assert first_rows > 0
        session.reevaluate("ab" * 30)
        second_delta = engine.stats.edge_rows_batched - first_rows
        # The appended tail reproduces the prefix's (letter, live mask)
        # contexts, so the second pass re-hits the kernel's batched rows
        # instead of rebuilding them per append.
        assert second_delta <= first_rows
        session.reevaluate("ab" * 30)
        # And by the third identical append the context set is saturated.
        assert engine.stats.edge_rows_batched == first_rows + second_delta

    def test_tail_union_equals_full_evaluation(self):
        va = trim(regex_to_va(parse("(a|b)*x{ab}(a|b)*")))
        engine = Engine(backend="vectorized")
        session = engine.tail(va)
        emitted = []
        text = ""
        for chunk in ("ab" * 10, "ba" * 8, "", "abab"):
            text += chunk
            emitted.extend(session.reevaluate(chunk))
        assert set(emitted) == set(
            Engine(backend="vectorized").evaluate(va, text)
        )
        assert len(emitted) == len(set(emitted))


class TestMappingFromArrays:
    def test_equals_the_checked_constructor(self):
        items = (("x", Span(1, 2)), ("y", Span(2, 5)))
        fast = Mapping.from_arrays(items)
        slow = Mapping(dict(items))
        assert fast == slow
        assert hash(fast) == hash(slow)
        assert dict(fast.items()) == dict(slow.items())

    def test_empty_mapping(self):
        assert Mapping.from_arrays(()) == Mapping({})
        assert hash(Mapping.from_arrays(())) == hash(Mapping({}))


@needs_numpy
class TestGaugeWatermark:
    """The kernel behind a prepared form is shared and its counters are
    cumulative — interleaved enumerations and tail re-evaluations must
    attribute each increment to :class:`EngineStats` exactly once (the
    old sample-a-base-around-each-evaluation scheme double-counted)."""

    def test_interleaved_consumers_attribute_growth_exactly_once(self):
        va = trim(regex_to_va(parse("(a|b)*x{ab}(a|b)*")))
        engine = Engine(backend="vectorized", document_cache_size=0)
        session = engine.tail(va)
        gen = engine.enumerate(va, "ab" * 15)
        next(gen)  # leave the first enumeration suspended mid-flight
        session.reevaluate("ab" * 10)  # a tail pass touches the kernel
        list(gen)  # now finish the suspended enumeration
        session.reevaluate("ba" * 6)
        engine.evaluate(va, "abab")
        engine.is_nonempty(va, "ab")
        kernel = va.vectorized().kernel()
        assert engine.stats.kernel_run_hits == kernel.run_hits
        assert engine.stats.frontier_cache_misses == kernel.step_misses
        assert engine.stats.edge_rows_batched == kernel.edge_rows_batched
