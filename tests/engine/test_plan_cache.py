"""The compiled-plan cache: static prefixes compile once, ad-hoc suffixes
per document, and the engine's statistics expose which happened."""

import pytest

from repro import (
    Difference,
    Engine,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    UnionNode,
    parse,
)
from repro.core import Mapping, SpannerError
from repro.core.spanner import RelationSpanner
from repro.algebra.planner import evaluate_ra
from repro.engine.plan import (
    BlackboxNode,
    DifferencePlanNode,
    StaticNode,
    build_plan,
)


def _static_query():
    tree = Project(Join(Leaf("a"), Leaf("b")), frozenset({"x"}))
    inst = Instantiation(
        spanners={
            "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
            "b": parse("(a|b)*x{(a|b)+}y{(a|b)*}"),
        }
    )
    return tree, inst


def _adhoc_query():
    tree = Difference(Leaf("a"), Leaf("c"))
    inst = Instantiation(
        spanners={
            "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
            "c": parse("(a|b)*x{a}(a|b)*"),
        }
    )
    return tree, inst


class TestPlanStructure:
    def test_fully_static_tree_collapses_to_one_node(self):
        tree, inst = _static_query()
        plan = build_plan(tree, inst)
        assert plan.is_fully_static
        assert isinstance(plan.root, StaticNode)
        assert plan.n_static == 1 and plan.n_adhoc == 0

    def test_difference_keeps_static_children_fused(self):
        tree, inst = _adhoc_query()
        plan = build_plan(tree, inst)
        assert not plan.is_fully_static
        assert isinstance(plan.root, DifferencePlanNode)
        assert isinstance(plan.root.left, StaticNode)
        assert isinstance(plan.root.right, StaticNode)
        assert plan.n_static == 2 and plan.n_adhoc == 1

    def test_blackbox_leaf_is_adhoc(self):
        blackbox = RelationSpanner(
            lambda doc: [Mapping({"b": doc.full_span()})], {"b"}
        )
        tree = UnionNode(Leaf("a"), Leaf("bb"))
        inst = Instantiation(
            spanners={"a": parse("x{a*}"), "bb": blackbox}
        )
        plan = build_plan(tree, inst)
        assert not plan.is_fully_static
        assert isinstance(plan.root.right, BlackboxNode)
        # The regex half of the union is still fused statically.
        assert isinstance(plan.root.left, StaticNode)
        assert build_plan(Leaf("a"), inst).is_fully_static

    def test_static_join_bound_checked_at_build_time(self):
        tree, inst = _static_query()
        with pytest.raises(SpannerError):
            build_plan(tree, inst, PlannerConfig(max_shared=0))


class TestPlanCacheBehaviour:
    def test_static_plan_compiles_once_across_documents(self):
        tree, inst = _static_query()
        engine = Engine()
        query = RAQuery(tree, inst, engine=engine)
        query.evaluate("abab")
        query.evaluate("ba")
        query.evaluate("abab")
        stats = engine.stats
        assert stats.plan_misses == 1
        assert stats.plan_hits == 2
        assert stats.adhoc_compiles == 0
        assert stats.document_misses == 1  # prepared once, ever
        assert stats.document_hits == 2

    def test_adhoc_suffix_recompiles_per_document(self):
        tree, inst = _adhoc_query()
        engine = Engine()
        query = RAQuery(tree, inst, engine=engine)
        query.evaluate("abab")
        query.evaluate("ba")
        stats = engine.stats
        assert stats.plan_misses == 1 and stats.plan_hits == 1
        # One DifferencePlanNode compiled per document; its two static
        # children are served from the plan both times.
        assert stats.adhoc_compiles == 2
        assert stats.static_reuses == 4
        assert stats.document_misses == 2 and stats.document_hits == 0

    def test_document_cache_serves_repeated_documents(self):
        tree, inst = _adhoc_query()
        engine = Engine(document_cache_size=4)
        query = RAQuery(tree, inst, engine=engine)
        for doc in ("abab", "ba", "abab", "abab"):
            query.evaluate(doc)
        stats = engine.stats
        assert stats.document_misses == 2
        assert stats.document_hits == 2
        assert stats.adhoc_compiles == 2  # only the two distinct documents

    def test_document_cache_evicts_lru(self):
        tree, inst = _adhoc_query()
        engine = Engine(document_cache_size=1)
        query = RAQuery(tree, inst, engine=engine)
        query.evaluate("abab")
        query.evaluate("ba")    # evicts "abab"
        query.evaluate("abab")  # miss again
        assert engine.stats.document_misses == 3
        assert engine.stats.document_hits == 0

    def test_plan_cache_lru_eviction(self):
        engine = Engine(plan_cache_size=1)
        tree_a, inst_a = _static_query()
        tree_b, inst_b = _adhoc_query()
        engine.evaluate(RAQuery(tree_a, inst_a), "ab")
        engine.evaluate(RAQuery(tree_b, inst_b), "ab")
        engine.evaluate(RAQuery(tree_a, inst_a), "ab")  # was evicted
        assert engine.stats.plan_misses == 3
        assert engine.stats.plan_hits == 0

    def test_equal_queries_share_one_plan(self):
        tree, inst = _static_query()
        engine = Engine()
        engine.evaluate(RAQuery(tree, inst), "ab")
        engine.evaluate(RAQuery(tree, inst), "ba")  # distinct RAQuery object
        assert engine.stats.plan_misses == 1
        assert engine.stats.plan_hits == 1

    def test_bare_va_queries_are_cached_by_identity(self):
        from repro.va import regex_to_va, trim

        va = trim(regex_to_va(parse("x{a*}b")))
        engine = Engine()
        assert engine.evaluate(va, "aab") == engine.evaluate(va, "aab")
        assert engine.stats.plan_misses == 1
        assert engine.stats.plan_hits == 1


class TestEngineMatchesPlanner:
    @pytest.mark.parametrize("backend", ["matchgraph", "indexed"])
    def test_mixed_tree_matches_one_shot_planner(self, backend):
        tree = Project(
            Difference(Join(Leaf("a"), Leaf("b")), Leaf("c")), frozenset({"x"})
        )
        inst = Instantiation(
            spanners={
                "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
                "b": parse("(a|b)*x{(a|b)+}y{(a|b)*}"),
                "c": parse("(a|b)*x{a}(a|b)*"),
            }
        )
        config = PlannerConfig(max_shared=2)
        engine = Engine(backend=backend)
        for doc in ("abab", "", "b", "aabba"):
            assert engine.evaluate(
                RAQuery(tree, inst, config), doc
            ) == evaluate_ra(tree, inst, doc, config)

    def test_blackbox_query_matches_one_shot_planner(self):
        blackbox = RelationSpanner(
            lambda doc: [Mapping({"b": doc.full_span()})], {"b"}
        )
        tree = UnionNode(Leaf("a"), Leaf("bb"))
        inst = Instantiation(spanners={"a": parse("x{a*}"), "bb": blackbox})
        engine = Engine()
        for doc in ("ab", "", "ba"):
            assert engine.evaluate(RAQuery(tree, inst), doc) == evaluate_ra(
                tree, inst, doc
            )
