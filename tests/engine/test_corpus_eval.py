"""Index-driven batch evaluation over a :class:`CorpusStore`: byte-identical
to the list-walk path on every backend (prefilter on and off), stats parity,
and warm-store hydration that never recomputes document artifacts."""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.document as document_module
from repro import Engine
from repro.corpus import CorpusStore
from repro.engine import available_backends
from repro.regex import parse
from repro.va import regex_to_va, trim

from ..properties.conftest import sequential_formulas

ALL_BACKENDS = available_backends()

#: Mixed corpus: matches, prefilter rejects (no ``c``), a foreign letter.
DOCS = ["abc", "aabb", "cc", "b", "", "zebra", "ccc", "bcb"]

FORMULA = "(a|b)*x{c+}(a|b)*"


def _va(formula: str = FORMULA):
    return trim(regex_to_va(parse(formula)))


@pytest.fixture
def store(tmp_path):
    with CorpusStore(tmp_path / "store.sqlite") as handle:
        handle.add_many(DOCS)
        yield handle


class TestEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("prefilter", [True, False])
    def test_index_path_matches_list_walk(self, store, backend, prefilter):
        va = _va()
        walk = Engine(backend=backend, prefilter=prefilter)
        index = Engine(backend=backend, prefilter=prefilter)
        expected = walk.evaluate_many(va, DOCS)
        assert index.evaluate_many(va, store) == expected

    def test_limit_applies_on_both_paths(self, store):
        va = _va()
        walk = Engine().evaluate_many(va, DOCS, limit=1)
        index = Engine().evaluate_many(va, store, limit=1)
        assert index == walk

    @given(
        sequential_formulas(),
        st.lists(
            st.text(alphabet="abcz", min_size=0, max_size=6),
            min_size=0,
            max_size=6,
            unique=True,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_randomized_corpora_agree(self, formula, texts):
        va = trim(regex_to_va(formula))
        expected = Engine().evaluate_many(va, texts)
        with tempfile.TemporaryDirectory() as tmp:
            with CorpusStore(Path(tmp) / "store.sqlite") as store:
                store.add_many(texts)
                assert Engine().evaluate_many(va, store) == expected


class TestStats:
    def test_index_counters_and_reject_parity(self, store):
        va = _va()
        walk = Engine()
        index = Engine()
        walk.evaluate_many(va, DOCS)
        index.evaluate_many(va, store)
        assert index.stats.index_hits == 1
        assert index.stats.prefilter_rejects == walk.stats.prefilter_rejects
        assert index.stats.documents == walk.stats.documents
        survivors = len(DOCS) - index.stats.prefilter_rejects
        assert index.stats.hydrations == survivors
        assert index.stats.index_candidates >= survivors

    def test_prefilter_off_hydrates_everything(self, store):
        engine = Engine(prefilter=False)
        engine.evaluate_many(_va(), store)
        assert engine.stats.index_hits == 0
        assert engine.stats.hydrations == len(DOCS)


class TestWarmStore:
    def test_warm_query_never_recomputes_artifacts(self, tmp_path, monkeypatch):
        """The acceptance bar: queries against an ingested store never re-run
        ``Document.runs()`` / ``letter_counts()`` from scratch — hydration
        serves both from the persisted artifacts."""
        path = tmp_path / "store.sqlite"
        va = _va()
        expected = Engine().evaluate_many(va, DOCS)
        with CorpusStore(path) as store:
            store.add_many(DOCS)  # artifacts computed once, here

        def boom(*_args, **_kwargs):
            raise AssertionError("artifact recomputation on the store path")

        monkeypatch.setattr(document_module, "Counter", boom)
        monkeypatch.setattr(document_module, "groupby", boom)
        with CorpusStore(path) as warm:
            engine = Engine()
            assert engine.evaluate_many(va, warm) == expected
            assert engine.stats.hydrations > 0

    def test_repeat_query_reuses_cached_documents(self, store):
        engine = Engine()
        va = _va()
        first = engine.evaluate_many(va, store)
        hydrations = engine.stats.hydrations
        assert engine.evaluate_many(va, store) == first
        assert engine.stats.hydrations == 2 * hydrations
        # The store handle served the repeats from its LRU document cache.
        assert store.hydrations == 2 * hydrations
        assert len(store._doc_cache) == hydrations


class TestSelections:
    def test_selection_preserves_order_and_duplicates(self, store):
        va = _va()
        ids = store.doc_ids()
        chosen = [ids[2], ids[0], ids[2], ids[5]]
        expected = Engine().evaluate_many(
            va, [store.text(i) for i in chosen]
        )
        got = Engine().evaluate_many(va, store.select(chosen))
        assert got == expected

    def test_selection_restricts_the_index_plan(self, store):
        prefilter = _va().prefilter()
        subset = store.doc_ids()[:3]
        plan = store.candidates(prefilter, within=subset)
        assert set(plan.doc_ids) <= set(subset)


class TestNonemptyMany:
    def test_store_path_matches_iterable_path(self, store):
        va = _va()
        expected = Engine().is_nonempty_many(va, DOCS)
        assert Engine().is_nonempty_many(va, store) == expected
        assert expected == [bool(r) for r in Engine().evaluate_many(va, DOCS)]

    def test_pruned_documents_count_as_checks(self, store):
        engine = Engine()
        engine.is_nonempty_many(_va(), store)
        assert engine.stats.nonempty_checks == len(DOCS)
        assert engine.stats.documents == 0  # no full evaluations happened

    def test_duplicate_ids_answered_once(self, store):
        engine = Engine()
        ids = store.doc_ids()
        selection = store.select([ids[0], ids[0], ids[2]])
        answers = engine.is_nonempty_many(_va(), selection)
        assert answers[0] == answers[1]


class TestEnumerateStream:
    def test_stream_yields_doc_ids_in_selection_order(self, store):
        va = _va()
        engine = Engine()
        streamed = list(engine.enumerate_stream(va, store))
        ids = store.doc_ids()
        by_id = {}
        for doc_id, mapping in streamed:
            by_id.setdefault(doc_id, []).append(mapping)
        reference = Engine()
        for doc_id in ids:
            expected = [
                m for _i, m in reference.enumerate_stream(
                    va, [store.text(doc_id)]
                )
            ]
            assert by_id.get(doc_id, []) == expected
        # Stream order follows ascending doc-id (the store's order).
        seen = [doc_id for doc_id, _ in streamed]
        assert seen == sorted(seen)

    def test_pruned_documents_never_hydrate(self, store):
        engine = Engine()
        list(engine.enumerate_stream(_va(), store))
        assert engine.stats.hydrations < len(DOCS)


class TestWorkers:
    def test_parallel_corpus_evaluation_matches_sequential(self, store):
        va = _va()
        expected = Engine().evaluate_many(va, store)
        engine = Engine()
        got = engine.evaluate_many(va, store, workers=2)
        assert got == expected
        assert engine.stats.parallel_shards == 2
