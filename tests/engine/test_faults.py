"""The fault-injection harness and the degradation paths it exercises:
sqlite contention retries, store-corruption classification, and worker
shard crashes reaped by the parallel path."""

import pytest

from repro import regex_to_va, trim
from repro.core import SpannerError, StoreBusy, StoreCorrupt
from repro.corpus import CorpusError, CorpusStore
from repro.engine import Engine
from repro.regex import parse
from repro.testing import (
    FaultPlan,
    activate,
    active_plan,
    deactivate,
    injected,
    plan_from_env,
)
from repro.testing.faults import CI_PROFILE, clock, sqlite_error


def _va(formula: str):
    return trim(regex_to_va(parse(formula)))


@pytest.fixture(autouse=True)
def _pristine_faults():
    """These tests pin exact fault counts, so run them from a clean slate
    even when the suite-wide REPRO_FAULTS plan is active; restore the
    ambient plan afterwards."""
    ambient = active_plan()
    deactivate()
    yield
    deactivate()
    if ambient is not None:
        activate(ambient)


class TestFaultPlan:
    def test_deterministic_per_site_streams(self):
        a = FaultPlan(seed=7, sqlite_error_rate=0.5)
        b = FaultPlan(seed=7, sqlite_error_rate=0.5)
        pattern_a = [a.should_fire("s", 0.5) for _ in range(32)]
        pattern_b = [b.should_fire("s", 0.5) for _ in range(32)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_sites_draw_independent_streams(self):
        plan = FaultPlan(seed=7)
        first = [plan.should_fire("one", 0.5) for _ in range(16)]
        second = [plan.should_fire("two", 0.5) for _ in range(16)]
        assert first != second  # astronomically unlikely to collide

    def test_max_faults_per_site_caps_firing(self):
        plan = FaultPlan(seed=0, max_faults_per_site=2)
        fired = sum(plan.should_fire("s", 1.0) for _ in range(10))
        assert fired == 2
        assert plan.fired("s") == 2

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=0)
        assert not any(plan.should_fire("s", 0.0) for _ in range(10))

    def test_injected_scopes_activation(self):
        assert active_plan() is None
        with injected(FaultPlan(seed=1)) as plan:
            assert active_plan() is plan
        assert active_plan() is None

    def test_activate_deactivate(self):
        plan = activate(FaultPlan(seed=2))
        try:
            assert active_plan() is plan
        finally:
            deactivate()
        assert active_plan() is None

    def test_plan_from_env_values(self):
        assert plan_from_env("") is None
        assert plan_from_env("off") is None
        ci = plan_from_env("ci")
        assert ci is not None and ci.seed == CI_PROFILE["seed"]
        seeded = plan_from_env("123")
        assert seeded is not None and seeded.seed == 123
        assert seeded.sqlite_error_rate == CI_PROFILE["sqlite_error_rate"]
        with pytest.raises(ValueError, match="REPRO_FAULTS"):
            plan_from_env("banana")

    def test_clock_skew_shifts_monotonic(self):
        base = clock()
        with injected(FaultPlan(clock_skew=1000.0)):
            assert clock() >= base + 999.0
        assert clock() < base + 999.0

    def test_sqlite_site_raises_operational_error(self):
        import sqlite3

        with injected(FaultPlan(sqlite_error_rate=1.0)):
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                sqlite_error("anywhere")
        sqlite_error("anywhere")  # no plan: never raises


class TestStoreRetries:
    def test_capped_busy_faults_are_absorbed(self, tmp_path):
        # Rate 1.0 capped at 2: the first two store statements fail, the
        # bounded retry rides through, and the operation still succeeds.
        with injected(
            FaultPlan(seed=0, sqlite_error_rate=1.0, max_faults_per_site=2)
        ):
            with CorpusStore(tmp_path / "corpus.sqlite") as store:
                ids = store.add_many(["abc", "abd"])
                assert len(ids) == 2
                assert store.retries >= 2

    def test_uncapped_busy_exhausts_into_store_busy(self, tmp_path):
        with CorpusStore(tmp_path / "corpus.sqlite") as store:
            store.add("abc")
            with injected(FaultPlan(seed=0, sqlite_error_rate=1.0)):
                with pytest.raises(StoreBusy, match="stayed locked"):
                    store.text(1)

    def test_store_busy_is_a_spanner_error(self):
        assert issubclass(StoreBusy, SpannerError)
        assert issubclass(StoreCorrupt, SpannerError)

    def test_corrupt_file_raises_store_corrupt_with_hint(self, tmp_path):
        path = tmp_path / "corpus.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with pytest.raises(StoreCorrupt, match="rebuild --verify"):
            CorpusStore(path, read_only=True)

    def test_empty_file_still_reports_not_a_store(self, tmp_path):
        # An empty file is a valid (empty) sqlite database with no schema:
        # that is a missing-schema error, not corruption.
        path = tmp_path / "corpus.sqlite"
        path.write_bytes(b"")
        with pytest.raises(CorpusError, match="not a corpus store"):
            CorpusStore(path, read_only=True)

    def test_engine_surfaces_store_retries_in_stats(self, tmp_path):
        with CorpusStore(tmp_path / "corpus.sqlite") as store:
            store.add_many(["abab", "bb"])
            # Build the selection outside the fault window so the first
            # injected failure lands inside the engine's evaluation.
            selection = store.select(store.doc_ids())
            engine = Engine()
            with injected(
                FaultPlan(seed=0, sqlite_error_rate=1.0, max_faults_per_site=1)
            ):
                relations = engine.evaluate_many(
                    _va("[ab]*x{a}[ab]*"), selection
                )
        assert sum(len(r) for r in relations) > 0
        assert engine.stats.store_retries >= 1
        assert "store retries" in engine.stats.summary()


class TestShardCrashReaping:
    def test_crashed_shards_are_recomputed_serially(self):
        # Rate 1.0: every worker process hard-exits on entry, the pool
        # breaks, and every shard is recomputed in-parent (where the
        # crash site is disabled) — results identical, retries counted.
        va = _va("[ab]*x{[ab]+}[ab]*")
        docs = ["abab", "abba", "bbaa", "ab"]
        baseline = Engine().evaluate_many(va, docs)
        engine = Engine()
        with injected(FaultPlan(seed=0, shard_crash_rate=1.0)):
            relations = engine.evaluate_many(va, docs, workers=2)
        assert relations == baseline
        assert engine.stats.shard_retries == 2
        assert "shard retries" in engine.stats.summary()

    def test_capped_crashes_still_produce_full_results(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        docs = ["abab", "abba", "bbaa", "ab"]
        baseline = Engine().evaluate_many(va, docs)
        engine = Engine()
        with injected(
            FaultPlan(seed=3, shard_crash_rate=0.5, max_faults_per_site=1)
        ):
            relations = engine.evaluate_many(va, docs, workers=2)
        assert relations == baseline
