"""Execution guards: deadlines, cancellation, budgets, degradation modes.

The acceptance workload is the Prop. 4.10 reduction's γ1 on ``(bab)^n`` —
2^n mappings from an O(n) query, the worst case the paper's lower bounds
promise — pinned to trip a 100 ms deadline within 2× the deadline on
every backend.
"""

import time

import pytest

from repro import regex_to_va, trim
from repro.core import (
    BudgetExceeded,
    DeadlineExceeded,
    ExecutionCancelled,
    SpannerError,
)
from repro.engine import (
    Budget,
    CancelToken,
    Engine,
    ExecutionGuard,
    available_backends,
)
from repro.engine.guards import exception_for
from repro.regex import parse
from repro.reductions.sat import CNF
from repro.reductions.tovey import build_tovey_instance
from repro.testing import FaultPlan, injected

ALL_BACKENDS = available_backends()


def _va(formula: str):
    return trim(regex_to_va(parse(formula)))


def tovey_workload(n: int = 16):
    """γ1 on (bab)^n — 2^n mappings; the adversarial guard workload."""
    cnf = CNF(n, tuple((i, i % n + 1) for i in range(1, n)))
    instance = build_tovey_instance(cnf)
    return trim(regex_to_va(instance.gamma1)), instance.document


class TestBudgetParsing:
    def test_spec_string_with_suffixes(self):
        budget = Budget.parse("mappings=10k,cache-bytes=64m")
        assert budget.mappings == 10_000
        assert budget.cache_bytes == 64_000_000
        assert budget.states is None and budget.edge_rows is None

    def test_underscore_and_hyphen_keys_agree(self):
        assert Budget.parse("edge_rows=5") == Budget.parse("edge-rows=5")

    def test_g_suffix_and_underscored_digits(self):
        assert Budget.parse("states=1g").states == 1_000_000_000
        assert Budget.parse("mappings=1_000").mappings == 1_000

    def test_bad_key_rejected(self):
        with pytest.raises(SpannerError, match="bad budget entry"):
            Budget.parse("rows=10")

    def test_bad_amount_rejected(self):
        with pytest.raises(SpannerError, match="not an integer"):
            Budget.parse("mappings=lots")

    def test_empty_spec_rejected(self):
        with pytest.raises(SpannerError, match="sets no limits"):
            Budget.parse(" , ")

    def test_coerce_accepts_dict_budget_and_none(self):
        assert Budget.coerce(None) is None
        budget = Budget(mappings=3)
        assert Budget.coerce(budget) is budget
        assert Budget.coerce({"mappings": 3}) == budget
        assert Budget.coerce("mappings=3") == budget
        with pytest.raises(SpannerError, match="cannot read a budget"):
            Budget.coerce(3.5)


class TestCancelToken:
    def test_cancel_is_idempotent_first_reason_wins(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("user hit ^C")
        token.cancel("second reason")
        assert token.cancelled
        assert token.reason == "user hit ^C"

    def test_cancelled_token_trips_every_entry_point(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        token = CancelToken()
        token.cancel()
        engine = Engine()
        with pytest.raises(ExecutionCancelled):
            engine.evaluate(va, "abab", cancel=token)
        with pytest.raises(ExecutionCancelled):
            engine.first(va, "abab", cancel=token)
        with pytest.raises(ExecutionCancelled):
            engine.is_nonempty(va, "abab", cancel=token)

    def test_exception_for_maps_reasons_to_taxonomy(self):
        assert exception_for("deadline") is DeadlineExceeded
        assert exception_for("cancelled") is ExecutionCancelled
        assert exception_for("budget:mappings") is BudgetExceeded


class TestBudgetEnforcement:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_raise_mode_carries_exact_prefix_and_stats(self, backend):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine(backend=backend)
        full = list(engine.enumerate(va, "abab"))
        assert len(full) > 3
        with pytest.raises(BudgetExceeded) as info:
            engine.evaluate(va, "abab", budget="mappings=3")
        exc = info.value
        assert exc.reason == "budget:mappings"
        # SpanRelation canonicalises order; prefix-ness is a set property
        # against the enumeration-order prefix.
        assert set(exc.partial) == set(full[:3])
        assert exc.stats is not None and exc.stats.budget_hits >= 1

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_partial_mode_returns_truncated_prefix(self, backend):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine(backend=backend)
        full = list(engine.enumerate(va, "abab"))
        relation = engine.evaluate(
            va, "abab", budget="mappings=3", on_budget="partial"
        )
        assert relation.truncated
        assert set(relation) == set(full[:3])

    def test_budget_larger_than_result_never_trips(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        full = engine.evaluate(va, "abab")
        guarded = engine.evaluate(va, "abab", budget="mappings=1000")
        assert guarded == full
        assert not guarded.truncated

    @pytest.mark.parametrize("backend", ["indexed", "vectorized"])
    def test_edge_row_budget_trips_enumeration(self, backend):
        if backend not in ALL_BACKENDS:
            pytest.skip(f"{backend} unavailable")
        va, doc = tovey_workload(10)
        engine = Engine(backend=backend)
        with pytest.raises(BudgetExceeded, match="edge-rows"):
            engine.evaluate(va, doc, budget="edge-rows=5")

    def test_states_budget_trips_alive_materialisation(self):
        va, doc = tovey_workload(10)
        engine = Engine(backend="indexed")
        with pytest.raises(BudgetExceeded, match="states"):
            engine.evaluate(va, doc, budget="states=4")

    def test_decision_calls_raise_even_in_partial_mode(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        token = CancelToken()
        token.cancel()
        guard = ExecutionGuard(cancel=token, on_budget="partial")
        with pytest.raises(ExecutionCancelled):
            engine.first(va, "abab", guard=guard)
        guard = ExecutionGuard(cancel=token, on_budget="partial")
        with pytest.raises(ExecutionCancelled):
            engine.is_nonempty(va, "abab", guard=guard)

    def test_guard_counters_flow_into_stats_summary(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        relation = engine.evaluate(
            va, "abab", budget="mappings=2", on_budget="partial"
        )
        assert relation.truncated
        assert engine.stats.guard_checks > 0
        assert engine.stats.budget_hits >= 1
        assert "guard checks" in engine.stats.summary()


class TestDeadlines:
    def test_clock_skew_fault_trips_immediately(self):
        # Arm the guard first, then skew the clock: the deadline
        # arithmetic observes a 1-hour jump without any sleeping.
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        guard = ExecutionGuard(deadline=60.0)
        with injected(FaultPlan(clock_skew=3600.0)):
            with pytest.raises(DeadlineExceeded) as info:
                engine.evaluate(va, "abab", guard=guard)
        assert info.value.reason == "deadline"
        assert info.value.stats is not None

    def test_partial_mode_absorbs_deadline(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        guard = ExecutionGuard(deadline=60.0, on_budget="partial")
        with injected(FaultPlan(clock_skew=3600.0)):
            relation = engine.evaluate(va, "abab", guard=guard)
        assert relation.truncated

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_adversarial_deadline_acceptance(self, backend):
        """The ISSUE bar: γ1 on (bab)^16 (65536 mappings), 100 ms
        deadline, warm plan — DeadlineExceeded within 2× the deadline."""
        va, doc = tovey_workload(16)
        engine = Engine(backend=backend)
        engine.prepare(va)  # warm: measure evaluation, not compilation
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as info:
            engine.evaluate(va, doc, deadline=0.1)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.2, f"{backend} took {elapsed:.3f}s to trip"
        assert 0 < len(info.value.partial) < 65536


class TestBatchGuards:
    def test_shared_budget_truncates_batch_in_partial_mode(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        docs = ["abab", "abab", "abab"]
        full = engine.evaluate_many(va, docs)
        relations = engine.evaluate_many(
            va, docs, budget="mappings=12", on_budget="partial"
        )
        assert len(relations) == 3
        assert relations[0] == full[0]  # 10 mappings, under budget
        assert relations[1].truncated
        assert len(relations[1]) == 2  # 10 + 2 hits the shared ceiling
        assert relations[2].truncated and len(relations[2]) == 0

    def test_shared_budget_raises_with_completed_relations(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        docs = ["abab", "abab"]
        with pytest.raises(BudgetExceeded) as info:
            engine.evaluate_many(va, docs, budget="mappings=12")
        assert len(info.value.partial) == 1  # doc 0 completed before trip

    def test_enumerate_stream_respects_budget(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        pairs = list(
            engine.enumerate_stream(
                va, ["abab", "abab"], budget="mappings=3",
                on_budget="partial",
            )
        )
        assert len(pairs) == 3
        assert all(index == 0 for index, _mapping in pairs)

    def test_is_nonempty_many_always_raises_on_trip(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        token = CancelToken()
        token.cancel()
        with pytest.raises(ExecutionCancelled):
            engine.is_nonempty_many(va, ["abab", "bb"], cancel=token)


class TestParallelGuards:
    def test_deadline_propagates_to_shards(self):
        va, doc = tovey_workload(14)
        engine = Engine()
        docs = [doc.text, doc.text]
        start = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as info:
            engine.evaluate_many(va, docs, workers=2, deadline=0.1)
        elapsed = time.perf_counter() - start
        assert info.value.reason == "deadline"
        # Worker spawn dominates; the bar is "bounded", not "instant".
        assert elapsed < 30.0
        assert engine.stats.parallel_shards == 2

    def test_partial_mode_merges_truncated_shards(self):
        va = _va("[ab]*x{[ab]+}[ab]*")
        engine = Engine()
        docs = ["abab"] * 4
        relations = engine.evaluate_many(
            va, docs, workers=2, budget="mappings=3", on_budget="partial"
        )
        assert len(relations) == 4
        assert any(r.truncated for r in relations)

    def test_pickle_fallback_reason_is_recorded(self):
        va = _va("x{a}")
        engine = Engine()

        class Unpicklable(type(engine.backend)):
            pass

        engine.backend = Unpicklable()
        relations = engine.evaluate_many(va, ["a", "a"], workers=2)
        assert [len(r) for r in relations] == [1, 1]
        assert "custom_backend" in engine.stats.parallel_fallbacks
        assert "serial fallbacks" in engine.stats.summary()
