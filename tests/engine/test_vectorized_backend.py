"""The ``vectorized`` backend end to end: cross-backend equivalence
(hypothesis, including empty documents, run-heavy inputs, and >64-state
multi-plane automata), the dedicated ``first()`` path, engine batch /
parallel / streaming wiring, the frontier-miss statistic, and graceful
degradation when numpy is missing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BackendUnavailableError, SpanRelation
from repro.engine import BACKENDS, Engine, available_backends, get_backend
from repro.regex import parse
from repro.va import evaluate_naive, regex_to_va, trim
from repro.va.vectorized import numpy_available

from ..properties.conftest import documents, sequential_formulas

_SETTINGS = settings(max_examples=40, deadline=None)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs numpy"
)

#: Run-heavy documents: long single-letter stretches (the doubling path).
run_documents = st.lists(
    st.tuples(st.sampled_from("ab"), st.integers(min_value=1, max_value=40)),
    min_size=0,
    max_size=4,
).map(lambda runs: "".join(letter * length for letter, length in runs))


def _multi_plane_va():
    """A sequential VA with more than 64 dense states (≥ 2 planes)."""
    va = trim(regex_to_va(parse("(a|b)*x{" + "ab" * 12 + "a+}(a|b)*")))
    assert va.indexed().n_states > 64
    return va


@needs_numpy
class TestVectorizedMatchesOtherBackends:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_matches_naive_and_indexed(self, formula, doc):
        va = trim(regex_to_va(formula))
        expected = evaluate_naive(va, doc)
        vectorized = get_backend("vectorized").prepare(va)
        indexed = get_backend("indexed").prepare(va)
        assert SpanRelation(vectorized.enumerate(doc)) == expected
        assert list(vectorized.enumerate(doc)) == list(indexed.enumerate(doc))
        assert vectorized.is_nonempty(doc) == bool(len(expected))

    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_matches_indexed_on_run_heavy_documents(self, formula, doc):
        va = trim(regex_to_va(formula))
        vectorized = get_backend("vectorized").prepare(va)
        indexed = get_backend("indexed").prepare(va)
        assert list(vectorized.enumerate(doc)) == list(indexed.enumerate(doc))
        assert vectorized.is_nonempty(doc) == indexed.is_nonempty(doc)

    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_first_matches_enumeration_head(self, formula, doc):
        va = trim(regex_to_va(formula))
        prepared = get_backend("vectorized").prepare(va)
        full = list(prepared.enumerate(doc))
        assert prepared.run(doc).first() == (full[0] if full else None)

    @given(sequential_formulas(), documents, st.integers(min_value=0, max_value=4))
    @_SETTINGS
    def test_limit_is_an_enumeration_prefix(self, formula, doc, limit):
        va = trim(regex_to_va(formula))
        engine = Engine(backend="vectorized")
        full = list(engine.enumerate(va, doc))
        assert list(engine.enumerate(va, doc, limit=limit)) == full[:limit]

    def test_empty_document_and_empty_result(self):
        va = trim(regex_to_va(parse("x{a+}")))
        engine = Engine(backend="vectorized")
        reference = Engine(backend="indexed")
        for doc in ("", "b", "aa"):
            assert list(engine.enumerate(va, doc)) == list(
                reference.enumerate(va, doc)
            )
            assert engine.first(va, doc) == reference.first(va, doc)


@needs_numpy
class TestMultiPlaneEquivalence:
    """>64-state automata exercise multi-word plane arithmetic end to end."""

    @pytest.mark.parametrize(
        "doc", ["", "ab" * 13 + "aa", "ab" * 40, "a" * 120, "ab" * 13 + "ac"]
    )
    def test_matches_indexed_across_planes(self, doc):
        va = _multi_plane_va()
        vectorized = get_backend("vectorized").prepare(va)
        indexed = get_backend("indexed").prepare(va)
        assert list(vectorized.enumerate(doc)) == list(indexed.enumerate(doc))
        assert vectorized.is_nonempty(doc) == indexed.is_nonempty(doc)
        assert vectorized.run(doc).first() == indexed.run(doc).first()

    def test_gauges_match_indexed_across_planes(self):
        va = _multi_plane_va()
        doc = "ab" * 13 + "aa"
        vectorized = get_backend("vectorized").prepare(va).run(doc)
        indexed = get_backend("indexed").prepare(va).run(doc)
        assert vectorized.states_alive() == indexed.states_alive()
        assert vectorized.width() == indexed.width()


@needs_numpy
class TestEngineIntegration:
    def test_batch_parallel_and_streaming_agree_with_indexed(self):
        va = trim(regex_to_va(parse("x{[ab]+}c")))
        docs = ["abcab", "", "ababc", "zzz", "c", "abab", "abc" * 30]
        vectorized = Engine(backend="vectorized")
        indexed = Engine(backend="indexed")
        expected = indexed.evaluate_many(va, docs)
        assert vectorized.evaluate_many(va, docs) == expected
        assert vectorized.evaluate_many(va, docs, workers=2) == expected
        assert list(vectorized.enumerate_stream(va, docs)) == list(
            indexed.enumerate_stream(va, docs)
        )

    def test_prefilter_and_frontier_stats_are_attributed(self):
        va = trim(regex_to_va(parse("x{[ab]+}c")))
        engine = Engine(backend="vectorized")
        engine.evaluate_many(va, ["ababc", "zzz", "abc"])
        assert engine.stats.prefilter_rejects == 1  # "zzz"
        assert engine.stats.frontier_cache_misses > 0
        assert "frontier misses" in engine.stats.summary()

    def test_frontier_misses_stop_growing_on_repeats(self):
        va = trim(regex_to_va(parse("x{[ab]+}c")))
        engine = Engine(backend="vectorized", document_cache_size=0)
        engine.is_nonempty(va, "ababc")
        misses = engine.stats.frontier_cache_misses
        engine.is_nonempty(va, "ababc")
        assert engine.stats.frontier_cache_misses == misses

    def test_first_uses_the_dedicated_walk(self):
        va = trim(regex_to_va(parse("(a|b)*x{(a|b)+}(a|b)*")))
        vectorized = Engine(backend="vectorized")
        indexed = Engine(backend="indexed")
        doc = "ab" * 50
        assert vectorized.first(va, doc) == indexed.first(va, doc)
        # first() decides without enumerating: one mapping, counted.
        assert vectorized.stats.mappings == 1


class TestGracefulDegradation:
    """Requesting ``vectorized`` without numpy fails fast and clean; the
    rest of the engine is untouched."""

    def test_vectorized_always_listed_but_gated_by_availability(self):
        assert "vectorized" in BACKENDS
        if numpy_available():
            assert "vectorized" in available_backends()
        else:
            assert "vectorized" not in available_backends()

    def test_missing_numpy_raises_backend_unavailable(self, monkeypatch):
        import repro.va.vectorized as vectorized_module

        monkeypatch.setattr(vectorized_module, "NUMPY", None)
        assert not vectorized_module.numpy_available()
        assert "vectorized" not in available_backends()
        with pytest.raises(BackendUnavailableError, match="numpy"):
            get_backend("vectorized")
        with pytest.raises(BackendUnavailableError, match="fast"):
            vectorized_module.require_numpy()

    def test_other_backends_survive_missing_numpy(self, monkeypatch):
        import repro.va.vectorized as vectorized_module

        monkeypatch.setattr(vectorized_module, "NUMPY", None)
        va = trim(regex_to_va(parse("x{a+}b")))
        reference = list(Engine(backend="indexed").enumerate(va, "aab"))
        assert reference  # the query really matches
        for name in available_backends():
            assert list(Engine(backend=name).enumerate(va, "aab")) == reference

    def test_cli_reports_the_install_hint(self, monkeypatch, capsys):
        import repro.va.vectorized as vectorized_module

        from repro.cli import main

        monkeypatch.setattr(vectorized_module, "NUMPY", None)
        code = main(
            ["extract", "x{a+}b", "--text", "aab", "--backend", "vectorized"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "numpy" in err and "fast" in err
