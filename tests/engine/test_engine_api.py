"""The engine's batch/streaming APIs, statistics, and the Spanner batch
protocol."""

import pytest

from repro import (
    Difference,
    Engine,
    Instantiation,
    Leaf,
    RAQuery,
    compile_spanner,
    parse,
)
from repro.core import SpannerError
from repro.engine import EngineStats, get_backend


def _query(engine=None):
    tree = Difference(Leaf("a"), Leaf("c"))
    inst = Instantiation(
        spanners={
            "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
            "c": parse("(a|b)*x{a}(a|b)*"),
        }
    )
    return RAQuery(tree, inst, engine=engine)


DOCS = ["abab", "b", "", "bbba"]


class TestBatchApis:
    def test_evaluate_many_matches_single_evaluations(self):
        query = _query()
        assert query.evaluate_many(DOCS) == [query.evaluate(d) for d in DOCS]

    def test_enumerate_stream_tags_documents_by_index(self):
        query = _query()
        streamed = list(query.enumerate_stream(DOCS))
        for index, doc in enumerate(DOCS):
            expected = list(query.enumerate(doc))
            assert [m for i, m in streamed if i == index] == expected

    def test_enumerate_stream_is_lazy(self):
        engine = Engine()
        query = _query(engine)

        def docs():
            yield "abab"
            raise AssertionError("second document must not be pulled eagerly")

        stream = query.enumerate_stream(docs())
        first = next(stream)
        assert first[0] == 0

    def test_spanner_batch_protocol_defaults(self):
        spanner = compile_spanner("(a|b)*x{(a|b)+}")
        relations = spanner.evaluate_many(DOCS)
        assert relations == [spanner.evaluate(d) for d in DOCS]
        streamed = list(spanner.enumerate_stream(DOCS))
        assert {i for i, _ in streamed} == {
            i for i, d in enumerate(DOCS) if len(d) > 0
        }


class TestStatistics:
    def test_counters_accumulate_and_snapshot(self):
        engine = Engine()
        query = _query(engine)
        before = engine.stats.snapshot()
        assert before.documents == 0
        query.evaluate_many(DOCS)
        stats = engine.stats
        assert stats.documents == len(DOCS)
        assert stats.mappings == sum(len(r) for r in query.evaluate_many(DOCS))
        assert stats.compile_seconds > 0
        assert stats.states_explored > 0
        delta = stats.delta(before)
        assert delta.documents == stats.documents
        # The snapshot is independent of later activity.
        assert before.documents == 0

    def test_summary_and_dict_round_trip(self):
        stats = EngineStats(documents=3, mappings=7, plan_hits=1)
        text = stats.summary()
        assert "documents" in text and "7" in text
        assert stats.as_dict()["plan_hits"] == 1


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SpannerError):
            Engine(backend="nonexistent")
        with pytest.raises(SpannerError):
            get_backend("nonexistent")

    def test_backend_instance_passthrough(self):
        backend = get_backend("matchgraph")
        assert get_backend(backend) is backend
        assert Engine(backend=backend).backend is backend

    def test_engine_rejects_unsupported_query_type(self):
        with pytest.raises(TypeError):
            Engine().evaluate(42, "ab")

    def test_ra_tree_without_instantiation_rejected(self):
        with pytest.raises(SpannerError):
            Engine().prepare(Leaf("a"))
