"""The tail session: incremental re-evaluation of a growing document
reuses the layered match graph instead of rebuilding it."""

import pytest

from repro.core import SpanRelation
from repro.core.errors import SpannerError
from repro.engine import Engine, TailSession, available_backends
from repro.regex import parse
from repro.va import regex_to_va, trim

ALL_BACKENDS = available_backends()

#: Backends whose prepared form resumes from a frontier checkpoint.
EXTENDING = [b for b in ALL_BACKENDS if b != "matchgraph"]


def compile_va(text):
    return trim(regex_to_va(parse(text)))


def union_of(emissions):
    return SpanRelation(m for batch in emissions for m in batch)


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_union_over_time_matches_stepwise_full_evaluations(self, backend):
        engine = Engine(backend=backend)
        va = compile_va("(a|b)*x{a}b*")
        session = engine.tail(va)
        oracle = Engine(backend=backend)
        seen = SpanRelation(())
        text = ""
        for chunk in ("a", "b", "", "ba", "bb", "a"):
            fresh = session.reevaluate(chunk)
            text += chunk
            full = oracle.evaluate(va, text)
            expected = [m for m in full if m not in seen]
            assert SpanRelation(fresh) == SpanRelation(expected), (backend, text)
            seen = SpanRelation(list(seen) + expected)
        assert union_of([list(seen)]) == seen
        assert session.total_matches == len(seen)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_old_region_captures_surface_on_completion(self, backend):
        # The append completes a match whose capture lies entirely in the
        # old region — a span-based "new matches" filter would miss it.
        engine = Engine(backend=backend)
        va = compile_va("x{a}bb")
        session = engine.tail(va, "ab")
        assert session.reevaluate() == []
        (mapping,) = session.reevaluate("b")
        ((var, span),) = mapping.items()
        assert (span.begin, span.end) == (1, 2)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_seeded_document_and_empty_appends(self, backend):
        engine = Engine(backend=backend)
        va = compile_va("(a|b)*x{ab}(a|b)*")
        session = engine.tail(va, "abab")
        first = session.reevaluate()
        assert SpanRelation(first) == engine.evaluate(va, "abab")
        # Re-evaluating without growth yields nothing new.
        assert session.reevaluate() == []
        assert session.reevaluate("") == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_append_without_reevaluate_accumulates(self, backend):
        engine = Engine(backend=backend)
        va = compile_va("x{a}b*")
        session = engine.tail(va)
        session.append("a")
        session.append("bb")
        assert len(session) == 3
        (mapping,) = session.reevaluate()
        ((_, span),) = mapping.items()
        assert (span.begin, span.end) == (1, 2)


class TestLayerReuse:
    @pytest.mark.parametrize("backend", EXTENDING)
    def test_extension_reuses_prefix_layers(self, backend):
        engine = Engine(backend=backend)
        session = engine.tail(compile_va("(a|b)*x{a}"), "ab" * 8)
        session.reevaluate()
        stats = engine.stats
        assert stats.tail_recomputed_layers == 16
        session.reevaluate("ab")
        assert stats.tail_reused_layers == 16
        assert stats.tail_recomputed_layers == 18
        assert stats.tail_reevaluations == 2

    def test_matchgraph_falls_back_to_full_rebuild(self):
        engine = Engine(backend="matchgraph")
        session = engine.tail(compile_va("(a|b)*x{a}"), "ab" * 4)
        session.reevaluate()
        session.reevaluate("ab")
        stats = engine.stats
        assert stats.tail_reused_layers == 0
        assert stats.tail_recomputed_layers == 8 + 10

    def test_kernel_powers_are_reused_across_extensions(self):
        # A long quiet run advances through memoized transformer powers;
        # extending by more of the same letter must not regrow the cache.
        engine = Engine(backend="indexed")
        va = compile_va("a*x{b}a*")
        session = engine.tail(va, "b" + "a" * 64)
        session.reevaluate()
        kernel = session._prepared.indexed.kernel()
        cached = kernel.cached_power_count()
        assert cached > 0
        for _ in range(4):
            session.reevaluate("a" * 64)
        assert kernel.cached_power_count() == cached

    @pytest.mark.parametrize("backend", EXTENDING)
    def test_prefilter_reject_keeps_checkpoint_across_gaps(self, backend):
        engine = Engine(backend=backend)
        va = compile_va("(a|b)*x{b}(a|b)*")
        session = engine.tail(va, "a" * 6)
        # 'b' never occurs: the histogram prefilter answers without a graph.
        assert session.reevaluate() == []
        assert session.reevaluate("aa") == []
        stats = engine.stats
        assert stats.prefilter_rejects >= 2
        assert stats.tail_recomputed_layers == 0
        # Once admitted, the session evaluates the full document correctly.
        fresh = session.reevaluate("b")
        assert SpanRelation(fresh) == engine.evaluate(va, "a" * 8 + "b")


class TestGraphExtensionErrors:
    def test_extended_rejects_shrinking_documents(self):
        from repro.va.indexed import IndexedMatchGraph

        va = compile_va("(a|b)*x{a}")
        graph = IndexedMatchGraph(va.indexed(), "abab")
        with pytest.raises(SpannerError):
            graph.extended("ab")

    def test_checkpoint_is_exposed(self):
        from repro.va.indexed import IndexedMatchGraph

        va = compile_va("(a|b)*x{a}")
        graph = IndexedMatchGraph(va.indexed(), "ab")
        assert isinstance(graph.checkpoint(), int)
        assert graph.checkpoint() > 0


class TestSessionSurface:
    def test_engine_tail_returns_session(self):
        session = Engine().tail(compile_va("x{a}"))
        assert isinstance(session, TailSession)
        assert len(session) == 0
        assert "TailSession" in repr(session)

    def test_sessions_share_engine_stats(self):
        engine = Engine()
        session = engine.tail(compile_va("x{a}"))
        session.reevaluate("a")
        assert engine.stats.tail_reevaluations == 1
        assert engine.stats.mappings == 1
