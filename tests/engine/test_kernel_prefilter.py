"""The run-compressed kernel and the VA-derived prefilter at the engine
level: backend equivalence on run-heavy documents, the prefilter wiring in
single-document / batch / parallel paths, the new statistics counters, and
the CLI escape hatches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SpanRelation
from repro.engine import Engine, EngineStats, available_backends
from repro.va import (
    IndexedMatchGraph,
    enumerate_naive,
    evaluate_naive,
    regex_to_va,
    trim,
)

from ..properties.conftest import sequential_formulas

_SETTINGS = settings(max_examples=50, deadline=None)

ALL_BACKENDS = available_backends()

#: Documents biased toward long single-letter runs — the regime the
#: run-compressed kernel and the DFS run-skip target.  Includes the
#: degenerate shapes: empty, and single-letter documents of every length.
run_documents = st.one_of(
    st.just(""),
    st.builds(
        lambda letter, length: letter * length,
        st.sampled_from("ab"),
        st.integers(min_value=1, max_value=12),
    ),
    st.lists(
        st.tuples(st.sampled_from("abc"), st.integers(min_value=1, max_value=7)),
        min_size=1,
        max_size=4,
    ).map(lambda runs: "".join(letter * length for letter, length in runs)),
)


def _va(text: str):
    from repro.regex import parse

    return trim(regex_to_va(parse(text)))


class TestKernelEquivalence:
    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_compressed_equals_plain_equals_naive_on_every_backend(
        self, formula, doc
    ):
        va = trim(regex_to_va(formula))
        expected = SpanRelation(enumerate_naive(va, doc))
        orders = []
        for name in ALL_BACKENDS:
            engine = Engine(backend=name)
            order = list(engine.enumerate(va, doc))
            # Same relation as the naive baseline, and the same canonical
            # enumeration order across every backend.
            assert SpanRelation(order) == expected, name
            assert engine.is_nonempty(va, doc) == bool(len(expected)), name
            orders.append(order)
        for name, order in zip(ALL_BACKENDS[1:], orders[1:]):
            assert order == orders[0], name

    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_compressed_graph_matches_plain_and_eager_graphs(self, formula, doc):
        indexed = trim(regex_to_va(formula)).indexed()
        compressed = IndexedMatchGraph(indexed, doc)
        plain = IndexedMatchGraph(indexed, doc, compressed=False)
        eager = IndexedMatchGraph(indexed, doc, eager=True)
        assert compressed.is_empty == plain.is_empty == eager.is_empty
        assert (
            list(compressed.enumerate())
            == list(plain.enumerate())
            == list(eager.enumerate())
        )
        assert compressed.alive == plain.alive
        assert compressed.forward == plain.forward
        assert compressed.states_alive() == plain.states_alive()
        assert compressed.first() == plain.first()

    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_limit_prefixes_survive_run_skipping(self, formula, doc):
        indexed = trim(regex_to_va(formula)).indexed()
        full = list(IndexedMatchGraph(indexed, doc).enumerate())
        for k in (0, 1, 3):
            graph = IndexedMatchGraph(indexed, doc)
            assert list(graph.enumerate(limit=k)) == full[:k]

    def test_kernel_run_hits_are_counted(self):
        va = _va("(a|b)*x{c+}(a|b)*")
        engine = Engine()
        assert engine.is_nonempty(va, "a" * 50 + "c" + "b" * 50)
        assert engine.stats.kernel_run_hits > 0
        plain = Engine(backend="indexed-plain")
        assert plain.is_nonempty(va, "a" * 50 + "c" + "b" * 50)
        assert plain.stats.kernel_run_hits == 0


class TestPrefilterWiring:
    @given(sequential_formulas(), run_documents)
    @_SETTINGS
    def test_engine_with_prefilter_equals_engine_without(self, formula, doc):
        va = trim(regex_to_va(formula))
        expected = evaluate_naive(va, doc)
        assert Engine().evaluate(va, doc) == expected
        assert Engine(prefilter=False).evaluate(va, doc) == expected

    def test_rejects_are_counted_and_cost_no_document_misses(self):
        va = _va("(a|b)*x{c+}(a|b)*")
        engine = Engine()
        corpus = ["ab", "ba", "aacaa", "bb", ""]
        relations = engine.evaluate_many(va, corpus)
        assert [len(r) for r in relations] == [0, 0, 1, 0, 0]
        assert engine.stats.prefilter_rejects == 4
        assert engine.stats.documents == len(corpus)
        # Only the surviving document ever prepared a graph.
        assert engine.stats.mappings == 1

    def test_prefilter_false_is_a_real_escape_hatch(self):
        va = _va("(a|b)*x{c+}(a|b)*")
        engine = Engine(prefilter=False)
        relations = engine.evaluate_many(va, ["ab", "aacaa"])
        assert [len(r) for r in relations] == [0, 1]
        assert engine.stats.prefilter_rejects == 0

    def test_is_nonempty_short_circuits_through_the_prefilter(self):
        va = _va("(a|b)*x{c+}(a|b)*")
        engine = Engine()
        assert not engine.is_nonempty(va, "ababab")
        assert engine.stats.prefilter_rejects == 1
        assert engine.stats.nonempty_checks == 1

    def test_batch_with_workers_only_ships_survivors(self):
        va = _va("(a|b)*x{c+}(a|b)*")
        corpus = ["ab", "aacaa", "bb", "caa", "ba", "b"]
        serial = Engine().evaluate_many(va, corpus)
        engine = Engine()
        parallel = engine.evaluate_many(va, corpus, workers=2)
        assert parallel == serial
        assert engine.stats.prefilter_rejects == 4
        assert engine.stats.parallel_shards == 2
        assert engine.stats.documents == len(corpus)

    def test_enumerate_stream_skips_rejected_documents(self):
        va = _va("(a|b)*x{c+}(a|b)*")
        engine = Engine()
        pairs = list(engine.enumerate_stream(va, ["ab", "aca", "bb", "c"]))
        assert sorted({index for index, _ in pairs}) == [1, 3]
        assert engine.stats.prefilter_rejects == 2

    def test_adhoc_plans_do_not_prefilter(self):
        from repro.algebra import Instantiation, RAQuery
        from repro.algebra.ra_tree import Difference, Leaf
        from repro.regex import parse

        tree = Difference(Leaf("f"), Leaf("g"))
        inst = Instantiation(
            spanners={
                "f": parse("(a|b)*x{(a|b)+}(a|b)*"),
                "g": parse("(a|b)*x{a}(a|b)*"),
            }
        )
        engine = Engine()
        query = RAQuery(tree, inst, engine=engine)
        context = engine.prepare(query)
        assert context.prefilter() is None
        assert engine.stats.prefilter_rejects == 0

    def test_explain_surfaces_the_prefilter_decision_surface(self):
        engine = Engine()
        text = engine.explain(_va("(a|b)*x{c+}(a|b)*"))
        assert "prefilter:" in text
        assert "requires c" in text


class TestStatsCounters:
    def test_merge_and_delta_cover_the_new_counters(self):
        a = EngineStats(prefilter_rejects=2, kernel_run_hits=5)
        b = EngineStats(prefilter_rejects=1, kernel_run_hits=7, rule_fires={"r": 1})
        a.merge(b)
        assert a.prefilter_rejects == 3
        assert a.kernel_run_hits == 12
        assert a.rule_fires == {"r": 1}
        delta = a.delta(EngineStats(prefilter_rejects=1, kernel_run_hits=2))
        assert delta.prefilter_rejects == 2
        assert delta.kernel_run_hits == 10
        assert delta.rule_fires == {"r": 1}

    def test_summary_renders_the_new_counters(self):
        text = EngineStats(prefilter_rejects=3, kernel_run_hits=4).summary()
        assert "prefilter rejects  3" in text
        assert "kernel run hits    4" in text


class TestCliEscapeHatches:
    def test_batch_no_prefilter_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        docs = tmp_path / "docs.txt"
        docs.write_text("ab\naacaa\nbb\n")
        assert main(
            ["batch", "(a|b)*x{c+}(a|b)*", "--file", str(docs), "--stats"]
        ) == 0
        err = capsys.readouterr().err
        assert "prefilter rejects  2" in err
        assert main(
            [
                "batch",
                "(a|b)*x{c+}(a|b)*",
                "--file",
                str(docs),
                "--stats",
                "--no-prefilter",
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "prefilter rejects  0" in err

    def test_extract_on_the_plain_backend(self, capsys):
        from repro.cli import main

        assert main(
            [
                "extract",
                "(a|b)*x{c+}(a|b)*",
                "--text",
                "aacaa",
                "--backend",
                "indexed-plain",
            ]
        ) == 0
        assert "1 mapping(s)" in capsys.readouterr().out


def test_batch_prefilter_preserves_relations():
    va = _va("(a|b)*x{(ab)+}(a|b)*")
    corpus = ["", "abab", "ba", "aabb", "b" * 30, "ab" * 15]
    expected = [evaluate_naive(va, doc) for doc in corpus]
    for prefilter in (True, False):
        engine = Engine(prefilter=prefilter)
        assert engine.evaluate_many(va, corpus) == [
            SpanRelation(rel) for rel in expected
        ]
