"""Test package."""
