"""The streaming runtime: lazy-vs-eager graph equivalence, ``limit=k``
prefix semantics, Boolean emptiness wiring, and parallel batch evaluation."""

from hypothesis import given, settings

from repro.core import RelationSpanner, SpanRelation
from repro.engine import Engine, available_backends, get_backend
from repro.va import (
    IndexedMatchGraph,
    boolean_nonempty,
    FactorizedVA,
    enumerate_naive,
    indexed_nonempty,
    is_nonempty,
    regex_to_va,
    trim,
)

from ..properties.conftest import documents, sequential_formulas

_SETTINGS = settings(max_examples=40, deadline=None)

ALL_BACKENDS = available_backends()


class TestLazyVsEagerGraphs:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_lazy_and_eager_graphs_enumerate_identically(self, formula, doc):
        indexed = trim(regex_to_va(formula)).indexed()
        lazy = IndexedMatchGraph(indexed, doc)
        eager = IndexedMatchGraph(indexed, doc, eager=True)
        assert list(lazy.enumerate()) == list(eager.enumerate())
        assert lazy.is_empty == eager.is_empty
        assert lazy.states_alive() == eager.states_alive()
        assert lazy.width() == eager.width()

    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_first_matches_enumeration_head(self, formula, doc):
        indexed = trim(regex_to_va(formula)).indexed()
        full = list(IndexedMatchGraph(indexed, doc).enumerate())
        first = IndexedMatchGraph(indexed, doc).first()
        assert first == (full[0] if full else None)

    def test_lazy_graph_builds_no_edges_for_emptiness(self):
        indexed = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*")).indexed()
        graph = IndexedMatchGraph(indexed, "abab")
        assert not graph.is_empty
        # Emptiness came from the Boolean pass: neither the backward layers
        # nor any edge row has been materialised yet.
        assert graph._alive is None
        assert all(layer is None for layer in graph._edges)

    def test_first_touches_only_walked_edge_rows(self):
        indexed = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*")).indexed()
        graph = IndexedMatchGraph(indexed, "abab")
        graph.first()
        touched = sum(len(layer) for layer in graph._edges if layer is not None)
        graph.materialise()
        total = sum(len(layer) for layer in graph._edges if layer is not None)
        assert 0 < touched < total


class TestLimitSemantics:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_limit_is_a_prefix_of_full_enumeration_on_every_backend(
        self, formula, doc
    ):
        va = trim(regex_to_va(formula))
        for name in ALL_BACKENDS:
            engine = Engine(backend=name)
            full = list(engine.enumerate(va, doc))
            for k in (0, 1, 2, 5):
                assert list(engine.enumerate(va, doc, limit=k)) == full[:k], name

    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_graph_limit_matches_enumeration_prefix(self, formula, doc):
        indexed = trim(regex_to_va(formula)).indexed()
        full = list(IndexedMatchGraph(indexed, doc).enumerate())
        for k in (0, 1, 3):
            assert list(IndexedMatchGraph(indexed, doc).enumerate(limit=k)) == full[:k]

    def test_engine_first_and_evaluate_many_limit(self):
        va = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*"))
        engine = Engine()
        full = list(engine.enumerate(va, "abab"))
        assert engine.first(va, "abab") == full[0]
        assert engine.first(va, "") is None
        relations = engine.evaluate_many(va, ["abab", "", "ba"], limit=2)
        assert all(len(relation) <= 2 for relation in relations)
        assert relations[0] == SpanRelation(full[:2])
        assert relations[1] == SpanRelation(())


class TestBooleanEmptiness:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_boolean_passes_agree_with_naive(self, formula, doc):
        va = trim(regex_to_va(formula))
        expected = bool(list(enumerate_naive(va, doc)))
        assert is_nonempty(va, doc) == expected
        assert indexed_nonempty(va.indexed(), doc) == expected
        assert boolean_nonempty(FactorizedVA(va), doc) == expected
        for name in ALL_BACKENDS:
            assert get_backend(name).prepare(va).is_nonempty(doc) == expected, name
            assert Engine(backend=name).is_nonempty(va, doc) == expected, name

    def test_engine_nonempty_counts_checks_not_mappings(self):
        va = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*"))
        engine = Engine()
        assert engine.is_nonempty(va, "ab")
        assert not engine.is_nonempty(va, "")
        assert engine.stats.nonempty_checks == 2
        assert engine.stats.mappings == 0


class TestParallelEvaluation:
    DOCS = ["abab", "b", "", "bbba", "aab", "abba", "a"]

    def test_workers_match_sequential_results_and_order(self):
        va = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*"))
        serial = Engine().evaluate_many(va, self.DOCS)
        # The empty document is provably non-matching: the prefilter keeps
        # it away from the workers entirely (see test below for the
        # prefilter-off behaviour).
        survivors = [doc for doc in self.DOCS if doc]
        for workers in (2, 3, len(self.DOCS) + 5):
            engine = Engine()
            assert engine.evaluate_many(va, self.DOCS, workers=workers) == serial
            assert engine.stats.parallel_shards == min(workers, len(survivors))
            assert engine.stats.prefilter_rejects == len(self.DOCS) - len(survivors)
            # Shard statistics are merged back into the parent engine.
            assert engine.stats.documents == len(self.DOCS)

    def test_workers_without_prefilter_ship_every_document(self):
        va = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*"))
        serial = Engine().evaluate_many(va, self.DOCS)
        for workers in (2, len(self.DOCS) + 5):
            engine = Engine(prefilter=False)
            assert engine.evaluate_many(va, self.DOCS, workers=workers) == serial
            assert engine.stats.parallel_shards == min(workers, len(self.DOCS))
            assert engine.stats.prefilter_rejects == 0
            assert engine.stats.documents == len(self.DOCS)

    def test_workers_respect_limit(self):
        va = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*"))
        engine = Engine()
        limited = engine.evaluate_many(va, self.DOCS, limit=1, workers=2)
        assert all(len(relation) <= 1 for relation in limited)

    def test_unpicklable_query_falls_back_to_sequential(self):
        from repro.algebra import Instantiation, RAQuery
        from repro.algebra.ra_tree import Difference, Leaf
        from repro.regex import parse

        tree = Difference(Leaf("a"), Leaf("c"))
        inst = Instantiation(
            spanners={
                "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
                "c": RelationSpanner(lambda doc: [], {"x"}),
            }
        )
        query = RAQuery(tree, inst)
        serial = query.evaluate_many(self.DOCS)
        parallel = RAQuery(tree, inst).evaluate_many(self.DOCS, workers=2)
        assert parallel == serial
        assert query.engine.stats.parallel_shards == 0

    def test_ra_query_parallel_matches_sequential(self):
        from repro.algebra import Instantiation, RAQuery
        from repro.algebra.ra_tree import Difference, Leaf
        from repro.regex import parse

        tree = Difference(Leaf("a"), Leaf("c"))
        inst = Instantiation(
            spanners={
                "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
                "c": parse("(a|b)*x{a}(a|b)*"),
            }
        )
        serial = RAQuery(tree, inst).evaluate_many(self.DOCS)
        engine = Engine()
        parallel = RAQuery(tree, inst, engine=engine).evaluate_many(
            self.DOCS, workers=2
        )
        assert parallel == serial
        assert engine.stats.parallel_shards == 2

    def test_regex_formulas_pickle_roundtrip(self):
        import pickle

        from repro.regex import parse

        formula = parse("(a|b)*x{(a|b)+}y{a}")
        clone = pickle.loads(pickle.dumps(formula))
        assert clone == formula
        assert clone.to_text() == formula.to_text()


def regex_to_va_text(text: str):
    from repro.regex import parse

    return regex_to_va(parse(text))
