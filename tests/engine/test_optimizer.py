"""The logical-plan optimizer: one unit test per rewrite rule, plus plan
CSE, ``Plan.explain()``, the fingerprint-keyed plan cache, and the
``optimize=False`` escape hatch."""

import pytest

from repro import (
    Difference,
    Engine,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    UnionNode,
    parse,
)
from repro.algebra.logical import (
    LDifference,
    LJoin,
    LProject,
    LSyncDifference,
    LUnion,
    StaticAtom,
)
from repro.algebra.planner import compile_static_atom
from repro.engine import EngineStats, SyncDifferencePlanNode, build_plan
from repro.engine.optimizer import optimize
from repro.engine.plan import DifferencePlanNode, StaticNode
from repro.va import empty_va


def atom(text: str) -> StaticAtom:
    return StaticAtom(compile_static_atom(parse(text)))


class TestRewriteRules:
    def test_flatten_union(self):
        nested = LUnion((LUnion((atom("x{a}"), atom("x{b}"))), atom("x{ab}")))
        out, report = optimize(nested)
        assert isinstance(out, LUnion)
        assert len(out.operands) == 3
        assert report.fired["flatten-union"] >= 1

    def test_flatten_join(self):
        nested = LJoin((LJoin((atom("x{a}[ab]*"), atom("[ab]*y{b}"))), atom("[ab]*z{a}[ab]*")))
        out, report = optimize(nested)
        assert isinstance(out, LJoin)
        assert len(out.operands) == 3
        assert report.fired["flatten-join"] >= 1

    def test_dedup_union(self):
        # Structurally identical operands (separately compiled) collapse.
        out, report = optimize(LUnion((atom("x{(a|b)+}"), atom("x{(a|b)+}"))))
        assert isinstance(out, StaticAtom)
        assert report.fired["dedup-union"] == 1

    def test_join_is_not_deduplicated(self):
        # Schemaless ⋈ is not idempotent: A ⋈ A may combine mappings with
        # different domains.  The optimizer must keep both operands.
        duplicated = LJoin((atom("x{a}|y{a}"), atom("x{a}|y{a}")))
        out, _ = optimize(duplicated)
        assert isinstance(out, LJoin)
        assert len(out.operands) == 2

    def test_prune_empty_union(self):
        empty = StaticAtom(empty_va())
        out, report = optimize(LUnion((empty, atom("x{a}"))))
        assert isinstance(out, StaticAtom)
        assert not out.is_empty
        assert report.fired["prune-empty"] == 1

    def test_prune_empty_join(self):
        empty = StaticAtom(empty_va())
        out, _ = optimize(LJoin((atom("x{a}"), empty)))
        assert isinstance(out, StaticAtom)
        assert out.is_empty

    def test_prune_empty_difference(self):
        empty = StaticAtom(empty_va())
        keep = atom("x{a}")
        left_empty, _ = optimize(LDifference(empty, keep))
        assert isinstance(left_empty, StaticAtom) and left_empty.is_empty
        right_empty, _ = optimize(LDifference(keep, empty))
        assert isinstance(right_empty, StaticAtom) and not right_empty.is_empty

    def test_project_project_fuses(self):
        # A difference child cannot be folded statically, so the nested
        # projections must fuse on their own: π_{y,z}(π_{x,y}(A)) = π_{y}(A).
        child = LDifference(atom("x{a}y{b}z{a}"), atom("w{ab}"))
        inner = LProject(child, frozenset({"x", "y"}))
        out, report = optimize(LProject(inner, frozenset({"y", "z"})))
        assert isinstance(out, LProject)
        assert out.keep == frozenset({"y"})
        assert not isinstance(out.child, LProject)
        assert report.fired["project-project"] == 1

    def test_project_identity_dropped(self):
        base = atom("x{a}")
        out, report = optimize(LProject(base, frozenset({"x", "unused"})))
        assert out is base
        assert report.fired["project-identity"] == 1

    def test_push_project_through_union(self):
        union = LUnion((atom("x{a}y{b}"), atom("x{b}z{a}")))
        out, report = optimize(LProject(union, frozenset({"x"})))
        assert report.fired["push-project-union"] == 1
        # Both arms fold to x-only atoms; the union stays n-ary static.
        assert isinstance(out, LUnion)
        assert all(
            isinstance(child, StaticAtom) and child.variables == frozenset({"x"})
            for child in out.operands
        )

    def test_push_project_through_join_keeps_shared_variables(self):
        join = LJoin((atom("x{a}y{b}[ab]*"), atom("[ab]*x{a}z{b}")))
        out, report = optimize(LProject(join, frozenset({"y"})))
        assert report.fired["push-project-join"] == 1
        # The shared variable x must survive inside the join operands even
        # though only y is kept outside.
        assert isinstance(out, LProject) and out.keep == frozenset({"y"})
        assert isinstance(out.child, LJoin)
        operand_vars = [child.variables for child in out.child.operands]
        assert frozenset({"x", "y"}) in operand_vars
        assert frozenset({"x"}) in operand_vars

    def test_fold_static_project_shrinks_atom(self):
        base = atom("x{a}y{(a|b)+}")
        out, report = optimize(LProject(base, frozenset({"x"})))
        assert isinstance(out, StaticAtom)
        assert out.variables == frozenset({"x"})
        assert out.va.n_states <= base.va.n_states
        assert report.fired["fold-static-project"] == 1

    def test_order_operands_by_estimated_states(self):
        big = atom("x{(a|b)+}(a|b)*y{(a|b)+}")
        small = atom("z{a}")
        out, report = optimize(LUnion((big, small)))
        assert report.fired["order-operands"] == 1
        assert [child.estimated_states for child in out.operands] == sorted(
            child.estimated_states for child in out.operands
        )

    def test_sync_difference_lowered_for_synchronized_subtrahend(self):
        minuend = atom("(a|b)*x{(a|b)+}(a|b)*")
        subtrahend = atom("(a|b)*x{a}(a|b)*")  # functional ⇒ synchronized
        out, report = optimize(LDifference(minuend, subtrahend))
        assert isinstance(out, LSyncDifference)
        assert report.fired["sync-difference"] == 1

    def test_sync_difference_not_lowered_for_unsynchronized_subtrahend(self):
        minuend = atom("(a|b)*x{(a|b)+}(a|b)*")
        # Some accepting runs use x, others do not: not synchronized.
        subtrahend = atom("(a|b)*x{a}(a|b)*|b+")
        out, report = optimize(LDifference(minuend, subtrahend))
        assert isinstance(out, LDifference)
        assert not isinstance(out, LSyncDifference)
        assert "sync-difference" not in report.fired


class TestPlanLevelCSE:
    def test_duplicate_subtrees_share_one_physical_node(self):
        shared_text = "(a|b)*x{a}(a|b)*"
        tree = UnionNode(
            Difference(Leaf("a"), Leaf("c1")),
            Difference(Leaf("b"), Leaf("c2")),
        )
        inst = Instantiation(
            spanners={
                "a": parse("(a|b)*x{(a|b)+}"),
                "b": parse("x{(a|b)+}(a|b)*"),
                "c1": parse(shared_text),
                "c2": parse(shared_text),  # distinct object, same structure
            }
        )
        stats = EngineStats()
        plan = build_plan(tree, inst, stats=stats)
        assert plan.root.left.right is plan.root.right.right
        assert stats.cse_hits >= 1
        assert "[shared ×2]" in plan.explain()

    def test_static_cache_shares_atoms_across_plans(self):
        engine = Engine()
        formula = "(a|b)*x{(a|b)+}(a|b)*"
        engine.evaluate(
            RAQuery(Leaf("a"), Instantiation(spanners={"a": parse(formula)})), "ab"
        )
        before = engine.stats.cse_hits
        engine.evaluate(
            RAQuery(
                UnionNode(Leaf("a"), Leaf("b")),
                Instantiation(
                    spanners={"a": parse(formula), "b": parse("y{a}")}
                ),
            ),
            "ab",
        )
        assert engine.stats.cse_hits > before

    def test_fingerprint_cache_shares_plans_across_equal_queries(self):
        from repro.va import regex_to_va, trim

        engine = Engine()
        text = "(a|b)*x{(a|b)+}(a|b)*"

        def fresh_query():
            # Fresh VA atoms every time: VAs key the cheap plan cache by
            # object identity, so only the structural fingerprint can hit.
            return RAQuery(
                UnionNode(Leaf("a"), Leaf("b")),
                Instantiation(
                    spanners={
                        "a": trim(regex_to_va(parse(text))),
                        "b": trim(regex_to_va(parse("y{a}b"))),
                    }
                ),
            )

        first = engine.evaluate(fresh_query(), "abab")
        second = engine.evaluate(fresh_query(), "abab")
        assert first == second
        assert engine.stats.plan_misses == 1
        assert engine.stats.fingerprint_hits == 1

    def test_structurally_equal_formulas_hit_the_cheap_key(self):
        # Regex formulas hash structurally, so re-parsed (equal) formulas
        # reuse the plan without even building the logical IR.
        engine = Engine()
        text = "(a|b)*x{(a|b)+}(a|b)*"

        def fresh_query():
            return RAQuery(
                Leaf("a"), Instantiation(spanners={"a": parse(text)})
            )

        engine.evaluate(fresh_query(), "abab")
        engine.evaluate(fresh_query(), "abab")
        assert engine.stats.plan_misses == 1
        assert engine.stats.plan_hits == 1
        assert engine.stats.fingerprint_hits == 0


class TestEngineIntegration:
    def _difference_query(self, engine=None):
        tree = Difference(Leaf("a"), Leaf("c"))
        inst = Instantiation(
            spanners={
                "a": parse("(a|b)*x{(a|b)+}(a|b)*"),
                "c": parse("(a|b)*x{a}(a|b)*"),
            }
        )
        return RAQuery(tree, inst, engine=engine)

    def test_sync_difference_plan_node_used(self):
        engine = Engine()
        query = self._difference_query(engine)
        plan = engine.prepare(query).plan
        assert isinstance(plan.root, SyncDifferencePlanNode)
        # ... which is still a DifferencePlanNode for plan introspection.
        assert isinstance(plan.root, DifferencePlanNode)

    def test_sync_difference_matches_adhoc_difference(self):
        optimized = self._difference_query(Engine())
        plain = self._difference_query(Engine(optimize=False))
        for doc in ("", "a", "ab", "abab", "bbab"):
            assert optimized.evaluate(doc) == plain.evaluate(doc)

    def test_sync_lowering_lifts_max_shared_bound(self):
        # Theorem 4.8 needs no bound on the common variables, so the
        # optimized plan evaluates where the ad-hoc route would refuse.
        tree = Difference(Leaf("a"), Leaf("b"))
        inst = Instantiation(
            spanners={"a": parse("x{a}y{b}"), "b": parse("x{a}y{b}")}
        )
        config = PlannerConfig(max_shared=1)
        from repro.core import SpannerError

        with pytest.raises(SpannerError):
            RAQuery(tree, inst, config, engine=Engine(optimize=False)).evaluate("ab")
        relation = RAQuery(tree, inst, config, engine=Engine()).evaluate("ab")
        assert relation.is_empty  # identical operands

    def test_join_bound_checked_on_written_association(self):
        # order-operands re-folds joins smallest-first; the max_shared
        # check must still be evaluated against the association the user
        # wrote, so this (valid as written) query may not start failing.
        inst = Instantiation(
            spanners={
                "a": parse("(a|b)*x{(a|b)+}(a|b)*y{(a|b)+}(a|b)*"),  # big
                "b": parse("(a|b)*x{a}(a|b)*"),
                "c": parse("(a|b)*y{b}(a|b)*"),
            }
        )
        tree = Join(Join(Leaf("a"), Leaf("b")), Leaf("c"))
        config = PlannerConfig(max_shared=1)  # (a,b) share 1; (ab,c) share 1
        on = Engine().evaluate(RAQuery(tree, inst, config), "abab")
        off = Engine(optimize=False).evaluate(RAQuery(tree, inst, config), "abab")
        assert on == off

    def test_join_bound_violation_still_raises_when_optimized(self):
        from repro.core import SpannerError

        inst = Instantiation(
            spanners={"a": parse("x{a}y{b}"), "b": parse("x{a}y{b}")}
        )
        tree = Join(Leaf("a"), Leaf("b"))
        with pytest.raises(SpannerError, match="shares 2"):
            Engine().evaluate(RAQuery(tree, inst, PlannerConfig(max_shared=1)), "ab")

    def test_static_cache_does_not_bypass_join_bound(self):
        # A lax-config plan must not satisfy a strict-config query from
        # the engine's cross-plan static cache.
        from repro.core import SpannerError

        engine = Engine(optimize=False)
        text_a, text_b = "x{a}[ab]*", "x{a}y{b}[ab]*"

        def query(max_shared):
            return RAQuery(
                Join(Leaf("a"), Leaf("b")),
                Instantiation(spanners={"a": parse(text_a), "b": parse(text_b)}),
                PlannerConfig(max_shared=max_shared),
            )

        engine.evaluate(query(2), "ab")  # populates the static cache
        with pytest.raises(SpannerError):
            engine.evaluate(query(0), "ab")

    def test_optimize_false_escape_hatch(self):
        engine = Engine(optimize=False)
        tree = Project(UnionNode(Leaf("a"), Leaf("b")), frozenset({"x"}))
        inst = Instantiation(
            spanners={"a": parse("x{(a|b)+}"), "b": parse("x{(a|b)+}")}
        )
        plan = engine.prepare(RAQuery(tree, inst)).plan
        assert plan.report is None
        assert "optimizer: disabled" in plan.explain()
        assert engine.stats.rules_fired == 0

    def test_optimized_and_unoptimized_agree(self):
        tree = Project(UnionNode(Leaf("a"), Leaf("b")), frozenset({"x"}))
        inst = Instantiation(
            spanners={"a": parse("x{(a|b)+}y{a*}"), "b": parse("x{(a|b)+}")}
        )
        on, off = Engine(), Engine(optimize=False)
        for doc in ("", "ab", "abab"):
            assert on.evaluate(RAQuery(tree, inst), doc) == off.evaluate(
                RAQuery(tree, inst), doc
            )

    def test_explain_sections(self):
        engine = Engine()
        text = engine.explain(self._difference_query(engine))
        assert "physical:" in text
        assert "logical (optimized):" in text
        assert "optimizer:" in text
        assert "synchronized (Thm 4.8)" in text

    def test_stats_record_rule_fires(self):
        engine = Engine()
        tree = Project(UnionNode(Leaf("a"), Leaf("b")), frozenset({"x"}))
        inst = Instantiation(
            spanners={"a": parse("x{(a|b)+}"), "b": parse("x{(a|b)+}")}
        )
        engine.evaluate(RAQuery(tree, inst), "ab")
        assert engine.stats.rules_fired >= 1
        assert engine.stats.rule_fires
        assert sum(engine.stats.rule_fires.values()) == engine.stats.rules_fired
        assert "optimizer rewrites" in engine.stats.summary()


class TestStatsDictCounters:
    def test_merge_adds_rule_fires(self):
        a = EngineStats(rules_fired=2, rule_fires={"dedup-union": 2})
        b = EngineStats(rules_fired=3, rule_fires={"dedup-union": 1, "prune-empty": 2})
        a.merge(b)
        assert a.rules_fired == 5
        assert a.rule_fires == {"dedup-union": 3, "prune-empty": 2}

    def test_delta_subtracts_rule_fires(self):
        before = EngineStats(rules_fired=1, rule_fires={"dedup-union": 1})
        after = EngineStats(rules_fired=4, rule_fires={"dedup-union": 2, "prune-empty": 2})
        diff = after.delta(before)
        assert diff.rules_fired == 3
        assert diff.rule_fires == {"dedup-union": 1, "prune-empty": 2}

    def test_snapshot_is_independent(self):
        stats = EngineStats(rule_fires={"dedup-union": 1})
        snap = stats.snapshot()
        stats.rule_fires["dedup-union"] = 99
        assert snap.rule_fires == {"dedup-union": 1}
