"""Backend interchangeability: every enumeration backend computes exactly
the spanner of the naive run-semantics baseline, in the same canonical
order (hypothesis)."""

import pytest
from hypothesis import given, settings

from repro.core import NotSequentialError, SpanRelation
from repro.engine import available_backends, get_backend
from repro.va import (
    VA,
    enumerate_indexed,
    enumerate_mappings,
    evaluate_naive,
    regex_to_va,
    trim,
)

from ..properties.conftest import documents, sequential_formulas

_SETTINGS = settings(max_examples=40, deadline=None)

ALL_BACKENDS = available_backends()


class TestBackendsMatchNaive:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_every_backend_matches_naive(self, formula, doc):
        va = trim(regex_to_va(formula))
        expected = evaluate_naive(va, doc)
        for name in ALL_BACKENDS:
            prepared = get_backend(name).prepare(va)
            assert SpanRelation(prepared.enumerate(doc)) == expected, name

    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_backends_agree_on_enumeration_order(self, formula, doc):
        va = trim(regex_to_va(formula))
        orders = [
            list(get_backend(name).prepare(va).enumerate(doc))
            for name in ALL_BACKENDS
        ]
        for name, order in zip(ALL_BACKENDS[1:], orders[1:]):
            assert order == orders[0], name

    @given(sequential_formulas(max_vars=2), documents)
    @_SETTINGS
    def test_prepared_form_is_reusable_across_documents(self, formula, doc):
        va = trim(regex_to_va(formula))
        for name in ALL_BACKENDS:
            prepared = get_backend(name).prepare(va)
            first = SpanRelation(prepared.enumerate(doc))
            again = SpanRelation(prepared.enumerate(doc))
            other = SpanRelation(prepared.enumerate(doc + "a"))
            assert first == again
            assert other == evaluate_naive(va, doc + "a")


class TestIndexedForm:
    @given(sequential_formulas(), documents)
    @_SETTINGS
    def test_enumerate_indexed_matches_matchgraph(self, formula, doc):
        va = trim(regex_to_va(formula))
        assert list(enumerate_indexed(va, doc)) == list(enumerate_mappings(va, doc))

    def test_indexed_accessor_caches(self):
        va = trim(regex_to_va_text("x{a*}b"))
        assert va.indexed() is va.indexed()

    def test_indexed_runs_gauge_matches_matchgraph(self):
        from repro.va import FactorizedVA, IndexedMatchGraph, MatchGraph

        va = trim(regex_to_va_text("(a|b)*x{(a|b)+}(a|b)*"))
        doc = "abab"
        graph = MatchGraph(FactorizedVA(va), doc)
        indexed = IndexedMatchGraph(va.indexed(), doc)
        assert indexed.states_alive() == graph.states_alive()
        assert indexed.width() == graph.width()
        assert indexed.is_empty == graph.is_empty


class TestSequentialityGuard:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_non_sequential_input_rejected(self, name):
        from repro.va import VarOp, open_op

        # Opens x twice: not sequential.
        x_open = open_op("x")
        va = VA(0, {2}, [(0, x_open, 1), (1, x_open, 2)])
        with pytest.raises(NotSequentialError):
            get_backend(name).prepare(va)


def regex_to_va_text(text: str) -> VA:
    from repro.regex import parse

    return regex_to_va(parse(text))
