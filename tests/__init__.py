"""Test package."""
