"""The reference semantics ``[α](d)`` and ``⟦α⟧(d)`` (§2.2)."""

from repro.core import Mapping, Span
from repro.regex import (
    capture,
    concat,
    empty,
    eps,
    evaluate,
    lit,
    matches,
    parse,
    star,
    sym,
    union,
)
from repro.regex.semantics import ReferenceRegexSpanner


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestGrammarCases:
    def test_empty_language(self):
        assert matches(empty(), "ab") == frozenset()

    def test_epsilon_matches_every_position(self):
        result = matches(eps(), "ab")
        assert {sp for sp, _ in result} == {Span(1, 1), Span(2, 2), Span(3, 3)}

    def test_letter_matches_occurrences(self):
        result = matches(sym("a"), "aba")
        assert {sp for sp, _ in result} == {Span(1, 2), Span(3, 4)}

    def test_capture_records_span(self):
        result = matches(capture("x", sym("a")), "ab")
        assert result == {(Span(1, 2), m(x=(1, 2)))}

    def test_union_is_set_union(self):
        result = matches(union(sym("a"), sym("b")), "ab")
        assert {sp for sp, _ in result} == {Span(1, 2), Span(2, 3)}

    def test_concat_adjoins_spans(self):
        result = matches(lit("ab"), "ab")
        assert (Span(1, 3), Mapping()) in result

    def test_concat_requires_disjoint_domains(self):
        # x{a}·x{b}: the second binding is dropped by the grammar's
        # disjointness condition, so nothing matches.
        f = concat(capture("x", sym("a")), capture("x", sym("b")))
        assert evaluate(f, "ab").is_empty

    def test_star_zero_and_many(self):
        f = star(sym("a"))
        spans = {sp for sp, _ in matches(f, "aa")}
        assert Span(1, 1) in spans  # zero copies
        assert Span(1, 3) in spans  # two copies

    def test_star_with_variables_drops_repeats(self):
        # (x{a})* can use x in at most one copy; longer repetitions are
        # filtered by the domain-disjointness rule.
        f = star(capture("x", sym("a")))
        rel = evaluate(f, "aa")
        assert rel.is_empty  # covering "aa" needs two copies, both binding x

    def test_star_one_copy_with_variable(self):
        f = star(capture("x", sym("a")))
        rel = evaluate(f, "a")
        assert rel == {m(x=(1, 2))}


class TestEvaluate:
    def test_requires_full_document_span(self):
        f = capture("x", sym("a"))
        assert evaluate(f, "ab").is_empty  # must cover the whole document
        assert evaluate(f, "a") == {m(x=(1, 2))}

    def test_empty_document(self):
        assert evaluate(eps(), "") == {Mapping()}
        assert evaluate(sym("a"), "").is_empty

    def test_boolean_formula_yields_empty_mapping(self):
        assert evaluate(lit("ab"), "ab") == {Mapping()}

    def test_example_23_equivalence(self):
        # (Σ* x{Σ*} Σ*) ∨ Σ+ on "ab": all spans for x, plus the empty
        # mapping from the Boolean branch.
        f = parse("([ab]*x{[ab]*}[ab]*)|[ab]+")
        rel = evaluate(f, "ab")
        spans = {mu["x"] for mu in rel if "x" in mu.domain}
        assert spans == {Span(i, j) for i in range(1, 4) for j in range(i, 4)}
        assert Mapping() in rel

    def test_optional_field_produces_partial_mappings(self):
        f = parse("(x{a}|ε)y{b*}")
        rel = evaluate(f, "b")
        assert rel == {m(y=(1, 2))}
        rel2 = evaluate(f, "ab")
        assert rel2 == {m(x=(1, 2), y=(2, 3))}


class TestReferenceSpanner:
    def test_spanner_interface(self):
        spanner = ReferenceRegexSpanner(parse("x{a}b"))
        assert spanner.variables() == {"x"}
        assert list(spanner.enumerate("ab")) == [m(x=(1, 2))]

    def test_empty_result(self):
        spanner = ReferenceRegexSpanner(parse("x{a}"))
        assert not spanner.is_nonempty("b")
