"""The textual regex-formula syntax."""

import pytest

from repro.core import RegexSyntaxError
from repro.regex import (
    CharSet,
    capture,
    chars,
    concat,
    eps,
    lit,
    opt,
    parse,
    plus,
    star,
    sym,
    union,
)


class TestAtoms:
    def test_single_letter(self):
        assert parse("a") == sym("a")

    def test_concatenation(self):
        assert parse("abc") == lit("abc")

    def test_epsilon_symbol_and_escape(self):
        assert parse("ε") == eps()
        assert parse("\\e") == eps()

    def test_empty_language(self):
        assert parse("∅").to_text() == "∅"
        assert parse("\\0").to_text() == "∅"

    def test_empty_input_is_epsilon(self):
        assert parse("") == eps()

    def test_space_is_a_literal(self):
        assert parse("a b") == lit("a b")

    def test_explicit_concat_dot_ignored(self):
        assert parse("a·b") == lit("ab")


class TestOperators:
    def test_union(self):
        assert parse("a|b") == union(sym("a"), sym("b"))

    def test_union_paper_symbol(self):
        assert parse("a∨b") == union(sym("a"), sym("b"))

    def test_star(self):
        assert parse("a*") == star(sym("a"))

    def test_plus_expands(self):
        assert parse("a+") == plus(sym("a"))

    def test_opt_expands(self):
        assert parse("a?") == opt(sym("a"))

    def test_precedence_union_below_concat(self):
        assert parse("ab|cd") == union(lit("ab"), lit("cd"))

    def test_grouping(self):
        assert parse("(a|b)c") == concat(union(sym("a"), sym("b")), sym("c"))

    def test_empty_branch_is_epsilon(self):
        assert parse("a|") == union(sym("a"), eps())


class TestCaptures:
    def test_simple_capture(self):
        assert parse("x{a}") == capture("x", sym("a"))

    def test_maximal_identifier_rule(self):
        # "ab{...}" parses as a capture named "ab", per the documented rule.
        assert parse("ab{c}") == capture("ab", sym("c"))

    def test_literal_then_capture_needs_grouping(self):
        assert parse("a(b{c})") == concat(sym("a"), capture("b", sym("c")))

    def test_nested_captures(self):
        assert parse("x{y{a}}") == capture("x", capture("y", sym("a")))

    def test_identifier_without_brace_is_literals(self):
        assert parse("abc") == lit("abc")

    def test_unbalanced_capture_brace(self):
        with pytest.raises(RegexSyntaxError):
            parse("x{a")

    def test_escaped_brace_is_literal(self):
        assert parse("a\\{b") == lit("a{b")


class TestCharSets:
    def test_explicit_set(self):
        assert parse("[abc]") == chars("abc")

    def test_range(self):
        assert parse("[a-c]") == chars("abc")

    def test_mixed_set_and_range(self):
        assert parse("[a-c9]") == chars("abc9")

    def test_trailing_dash_is_literal(self):
        assert parse("[a-]") == chars("a-")

    def test_bad_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[c-a]")

    def test_unbalanced_bracket(self):
        with pytest.raises(RegexSyntaxError):
            parse("[abc")

    def test_singleton_set_is_literal(self):
        assert parse("[a]") == sym("a")


class TestWildcardAndEscapes:
    def test_dot_requires_alphabet(self):
        with pytest.raises(RegexSyntaxError):
            parse(".")

    def test_dot_with_alphabet(self):
        assert parse(".", alphabet="ab") == chars("ab")

    def test_escapes(self):
        assert parse("\\*\\|\\(\\)") == lit("*|()")
        assert parse("\\n\\t\\s") == lit("\n\t ")

    def test_dangling_backslash(self):
        with pytest.raises(RegexSyntaxError):
            parse("a\\")

    def test_error_reports_position(self):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse("ab)cd")
        assert excinfo.value.position == 2


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "abc",
            "a|b|c",
            "(a|b)*c",
            "x{a+}",
            "x{[a-c]*}@y{[0-9]+}",
            "a(b{c})|d?",
            "x{ε}|y{∅*}",
        ],
    )
    def test_parse_render_parse_fixpoint(self, text):
        once = parse(text)
        assert parse(once.to_text()) == once
