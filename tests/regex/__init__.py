"""Test package."""
