"""The syntactic classes: functional ⊊ dfunc ⊊ sequential, synchronized,
disjunction-free (§2.2, §3.2, §4.2)."""

import pytest

from repro.regex import (
    capture,
    classify,
    concat,
    disjuncts,
    eps,
    functional_variables,
    is_disjunction_free,
    is_disjunctive_functional,
    is_functional,
    is_sequential,
    is_synchronized,
    is_synchronized_for,
    lit,
    parse,
    sigma_star,
    star,
    sym,
    union,
)
from repro.workloads import alpha_info, alpha_name, prop311_formula


class TestFunctional:
    def test_plain_string_is_functional(self):
        assert is_functional(lit("abc"))
        assert functional_variables(lit("abc")) == frozenset()

    def test_simple_capture(self):
        f = capture("x", lit("ab"))
        assert functional_variables(f) == {"x"}

    def test_union_branches_must_agree(self):
        same = union(capture("x", sym("a")), capture("x", sym("b")))
        assert is_functional(same)
        differ = union(capture("x", sym("a")), capture("y", sym("b")))
        assert not is_functional(differ)

    def test_optional_variable_not_functional(self):
        # αname of Example 2.2: xfirst is optional.
        assert not is_functional(alpha_name())

    def test_variable_under_star_not_functional(self):
        assert not is_functional(star(capture("x", sym("a"))))

    def test_repeated_variable_in_concat_not_functional(self):
        f = concat(capture("x", sym("a")), capture("x", sym("b")))
        assert not is_functional(f)

    def test_nested_capture_same_name_not_functional(self):
        assert not is_functional(capture("x", capture("x", sym("a"))))

    def test_paper_example_22_not_functional(self):
        assert not is_functional(alpha_info())


class TestSequential:
    def test_functional_implies_sequential(self):
        f = capture("x", lit("ab"))
        assert is_functional(f) and is_sequential(f)

    def test_alpha_name_is_sequential(self):
        assert is_sequential(alpha_name())

    def test_alpha_info_is_sequential(self):
        # Example 2.2: sequential but not functional.
        assert is_sequential(alpha_info())

    def test_concat_sharing_variable_not_sequential(self):
        f = concat(capture("x", sym("a")), union(capture("x", sym("b")), eps()))
        assert not is_sequential(f)

    def test_variable_under_star_not_sequential(self):
        assert not is_sequential(star(capture("x", sym("a"))))

    def test_self_capture_not_sequential(self):
        assert not is_sequential(capture("x", capture("x", sym("a"))))


class TestDisjunctiveFunctional:
    def test_functional_is_single_disjunct_dfunc(self):
        f = capture("x", sym("a"))
        assert is_disjunctive_functional(f)
        assert disjuncts(f) == (f,)

    def test_union_of_functional_with_different_vars(self):
        f = union(capture("x", sym("a")), capture("y", sym("b")))
        assert is_disjunctive_functional(f)
        assert not is_functional(f)

    def test_paper_counterexample(self):
        # z{Σ*}·(x{Σ*} ∨ y{Σ*}) is sequential but not dfunc (§3.2).
        sigma = sigma_star("ab")
        f = concat(
            capture("z", sigma),
            union(capture("x", sigma), capture("y", sigma)),
        )
        assert is_sequential(f)
        assert not is_disjunctive_functional(f)

    def test_strict_inclusions(self):
        # funcRGX ⊊ dfuncRGX ⊊ seqRGX on witnesses.
        func = capture("x", sym("a"))
        dfunc_only = union(capture("x", sym("a")), capture("y", sym("b")))
        seq_only = prop311_formula(2)
        assert classify(func)["functional"]
        assert classify(dfunc_only)["disjunctive_functional"] and not classify(dfunc_only)["functional"]
        assert classify(seq_only)["sequential"] and not classify(seq_only)["disjunctive_functional"]


class TestSynchronized:
    def test_example_45(self):
        # (x{Σ*} ∨ ε)·y{Σ*}: synchronized for y, not for x.
        sigma = sigma_star("ab")
        f = concat(union(capture("x", sigma), eps()), capture("y", sigma))
        assert is_synchronized_for(f, {"y"})
        assert not is_synchronized_for(f, {"x"})
        assert not is_synchronized(f)

    def test_no_disjunctions_is_synchronized(self):
        f = concat(capture("x", sym("a")), capture("y", star(sym("b"))))
        assert is_synchronized(f)

    def test_variable_free_disjunction_is_fine(self):
        f = concat(union(sym("a"), sym("b")), capture("x", sym("c")))
        assert is_synchronized(f)

    def test_empty_target_set(self):
        assert is_synchronized_for(parse("x{a}|y{b}"), set())


class TestDisjunctionFree:
    def test_star_is_allowed(self):
        assert is_disjunction_free(concat(capture("x", star(sym("a"))), sym("b")))

    def test_union_is_not(self):
        assert not is_disjunction_free(union(sym("a"), sym("b")))

    def test_charset_strictness(self):
        f = capture("x", parse("[ab]"))
        assert not is_disjunction_free(f, strict=True)
        assert is_disjunction_free(f, strict=False)
