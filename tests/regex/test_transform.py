"""Sequential → disjunctive-functional translation (Prop. 3.9(1), 3.11)."""

import pytest

from repro.core import NotSequentialError
from repro.regex import (
    capture,
    concat,
    count_disjuncts,
    disjunct_set,
    empty,
    evaluate,
    is_disjunctive_functional,
    is_functional,
    parse,
    star,
    sym,
    to_disjunctive_functional,
    union,
)
from repro.workloads import alpha_name, prop311_formula


class TestDisjunctSet:
    def test_functional_formula_is_its_own_disjunct(self):
        f = capture("x", sym("a"))
        assert disjunct_set(f) == (f,)

    def test_empty_language_has_no_disjuncts(self):
        assert disjunct_set(empty()) == ()
        assert to_disjunctive_functional(empty()) == empty()

    def test_alpha_name_splits_into_two(self):
        parts = disjunct_set(alpha_name())
        assert len(parts) == 2
        assert all(is_functional(p) for p in parts)

    def test_variable_free_union_stays_whole(self):
        f = union(sym("a"), sym("b"))
        assert disjunct_set(f) == (f,)

    def test_concat_takes_cross_product(self):
        f = concat(
            union(capture("x", sym("a")), sym("b")),
            union(capture("y", sym("c")), sym("d")),
        )
        assert len(disjunct_set(f)) == 4

    def test_non_sequential_rejected(self):
        with pytest.raises(NotSequentialError):
            disjunct_set(star(capture("x", sym("a"))))


class TestEquivalence:
    @pytest.mark.parametrize("doc", ["", "a", "ab", "ba", "abab"])
    def test_alpha_name_like_equivalence(self, doc):
        f = parse("(x{a} y{b})|y{b*}")
        g = to_disjunctive_functional(f)
        assert is_disjunctive_functional(g)
        assert evaluate(f, doc) == evaluate(g, doc)

    @pytest.mark.parametrize("doc", ["", "a", "ab", "bb"])
    def test_prop311_equivalence_small(self, doc):
        f = prop311_formula(2)
        g = to_disjunctive_functional(f)
        assert is_disjunctive_functional(g)
        assert evaluate(f, doc) == evaluate(g, doc)


class TestBlowup:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_prop311_needs_2_to_the_n_disjuncts(self, n):
        assert count_disjuncts(prop311_formula(n)) == 2 ** n

    def test_count_matches_materialisation(self):
        f = prop311_formula(3)
        assert count_disjuncts(f) == len(disjunct_set(f))

    def test_count_without_materialisation_scales(self):
        # 2^40 disjuncts would never fit in memory; counting is instant.
        assert count_disjuncts(prop311_formula(40)) == 2 ** 40

    def test_non_sequential_count_rejected(self):
        with pytest.raises(NotSequentialError):
            count_disjuncts(star(capture("x", sym("a"))))
