"""Regex-formula AST structure and rendering."""

import pytest

from repro.core import RegexSyntaxError
from repro.regex import (
    Capture,
    CharSet,
    Concat,
    Literal,
    Star,
    Union,
    capture,
    concat,
    empty,
    eps,
    lit,
    star,
    sym,
    union,
)


class TestNodes:
    def test_literal_single_char_only(self):
        with pytest.raises(RegexSyntaxError):
            Literal("ab")

    def test_charset_requires_symbols(self):
        with pytest.raises(RegexSyntaxError):
            CharSet([])
        with pytest.raises(RegexSyntaxError):
            CharSet(["ab"])

    def test_union_flattens(self):
        u = Union([sym("a"), Union([sym("b"), sym("c")])])
        assert len(u.parts) == 3

    def test_concat_flattens(self):
        c = Concat([sym("a"), Concat([sym("b"), sym("c")])])
        assert len(c.parts) == 3

    def test_nary_nodes_need_two_operands(self):
        with pytest.raises(RegexSyntaxError):
            Union([sym("a")])
        with pytest.raises(RegexSyntaxError):
            Concat([sym("a")])

    def test_capture_variable_name_validation(self):
        with pytest.raises(RegexSyntaxError):
            Capture("", sym("a"))
        with pytest.raises(RegexSyntaxError):
            Capture("1bad", sym("a"))
        with pytest.raises(RegexSyntaxError):
            Capture("sp ace", sym("a"))

    def test_nodes_are_immutable(self):
        node = sym("a")
        with pytest.raises(AttributeError):
            node.symbol = "b"


class TestVariables:
    def test_variables_collects_captures(self):
        f = concat(capture("x", sym("a")), union(capture("y", sym("b")), eps()))
        assert f.variables == {"x", "y"}

    def test_variable_free(self):
        assert star(sym("a")).variables == frozenset()

    def test_nested_capture(self):
        f = capture("x", capture("y", sym("a")))
        assert f.variables == {"x", "y"}


class TestIdentity:
    def test_structural_equality(self):
        assert capture("x", sym("a")) == capture("x", sym("a"))
        assert capture("x", sym("a")) != capture("y", sym("a"))
        assert hash(lit("ab")) == hash(lit("ab"))

    def test_walk_and_size(self):
        f = concat(sym("a"), star(sym("b")))
        kinds = [type(n).__name__ for n in f.walk()]
        assert kinds == ["Concat", "Literal", "Star", "Literal"]
        assert f.size() == 4


class TestBuilders:
    def test_lit_builds_concat(self):
        f = lit("abc")
        assert isinstance(f, Concat) and f.size() == 4

    def test_lit_empty_is_epsilon(self):
        assert lit("") == eps()

    def test_union_drops_empty_language(self):
        assert union(sym("a"), empty()) == sym("a")
        assert union(empty(), empty()) == empty()

    def test_concat_annihilates_on_empty(self):
        assert concat(sym("a"), empty()) == empty()

    def test_concat_drops_epsilon(self):
        assert concat(eps(), sym("a"), eps()) == sym("a")

    def test_star_simplifications(self):
        assert star(eps()) == eps()
        assert star(empty()) == eps()
        assert star(star(sym("a"))) == star(sym("a"))


class TestRendering:
    def test_precedence_parentheses(self):
        f = concat(union(sym("a"), sym("b")), sym("c"))
        assert f.to_text() == "(a|b)c"

    def test_star_binds_tighter_than_concat(self):
        assert concat(sym("a"), star(sym("b"))).to_text() == "ab*"
        assert star(concat(sym("a"), sym("b"))).to_text() == "(ab)*"

    def test_capture_rendering(self):
        assert capture("x", sym("a")).to_text() == "x{a}"

    def test_charset_compresses_ranges(self):
        from repro.regex import char_range

        assert char_range("a", "e").to_text() == "[a-e]"

    def test_escaping_special_characters(self):
        assert sym("*").to_text() == "\\*"
        assert sym("|").to_text() == "\\|"
