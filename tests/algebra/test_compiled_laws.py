"""Algebraic laws checked through the *compiled* operators — the compiled
algebra must satisfy the same identities as the semantic one."""

import pytest

from repro.core import Mapping
from repro.regex import parse
from repro.va import (
    evaluate_va,
    regex_to_va,
    trim,
    universal_empty_mapping_va,
)
from repro.algebra import (
    adhoc_difference,
    compile_projection,
    compile_union,
    fpt_join,
)


def compile_formula(text: str):
    return trim(regex_to_va(parse(text)))


A = compile_formula("x{a}[ab]*")
B = compile_formula("[ab]*y{b}")
C = compile_formula("x{[ab]}[ab]*")
DOCS = ("ab", "ba", "aab", "bba")


class TestJoinLaws:
    @pytest.mark.parametrize("doc", DOCS)
    def test_join_commutative(self, doc):
        assert evaluate_va(fpt_join(A, B), doc) == evaluate_va(fpt_join(B, A), doc)

    @pytest.mark.parametrize("doc", DOCS)
    def test_join_associative(self, doc):
        left = fpt_join(fpt_join(A, B), C)
        right = fpt_join(A, fpt_join(B, C))
        assert evaluate_va(left, doc) == evaluate_va(right, doc)

    @pytest.mark.parametrize("doc", DOCS)
    def test_join_idempotent(self, doc):
        assert evaluate_va(fpt_join(A, A), doc) == evaluate_va(A, doc)

    @pytest.mark.parametrize("doc", DOCS)
    def test_empty_mapping_spanner_is_join_identity(self, doc):
        # ⟦Σ*⟧ produces {∅}, the identity of ⋈.
        identity = universal_empty_mapping_va("ab")
        assert evaluate_va(fpt_join(A, identity), doc) == evaluate_va(A, doc)


class TestUnionLaws:
    @pytest.mark.parametrize("doc", DOCS)
    def test_union_commutative(self, doc):
        assert evaluate_va(compile_union(A, B), doc) == evaluate_va(
            compile_union(B, A), doc
        )

    @pytest.mark.parametrize("doc", DOCS)
    def test_union_idempotent(self, doc):
        assert evaluate_va(compile_union(A, A), doc) == evaluate_va(A, doc)

    @pytest.mark.parametrize("doc", DOCS)
    def test_join_distributes_over_union(self, doc):
        left = fpt_join(A, compile_union(B, C))
        right = compile_union(fpt_join(A, B), fpt_join(A, C))
        assert evaluate_va(left, doc) == evaluate_va(right, doc)


class TestDifferenceLaws:
    @pytest.mark.parametrize("doc", DOCS)
    def test_self_difference_empty(self, doc):
        assert evaluate_va(adhoc_difference(A, A, doc), doc).is_empty

    @pytest.mark.parametrize("doc", DOCS)
    def test_difference_then_union_restores_nothing_extra(self, doc):
        # (A \ B) ⊆ A through the compiled pipeline.
        surviving = evaluate_va(adhoc_difference(A, C, doc), doc)
        full = evaluate_va(A, doc)
        assert all(mapping in full for mapping in surviving)

    @pytest.mark.parametrize("doc", DOCS)
    def test_difference_against_universal_is_empty(self, doc):
        # {∅} is compatible with every mapping.
        universal = universal_empty_mapping_va("ab")
        assert evaluate_va(adhoc_difference(A, universal, doc), doc).is_empty

    @pytest.mark.parametrize("doc", DOCS)
    def test_double_subtraction_monotone(self, doc):
        once = adhoc_difference(A, C, doc)
        twice = adhoc_difference(once, C, doc)
        assert evaluate_va(twice, doc) == evaluate_va(once, doc)


class TestProjectionLaws:
    @pytest.mark.parametrize("doc", DOCS)
    def test_projection_idempotent(self, doc):
        once = compile_projection(A, {"x"})
        twice = compile_projection(once, {"x"})
        assert evaluate_va(once, doc) == evaluate_va(twice, doc)

    @pytest.mark.parametrize("doc", DOCS)
    def test_projection_commutes_with_union(self, doc):
        left = compile_projection(compile_union(A, C), {"x"})
        right = compile_union(
            compile_projection(A, {"x"}), compile_projection(C, {"x"})
        )
        assert evaluate_va(left, doc) == evaluate_va(right, doc)

    @pytest.mark.parametrize("doc", DOCS)
    def test_boolean_projection_of_nonempty(self, doc):
        boolean = compile_projection(A, ())
        expected = {Mapping()} if not evaluate_va(A, doc).is_empty else set()
        assert set(evaluate_va(boolean, doc)) == expected
