"""Ad-hoc difference compilation (Lemma 4.2 / Theorem 4.3)."""

import random

import pytest

from repro.core import Mapping, NotSequentialError, Span, SpannerError
from repro.regex import parse
from repro.va import VA, evaluate_naive, evaluate_va, is_sequential, open_op, regex_to_va, trim
from repro.algebra import adhoc_difference, semantic_difference
from repro.workloads import random_sequential_formula


def compile_formula(text: str) -> VA:
    return trim(regex_to_va(parse(text)))


def check_difference(text1: str, text2: str, doc: str) -> None:
    a1, a2 = compile_formula(text1), compile_formula(text2)
    compiled = adhoc_difference(a1, a2, doc)
    assert is_sequential(compiled)
    expected = semantic_difference(evaluate_va(a1, doc), evaluate_va(a2, doc))
    assert evaluate_va(compiled, doc) == expected, (text1, text2, doc)


class TestBasicCases:
    def test_same_variable_disagreeing_spans(self):
        check_difference("x{a}[ab]*", "x{[ab][ab]}[ab]*", "aab")

    def test_equal_spanners_empty_difference(self):
        check_difference("x{a}b", "x{a}b", "ab")

    def test_disjoint_variable_subtrahend_kills_all(self):
        # A2's mappings (over y only) are compatible with every A1 mapping.
        a1, a2 = compile_formula("x{a}b"), compile_formula("a·y{b}")
        compiled = adhoc_difference(a1, a2, "ab")
        assert evaluate_va(compiled, "ab").is_empty

    def test_empty_mapping_in_subtrahend_empties_difference(self):
        # Regression pinning the Appendix-B.1 subtlety (see DESIGN.md):
        # the subtrahend produces the empty mapping, which is compatible
        # with everything — the difference must be empty.
        a1 = compile_formula("x{a}[ab]*")
        a2 = compile_formula("(y{a}|ε)[ab]*")  # produces µ = {} among others
        compiled = adhoc_difference(a1, a2, "ab")
        assert evaluate_va(compiled, "ab").is_empty

    def test_optional_shared_variable(self):
        check_difference("(x{a}|ε)[ab]*y{[ab]}", "x{a}[ab]*", "ab")

    def test_subtrahend_empty_on_document(self):
        a1, a2 = compile_formula("x{a}b"), compile_formula("x{b}a")
        compiled = adhoc_difference(a1, a2, "ab")
        assert evaluate_va(compiled, "ab") == evaluate_va(a1, "ab")

    def test_minuend_empty(self):
        check_difference("x{b}a", "x{a}b", "ab")


class TestEdgeCases:
    def test_empty_document_nonempty_subtrahend(self):
        # On ε all mappings are compatible (every span is [1,1>).
        a1 = compile_formula("x{a*}")
        a2 = compile_formula("y{a*}")
        compiled = adhoc_difference(a1, a2, "")
        assert evaluate_va(compiled, "").is_empty

    def test_empty_document_empty_subtrahend(self):
        a1 = compile_formula("x{a*}")
        a2 = compile_formula("y{a}")  # needs a letter: empty on ε
        compiled = adhoc_difference(a1, a2, "")
        assert evaluate_va(compiled, "") == {Mapping({"x": Span(1, 1)})}

    def test_boolean_operands(self):
        check_difference("a[ab]*", "[ab]*b", "ab")
        check_difference("a[ab]*", "[ab]*b", "aa")

    def test_max_shared_guard(self):
        a1 = compile_formula("x{a}y{b}")
        a2 = compile_formula("x{a}y{b}")
        with pytest.raises(SpannerError):
            adhoc_difference(a1, a2, "ab", max_shared=1)

    def test_non_sequential_rejected(self):
        bad = VA(0, (1,), [(0, open_op("x"), 1)])
        with pytest.raises(NotSequentialError):
            adhoc_difference(bad, compile_formula("a"), "a")

    def test_result_is_adhoc_only(self):
        # The compiled automaton is only promised correct for its document.
        a1 = compile_formula("x{a}[ab]*")
        a2 = compile_formula("x{aa}[ab]*")
        compiled = adhoc_difference(a1, a2, "ab")
        expected = semantic_difference(evaluate_va(a1, "ab"), evaluate_va(a2, "ab"))
        assert evaluate_va(compiled, "ab") == expected


class TestRandomized:
    def test_against_semantic_difference(self):
        rng = random.Random(21)
        for _ in range(20):
            f1 = random_sequential_formula(rng.randint(0, 2), rng, depth=2)
            f2 = random_sequential_formula(rng.randint(0, 2), rng, depth=2)
            a1, a2 = trim(regex_to_va(f1)), trim(regex_to_va(f2))
            doc = "".join(rng.choice("ab") for _ in range(rng.randint(0, 4)))
            compiled = adhoc_difference(a1, a2, doc)
            expected = semantic_difference(
                evaluate_naive(a1, doc), evaluate_naive(a2, doc)
            )
            assert evaluate_va(compiled, doc) == expected, (
                f1.to_text(),
                f2.to_text(),
                doc,
            )

    def test_nested_difference(self):
        # (A1 \ A2) \ A3 via two ad-hoc compilations.
        a1 = compile_formula("x{[ab]}[ab]*")
        a2 = compile_formula("x{b}[ab]*")
        a3 = compile_formula("[ab]x{[ab]}[ab]*")
        doc = "aba"
        once = adhoc_difference(a1, a2, doc)
        twice = adhoc_difference(once, a3, doc)
        expected = semantic_difference(
            semantic_difference(evaluate_va(a1, doc), evaluate_va(a2, doc)),
            evaluate_va(a3, doc),
        )
        assert evaluate_va(twice, doc) == expected
