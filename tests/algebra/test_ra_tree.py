"""RA trees and instantiations (§5)."""

import pytest

from repro.core import ArityError
from repro.regex import parse
from repro.algebra import (
    Difference,
    Instantiation,
    Join,
    Leaf,
    Project,
    UnionNode,
)


def figure2_tree():
    return Project(Difference(Join(Leaf("sm"), Leaf("sp")), Leaf("nr")), "keep")


class TestStructure:
    def test_children_and_arity(self):
        tree = figure2_tree()
        assert len(tree.children()) == 1
        diff = tree.children()[0]
        assert len(diff.children()) == 2

    def test_placeholders_left_to_right(self):
        assert figure2_tree().placeholders() == ("sm", "sp", "nr")

    def test_projection_slots(self):
        assert figure2_tree().projection_slots() == ("keep",)

    def test_inline_projection_has_no_slot(self):
        tree = Project(Leaf("a"), {"x"})
        assert tree.projection_slots() == ()
        assert tree.projection == frozenset({"x"})

    def test_str_rendering(self):
        text = str(figure2_tree())
        assert "⋈" in text and "\\" in text and "π" in text

    def test_union_node(self):
        tree = UnionNode(Leaf("a"), Leaf("b"))
        assert tree.placeholders() == ("a", "b")


class TestInstantiation:
    def test_lookup(self):
        inst = Instantiation(spanners={"a": parse("x{a}")}, projections={"p": frozenset({"x"})})
        assert inst.spanner("a") == parse("x{a}")
        assert inst.projection("p") == {"x"}

    def test_missing_spanner_raises(self):
        with pytest.raises(ArityError):
            Instantiation().spanner("ghost")

    def test_missing_projection_raises(self):
        with pytest.raises(ArityError):
            Instantiation().projection("ghost")

    def test_validate_reports_missing_placeholders(self):
        inst = Instantiation(spanners={"sm": parse("a")}, projections={"keep": frozenset()})
        with pytest.raises(ArityError, match="nr"):
            inst.validate(figure2_tree())

    def test_validate_reports_missing_slots(self):
        inst = Instantiation(
            spanners={"sm": parse("a"), "sp": parse("a"), "nr": parse("a")}
        )
        with pytest.raises(ArityError, match="keep"):
            inst.validate(figure2_tree())

    def test_validate_accepts_complete_instantiation(self):
        inst = Instantiation(
            spanners={"sm": parse("a"), "sp": parse("a"), "nr": parse("a")},
            projections={"keep": frozenset({"x"})},
        )
        inst.validate(figure2_tree())  # no exception
