"""Test package."""
