"""Semantic spanner combinators vs. relation-level operators."""

from repro import compile_spanner
from repro.core import Mapping, Span
from repro.algebra import (
    DifferenceSpanner,
    JoinSpanner,
    ProjectionSpanner,
    UnionSpanner,
)


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


FIRST = compile_spanner("x{a}[ab]*")
SECOND = compile_spanner("[ab]*y{b}")
SHARED = compile_spanner("x{[ab]}[ab]*")


class TestCombinators:
    def test_union(self):
        combined = UnionSpanner(FIRST, SECOND)
        doc = "ab"
        assert combined.evaluate(doc) == FIRST.evaluate(doc).union(SECOND.evaluate(doc))
        assert combined.variables() == {"x", "y"}

    def test_union_deduplicates(self):
        combined = UnionSpanner(FIRST, FIRST)
        assert combined.evaluate("ab") == FIRST.evaluate("ab")

    def test_projection(self):
        joined = JoinSpanner(FIRST, SECOND)
        projected = ProjectionSpanner(joined, {"x"})
        doc = "ab"
        assert projected.evaluate(doc) == joined.evaluate(doc).project({"x"})
        assert projected.variables() == {"x"}

    def test_join(self):
        joined = JoinSpanner(FIRST, SHARED)
        doc = "ab"
        assert joined.evaluate(doc) == FIRST.evaluate(doc).join(SHARED.evaluate(doc))

    def test_join_deduplicates(self):
        joined = JoinSpanner(FIRST, FIRST)
        assert joined.evaluate("ab") == FIRST.evaluate("ab")

    def test_difference(self):
        diff = DifferenceSpanner(SHARED, FIRST)
        doc = "ab"
        assert diff.evaluate(doc) == SHARED.evaluate(doc).difference(FIRST.evaluate(doc))
        assert diff.variables() == {"x"}

    def test_nesting(self):
        query = DifferenceSpanner(JoinSpanner(FIRST, SECOND), SHARED)
        doc = "ab"
        expected = (
            FIRST.evaluate(doc).join(SECOND.evaluate(doc)).difference(SHARED.evaluate(doc))
        )
        assert query.evaluate(doc) == expected
