"""Black-box spanners (Corollary 5.3, Example 5.4)."""

from repro.core import Mapping, Span
from repro.algebra import (
    DictionarySpanner,
    SentimentSpanner,
    StringEqualitySpanner,
    TokenizerSpanner,
    is_degree_bounded,
)


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestStringEquality:
    def test_equal_substrings_paired(self):
        spanner = StringEqualitySpanner("x", "y")
        rel = spanner.evaluate("aba")
        assert m(x=(1, 2), y=(3, 4)) in rel  # the two 'a's
        assert m(x=(1, 2), y=(2, 3)) not in rel  # 'a' vs 'b'

    def test_reflexive_pairs_included(self):
        rel = StringEqualitySpanner("x", "y").evaluate("ab")
        assert m(x=(1, 2), y=(1, 2)) in rel

    def test_empty_spans_excluded_by_default(self):
        rel = StringEqualitySpanner("x", "y").evaluate("ab")
        assert all(not mu["x"].is_empty for mu in rel)

    def test_empty_spans_opt_in(self):
        rel = StringEqualitySpanner("x", "y", include_empty=True).evaluate("a")
        assert m(x=(1, 1), y=(2, 2)) in rel

    def test_degree(self):
        assert StringEqualitySpanner().degree() == 2
        assert is_degree_bounded(StringEqualitySpanner(), 2)


class TestDictionary:
    def test_finds_words(self):
        spanner = DictionarySpanner("w", {"cat", "at"})
        rel = spanner.evaluate("cat")
        assert rel == {m(w=(1, 4)), m(w=(2, 4))}

    def test_overlapping_occurrences(self):
        rel = DictionarySpanner("w", {"aa"}).evaluate("aaa")
        assert rel == {m(w=(1, 3)), m(w=(2, 4))}

    def test_empty_dictionary(self):
        assert DictionarySpanner("w", ()).evaluate("abc").is_empty


class TestTokenizer:
    def test_tokens(self):
        rel = TokenizerSpanner("t").evaluate("ab  cd")
        assert rel == {m(t=(1, 3)), m(t=(5, 7))}

    def test_trailing_token(self):
        rel = TokenizerSpanner("t").evaluate("ab")
        assert rel == {m(t=(1, 3))}

    def test_only_delimiters(self):
        assert TokenizerSpanner("t").evaluate("   ").is_empty

    def test_custom_delimiters(self):
        rel = TokenizerSpanner("t", delimiters=",").evaluate("a,b")
        assert rel == {m(t=(1, 2)), m(t=(3, 4))}


class TestSentiment:
    def test_pairs_subject_with_evidence(self):
        doc = "Zosimov rec good work\nLuzhin rec nothing\n"
        rel = SentimentSpanner("who", "why", lexicon={"good"}).evaluate(doc)
        assert len(rel) == 1
        mapping = next(iter(rel))
        assert mapping["who"] == Span(1, 8)  # "Zosimov"
        assert mapping["why"] == Span(13, 17)  # "good"

    def test_multiple_hits_on_one_line(self):
        doc = "Ann good good\n"
        rel = SentimentSpanner("who", "why", lexicon={"good"}).evaluate(doc)
        assert len(rel) == 2

    def test_degree_bounded(self):
        assert SentimentSpanner().degree() == 2
