"""Synchronized difference (Theorem 4.8 / Corollary 4.9)."""

import random

import pytest

from repro.core import NotSynchronizedError
from repro.regex import parse
from repro.va import evaluate_naive, evaluate_va, is_sequential, regex_to_va, trim
from repro.algebra import (
    SyncDifferenceStats,
    semantic_difference,
    synchronized_difference,
)
from repro.workloads import (
    random_sequential_formula,
    synchronized_block_formula,
    unsynchronized_block_formula,
)


def compile_formula(formula) -> "VA":
    if isinstance(formula, str):
        formula = parse(formula)
    return trim(regex_to_va(formula))


def check(minuend, subtrahend, doc: str, **kwargs) -> None:
    a1, a2 = compile_formula(minuend), compile_formula(subtrahend)
    compiled = synchronized_difference(a1, a2, doc, **kwargs)
    assert is_sequential(compiled)
    expected = semantic_difference(evaluate_va(a1, doc), evaluate_va(a2, doc))
    assert evaluate_va(compiled, doc) == expected, (doc,)


class TestSynchronizedSubtrahend:
    def test_block_family(self):
        check(
            synchronized_block_formula(2),
            synchronized_block_formula(2, alphabet="a"),
            "abcba",
        )

    def test_minuend_with_optional_variables(self):
        # A1 skips x on some runs; the skipped variable is unconstrained.
        check("(x1{a*}|ε)c·x2{[ab]*}", synchronized_block_formula(2), "acb")

    def test_boolean_subtrahend_accepting(self):
        # Subtrahend with no common variables that accepts the document:
        # its empty mapping kills everything.
        check("x{a}[abc]*", "[abc]*", "abc")

    def test_boolean_subtrahend_rejecting(self):
        check("x{a}[abc]*", "[abc]*d|d[abc]*", "abc")

    def test_subtrahend_empty_spanner(self):
        check("x{a}[ab]*", "∅", "ab")

    def test_subtrahend_empty_on_document(self):
        check(synchronized_block_formula(1), "x1{b}c*", "ac")

    def test_extra_subtrahend_variables_projected(self):
        # Variables of A2 not in A1 cannot affect the difference.
        check("x1{a}[abc]*", "x1{a}y{[abc]*}", "abc")

    def test_never_used_common_variable_dropped(self):
        # A2 mentions x2 only on dead branches; x2 must not constrain.
        check(synchronized_block_formula(2), "x1{a*}c[ab]*", "acb")


class TestPreconditions:
    def test_unsynchronized_subtrahend_rejected(self):
        a1 = compile_formula(synchronized_block_formula(1))
        a2 = compile_formula("(x1{a}|ε a x1{ε})[ab]*")
        with pytest.raises(NotSynchronizedError):
            synchronized_difference(a1, a2, "ab")

    def test_unsynchronized_allowed_when_not_required(self):
        # The construction stays correct; only the size bound is forfeit.
        f2 = unsynchronized_block_formula(1)
        check("x1{[ab]*}", f2, "ab", require_synchronized=False)
        check("x1{[ab]*}", f2, "ba", require_synchronized=False)

    def test_stats_populated(self):
        stats = SyncDifferenceStats()
        a1 = compile_formula(synchronized_block_formula(2))
        a2 = compile_formula(synchronized_block_formula(2, alphabet="a"))
        synchronized_difference(a1, a2, "aca", stats=stats)
        assert stats.effective_common == {"x1", "x2"}
        assert stats.components >= 1
        assert stats.max_tracked_set >= 1
        assert stats.product_nodes > 0


class TestRandomizedAgainstSemantic:
    def test_random_minuends(self):
        rng = random.Random(5)
        subtrahend = compile_formula(synchronized_block_formula(2))
        for _ in range(10):
            f1 = random_sequential_formula(rng.randint(0, 2), rng, alphabet="abc", depth=2)
            a1 = trim(regex_to_va(f1))
            doc = "".join(rng.choice("abc") for _ in range(rng.randint(0, 4)))
            # rename f1's variables into the shared ones half the time
            compiled = synchronized_difference(a1, subtrahend, doc)
            expected = semantic_difference(
                evaluate_naive(a1, doc), evaluate_va(subtrahend, doc)
            )
            assert evaluate_va(compiled, doc) == expected, (f1.to_text(), doc)

    def test_random_shared_variable_minuends(self):
        rng = random.Random(6)
        subtrahend = compile_formula(synchronized_block_formula(1, alphabet="ab"))
        for _ in range(10):
            f1 = random_sequential_formula(1, rng, alphabet="ab", depth=2)
            # Rename the formula's variable to the shared name x1.
            from repro.va import rename_variables

            a1 = trim(regex_to_va(f1))
            if a1.variables:
                a1 = rename_variables(a1, {next(iter(a1.variables)): "x1"})
            doc = "".join(rng.choice("ab") for _ in range(rng.randint(0, 4)))
            compiled = synchronized_difference(a1, subtrahend, doc)
            expected = semantic_difference(
                evaluate_naive(a1, doc), evaluate_va(subtrahend, doc)
            )
            assert evaluate_va(compiled, doc) == expected, (f1.to_text(), doc)
