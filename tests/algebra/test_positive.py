"""Union and projection compilation (linear-time positive operators)."""

import pytest

from repro.core import NotSequentialError
from repro.regex import parse
from repro.va import VA, evaluate_va, is_sequential, open_op, regex_to_va, trim
from repro.algebra import compile_projection, compile_union


def compile_formula(text: str) -> VA:
    return trim(regex_to_va(parse(text)))


class TestCompileUnion:
    def test_union_semantics(self):
        a1 = compile_formula("x{a}b")
        a2 = compile_formula("a·y{b}")
        combined = compile_union(a1, a2)
        assert evaluate_va(combined, "ab") == evaluate_va(a1, "ab").union(
            evaluate_va(a2, "ab")
        )

    def test_sequentiality_preserved(self):
        combined = compile_union(compile_formula("(x{a}|ε)b"), compile_formula("ab"))
        assert is_sequential(combined)

    def test_check_flag(self):
        bad = VA(0, (1,), [(0, open_op("x"), 1)])
        with pytest.raises(NotSequentialError):
            compile_union(bad, compile_formula("a"), check=True)


class TestCompileProjection:
    def test_projection_semantics(self):
        va = compile_formula("x{a}y{b}")
        projected = compile_projection(va, {"x"})
        assert evaluate_va(projected, "ab") == evaluate_va(va, "ab").project({"x"})

    def test_projection_to_nothing_is_boolean(self):
        va = compile_formula("x{a}y{b}")
        projected = compile_projection(va, ())
        rel = evaluate_va(projected, "ab")
        assert len(rel) == 1 and next(iter(rel)).domain == frozenset()

    def test_projection_collapses_mappings(self):
        va = compile_formula("x{a}y{[ab]}[ab]*")
        projected = compile_projection(va, {"x"})
        assert len(evaluate_va(projected, "abb")) == 1

    def test_check_flag(self):
        bad = VA(0, (1,), [(0, open_op("x"), 1)])
        with pytest.raises(NotSequentialError):
            compile_projection(bad, {"x"}, check=True)
