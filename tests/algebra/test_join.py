"""Static join compilations (Lemmas 3.2/3.8, Prop. 3.12)."""

import random

import pytest

from repro.core import NotSequentialError
from repro.regex import parse
from repro.va import (
    VA,
    evaluate_naive,
    evaluate_va,
    is_sequential,
    open_op,
    regex_to_va,
    trim,
)
from repro.algebra import (
    dfunc_join,
    factorized_product,
    fpt_join,
    semantic_join,
    used_set_components,
)
from repro.workloads import random_sequential_formula


def compile_formula(text: str) -> VA:
    return trim(regex_to_va(parse(text)))


def check_join(text1: str, text2: str, docs) -> None:
    a1, a2 = compile_formula(text1), compile_formula(text2)
    joined = fpt_join(a1, a2)
    assert is_sequential(joined)
    for doc in docs:
        expected = semantic_join(evaluate_va(a1, doc), evaluate_va(a2, doc))
        assert evaluate_va(joined, doc) == expected, (text1, text2, doc)


class TestFptJoin:
    def test_disjoint_variables(self):
        check_join("x{a}[ab]*", "[ab]*y{b}", ["ab", "ba", "aab"])

    def test_shared_variable_must_agree(self):
        check_join("x{a}[ab]*", "x{[ab]}[ab]*", ["ab", "ba"])

    def test_schemaless_optional_sharing(self):
        # The schemaless crux: a run of A1 not using x joins with any run
        # of A2, and vice versa.
        check_join("(x{a}|ε)[ab]*", "(x{[ab]}|ε)[ab]*y{[ab]*}", ["ab", "ba", "aba"])

    def test_incompatible_spans_filtered(self):
        a1 = compile_formula("x{a}b")
        a2 = compile_formula("ax{b}")
        joined = fpt_join(a1, a2)
        assert evaluate_va(joined, "ab").is_empty

    def test_boolean_conjunction(self):
        # No variables at all: the join is language intersection.
        a1 = compile_formula("a[ab]*")
        a2 = compile_formula("[ab]*b")
        joined = fpt_join(a1, a2)
        assert evaluate_va(joined, "ab") == {*evaluate_va(a1, "ab")}
        assert evaluate_va(joined, "ba").is_empty

    def test_empty_operand(self):
        a1 = compile_formula("x{a}")
        a2 = compile_formula("∅")
        assert evaluate_va(fpt_join(a1, a2), "a").is_empty

    def test_non_sequential_rejected(self):
        bad = VA(0, (1,), [(0, open_op("x"), 1)])
        with pytest.raises(NotSequentialError):
            fpt_join(bad, compile_formula("a"))

    def test_randomized_against_semantic(self):
        rng = random.Random(4)
        for _ in range(20):
            f1 = random_sequential_formula(rng.randint(0, 2), rng, depth=2)
            f2 = random_sequential_formula(rng.randint(0, 2), rng, depth=2)
            a1, a2 = trim(regex_to_va(f1)), trim(regex_to_va(f2))
            joined = fpt_join(a1, a2)
            for _ in range(2):
                doc = "".join(rng.choice("ab") for _ in range(rng.randint(0, 4)))
                expected = semantic_join(
                    evaluate_naive(a1, doc), evaluate_naive(a2, doc)
                )
                assert evaluate_va(joined, doc) == expected, (
                    f1.to_text(),
                    f2.to_text(),
                    doc,
                )

    def test_three_way_composition(self):
        a1 = compile_formula("x{a}[ab]*")
        a2 = compile_formula("[ab]*y{b}")
        a3 = compile_formula("x{[ab]}y{[ab]}")
        joined = fpt_join(fpt_join(a1, a2), a3)
        doc = "ab"
        expected = semantic_join(
            semantic_join(evaluate_va(a1, doc), evaluate_va(a2, doc)),
            evaluate_va(a3, doc),
        )
        assert evaluate_va(joined, doc) == expected


class TestUsedSetComponents:
    def test_partition_by_shared_usage(self):
        va = compile_formula("(x{a}|ε)(y{b}|ε)[ab]*")
        components = used_set_components(va, frozenset({"x", "y"}))
        assert set(components) == {
            frozenset(),
            frozenset({"x"}),
            frozenset({"y"}),
            frozenset({"x", "y"}),
        }

    def test_components_cover_the_spanner(self):
        va = compile_formula("(x{a}|ε)[ab]*")
        components = used_set_components(va, frozenset({"x"}))
        doc = "ab"
        combined = set()
        for component in components.values():
            combined |= set(evaluate_va(component, doc))
        assert combined == set(evaluate_va(va, doc))

    def test_empty_spanner_has_no_components(self):
        assert used_set_components(compile_formula("∅"), frozenset({"x"})) == {}


class TestDfuncJoin:
    def test_functional_pair(self):
        a1 = compile_formula("x{a}[ab]*")
        a2 = compile_formula("[ab]*y{b}")
        joined = dfunc_join(a1, a2)
        doc = "aab"
        assert evaluate_va(joined, doc) == semantic_join(
            evaluate_va(a1, doc), evaluate_va(a2, doc)
        )

    def test_disjunctive_functional_pair(self):
        a1 = compile_formula("x{a}[ab]*|y{b}[ab]*")
        a2 = compile_formula("[ab]*x{[ab]}|[ab]*z{b}")
        joined = dfunc_join(a1, a2)
        for doc in ("ab", "ba", "bb"):
            assert evaluate_va(joined, doc) == semantic_join(
                evaluate_va(a1, doc), evaluate_va(a2, doc)
            ), doc


class TestFactorizedProduct:
    def test_product_synchronises_on_given_variables(self):
        a1 = compile_formula("x{a}b")
        a2 = compile_formula("x{a}y{b}")
        product = factorized_product(a1, a2, {"x"})
        assert evaluate_va(product, "ab") == semantic_join(
            evaluate_va(a1, "ab"), evaluate_va(a2, "ab")
        )

    def test_product_of_empty_is_empty(self):
        a1 = compile_formula("∅")
        a2 = compile_formula("a")
        assert not factorized_product(a1, a2, set()).accepting
