"""The extraction-complexity evaluator (Theorem 5.2, Corollary 5.3)."""

import pytest

from repro.core import Mapping, Span, SpannerError
from repro.regex import parse
from repro.va import evaluate_va, regex_to_va, trim
from repro.algebra import (
    Difference,
    DictionarySpanner,
    Instantiation,
    Join,
    Leaf,
    PlannerConfig,
    Project,
    RAQuery,
    StringEqualitySpanner,
    UnionNode,
    compile_ra,
    evaluate_ra,
    semantic_difference,
    semantic_join,
)


def m(**kwargs) -> Mapping:
    return Mapping({k: Span(*v) for k, v in kwargs.items()})


class TestLeafKinds:
    def test_regex_leaf(self):
        rel = evaluate_ra(Leaf("a"), Instantiation(spanners={"a": parse("x{a}b")}), "ab")
        assert rel == {m(x=(1, 2))}

    def test_va_leaf(self):
        va = trim(regex_to_va(parse("x{a}b")))
        rel = evaluate_ra(Leaf("a"), Instantiation(spanners={"a": va}), "ab")
        assert rel == {m(x=(1, 2))}

    def test_blackbox_leaf(self):
        spanner = DictionarySpanner("w", {"ab"})
        rel = evaluate_ra(Leaf("d"), Instantiation(spanners={"d": spanner}), "abab")
        assert rel == {m(w=(1, 3)), m(w=(3, 5))}

    def test_degree_bound_enforced(self):
        class WideSpanner(StringEqualitySpanner):
            def degree(self) -> int:
                return 9

        inst = Instantiation(spanners={"w": WideSpanner()})
        with pytest.raises(SpannerError, match="degree"):
            evaluate_ra(Leaf("w"), inst, "ab")

    def test_unknown_leaf_type_rejected(self):
        with pytest.raises(TypeError):
            evaluate_ra(Leaf("a"), Instantiation(spanners={"a": "not a spanner"}), "ab")


class TestOperators:
    def test_union_node(self):
        inst = Instantiation(spanners={"a": parse("x{a}b"), "b": parse("a·y{b}")})
        rel = evaluate_ra(UnionNode(Leaf("a"), Leaf("b")), inst, "ab")
        assert rel == {m(x=(1, 2)), m(y=(2, 3))}

    def test_join_node(self):
        inst = Instantiation(spanners={"a": parse("x{a}[ab]*"), "b": parse("[ab]*y{b}")})
        rel = evaluate_ra(Join(Leaf("a"), Leaf("b")), inst, "ab")
        a = evaluate_va(trim(regex_to_va(parse("x{a}[ab]*"))), "ab")
        b = evaluate_va(trim(regex_to_va(parse("[ab]*y{b}"))), "ab")
        assert rel == semantic_join(a, b)

    def test_difference_node(self):
        inst = Instantiation(
            spanners={"a": parse("x{[ab]}[ab]*"), "b": parse("x{b}[ab]*")}
        )
        rel = evaluate_ra(Difference(Leaf("a"), Leaf("b")), inst, "ab")
        a = evaluate_va(trim(regex_to_va(parse("x{[ab]}[ab]*"))), "ab")
        b = evaluate_va(trim(regex_to_va(parse("x{b}[ab]*"))), "ab")
        assert rel == semantic_difference(a, b)

    def test_projection_slot(self):
        inst = Instantiation(
            spanners={"a": parse("x{a}y{b}")}, projections={"p": frozenset({"y"})}
        )
        rel = evaluate_ra(Project(Leaf("a"), "p"), inst, "ab")
        assert rel == {m(y=(2, 3))}

    def test_inline_projection(self):
        inst = Instantiation(spanners={"a": parse("x{a}y{b}")})
        rel = evaluate_ra(Project(Leaf("a"), {"x"}), inst, "ab")
        assert rel == {m(x=(1, 2))}


class TestGuards:
    def test_max_shared_enforced_on_join(self):
        inst = Instantiation(
            spanners={"a": parse("x{a}y{b}"), "b": parse("x{a}y{b}")}
        )
        config = PlannerConfig(max_shared=1)
        with pytest.raises(SpannerError, match="shares 2"):
            evaluate_ra(Join(Leaf("a"), Leaf("b")), inst, "ab", config)

    def test_max_shared_enforced_on_difference(self):
        inst = Instantiation(
            spanners={"a": parse("x{a}y{b}"), "b": parse("x{a}y{b}")}
        )
        config = PlannerConfig(max_shared=1)
        with pytest.raises(SpannerError):
            evaluate_ra(Difference(Leaf("a"), Leaf("b")), inst, "ab", config)

    def test_unbounded_config_allows_everything(self):
        inst = Instantiation(
            spanners={"a": parse("x{a}y{b}"), "b": parse("x{a}y{b}")}
        )
        rel = evaluate_ra(Difference(Leaf("a"), Leaf("b")), inst, "ab")
        assert rel.is_empty  # identical operands


class TestRAQuery:
    def test_query_bundles_everything(self):
        tree = Join(Leaf("a"), Leaf("b"))
        inst = Instantiation(
            spanners={"a": parse("x{a}[ab]*"), "b": parse("[ab]*y{b}")}
        )
        query = RAQuery(tree, inst, PlannerConfig(max_shared=2))
        assert not query.evaluate("ab").is_empty
        compiled = query.compile("ab")
        assert evaluate_va(compiled, "ab") == query.evaluate("ab")

    def test_query_validates_on_construction(self):
        from repro.core import ArityError

        with pytest.raises(ArityError):
            RAQuery(Join(Leaf("a"), Leaf("b")), Instantiation())

    def test_blackbox_inside_join(self):
        # Corollary 5.3: a black box joined against a regular spanner.
        tree = Join(Leaf("words"), Leaf("anchored"))
        inst = Instantiation(
            spanners={
                "words": DictionarySpanner("w", {"ab", "ba"}),
                "anchored": parse("w{[ab][ab]}[ab]*"),
            }
        )
        rel = evaluate_ra(tree, inst, "abab")
        assert rel == {m(w=(1, 3))}
