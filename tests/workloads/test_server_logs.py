"""The server-logs workload pack: golden oracles ≡ spanner output."""

from repro.engine import Engine, available_backends
from repro.va import regex_to_va, trim
from repro.workloads import TEXT_ALPHABET, log_line_formula, packs
from repro.workloads.packs import (
    error_timestamp_formula,
    generate_lines,
    generate_log,
    golden_error_timestamps,
    golden_fields,
)


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_log(30, seed=7) == generate_log(30, seed=7)
        assert generate_log(30, seed=7) != generate_log(30, seed=8)

    def test_lines_stay_inside_the_text_alphabet(self):
        for line in generate_lines(50, seed=2, error_rate=0.3):
            assert all(ch in TEXT_ALPHABET for ch in line)
            assert "\n" not in line

    def test_error_rate_extremes(self):
        all_errors = generate_lines(20, seed=0, error_rate=1.0)
        assert all(" ERROR " in line for line in all_errors)
        quiet = generate_lines(20, seed=0, error_rate=0.0)
        assert not any(" ERROR " in line for line in quiet)

    def test_start_second_continues_a_stream(self):
        head = generate_lines(5, seed=1)
        tail = generate_lines(5, seed=1, start_second=12_000)
        assert head != tail

    def test_package_reexports(self):
        assert packs.generate_log is generate_log


class TestGoldenFields:
    def test_every_generated_line_parses(self):
        for line in generate_lines(40, seed=3, error_rate=0.2):
            fields = golden_fields(line)
            assert fields is not None
            assert line == "{ts} {level} {msg}".format(**fields)

    def test_malformed_lines_are_rejected(self):
        assert golden_fields("") is None
        assert golden_fields("12:00:01 TRACE msg") is None
        assert golden_fields("noon ERROR msg") is None
        assert golden_fields("12:00:01 ERROR") is None

    def test_golden_fields_match_the_log_line_spanner(self):
        engine = Engine()
        va = trim(regex_to_va(log_line_formula()))
        for line in generate_lines(25, seed=4, error_rate=0.3):
            (mapping,) = engine.evaluate(va, line)
            extracted = {
                str(var).lstrip("?"): line[span.begin - 1 : span.end - 1]
                for var, span in mapping.items()
            }
            assert extracted == golden_fields(line)


class TestErrorTimestamps:
    def test_golden_matches_the_spanner_on_every_backend(self):
        va = trim(regex_to_va(error_timestamp_formula()))
        text = generate_log(80, seed=5, error_rate=0.25)
        want = golden_error_timestamps(text)
        assert want  # the seed produces at least one ERROR line
        for backend in available_backends():
            mappings = Engine(backend=backend).evaluate(va, text)
            got = sorted(
                (span.begin, text[span.begin - 1 : span.end - 1])
                for m in mappings
                for _var, span in m.items()
            )
            assert [ts for _pos, ts in got] == want, backend

    def test_quiet_stream_has_no_matches(self):
        va = trim(regex_to_va(error_timestamp_formula()))
        text = generate_log(120, seed=6, error_rate=0.0)
        assert golden_error_timestamps(text) == []
        assert list(Engine().evaluate(va, text)) == []

    def test_tail_session_streams_the_golden_answers(self):
        # The pack's reason to exist: tailing a growing log emits exactly
        # the golden timestamps of each appended batch.
        va = trim(regex_to_va(error_timestamp_formula()))
        session = Engine().tail(va)
        text = ""
        emitted = []
        start = 0
        for batch in range(4):
            chunk = generate_log(
                15, seed=batch, error_rate=0.3, start_second=start
            )
            start += 15 * 3
            text += chunk
            emitted.extend(session.reevaluate(chunk))
        got = sorted(
            (span.begin, text[span.begin - 1 : span.end - 1])
            for m in emitted
            for _var, span in m.items()
        )
        assert [ts for _pos, ts in got] == golden_error_timestamps(text)
