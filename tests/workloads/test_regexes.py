"""The realistic regex-formula library (§1's RegExLib-scale extractors)."""

import pytest

from repro.regex import is_sequential
from repro.va import evaluate_va, regex_to_va, trim
from repro.workloads import (
    LIBRARY,
    anywhere,
    date_formula,
    email_formula,
    ipv4_formula,
    log_line_formula,
    phone_formula,
    url_formula,
    us_address_formula,
)


def extract(formula, doc):
    return evaluate_va(trim(regex_to_va(formula)), doc)


class TestLibraryShape:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_all_formulas_sequential(self, name):
        assert is_sequential(LIBRARY[name])

    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_realistic_sizes(self, name):
        # The paper's point: practical extractors are large.
        assert LIBRARY[name].size() > 20


class TestExtractors:
    def test_email(self):
        rel = extract(email_formula(), "john.doe@mail.example.org")
        assert len(rel) == 1
        mapping = next(iter(rel))
        assert mapping.domain == {"user", "host"}

    def test_email_rejects_garbage(self):
        assert extract(email_formula(), "not-an-email").is_empty

    def test_date_numeric(self):
        rel = extract(date_formula(), "12-06-2026")
        assert len(rel) == 1

    def test_date_month_name(self):
        rel = extract(date_formula(), "3 Mar 2019")
        assert len(rel) == 1

    def test_phone_with_area_code(self):
        rel = extract(phone_formula(), "(04) 123-4567")
        assert not rel.is_empty

    def test_url(self):
        rel = extract(url_formula(), "https://db.example.org/papers/spanners.pdf")
        assert len(rel) == 1

    def test_us_address(self):
        rel = extract(us_address_formula(), "42 Main St, Springfield, 12345")
        assert not rel.is_empty

    def test_ipv4(self):
        assert not extract(ipv4_formula(), "10.0.200.1").is_empty

    def test_log_line(self):
        rel = extract(log_line_formula(), "12:00:01 ERROR disk on fire")
        mapping = next(iter(rel))
        assert mapping.domain == {"ts", "level", "msg"}

    def test_anywhere_wrapper(self):
        doc = "contact: ada@lab.org today"
        assert extract(email_formula(), doc).is_empty
        assert not extract(anywhere(email_formula()), doc).is_empty
