"""Parametrised workload families."""

import random

from repro.regex import is_functional, is_sequential, is_synchronized
from repro.va import (
    evaluate_naive,
    evaluate_va,
    is_sequential as va_sequential,
    regex_to_va,
    trim,
)
from repro.workloads import (
    nth_from_end_formula,
    nth_from_end_va,
    prop311_formula,
    prop311_va,
    random_document,
    random_sequential_formula,
    synchronized_block_formula,
    unsynchronized_block_formula,
)


class TestRandomFamilies:
    def test_random_sequential_formula_is_always_sequential(self):
        rng = random.Random(5)
        for _ in range(40):
            formula = random_sequential_formula(rng.randint(0, 4), rng, depth=4)
            assert is_sequential(formula), formula.to_text()

    def test_random_formula_mentions_requested_variables(self):
        rng = random.Random(8)
        formula = random_sequential_formula(3, rng, depth=4)
        assert len(formula.variables) == 3

    def test_random_document(self):
        rng = random.Random(0)
        doc = random_document("ab", 50, rng)
        assert len(doc) == 50 and doc.alphabet() <= {"a", "b"}


class TestProp311Family:
    def test_formula_matches_va(self):
        formula = prop311_formula(2)
        va = trim(prop311_va(2))
        formula_va = trim(regex_to_va(formula))
        for doc in ("", "a", "ab"):
            assert evaluate_va(va, doc) == evaluate_va(formula_va, doc), doc

    def test_va_is_sequential_with_3n_plus_1_states(self):
        for n in (1, 2, 4):
            va = prop311_va(n)
            assert va_sequential(va)
            assert va.n_states == 3 * n + 1

    def test_output_count(self):
        # Each block chooses x or y and a split point; on a document of
        # length m with n=1: 2 choices × (m+1) splits... spans are fixed by
        # the block structure though — here one block covers everything.
        rel = evaluate_va(trim(prop311_va(1)), "ab")
        assert rel.variables() == {"x1", "y1"}
        assert len(rel) == 2


class TestNthFromEnd:
    def test_formula_and_va_agree(self):
        formula_va = trim(regex_to_va(nth_from_end_formula(2)))
        direct = trim(nth_from_end_va(2))
        for doc in ("ab", "ba", "aab", "bbb", "abab"):
            assert evaluate_naive(direct, doc) == evaluate_va(formula_va, doc), doc

    def test_language_membership(self):
        va = trim(nth_from_end_va(2))
        assert evaluate_naive(va, "ab").__len__() == 1  # 2nd-from-end is 'a'
        assert evaluate_naive(va, "bb").is_empty

    def test_state_count_linear(self):
        assert nth_from_end_va(10).n_states == 11


class TestSynchronizedFamilies:
    def test_block_formula_is_synchronized_functional(self):
        formula = synchronized_block_formula(3)
        assert is_functional(formula)
        assert is_synchronized(formula)

    def test_unsynchronized_control_is_functional_not_synchronized(self):
        formula = unsynchronized_block_formula(2)
        assert is_functional(formula)
        assert not is_synchronized(formula)

    def test_block_formula_extraction(self):
        va = trim(regex_to_va(synchronized_block_formula(2)))
        rel = evaluate_va(va, "abcba")
        assert len(rel) == 1  # the separator fixes both spans
