"""Test package."""
