"""F1: the paper's students example (Figure 1, Examples 2.1/2.2)."""

import random

from repro.core import Mapping, Span
from repro.regex import is_functional, is_sequential
from repro.va import evaluate_va, regex_to_va, trim
from repro.workloads import (
    STUDENTS_DOCUMENT,
    alpha_info,
    alpha_mail,
    alpha_name,
    alpha_phone,
    alpha_recommendation,
    alpha_student_mail,
    alpha_student_phone,
    alpha_uk_mail,
    generate_students,
)


def evaluate(formula, doc=STUDENTS_DOCUMENT):
    return evaluate_va(trim(regex_to_va(formula)), doc)


class TestFigure1Positions:
    def test_key_positions_match_the_paper(self):
        text = STUDENTS_DOCUMENT.text
        # Figure 1's position marks: R1, R8, r20, Z30, 638, m46, P57, L63,
        # 670, l78.
        assert text[0] == "R" and text[7] == "R"
        assert text[19] == "r" and text[29] == "Z"
        assert text[37] == "6" and text[45] == "m"
        assert text[56] == "P" and text[62] == "L"
        assert text[69] == "6" and text[77] == "l"


class TestExample21:
    def test_pstudinfo_extracts_exactly_three_mappings(self):
        rel = evaluate(alpha_info())
        assert len(rel) == 3

    def test_mu1_rodion_raskolnikov(self):
        # µ1 of Example 2.1 (the paper's table misprints the mail span as
        # [20,22>; [20,29> is "rr@edu.ru" per Figure 1's own marks).
        rel = evaluate(alpha_info())
        mu1 = Mapping(
            {"xfirst": Span(1, 7), "xlast": Span(8, 19), "xmail": Span(20, 29)}
        )
        assert mu1 in rel

    def test_mu2_zosimov_has_no_first_name(self):
        # µ2: the schemaless point — xfirst ∉ dom(µ2).
        rel = evaluate(alpha_info())
        mu2 = Mapping(
            {"xlast": Span(30, 37), "xphone": Span(38, 45), "xmail": Span(46, 56)}
        )
        assert mu2 in rel

    def test_mu3_pyotr_luzhin(self):
        rel = evaluate(alpha_info())
        mu3 = Mapping(
            {
                "xfirst": Span(57, 62),
                "xlast": Span(63, 69),
                "xphone": Span(70, 77),
                "xmail": Span(78, 89),
            }
        )
        assert mu3 in rel

    def test_extracted_contents(self):
        doc = STUDENTS_DOCUMENT
        rel = evaluate(alpha_info())
        names = {doc.substring(mu["xlast"]) for mu in rel}
        assert names == {"Raskolnikov", "Zosimov", "Luzhin"}


class TestExample22Classification:
    def test_alpha_info_sequential_not_functional(self):
        formula = alpha_info()
        assert is_sequential(formula)
        assert not is_functional(formula)

    def test_component_formulas(self):
        assert is_functional(alpha_mail())
        assert is_functional(alpha_phone())
        assert is_sequential(alpha_name()) and not is_functional(alpha_name())

    def test_example_51_formulas_are_functional(self):
        assert is_functional(alpha_student_mail())
        assert is_functional(alpha_student_phone())
        assert is_functional(alpha_recommendation())


class TestUKMail:
    def test_extracts_only_uk_addresses(self):
        doc = STUDENTS_DOCUMENT
        rel = evaluate(alpha_uk_mail())
        assert {doc.substring(mu["xmail"]) for mu in rel} == {"luzi@edu.uk"}


class TestGenerator:
    def test_generated_corpus_is_extractable(self):
        rng = random.Random(0)
        doc = generate_students(10, rng)
        rel = evaluate(alpha_info(), doc)
        assert len(rel) == 10  # one mapping per student line

    def test_optional_fields_vary(self):
        rng = random.Random(1)
        doc = generate_students(30, rng, with_first_name=0.5, with_phone=0.5)
        rel = evaluate(alpha_info(), doc)
        domains = {frozenset(mu.domain) for mu in rel}
        assert len(domains) > 1  # schemaless: several different shapes

    def test_recommendations_marker(self):
        rng = random.Random(2)
        doc = generate_students(15, rng, with_recommendation=1.0)
        rel = evaluate(alpha_recommendation(), doc)
        assert len(rel) == 15
